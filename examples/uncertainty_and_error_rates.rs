//! Beyond the point estimate: uncertainty quantification for ε and the
//! error-rate (equalized-odds) extension, in one `Audit` chain.
//!
//! Demonstrates the three companion tools to the headline EDF number:
//! 1. bootstrap confidence intervals for ε̂ (frequentist),
//! 2. the posterior-supremum estimator over Θ (Bayesian, §3 footnote 2),
//! 3. differential equalized odds — the §7.1 future-work extension — on a
//!    trained classifier, plus fairness-aware model selection.
//!
//! Run with `cargo run --release --example uncertainty_and_error_rates`.

use differential_fairness::data::adult::synth::{generate, SynthConfig};
use differential_fairness::data::encode::{binary_labels, FrameEncoder};
use differential_fairness::learn::model_selection::{
    cross_validate_l2_grid, select_within_epsilon,
};
use differential_fairness::learn::pipeline::ADULT_BASE_FEATURES;
use differential_fairness::prelude::*;

fn main() {
    let dataset = generate(&SynthConfig {
        seed: 23,
        n_train: 8_000,
        n_test: 4_000,
        ..SynthConfig::default()
    })
    .unwrap()
    .with_protected()
    .unwrap();
    let protected = ["race_m", "gender", "nationality"];

    // 1 + 2. One audit comparing three estimation strategies on the same
    //    counts — point (Eq. 6), smoothed (Eq. 7), and the supremum over
    //    300 posterior draws of Θ — with a bootstrap CI for the headline.
    let report = Audit::of_frame(&dataset.train, "income", &protected)
        .unwrap()
        .estimator(Empirical)
        .estimator(PosteriorSup {
            alpha: 1.0,
            samples: 300,
            seed: 2020,
        })
        .estimator(Smoothed { alpha: 1.0 })
        .subsets(SubsetPolicy::None)
        .bootstrap(300, 2020)
        .run()
        .unwrap();
    println!("three certificates for the same data:");
    for est in &report.estimators {
        println!("  {:<18} eps = {:.3}", est.name, est.result.epsilon);
    }
    let boot = report.bootstrap.as_ref().unwrap();
    println!(
        "bootstrap (300 replicates of the headline): 95% CI [{:.3}, {:.3}], se = {}, {} infinite",
        boot.interval.0,
        boot.interval.1,
        boot.std_error()
            .map_or("n/a".to_string(), |se| format!("{se:.3}")),
        boot.infinite_replicates
    );
    println!(
        "reading: Definition 3.1 takes the supremum over Theta, so the Bayesian\n\
         certificate is conservative; the bootstrap shows where eps concentrates.\n"
    );

    // 3. Train a classifier and attach differential equalized odds to its
    //    audit.
    let encoder = FrameEncoder::fit(&dataset.train, &ADULT_BASE_FEATURES).unwrap();
    let x_train = encoder.transform(&dataset.train).unwrap();
    let x_test = encoder.transform(&dataset.test).unwrap();
    let y_train = binary_labels(&dataset.train, "income", ">50K").unwrap();
    let y_test = binary_labels(&dataset.test, "income", ">50K").unwrap();
    let model = LogisticRegression::fit(&x_train, &y_train, &LogisticConfig::default()).unwrap();
    let preds = model.predict(&x_test).unwrap();

    let (groups, group_labels) = dataset.test.group_indices(&["race_m", "gender"]).unwrap();
    let eo = EqualizedOddsCounts::from_records(
        vec!["<=50K".into(), ">50K".into()],
        vec!["pred<=50K".into(), "pred>50K".into()],
        group_labels.clone(),
        y_test
            .iter()
            .zip(&preds)
            .zip(&groups)
            .map(|((&y, &p), &g)| (y as usize, p as usize, g)),
    )
    .unwrap();
    let mech = FnMechanism::new(vec!["pred<=50K".into(), "pred>50K".into()], |p: &f64| {
        usize::from(*p >= 0.5)
    });
    let clf_report = Audit::of_mechanism(
        &mech,
        group_labels,
        groups.iter().copied().zip(preds.iter().copied()),
    )
    .unwrap()
    .estimator(Smoothed { alpha: 1.0 })
    .equalized_odds(eo.clone(), 1.0)
    .run()
    .unwrap();
    let deo = clf_report.equalized_odds.as_ref().unwrap();
    println!("differential equalized odds (race x gender, alpha = 1):");
    for (label, eps) in &deo.per_label {
        println!("  conditional on true {label}: eps = {:.3}", eps.epsilon);
    }
    let opp = opportunity_epsilon(&eo, ">50K", 1.0).unwrap();
    println!(
        "  overall DEO eps = {:.3}; differential equality of opportunity = {:.3}\n",
        deo.overall.epsilon, opp.epsilon
    );

    // 4. Fairness-aware model selection over an L2 grid.
    let mut rng = Pcg32::new(2020);
    let (train_groups, train_labels) = dataset.train.group_indices(&["race_m", "gender"]).unwrap();
    let results = cross_validate_l2_grid(
        &x_train,
        &y_train,
        &train_groups,
        train_labels.len(),
        &[1e-4, 1e-2, 1.0, 100.0, 10_000.0],
        5,
        &mut rng,
    )
    .unwrap();
    println!("5-fold CV over the L2 grid (error vs fairness):");
    for r in &results {
        println!(
            "  l2 = {:<8} error = {:.3}  eps = {:.3}",
            r.l2, r.error, r.epsilon
        );
    }
    let chosen = select_within_epsilon(&results, 2.0).unwrap();
    println!(
        "selected under eps <= 2.0 budget: l2 = {} (error {:.3}, eps {:.3})",
        chosen.l2, chosen.error, chosen.epsilon
    );
}
