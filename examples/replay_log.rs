//! Binary replay logs end to end: convert a CSV audit stream to a DFRL
//! log, re-audit straight from the log bytes (no frame, no strings),
//! verify it matches the CSV path byte for byte, and slice the data with
//! zero-copy frame views.
//!
//! Run with `cargo run --release --example replay_log`.

use differential_fairness::data::csv::CsvOptions;
use differential_fairness::data::workloads::{frame_to_csv, synthetic_audit_frame};
use differential_fairness::prelude::*;

fn main() {
    let columns = ["outcome", "attr0", "attr1"];

    // A synthetic audit stream, serialized the traditional way: CSV.
    let mut rng = Pcg32::new(7);
    let frame = synthetic_audit_frame(&mut rng, 50_000, 2, &[2, 3]).unwrap();
    let csv = frame_to_csv(&frame, &columns).unwrap();
    println!("csv stream: {} rows, {} bytes", frame.n_rows(), csv.len());

    // One-shot conversion: CSV -> DFRL. The schema header interns each
    // column's labels once; rows become packed varint codes.
    let mut log = Vec::new();
    let stats = csv_to_log(
        csv.as_bytes(),
        &CsvOptions::default(),
        &columns,
        4_096,
        &mut log,
    )
    .unwrap();
    println!(
        "dfrl log:   {} rows, {} bytes in {} chunks ({:.2} bytes/row vs {:.2} for csv)",
        stats.rows,
        stats.bytes,
        stats.chunks,
        stats.bytes as f64 / stats.rows as f64,
        csv.len() as f64 / stats.rows as f64,
    );

    // Re-audit straight from the log: codes stream into the tally with
    // no frame materialized and no string touched after the header.
    let replayed = Audit::of_replay_log(log.as_slice(), "outcome", &["attr0", "attr1"], 2)
        .unwrap()
        .estimator(Smoothed { alpha: 1.0 })
        .run()
        .unwrap();
    let batch = Audit::of_frame(&frame, "outcome", &["attr0", "attr1"])
        .unwrap()
        .estimator(Smoothed { alpha: 1.0 })
        .run()
        .unwrap();
    assert_eq!(replayed, batch, "replay must match the batch audit");
    println!(
        "replayed audit epsilon: {:.4} (matches batch)",
        replayed.epsilon.epsilon
    );

    // The scan-free tally fast path, when only counts are needed.
    let table = tally_from_log(log.as_slice(), &columns).unwrap();
    println!("tally_from_log total weight: {}", table.total());

    // Zero-copy views: filter and sort without cloning column data, then
    // audit a slice of the population.
    let view = FrameView::of(&frame).filter_eq("attr0", "v0").unwrap();
    println!(
        "view attr0=v0: {} of {} rows (no column data copied)",
        view.len(),
        frame.n_rows()
    );
    let sliced = view.contingency(&columns).unwrap();
    println!("sliced tally total: {}", sliced.total());

    // Frames round-trip through the log exactly.
    let mut roundtrip = Vec::new();
    write_frame_log(&frame, 4_096, &mut roundtrip).unwrap();
    let back = read_frame_log(roundtrip.as_slice()).unwrap();
    assert_eq!(back.n_rows(), frame.n_rows());
    println!("frame -> log -> frame round trip: ok");
}
