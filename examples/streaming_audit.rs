//! The streaming audit engine end to end: audit a record stream without
//! ever materializing it, in parallel shards, and verify the report is
//! byte-identical to the batch path.
//!
//! Run with `cargo run --release --example streaming_audit`.

use differential_fairness::data::csv::CsvOptions;
use differential_fairness::data::workloads::{frame_to_csv, synthetic_audit_frame};
use differential_fairness::prelude::*;

fn main() {
    // A synthetic 500k-row workload standing in for a dataset too large to
    // hold comfortably in memory.
    let mut rng = Pcg32::new(7);
    let frame = synthetic_audit_frame(&mut rng, 500_000, 2, &[2, 4, 2]).unwrap();
    let columns = ["outcome", "attr0", "attr1", "attr2"];

    // --- Streaming over zero-copy frame chunks, 4 shards ----------------
    let report = Audit::of_frame_streaming(&frame, "outcome", &columns[1..], 8_192, 4)
        .unwrap()
        .estimator(Empirical)
        .estimator(Smoothed { alpha: 1.0 })
        .subsets(SubsetPolicy::All)
        .run()
        .unwrap();
    println!("-- streamed audit (4 shards, 8192-row chunks) --");
    println!("{}", report.render_subset_table());
    println!("{}", report.render_summary());

    // --- The batch path produces the identical report --------------------
    let batch = Audit::of_frame(&frame, "outcome", &columns[1..])
        .unwrap()
        .estimator(Empirical)
        .estimator(Smoothed { alpha: 1.0 })
        .subsets(SubsetPolicy::All)
        .run()
        .unwrap();
    assert_eq!(
        serde_json::to_string(&report).unwrap(),
        serde_json::to_string(&batch).unwrap()
    );
    println!("streamed report is byte-identical to the batch report ✓");

    // --- Streaming CSV: fixed-size batches, never the whole file ---------
    let csv = frame_to_csv(&frame, &columns).unwrap();
    let chunks = CsvChunks::new(csv.as_bytes(), CsvOptions::default(), 8_192)
        .unwrap()
        .map(|r| r.map_err(|e| DfError::Invalid(e.to_string())));
    let axes = FrameChunks::new(&frame, &columns, 1)
        .unwrap()
        .axes()
        .unwrap();
    let from_csv = Audit::of_stream("outcome", axes, chunks, 2)
        .unwrap()
        .estimator(Empirical)
        .estimator(Smoothed { alpha: 1.0 })
        .subsets(SubsetPolicy::All)
        .run()
        .unwrap();
    assert_eq!(
        serde_json::to_string(&from_csv).unwrap(),
        serde_json::to_string(&batch).unwrap()
    );
    println!("CSV-streamed report matches too ✓");
}
