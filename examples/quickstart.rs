//! Quickstart: measure the differential fairness of a labeled dataset and a
//! classifier in ~60 lines.
//!
//! Run with `cargo run --release --example quickstart`.

use differential_fairness::prelude::*;

fn main() {
    // 1. A toy lending dataset: outcome x gender x race joint counts.
    //    In practice these come from `DataFrame::contingency` over real data.
    let counts = JointCounts::from_table(
        {
            let axes = vec![
                Axis::from_strs("outcome", &["deny", "approve"]).unwrap(),
                Axis::from_strs("gender", &["F", "M"]).unwrap(),
                Axis::from_strs("race", &["black", "white"]).unwrap(),
            ];
            // Row-major over (outcome, gender, race): deny then approve.
            ContingencyTable::from_data(
                axes,
                vec![
                    70.0, 110.0, // deny, F, black/white
                    45.0, 60.0, // deny, M
                    30.0, 90.0, // approve, F
                    55.0, 140.0, // approve, M
                ],
            )
            .unwrap()
        },
        "outcome",
    )
    .unwrap();

    // 2. One-call audit: per-subset ε (Eq. 6 and Eq. 7), the Theorem 3.1
    //    bound check, baselines, and a privacy-regime interpretation.
    let audit = FairnessAudit::run(
        &counts,
        &AuditConfig {
            alpha: 1.0,
            positive_outcome: Some("approve".into()),
            reference_epsilon: None,
        },
    )
    .unwrap();

    println!("records audited: {}", audit.n_records);
    println!("{}", audit.render_subset_table());
    println!(
        "headline eps = {:.3}  (privacy regime: {:?}, outcome-ratio bound e^eps = {:.2}x)",
        audit.epsilon.epsilon,
        audit.regime,
        audit.epsilon.probability_ratio_bound()
    );
    if let Some(w) = &audit.epsilon.witness {
        println!(
            "worst pair: `{}` gets `{}` at rate {:.3}, `{}` at rate {:.3}",
            w.group_hi, w.outcome, w.prob_hi, w.group_lo, w.prob_lo
        );
    }
    println!(
        "demographic-parity distance: {:.3}; disparate-impact ratio: {:.3}",
        audit.demographic_parity,
        audit.disparate_impact.unwrap()
    );
    assert!(audit.bound_violations.is_empty());

    // 3. Audit a mechanism (here: a deterministic score threshold) against
    //    the same protected groups via the Mechanism trait.
    let mech = FnMechanism::new(vec!["deny".into(), "approve".into()], |score: &f64| {
        usize::from(*score >= 0.0)
    });
    let instances = vec![
        (0usize, -0.3),
        (0, 0.2),
        (1, 0.7),
        (1, 0.9),
        (2, -0.5),
        (3, 0.4),
    ];
    let est = estimate_group_outcomes(
        &mech,
        vec![
            "F,black".into(),
            "F,white".into(),
            "M,black".into(),
            "M,white".into(),
        ],
        instances,
        1.0,
    )
    .unwrap();
    let eps = est.group_outcomes.epsilon();
    println!(
        "\nthreshold mechanism over {} instances: eps = {:.3} ({:?})",
        est.n,
        eps.epsilon,
        PrivacyRegime::of(eps.epsilon)
    );
}
