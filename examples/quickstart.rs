//! Quickstart: measure the differential fairness of a labeled dataset and a
//! classifier in ~60 lines, through the fluent `Audit` builder.
//!
//! Run with `cargo run --release --example quickstart`.

use differential_fairness::prelude::*;

fn main() {
    // 1. A toy lending dataset: outcome x gender x race joint counts.
    //    In practice these come from `DataFrame::contingency` over real data
    //    (see `Audit::of_frame`).
    let counts = JointCounts::from_table(
        {
            let axes = vec![
                Axis::from_strs("outcome", &["deny", "approve"]).unwrap(),
                Axis::from_strs("gender", &["F", "M"]).unwrap(),
                Axis::from_strs("race", &["black", "white"]).unwrap(),
            ];
            // Row-major over (outcome, gender, race): deny then approve.
            ContingencyTable::from_data(
                axes,
                vec![
                    70.0, 110.0, // deny, F, black/white
                    45.0, 60.0, // deny, M
                    30.0, 90.0, // approve, F
                    55.0, 140.0, // approve, M
                ],
            )
            .unwrap()
        },
        "outcome",
    )
    .unwrap();

    // 2. One chain: Eq. 6 and Eq. 7 side by side over every subset of the
    //    protected attributes, the Theorem 3.2 bound check, a bootstrap CI
    //    for the headline ε, and the section 7 baselines.
    let report = Audit::of(&counts)
        .estimator(Empirical)
        .estimator(Smoothed { alpha: 1.0 })
        .subsets(SubsetPolicy::All)
        .bootstrap(200, 42)
        .baselines(Baselines::all().positive("approve"))
        .run()
        .unwrap();

    println!("{}", report.render_summary());
    println!("{}", report.render_subset_table());
    assert_eq!(report.bound_violations, Some(vec![]));

    // 3. Audit a mechanism (here: a deterministic score threshold) against
    //    the same protected groups — same chain, different entry point.
    let mech = FnMechanism::new(vec!["deny".into(), "approve".into()], |score: &f64| {
        usize::from(*score >= 0.0)
    });
    let instances = vec![
        (0usize, -0.3),
        (0, 0.2),
        (1, 0.7),
        (1, 0.9),
        (2, -0.5),
        (3, 0.4),
    ];
    let mech_report = Audit::of_mechanism(
        &mech,
        vec![
            "F,black".into(),
            "F,white".into(),
            "M,black".into(),
            "M,white".into(),
        ],
        instances,
    )
    .unwrap()
    .estimator(Smoothed { alpha: 1.0 })
    .run()
    .unwrap();
    println!(
        "threshold mechanism over {} instances: eps = {:.3} ({:?})",
        mech_report.n_records.unwrap(),
        mech_report.epsilon.epsilon,
        mech_report.regime
    );
}
