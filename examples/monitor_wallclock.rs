//! Wall-clock fairness monitoring with change-point detection.
//!
//! Serving fleets reason about "the last 15 minutes", not "the last 10k
//! records" — and they want a *fast* drift alarm with a bounded
//! false-positive rate, not just a threshold on the current level. This
//! example replays Poisson traffic whose planted ε **steps** from 0 to
//! 1.2 at t = 300 s (a crisp change-point, not a ramp), and watches a
//! wall-clock monitor:
//!
//! 1. track ε over the last 60 s at 5 s bucket granularity (exact
//!    merge/subtract time ring — byte-identical to batch-auditing the
//!    in-window records),
//! 2. run CUSUM and Page–Hinkley detectors over the windowed ε, which
//!    alarm within one window span of the change while staying silent on
//!    the 300 in-control seconds,
//! 3. keep the window honest through a traffic outage via `advance_to`
//!    (time moves, records don't — the window drains),
//! 4. timestamps are caller-supplied: the whole run is replayable.
//!
//! Run with `cargo run --release --example monitor_wallclock`.

use differential_fairness::prelude::*;

fn main() {
    let mut rng = Pcg32::new(7);
    let change_at = 300.0;
    let replay = timestamped_drift_stream(
        &mut rng,
        &[2, 2],
        0.4,
        &[
            DriftSegment::new(change_at, 0.0),
            DriftSegment::new(300.0, 1.2),
        ],
        ArrivalProcess::Poisson { rate: 50.0 },
    )
    .unwrap();
    println!(
        "replaying {} records over 600 s (planted change-point at {change_at} s), \
         window = last 60 s @ 5 s buckets:",
        replay.frame.n_rows()
    );

    let axes = vec![
        Axis::from_strs("outcome", &["y0", "y1"]).unwrap(),
        Axis::from_strs("attr0", &["v0", "v1"]).unwrap(),
        Axis::from_strs("attr1", &["v0", "v1"]).unwrap(),
    ];
    let mut monitor = Audit::monitor("outcome", axes)
        .estimator(Smoothed { alpha: 1.0 })
        .window_seconds(60.0)
        .bucket_seconds(5.0)
        .changepoint(Cusum::new(0.25, 0.05, 1.0))
        .changepoint(PageHinkley::new(0.25, 0.05, 1.0))
        .build()
        .unwrap();

    println!("{:>8}  {:>10}  {:>10}", "t (s)", "window eps", "rows");
    let mut first_alarm: Option<f64> = None;
    let mut printed_alarms = 0usize;
    // One chunk per 5 s bucket: the detectors sample on a fixed cadence.
    for chunk in replay.bucket_chunks(5.0).unwrap() {
        let ts = chunk.timestamp;
        let step = monitor.push_at(&chunk, ts).unwrap();
        if (ts / 60.0).floor() > ((ts - 5.0) / 60.0).floor() {
            println!(
                "{:>8.1}  {:>10.3}  {:>10}",
                ts, step.epsilon.epsilon, step.window_rows
            );
        }
        for alarm in &step.alarms {
            let at = alarm.at_seconds.unwrap();
            if first_alarm.is_none() {
                first_alarm = Some(at);
            }
            // A persistent shift keeps re-alarming by design (detectors
            // reset and keep watching); show the first few only.
            printed_alarms += 1;
            match printed_alarms.cmp(&5) {
                std::cmp::Ordering::Less => println!(
                    "  ** {} ALARM at t = {:.1} s (record {}): statistic {:.2} on \
                     windowed eps = {:.3}",
                    alarm.detector.name(),
                    at,
                    alarm.at_record,
                    alarm.statistic,
                    alarm.signal,
                ),
                std::cmp::Ordering::Equal => {
                    println!("  ** … the shift persists, so the detectors keep re-alarming …")
                }
                std::cmp::Ordering::Greater => {}
            }
        }
    }

    if let Some(at) = first_alarm {
        println!(
            "first alarm at t = {at:.1} s -> detection delay {:.1} s after the \
             planted change-point",
            at - change_at
        );
    }

    // A traffic outage: the upstream goes silent for two minutes, but the
    // clock keeps ticking. advance_to keeps the window honest - it drains
    // to empty instead of freezing on stale records.
    let end = monitor.now_seconds().unwrap();
    let idle = monitor.advance_to(end + 120.0).unwrap();
    println!(
        "after a 120 s outage: window rows = {}, eps = {} (vacuous - the window is empty)",
        idle.window_rows, idle.epsilon.epsilon
    );

    // Snapshots carry detector state and merge across shards.
    let snap = monitor.snapshot().unwrap();
    let total_alarms: usize = snap.changepoints.iter().map(|c| c.alarms.len()).sum();
    println!(
        "snapshot: {} records seen, {} change-point alarms across {} detectors",
        snap.records_seen,
        total_alarms,
        snap.changepoints.len()
    );
}
