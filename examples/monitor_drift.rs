//! Online fairness monitoring of a drifting prediction stream.
//!
//! A deployed classifier's ε-DF is not a number, it is a *time series*:
//! the serving distribution shifts, and a one-shot audit goes stale. This
//! example replays a synthetic stream whose planted ε climbs from 0.2 to
//! 2.0, and watches the monitor:
//!
//! 1. track ε over a sliding 5 000-record window (exact merge/subtract
//!    ring — byte-identical to batch-auditing the same records),
//! 2. compare it against an exponentially-decayed horizon (trend),
//! 3. fire a hysteresis alert (3 consecutive breaching windows) with the
//!    worst group pair attached,
//! 4. merge snapshots from two sharded monitors, as replicas of a serving
//!    fleet would.
//!
//! Run with `cargo run --release --example monitor_drift`.

use differential_fairness::prelude::*;

fn main() {
    let mut rng = Pcg32::new(7);
    let n_rows = 100_000;
    let frame = drift_replay_frame(&mut rng, n_rows, &[2, 2], 0.4, 0.2, 2.0).unwrap();
    let columns = ["outcome", "attr0", "attr1"];

    let chunks = FrameChunks::new(&frame, &columns, 500).unwrap();
    let axes = chunks.axes().unwrap();
    let mut monitor = Audit::monitor("outcome", axes.clone())
        .estimator(Smoothed { alpha: 1.0 })
        .window(5_000)
        .decay(0.98)
        .alert(AlertRule::epsilon_above(1.0).for_consecutive(3))
        .build()
        .unwrap();

    println!("replaying {n_rows} records, 500/chunk, window = 5000, decay = 0.98:");
    println!(
        "{:>10}  {:>10}  {:>10}  {:>7}",
        "record", "window eps", "horizon", "trend"
    );
    let mut alerted_at = None;
    for chunk in chunks {
        let step = monitor.push(&chunk).unwrap();
        let records = step.records_seen;
        if records.is_multiple_of(10_000) {
            let horizon = step.decayed_epsilon.as_ref().unwrap().epsilon;
            println!(
                "{:>10}  {:>10.3}  {:>10.3}  {:>+7.3}",
                records,
                step.epsilon.epsilon,
                horizon,
                step.epsilon.epsilon - horizon
            );
        }
        for alert in &step.fired {
            alerted_at.get_or_insert(alert.at_record);
            let w = alert.witness.as_ref().unwrap();
            println!(
                "  ** ALERT at record {}: eps = {:.3} > {} for {} windows; worst pair: \
                 `{}` gets `{}` at {:.3}, `{}` at {:.3}",
                alert.at_record,
                alert.epsilon,
                alert.rule.threshold,
                alert.rule.consecutive,
                w.group_hi,
                w.outcome,
                w.prob_hi,
                w.group_lo,
                w.prob_lo
            );
        }
    }
    println!(
        "\nfirst alert at record {} (planted eps crosses 1.0 mid-stream)",
        alerted_at.expect("the drift must trip the alert")
    );

    // Distributed monitoring: two shards each see half the traffic; their
    // snapshots merge cell-wise into the fleet-wide state.
    let shard = |offset: usize| {
        let mut m = Audit::monitor("outcome", axes.clone())
            .estimator(Smoothed { alpha: 1.0 })
            .window(5_000)
            .build()
            .unwrap();
        let chunks = FrameChunks::new(&frame, &columns, 500).unwrap();
        for (i, chunk) in chunks.enumerate() {
            if i % 2 == offset {
                m.push(&chunk).unwrap();
            }
        }
        m.snapshot().unwrap()
    };
    let merged = shard(0).merge(&shard(1), &Smoothed { alpha: 1.0 }).unwrap();
    println!(
        "\nsharded: two monitors x {} window records merge to {} records, eps = {:.3}",
        5_000, merged.window_rows, merged.epsilon.epsilon
    );

    // The merged snapshot serializes for dashboards and checkpoints.
    let json = serde_json::to_string(&merged).unwrap();
    println!("snapshot JSON: {} bytes", json.len());
}
