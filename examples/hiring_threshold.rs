//! The paper's Figure 2 scenario as a decision-support tool: score-based
//! hiring with two applicant groups, the fairness cost of the threshold,
//! and three repair options compared (move the threshold, randomize
//! decisions, per-group thresholds).
//!
//! Run with `cargo run --release --example hiring_threshold`.

use differential_fairness::prelude::*;

fn epsilon_of(probs: &[[f64; 2]]) -> EpsilonResult {
    // A probability table audited directly: the `of_table` entry point with
    // the plug-in estimator (there are no counts to smooth here).
    Audit::of_table(
        GroupOutcomes::with_uniform_weights(
            vec!["no".into(), "yes".into()],
            (1..=probs.len()).map(|g| format!("group{g}")).collect(),
            probs.iter().flat_map(|row| row.iter().copied()).collect(),
        )
        .unwrap(),
    )
    .estimator(Empirical)
    .run()
    .unwrap()
    .epsilon
}

fn main() {
    let workload = GaussianScoreGroups::figure2();
    let paper_threshold = ThresholdMechanism::new(10.5);

    // The paper's setup.
    let probs = paper_threshold.group_outcome_probabilities(&workload);
    let eps = epsilon_of(&probs);
    println!("threshold t = 10.5 (paper's Figure 2):");
    println!(
        "  P(hire | group 1) = {:.4}, P(hire | group 2) = {:.4}",
        probs[0][1], probs[1][1]
    );
    println!(
        "  eps = {:.3} ({:?}; one group up to {:.1}x as likely to be rejected)",
        eps.epsilon,
        PrivacyRegime::of(eps.epsilon),
        eps.probability_ratio_bound()
    );

    // Repair 1: move the single threshold to the fairest point.
    let (best_t, best_eps) = ThresholdMechanism::fairest_threshold(&workload, 2000).unwrap();
    let best_probs = ThresholdMechanism::new(best_t).group_outcome_probabilities(&workload);
    println!("\nrepair 1 — move the threshold: t = {best_t:.2}");
    println!(
        "  eps {:.3} -> {:.3}; hire rates {:.3} / {:.3} (hiring volume changes!)",
        eps.epsilon, best_eps, best_probs[0][1], best_probs[1][1]
    );

    // Repair 2: randomized decisions — flatten each group's hire rate
    // toward the overall rate with mixing weight gamma (the Laplace-noise
    // analogue the paper advises against; it destroys signal).
    let overall = 0.5 * (probs[0][1] + probs[1][1]);
    println!("\nrepair 2 — randomize toward the base rate (gamma = mixing weight):");
    for gamma in [0.25, 0.5, 0.75] {
        let mixed: Vec<[f64; 2]> = probs
            .iter()
            .map(|row| {
                let hire = (1.0 - gamma) * row[1] + gamma * overall;
                [1.0 - hire, hire]
            })
            .collect();
        let e = epsilon_of(&mixed);
        println!(
            "  gamma = {gamma:.2}: eps = {:.3}; but a {:.0}% random component now decides careers",
            e.epsilon,
            gamma * 100.0
        );
    }

    // Repair 3: per-group thresholds chosen so hire rates equalize — zero
    // eps with deterministic decisions, the route the paper's framework
    // permits (DF does not require randomization).
    let target = overall;
    let t1 = workload.distributions[0].quantile(1.0 - target).unwrap();
    let t2 = workload.distributions[1].quantile(1.0 - target).unwrap();
    let per_group = [
        ThresholdMechanism::new(t1).group_outcome_probabilities(&workload)[0],
        ThresholdMechanism::new(t2).group_outcome_probabilities(&workload)[1],
    ];
    let e = epsilon_of(&per_group);
    println!(
        "\nrepair 3 — per-group thresholds t1 = {t1:.2}, t2 = {t2:.2} equalizing hire\n\
         rates at {target:.3}: eps = {:.6} (deterministic, zero fairness cost —\n\
         the policy question of whether group-aware thresholds are permissible\n\
         is exactly the paper's point about counteracting structural bias).",
        e.epsilon
    );
}
