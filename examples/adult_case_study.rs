//! The paper's §6 case study, end to end: audit the (synthetic) Adult
//! census data, train a classifier, measure its differential fairness and
//! bias amplification, and inspect the subgroup-fairness baseline.
//!
//! Run with `cargo run --release --example adult_case_study`.

use differential_fairness::core::baselines::subgroup_fairness_violation;
use differential_fairness::learn::pipeline::{run_feature_selection, ADULT_BASE_FEATURES};
use differential_fairness::prelude::*;

fn main() {
    // Generate the calibrated benchmark (drop the real `adult.data` /
    // `adult.test` into ./data to use the genuine UCI files instead).
    let dataset = match adult::loader::load_uci_dir(std::path::Path::new("data")).unwrap() {
        Some(d) => {
            println!("using real UCI Adult files from ./data");
            d
        }
        None => adult::synth::generate_default().unwrap(),
    }
    .with_protected()
    .unwrap();
    println!(
        "train: {} rows, test: {} rows",
        dataset.train.n_rows(),
        dataset.test.n_rows()
    );

    // --- Data audit (Table 2) -------------------------------------------
    let train_counts = JointCounts::from_table(
        dataset
            .train
            .contingency(&["income", "race_m", "gender", "nationality"])
            .unwrap(),
        "income",
    )
    .unwrap();
    let audit = FairnessAudit::run(
        &train_counts,
        &AuditConfig {
            alpha: 1.0,
            positive_outcome: Some(">50K".into()),
            reference_epsilon: None,
        },
    )
    .unwrap();
    println!("\n-- training-data audit (per subset of protected attributes) --");
    println!("{}", audit.render_subset_table());
    println!(
        "regime: {:?}; the race x gender intersection is substantially less fair\n\
         than either attribute alone — the paper's core intersectional finding.",
        audit.regime
    );

    // --- Classifier audit (Table 3) --------------------------------------
    let run = run_feature_selection(
        &dataset.train,
        &dataset.test,
        &ADULT_BASE_FEATURES,
        &[], // withhold all sensitive attributes (the paper's best row)
        "income",
        ">50K",
        &LogisticConfig::default(),
    )
    .unwrap();
    println!(
        "\n-- logistic regression without sensitive features --\n\
         test error: {:.2}%",
        run.error_rate * 100.0
    );

    // ε of the classifier's test predictions over the protected groups.
    let mut test_with_preds = dataset.test.clone();
    let pred_labels: Vec<&str> = run
        .test_predictions
        .iter()
        .map(|&p| if p >= 0.5 { ">50K" } else { "<=50K" })
        .collect();
    test_with_preds
        .add_column(Column::categorical("prediction", &pred_labels))
        .unwrap();
    let pred_counts = JointCounts::from_table(
        test_with_preds
            .contingency(&["prediction", "race_m", "gender", "nationality"])
            .unwrap(),
        "prediction",
    )
    .unwrap();
    let classifier_eps = pred_counts.edf_smoothed(1.0).unwrap().epsilon;

    let test_counts = JointCounts::from_table(
        dataset
            .test
            .contingency(&["income", "race_m", "gender", "nationality"])
            .unwrap(),
        "income",
    )
    .unwrap();
    let data_eps = test_counts.edf_smoothed(1.0).unwrap().epsilon;

    let amp = BiasAmplification::new(classifier_eps, data_eps);
    println!(
        "classifier eps = {:.3}, test-data eps = {:.3}, amplification = {:+.3}\n\
         (utility-disparity factor e^delta = {:.2}x)",
        classifier_eps,
        data_eps,
        amp.delta(),
        amp.utility_disparity_factor()
    );

    // --- Subgroup-fairness baseline (Kearns et al.) -----------------------
    let violations = subgroup_fairness_violation(&train_counts, ">50K").unwrap();
    println!("\n-- worst statistical-parity subgroups (Kearns-style audit) --");
    for v in violations.iter().take(5) {
        println!(
            "  {:<55} mass {:.3}  gap {:+.3}  weighted {:.4}",
            v.subgroup, v.mass, v.rate_gap, v.weighted
        );
    }
    println!(
        "\nboth lenses agree on where the inequity concentrates; DF additionally\n\
         certifies the privacy-style e^eps guarantee of Definition 3.1."
    );
}
