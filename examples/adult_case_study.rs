//! The paper's §6 case study, end to end: audit the (synthetic) Adult
//! census data, train a classifier, measure its differential fairness and
//! bias amplification, and inspect the subgroup-fairness baseline — wired
//! through the `Audit` builder.
//!
//! Run with `cargo run --release --example adult_case_study`.

use differential_fairness::learn::pipeline::{run_feature_selection, ADULT_BASE_FEATURES};
use differential_fairness::prelude::*;

fn main() {
    // Generate the calibrated benchmark (drop the real `adult.data` /
    // `adult.test` into ./data to use the genuine UCI files instead).
    let dataset = match adult::loader::load_uci_dir(std::path::Path::new("data")).unwrap() {
        Some(d) => {
            println!("using real UCI Adult files from ./data");
            d
        }
        None => adult::synth::generate_default().unwrap(),
    }
    .with_protected()
    .unwrap();
    println!(
        "train: {} rows, test: {} rows",
        dataset.train.n_rows(),
        dataset.test.n_rows()
    );

    // --- Data audit (Table 2) -------------------------------------------
    let protected = ["race_m", "gender", "nationality"];
    let report = Audit::of_frame(&dataset.train, "income", &protected)
        .unwrap()
        .estimator(Empirical)
        .estimator(Smoothed { alpha: 1.0 })
        .subsets(SubsetPolicy::All)
        .baselines(Baselines::all().positive(">50K"))
        .run()
        .unwrap();
    println!("\n-- training-data audit (per subset of protected attributes) --");
    println!("{}", report.render_subset_table());
    println!(
        "regime: {:?}; the race x gender intersection is substantially less fair\n\
         than either attribute alone — the paper's core intersectional finding.",
        report.regime
    );

    // --- Classifier audit (Table 3) --------------------------------------
    let run = run_feature_selection(
        &dataset.train,
        &dataset.test,
        &ADULT_BASE_FEATURES,
        &[], // withhold all sensitive attributes (the paper's best row)
        "income",
        ">50K",
        &LogisticConfig::default(),
    )
    .unwrap();
    println!(
        "\n-- logistic regression without sensitive features --\n\
         test error: {:.2}%",
        run.error_rate * 100.0
    );

    // ε of the classifier's test predictions over the protected groups,
    // with the test data's own ε as the amplification reference.
    let data_report = Audit::of_frame(&dataset.test, "income", &protected)
        .unwrap()
        .estimator(Smoothed { alpha: 1.0 })
        .subsets(SubsetPolicy::None)
        .run()
        .unwrap();
    let data_eps = data_report.epsilon.epsilon;

    let mut test_with_preds = dataset.test.clone();
    let pred_labels: Vec<&str> = run
        .test_predictions
        .iter()
        .map(|&p| if p >= 0.5 { ">50K" } else { "<=50K" })
        .collect();
    test_with_preds
        .add_column(Column::categorical("prediction", &pred_labels))
        .unwrap();
    let classifier_report = Audit::of_frame(&test_with_preds, "prediction", &protected)
        .unwrap()
        .estimator(Smoothed { alpha: 1.0 })
        .subsets(SubsetPolicy::None)
        .reference_epsilon(data_eps)
        .run()
        .unwrap();
    let amp = classifier_report.amplification.unwrap();
    println!(
        "classifier eps = {:.3}, test-data eps = {:.3}, amplification = {:+.3}\n\
         (utility-disparity factor e^delta = {:.2}x)",
        classifier_report.epsilon.epsilon,
        data_eps,
        amp.delta(),
        amp.utility_disparity_factor()
    );

    // --- Subgroup-fairness baseline (Kearns et al.) -----------------------
    let violations = report.subgroups.as_ref().unwrap();
    println!("\n-- worst statistical-parity subgroups (Kearns-style audit) --");
    for v in violations.iter().take(5) {
        println!(
            "  {:<55} mass {:.3}  gap {:+.3}  weighted {:.4}",
            v.subgroup, v.mass, v.rate_gap, v.weighted
        );
    }
    println!(
        "\nboth lenses agree on where the inequity concentrates; DF additionally\n\
         certifies the privacy-style e^eps guarantee of Definition 3.1."
    );
}
