//! Fleet-wide fairness monitoring: per-replica monitors, one global ε.
//!
//! A serving fleet shards traffic across replicas, and each replica can
//! look fair on its own slice while the fleet as a whole drifts — the
//! streaming twin of fairness gerrymandering. This example runs a
//! 4-replica fleet where **only replica 3 degrades** (its planted ε
//! steps from 0.2 to 1.6 at t = 150 s) and shows the three fleet layers
//! working together:
//!
//! 1. **Concurrent sharded ingestion**: 4 producers feed 4 private
//!    monitors through `FleetIngest` — no shared lock on the hot path.
//! 2. **Merge-tree aggregation**: every 30 s tick, `snapshot_at` drains
//!    the shards, aligns their clocks, and folds their snapshots into
//!    the fleet-wide ε over the *union* of traffic.
//! 3. **Binary snapshot transport**: each fleet tick ships through the
//!    schema-interning codec — the schema rides once in a full frame,
//!    then every tick is a small delta frame (sizes printed vs JSON).
//!
//! Run with `cargo run --release --example fleet_aggregation`.

use differential_fairness::prelude::*;

fn main() {
    let change_at = 150.0;
    let mut rng = Pcg32::new(11);
    let replays = fleet_drift_streams(
        &mut rng,
        &[2, 2],
        0.4,
        FleetDriftPlan {
            replicas: 4,
            calm: &[DriftSegment::new(300.0, 0.2)],
            drifted: &[
                DriftSegment::new(change_at, 0.2),
                DriftSegment::new(150.0, 1.6),
            ],
            drift_replicas: &[3],
        },
        ArrivalProcess::Poisson { rate: 50.0 },
    )
    .unwrap();
    let total: usize = replays.iter().map(|r| r.frame.n_rows()).sum();
    println!(
        "4 replicas x 50 records/s for 300 s ({total} records); replica 3's \
         planted eps steps 0.2 -> 1.6 at t = {change_at} s"
    );

    let axes = vec![
        Axis::from_strs("outcome", &["y0", "y1"]).unwrap(),
        Axis::from_strs("attr0", &["v0", "v1"]).unwrap(),
        Axis::from_strs("attr1", &["v0", "v1"]).unwrap(),
    ];
    let fleet: FleetIngest<TimedChunk> = Audit::monitor("outcome", axes)
        .estimator(Smoothed { alpha: 1.0 })
        .window_seconds(60.0)
        .bucket_seconds(5.0)
        .fleet(4)
        .unwrap();

    // Pre-bucket each replica's stream; producers feed their own shard
    // concurrently, the aggregator ticks every 30 s of stream time.
    let feeds: Vec<Vec<TimedChunk>> = replays
        .iter()
        .map(|r| r.bucket_chunks(5.0).unwrap())
        .collect();
    let mut encoder = SnapshotEncoder::new();
    let mut decoder = SnapshotDecoder::new();
    println!(
        "{:>8}  {:>10}  {:>12}  {:>22}",
        "t (s)", "fleet eps", "window rows", "frame bytes (vs JSON)"
    );
    let mut cursors = vec![0usize; feeds.len()];
    for tick in 1..=10 {
        let until = tick as f64 * 30.0;
        // Each producer thread pushes its replica's buckets up to `until`.
        std::thread::scope(|scope| {
            for (shard, (feed, cursor)) in feeds.iter().zip(&mut cursors).enumerate() {
                let producer = fleet.producer(shard).unwrap();
                scope.spawn(move || {
                    while *cursor < feed.len() && feed[*cursor].timestamp < until {
                        let chunk = &feed[*cursor];
                        producer.send(chunk.clone(), chunk.timestamp).unwrap();
                        *cursor += 1;
                    }
                });
            }
        });
        // The aggregation tick: drain, clock-align, merge — then ship the
        // fleet snapshot through the binary codec (as a replica would).
        let snap = fleet.snapshot_at(until).unwrap();
        let frame = encoder.encode(&snap).unwrap();
        let json_bytes = serde_json::to_string(&snap).unwrap().len();
        assert_eq!(decoder.decode(&frame).unwrap(), snap);
        let kind = if tick == 1 { "full" } else { "delta" };
        println!(
            "{:>8.0}  {:>10.3}  {:>12}  {:>9} {:>5} ({:>5} B JSON, {:>4.1}x)",
            until,
            snap.epsilon.epsilon,
            snap.window_rows,
            format!("{} B", frame.len()),
            kind,
            json_bytes,
            json_bytes as f64 / frame.len() as f64,
        );
    }

    // The per-silo blind spot: audit each shard alone vs the fleet.
    let finals: Vec<MonitorSnapshot> = (0..4)
        .map(|shard| {
            let lone: FleetIngest<TimedChunk> = Audit::monitor(
                "outcome",
                vec![
                    Axis::from_strs("outcome", &["y0", "y1"]).unwrap(),
                    Axis::from_strs("attr0", &["v0", "v1"]).unwrap(),
                    Axis::from_strs("attr1", &["v0", "v1"]).unwrap(),
                ],
            )
            .estimator(Smoothed { alpha: 1.0 })
            .window_seconds(60.0)
            .bucket_seconds(5.0)
            .fleet(1)
            .unwrap();
            let producer = lone.producer(0).unwrap();
            for chunk in &feeds[shard] {
                producer.send(chunk.clone(), chunk.timestamp).unwrap();
            }
            lone.finish().unwrap()
        })
        .collect();
    println!("\nfinal 60 s window, per-silo vs fleet:");
    for (shard, snap) in finals.iter().enumerate() {
        println!(
            "  replica {shard}: eps = {:.3} over {} rows{}",
            snap.epsilon.epsilon,
            snap.window_rows,
            if shard == 3 {
                "  <- the drifting one"
            } else {
                ""
            }
        );
    }
    let est = Smoothed { alpha: 1.0 };
    let fleet_eps = merge_many(&finals, &est).unwrap();
    let drifting = &finals[3];
    println!(
        "  fleet     : eps = {:.3} over {} rows — the union-of-traffic \
         certificate (worst pair: {})",
        fleet_eps.epsilon.epsilon,
        fleet_eps.window_rows,
        fleet_eps
            .epsilon
            .witness
            .as_ref()
            .map(|w| format!("{} vs {}", w.group_hi, w.group_lo))
            .unwrap_or_default(),
    );
    assert!(fleet_eps.epsilon.epsilon < drifting.epsilon.epsilon);
    println!(
        "\nthe drifting replica's local eps ({:.3}) overstates the fleet-wide \
         harm ({:.3}) — and a calm replica's understates it: only the merged \
         union measures what the fleet actually serves",
        drifting.epsilon.epsilon, fleet_eps.epsilon.epsilon
    );

    let last = fleet.finish().unwrap();
    println!(
        "fleet ingested {} records across 4 shards; final fleet eps = {:.3}",
        last.records_seen, last.epsilon.epsilon
    );
}
