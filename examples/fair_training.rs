//! Training with differential fairness as a regularizer — the paper's
//! stated future-work direction, demonstrated on the synthetic Adult
//! benchmark: sweep the fairness penalty λ_f and trace the ε-vs-accuracy
//! trade-off curve.
//!
//! Run with `cargo run --release --example fair_training`.

use differential_fairness::core::report::{Align, TextTable};
use differential_fairness::data::adult::synth::{generate, SynthConfig};
use differential_fairness::data::encode::{binary_labels, FrameEncoder};
use differential_fairness::learn::pipeline::ADULT_BASE_FEATURES;
use differential_fairness::prelude::*;

fn main() {
    // A mid-sized benchmark keeps the sweep fast.
    let dataset = generate(&SynthConfig {
        seed: 41,
        n_train: 8_000,
        n_test: 4_000,
        ..SynthConfig::default()
    })
    .unwrap()
    .with_protected()
    .unwrap();

    let encoder = FrameEncoder::fit(&dataset.train, &ADULT_BASE_FEATURES).unwrap();
    let x_train = encoder.transform(&dataset.train).unwrap();
    let x_test = encoder.transform(&dataset.test).unwrap();
    let y_train = binary_labels(&dataset.train, "income", ">50K").unwrap();
    let y_test = binary_labels(&dataset.test, "income", ">50K").unwrap();

    // Protected intersections: gender x race (merged) on both splits.
    let protected = ["gender", "race_m"];
    let (train_groups, group_labels) = dataset.train.group_indices(&protected).unwrap();
    let (test_groups, _) = dataset.test.group_indices(&protected).unwrap();
    let n_groups = group_labels.len();

    println!(
        "fairness-regularized logistic regression over {} intersections of {:?}\n",
        n_groups, protected
    );

    let mut table = TextTable::new(&[
        "lambda_f",
        "test error %",
        "test eps (a=1)",
        "train soft-eps",
    ])
    .align(&[Align::Right, Align::Right, Align::Right, Align::Right]);

    for lambda in [0.0, 0.05, 0.2, 1.0, 5.0, 25.0] {
        let model = FairLogisticRegression::fit(
            &x_train,
            &y_train,
            &train_groups,
            n_groups,
            &FairLogisticConfig {
                fairness_weight: lambda,
                epsilon_target: 0.0,
                alpha: 1.0,
                l2: 1e-4,
                max_iter: 300,
            },
        )
        .unwrap();

        let preds = model.predict(&x_test).unwrap();
        let err =
            preds.iter().zip(&y_test).filter(|(p, y)| p != y).count() as f64 / y_test.len() as f64;

        // ε of the hard test predictions over the same intersections, via
        // the mechanism entry point of the audit builder.
        let mech = FnMechanism::new(vec!["pred<=50K".into(), "pred>50K".into()], |p: &f64| {
            usize::from(*p >= 0.5)
        });
        let eps = Audit::of_mechanism(
            &mech,
            group_labels.clone(),
            test_groups.iter().copied().zip(preds.iter().copied()),
        )
        .unwrap()
        .estimator(Smoothed { alpha: 1.0 })
        .run()
        .unwrap()
        .epsilon
        .epsilon;

        table.row(&[
            format!("{lambda}"),
            format!("{:.2}", err * 100.0),
            format!("{eps:.3}"),
            format!("{:.3}", model.train_soft_epsilon),
        ]);
    }
    println!("{}", table.render());
    println!(
        "the trade-off the paper anticipates: increasing lambda_f buys lower eps\n\
         at a (modest, then steep) accuracy cost. An analyst picks the operating\n\
         point; eps < 1 is the \"high fairness\" regime by the section 3.3 scale.\n\
         \n\
         caveat at extreme lambda_f: the model collapses toward the constant\n\
         classifier, and the *hard-threshold* test eps rebounds — with near-zero\n\
         predicted positives, the smoothed per-group rates reduce to the\n\
         1/(N_g + 2) floor, whose ratios reflect group sizes, not behaviour.\n\
         The train soft-eps column shows the regularizer itself stays effective."
    );
}
