//! Simpson's paradox under differential fairness (paper §5.1, Table 1).
//!
//! The admissions data reverses direction when aggregated: Gender A wins
//! within each race, Gender B wins overall. This example shows how DF
//! behaves sensibly at every aggregation level, and contrasts it with the
//! demographic-parity and disparate-impact baselines — all through one
//! `Audit` chain.
//!
//! Run with `cargo run --release --example simpsons_paradox`.

use differential_fairness::data::kidney;
use differential_fairness::prelude::*;

fn main() {
    let counts = JointCounts::from_table(kidney::admissions_counts(), "outcome").unwrap();

    // Per-intersection admission rates.
    let go = counts.group_outcomes(0.0).unwrap();
    println!("admission rates per intersection:");
    for (g, label) in go.group_labels().iter().enumerate() {
        println!("  {label}: {:.3}", go.prob(g, 0));
    }

    // The reversal, narrated from the marginals.
    let by_gender = counts
        .marginal_to(&["gender"])
        .unwrap()
        .group_outcomes(0.0)
        .unwrap();
    println!("\noverall admission rates:");
    for (g, label) in by_gender.group_labels().iter().enumerate() {
        println!("  {label}: {:.3}", by_gender.prob(g, 0));
    }
    println!(
        "\nSimpson's reversal: A wins within each race, B wins overall — the\n\
         direction of \"discrimination\" depends on measurement granularity."
    );

    // DF at every granularity, plus baselines, in one audit.
    let report = Audit::of(&counts)
        .estimator(Empirical)
        .subsets(SubsetPolicy::All)
        .baselines(Baselines::all().with_subgroups(false).positive("admit"))
        .run()
        .unwrap();
    let edf = report.estimator("eps-EDF").unwrap();
    println!("\ndifferential fairness at each granularity:");
    for s in &edf.subsets {
        println!(
            "  A = {:<14}  eps = {:.4}",
            s.attributes.join(" x "),
            s.result.epsilon
        );
    }
    let full = report.epsilon.epsilon;
    println!(
        "\nTheorem 3.1: marginals are guaranteed <= 2 eps = {:.3}; measured\n\
         marginals ({:.3}, {:.3}) comply even under the reversal.",
        2.0 * full,
        edf.get(&["gender"]).unwrap().result.epsilon,
        edf.get(&["race"]).unwrap().result.epsilon,
    );
    assert_eq!(report.bound_violations, Some(vec![]));

    // Baselines on the intersectional table, for contrast.
    let dp = report.demographic_parity.unwrap();
    let di = report.disparate_impact.unwrap();
    println!(
        "\nbaselines on the full intersection: demographic-parity distance = {dp:.3},\n\
         disparate-impact ratio = {di:.3} (80% rule {}).",
        if di >= 0.8 { "passes" } else { "fails" }
    );
    println!(
        "note how the TV distance ({dp:.3}) understates the decline-side disparity\n\
         that drives eps = {full:.3}: ratios of small probabilities are exactly what\n\
         the DF criterion is built to catch."
    );
}
