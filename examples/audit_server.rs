//! The ε-DF audit service end to end: start a `df-server` over the
//! Adult-census schema, stream the synthetic benchmark into it over
//! HTTP, then query the audit in all four response formats — the same
//! intersectional Table 2 numbers as `adult_case_study`, served from a
//! long-lived counts store instead of recomputed from raw data.
//!
//! Run with `cargo run --release --example audit_server`.

use differential_fairness::prelude::*;

/// The label rows of the selected columns, in row order.
fn label_rows(frame: &DataFrame, columns: &[&str]) -> Vec<Vec<String>> {
    let cols: Vec<(&[u32], &[String])> = columns
        .iter()
        .map(|name| frame.column(name).unwrap().as_categorical().unwrap())
        .collect();
    (0..frame.n_rows())
        .map(|row| {
            cols.iter()
                .map(|(codes, labels)| labels[codes[row] as usize].clone())
                .collect()
        })
        .collect()
}

fn json_chunk(rows: &[Vec<String>], at: f64) -> Vec<u8> {
    let rows = rows
        .iter()
        .map(|r| {
            format!(
                "[{}]",
                r.iter()
                    .map(|l| format!("\"{l}\""))
                    .collect::<Vec<_>>()
                    .join(",")
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    format!("{{\"rows\": [{rows}], \"at\": {at}}}").into_bytes()
}

fn main() {
    // The §6 workload: the calibrated synthetic Adult benchmark with the
    // paper's binarized protected attributes attached.
    let dataset = adult::synth::generate_default()
        .unwrap()
        .with_protected()
        .unwrap();
    let columns = ["income", "race_m", "gender", "nationality"];
    let axes: Vec<Axis> = columns
        .iter()
        .map(|name| {
            let (_, labels) = dataset
                .train
                .column(name)
                .unwrap()
                .as_categorical()
                .unwrap();
            Axis::new(*name, labels.to_vec()).unwrap()
        })
        .collect();

    // A server whose catalog is the Adult schema. The wide window keeps
    // the whole replay in scope; real deployments size it to their SLO.
    let server = Server::builder("income", axes)
        .window_seconds(1e6)
        .bucket_seconds(60.0)
        .shards(4)
        .workers(4)
        .bind("127.0.0.1:0")
        .unwrap();
    println!("audit server listening on http://{}", server.local_addr());

    let mut client = Http1Client::connect(server.local_addr()).unwrap();
    let schema = client.get("/v1/schema").unwrap();
    println!("\n-- GET /v1/schema --\n{}", schema.text());

    // Stream the training split in over HTTP, 1024 rows per POST.
    let rows = label_rows(&dataset.train, &columns);
    let mut accepted = 0usize;
    for (i, chunk) in rows.chunks(1024).enumerate() {
        let resp = client
            .request(
                "POST",
                "/v1/ingest/records",
                &[("Content-Type", "application/json")],
                &json_chunk(chunk, 1000.0 + i as f64),
            )
            .unwrap();
        assert_eq!(resp.status, 200, "{}", resp.text());
        accepted += chunk.len();
    }
    println!("\ningested {accepted} records over HTTP");

    // One counts store, four wire formats for the same audit.
    let query = "/v1/audit?estimator=empirical&estimator=smoothed&subsets=all&positive=>50K";
    for format in ["json", "csv", "markdown", "text"] {
        let resp = client.get(&format!("{query}&format={format}")).unwrap();
        assert_eq!(resp.status, 200, "{}", resp.text());
        let text = resp.text();
        let preview: String = text.chars().take(400).collect();
        println!(
            "\n-- GET /v1/audit … format={format} ({} bytes) --\n{preview}{}",
            text.len(),
            if text.len() > 400 { "…" } else { "" }
        );
    }

    // Slice the lattice server-side: race × gender only, the paper's
    // headline intersection.
    let slice = client
        .get("/v1/audit?attrs=race_m,gender&format=text")
        .unwrap();
    println!(
        "\n-- GET /v1/audit?attrs=race_m,gender --\n{}",
        slice.text()
    );

    // The live monitor view of the same window.
    let monitor = client.get("/v1/monitor?format=text").unwrap();
    let text = monitor.text();
    let summary: String = text.lines().take(12).collect::<Vec<_>>().join("\n");
    println!("\n-- GET /v1/monitor --\n{summary}\n…");

    // One counts store, every fairness definition: `?metric=` re-derives
    // the audit under any registry metric without re-ingesting a row.
    println!("\n-- GET /v1/audit?metric=… — the same window under every definition --");
    for tag in [
        "eps-df",
        "wc-ratio",
        "wc-diff",
        "alpha-if(alpha=0.5)",
        "deo(label=gender)",
    ] {
        let resp = client
            .get(&format!("/v1/audit?metric={tag}&format=json"))
            .unwrap();
        assert_eq!(resp.status, 200, "{}", resp.text());
        let body = resp.text();
        let headline = body
            .split("\"epsilon\":")
            .nth(1)
            .and_then(|rest| rest.split(',').next())
            .unwrap_or("?")
            .trim()
            .to_string();
        println!("  {tag:<22} statistic = {headline}");
    }

    // The telemetry the ops side scrapes: every request above is already
    // in the per-endpoint histograms, the shards report ingest volume
    // and staleness, and the health check carries queue depths + uptime.
    let metrics = client.get("/v1/metrics").unwrap();
    assert_eq!(metrics.status, 200);
    let text = metrics.text();
    let interesting: Vec<&str> = text
        .lines()
        .filter(|l| {
            l.starts_with("df_requests_total")
                || l.starts_with("df_ingest_rows_total")
                || l.starts_with("df_fleet_max_lag_seconds")
                || l.starts_with("df_monitor_push_seconds_count")
                || l.starts_with("df_cache_requests_total")
        })
        .collect();
    println!(
        "\n-- GET /v1/metrics ({} series total) --\n{}",
        text.lines().filter(|l| !l.starts_with('#')).count(),
        interesting.join("\n")
    );

    let health = client.get("/v1/healthz").unwrap();
    assert_eq!(health.status, 200);
    println!("\n-- GET /v1/healthz --\n{}", health.text());

    server.shutdown();
    println!("\nserver shut down cleanly");
}
