//! # differential-fairness
//!
//! A production-quality Rust implementation of
//! *An Intersectional Definition of Fairness* (Foulds & Pan, ICDE 2020):
//! measurement and auditing of **differential fairness (DF)** — an
//! intersectional fairness criterion with differential-privacy-style
//! guarantees — plus the substrates needed to reproduce the paper end to
//! end (probability kernels, a columnar data layer, from-scratch learners,
//! and a calibrated synthetic Adult-census benchmark).
//!
//! ## The criterion in one paragraph
//!
//! A mechanism `M(x)` is **ε-differentially fair** for protected attributes
//! `A = S₁ × … × S_p` when, for every outcome `y` and every pair of
//! intersectional groups `sᵢ, sⱼ` with positive probability,
//! `e^-ε ≤ P(M(x)=y | sᵢ) / P(M(x)=y | sⱼ) ≤ e^ε` under every plausible
//! data distribution. Small ε means every intersection — *black women*, not
//! just *women* and *black people* separately — receives every outcome at
//! comparable rates; Theorem 3.1 of the paper guarantees that ε-DF on the
//! full intersection implies 2ε-DF on every subset of the attributes.
//!
//! ## Quick start
//!
//! ```
//! use differential_fairness::prelude::*;
//!
//! // Joint counts of (outcome, gender, race) — e.g. tallied from a dataset.
//! let counts = JointCounts::from_records(
//!     Axis::from_strs("outcome", &["deny", "approve"]).unwrap(),
//!     vec![
//!         Axis::from_strs("gender", &["F", "M"]).unwrap(),
//!         Axis::from_strs("race", &["black", "white"]).unwrap(),
//!     ],
//!     vec![
//!         ("approve", vec!["F", "black"]),
//!         ("deny", vec!["F", "black"]),
//!         ("approve", vec!["M", "white"]),
//!         ("approve", vec!["M", "white"]),
//!         ("deny", vec!["F", "white"]),
//!         ("approve", vec!["F", "white"]),
//!         ("approve", vec!["M", "black"]),
//!         ("deny", vec!["M", "black"]),
//!     ],
//! )
//! .unwrap();
//!
//! // ε with Eq. 7 smoothing (α = 1), plus every subset of the attributes.
//! let audit = subset_audit(&counts, 1.0).unwrap();
//! let full = &audit.full_intersection().result;
//! assert!(full.epsilon.is_finite());
//! // Theorem 3.1: every marginal is within 2ε of the intersection.
//! assert!(audit.verify_bound(1e-9).is_empty());
//! ```
//!
//! ## Crate map
//!
//! | Crate | Contents |
//! |---|---|
//! | `core` (df_core) | the DF criterion: ε kernels, EDF (Eq. 6), smoothing (Eq. 7), subset guarantees, privacy interpretation, bias amplification, baselines, audits |
//! | `prob` (df_prob) | distributions, special functions, RNGs, contingency tables, IPF, posterior samplers |
//! | `data` (df_data) | data frames, CSV, encoders, the calibrated synthetic Adult benchmark, Table 1 data |
//! | `learn` (df_learn) | logistic regression (plain and DF-regularized), naive Bayes, trees, metrics, threshold mechanisms |
//!
//! The `df-bench` crate (not re-exported) regenerates every table and
//! figure of the paper; see `EXPERIMENTS.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use df_core as core;
pub use df_data as data;
pub use df_learn as learn;
pub use df_prob as prob;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use df_core::amplification::BiasAmplification;
    pub use df_core::audit::{AuditConfig, FairnessAudit};
    pub use df_core::baselines::{
        demographic_parity_distance, disparate_impact_ratio, equalized_odds_gap,
    };
    pub use df_core::bootstrap::{bootstrap_epsilon, BootstrapEpsilon};
    pub use df_core::data_fairness::{dataset_epsilon, DataModel};
    pub use df_core::equalized::{opportunity_epsilon, EqualizedOddsCounts};
    pub use df_core::mechanism::{estimate_group_outcomes, FnMechanism, Mechanism};
    pub use df_core::privacy::{PrivacyRegime, RANDOMIZED_RESPONSE_EPSILON};
    pub use df_core::subsets::{subset_audit, SubsetAudit};
    pub use df_core::theta::{posterior_theta, ThetaClass};
    pub use df_core::{
        DfError, EpsilonResult, EpsilonWitness, GroupOutcomes, JointCounts, ProtectedAttribute,
        ProtectedSpace,
    };
    pub use df_data::adult;
    pub use df_data::frame::{Column, DataFrame};
    pub use df_data::workloads::GaussianScoreGroups;
    pub use df_learn::fair::{FairLogisticConfig, FairLogisticRegression};
    pub use df_learn::logistic::{LogisticConfig, LogisticRegression};
    pub use df_learn::threshold::ThresholdMechanism;
    pub use df_prob::contingency::{Axis, ContingencyTable};
    pub use df_prob::rng::{DfRng, Pcg32};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_types_are_usable() {
        let rr = df_core::privacy::randomized_response_table();
        assert!((rr.epsilon().epsilon - RANDOMIZED_RESPONSE_EPSILON).abs() < 1e-12);
        let _rng = Pcg32::new(1);
        let _mech = ThresholdMechanism::new(0.5);
    }
}
