//! # differential-fairness
//!
//! A production-quality Rust implementation of
//! *An Intersectional Definition of Fairness* (Foulds & Pan, ICDE 2020):
//! measurement and auditing of **differential fairness (DF)** — an
//! intersectional fairness criterion with differential-privacy-style
//! guarantees — plus the substrates needed to reproduce the paper end to
//! end (probability kernels, a columnar data layer, from-scratch learners,
//! and a calibrated synthetic Adult-census benchmark).
//!
//! ## The criterion in one paragraph
//!
//! A mechanism `M(x)` is **ε-differentially fair** for protected attributes
//! `A = S₁ × … × S_p` when, for every outcome `y` and every pair of
//! intersectional groups `sᵢ, sⱼ` with positive probability,
//! `e^-ε ≤ P(M(x)=y | sᵢ) / P(M(x)=y | sⱼ) ≤ e^ε` under every plausible
//! data distribution. Small ε means every intersection — *black women*, not
//! just *women* and *black people* separately — receives every outcome at
//! comparable rates; Theorem 3.1 of the paper guarantees that ε-DF on the
//! full intersection implies 2ε-DF on every subset of the attributes.
//!
//! ## Quick start
//!
//! One fluent entry point — [`prelude::Audit`] — composes everything: pick
//! ε-estimation strategies (Eq. 6 empirical, Eq. 7 smoothed, posterior
//! supremum over Θ), a subset policy, bootstrap uncertainty, and the §7
//! comparison baselines, then `run()` for a unified serializable report.
//!
//! ```
//! use differential_fairness::prelude::*;
//!
//! // Joint counts of (outcome, gender, race) — e.g. tallied from a dataset.
//! let counts = JointCounts::from_records(
//!     Axis::from_strs("outcome", &["deny", "approve"]).unwrap(),
//!     vec![
//!         Axis::from_strs("gender", &["F", "M"]).unwrap(),
//!         Axis::from_strs("race", &["black", "white"]).unwrap(),
//!     ],
//!     vec![
//!         ("approve", vec!["F", "black"]),
//!         ("deny", vec!["F", "black"]),
//!         ("approve", vec!["M", "white"]),
//!         ("approve", vec!["M", "white"]),
//!         ("deny", vec!["F", "white"]),
//!         ("approve", vec!["F", "white"]),
//!         ("approve", vec!["M", "black"]),
//!         ("deny", vec!["M", "black"]),
//!     ],
//! )
//! .unwrap();
//!
//! let report = Audit::of(&counts)
//!     .estimator(Empirical)
//!     .estimator(Smoothed { alpha: 1.0 })
//!     .baselines(Baselines::all().positive("approve"))
//!     .run()
//!     .unwrap();
//!
//! assert_eq!(report.n_records, Some(8));
//! // Eq. 7 keeps ε finite even with sparse intersections…
//! assert!(report.epsilon.is_finite());
//! // …and Theorem 3.1 holds: no subset violates the 2ε bound.
//! assert_eq!(report.bound_violations, Some(vec![]));
//! println!("{}", report.render_subset_table());
//! ```
//!
//! Auditing a data frame is one call via [`FrameAudits`]:
//!
//! ```
//! use differential_fairness::prelude::*;
//!
//! let frame = DataFrame::new(vec![
//!     Column::categorical("outcome", &["hire", "reject", "hire", "hire"]),
//!     Column::categorical("gender", &["F", "F", "M", "M"]),
//! ])
//! .unwrap();
//! let report = Audit::of_frame(&frame, "outcome", &["gender"])
//!     .unwrap()
//!     .estimator(Smoothed { alpha: 1.0 })
//!     .run()
//!     .unwrap();
//! assert_eq!(report.n_records, Some(4));
//! ```
//!
//! ## Crate map
//!
//! | Crate | Contents |
//! |---|---|
//! | `core` (df_core) | the DF criterion: ε kernels, EDF (Eq. 6), smoothing (Eq. 7), subset guarantees, privacy interpretation, bias amplification, baselines, the `Audit` builder |
//! | `prob` (df_prob) | distributions, special functions, RNGs, contingency tables, IPF, posterior samplers |
//! | `data` (df_data) | data frames, CSV, encoders, the calibrated synthetic Adult benchmark, Table 1 data |
//! | `learn` (df_learn) | logistic regression (plain and DF-regularized), naive Bayes, trees, metrics, threshold mechanisms |
//! | `server` (df_server) | the ε-DF audit query service: HTTP/1.1 ingest + audit/monitor endpoints over a long-lived fleet, with content negotiation |
//! | `obs` (df_obs) | dependency-free telemetry: lock-free counters/gauges, mergeable log-scale histograms, a labeled registry with Prometheus/JSON exposition, and request spans — scraped live at `/v1/metrics` |
//!
//! The `df-bench` crate (not re-exported) regenerates every table and
//! figure of the paper; see `EXPERIMENTS.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use df_core as core;
pub use df_data as data;
pub use df_learn as learn;
pub use df_obs as obs;
pub use df_prob as prob;
pub use df_server as server;

use df_core::builder::Audit;
use df_core::JointCounts;
use df_data::chunks::FrameChunks;
use df_data::frame::DataFrame;
use df_data::replay::ReplayChunks;
use std::io::BufRead;

/// Frame-level entry points for the [`Audit`] builder, where the data layer
/// and the criterion meet (df-core itself does not depend on df-data).
pub trait FrameAudits {
    /// Tallies `(outcome, attrs…)` joint counts from a data frame and
    /// starts an audit over them.
    fn of_frame(
        frame: &DataFrame,
        outcome: &str,
        attrs: &[&str],
    ) -> df_core::Result<Audit<'static>>;

    /// Streaming twin of [`FrameAudits::of_frame`]: tallies the frame in
    /// `chunk_rows`-sized batches across `threads` parallel shards via
    /// `Audit::of_stream`. Produces a byte-identical report to the batch
    /// path for every chunk size and thread count (counts merge as a
    /// commutative monoid).
    fn of_frame_streaming(
        frame: &DataFrame,
        outcome: &str,
        attrs: &[&str],
        chunk_rows: usize,
        threads: usize,
    ) -> df_core::Result<Audit<'static>>;
}

/// Replay-log entry points for the [`Audit`] builder: audit straight from
/// DFRL bytes, decoding interned codes into the streaming tally without
/// ever materializing a frame or touching a string past the header.
pub trait ReplayAudits {
    /// Streams a DFRL replay log's `(outcome, attrs…)` columns through
    /// `Audit::of_stream` across `threads` parallel shards. Produces a
    /// byte-identical report to the CSV/frame paths on equivalent data.
    fn of_replay_log<R: BufRead + Send>(
        reader: R,
        outcome: &str,
        attrs: &[&str],
        threads: usize,
    ) -> df_core::Result<Audit<'static>>;
}

impl ReplayAudits for Audit<'static> {
    fn of_replay_log<R: BufRead + Send>(
        reader: R,
        outcome: &str,
        attrs: &[&str],
        threads: usize,
    ) -> df_core::Result<Audit<'static>> {
        let mut columns = Vec::with_capacity(attrs.len() + 1);
        columns.push(outcome);
        columns.extend_from_slice(attrs);
        let into_core = |e: df_data::DataError| df_core::DfError::Invalid(e.to_string());
        let chunks = ReplayChunks::new(reader)
            .and_then(|c| c.with_columns(&columns))
            .map_err(into_core)?;
        let axes = chunks.axes().map_err(into_core)?;
        Audit::of_stream(outcome, axes, chunks.map(|r| r.map_err(into_core)), threads)
    }
}

impl FrameAudits for Audit<'static> {
    fn of_frame(
        frame: &DataFrame,
        outcome: &str,
        attrs: &[&str],
    ) -> df_core::Result<Audit<'static>> {
        let mut columns = Vec::with_capacity(attrs.len() + 1);
        columns.push(outcome);
        columns.extend_from_slice(attrs);
        let table = frame
            .contingency(&columns)
            .map_err(|e| df_core::DfError::Invalid(e.to_string()))?;
        Audit::of_counts(JointCounts::from_table(table, outcome)?)
    }

    fn of_frame_streaming(
        frame: &DataFrame,
        outcome: &str,
        attrs: &[&str],
        chunk_rows: usize,
        threads: usize,
    ) -> df_core::Result<Audit<'static>> {
        let mut columns = Vec::with_capacity(attrs.len() + 1);
        columns.push(outcome);
        columns.extend_from_slice(attrs);
        let into_core = |e: df_data::DataError| df_core::DfError::Invalid(e.to_string());
        let chunks = FrameChunks::new(frame, &columns, chunk_rows).map_err(into_core)?;
        let axes = chunks.axes().map_err(into_core)?;
        Audit::of_stream(
            outcome,
            axes,
            chunks.map(Ok::<_, df_core::DfError>),
            threads,
        )
    }
}

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use crate::{FrameAudits, ReplayAudits};
    pub use df_core::amplification::BiasAmplification;
    #[allow(deprecated)]
    pub use df_core::audit::{AuditConfig, FairnessAudit};
    pub use df_core::baselines::{
        demographic_parity_distance, disparate_impact_ratio, equalized_odds_gap,
    };
    pub use df_core::bootstrap::{bootstrap_epsilon, BootstrapEpsilon};
    pub use df_core::builder::{
        Audit, AuditReport, Baselines, Empirical, EpsilonEstimator, EstimatorReport, PosteriorSup,
        Smoothed, SubsetPolicy,
    };
    pub use df_core::data_fairness::{dataset_epsilon, DataModel};
    pub use df_core::equalized::{opportunity_epsilon, EqualizedOddsCounts};
    pub use df_core::fleet::{
        decode_snapshot, encode_snapshot, merge_many, merge_tree, FleetIngest, FleetProducer,
        FleetTelemetry, ShardTelemetry, SnapshotDecoder, SnapshotEncoder,
    };
    pub use df_core::mechanism::{estimate_group_outcomes, FnMechanism, Mechanism};
    pub use df_core::metric::{
        metric_from_tag, AlphaIntersectional, DifferentialEqualizedOdds, EpsilonDf, LevelingDown,
        Metric, WorstCaseDiff, WorstCaseRatio,
    };
    pub use df_core::monitor::{
        Alert, AlertRule, ChangeSignal, ChangepointAlarm, ChangepointSpec, ChangepointStatus,
        CountsSnapshot, Cusum, FairnessMonitor, MonitorBuilder, MonitorSnapshot, MonitorStep,
        MonitorTelemetry, PageHinkley,
    };
    pub use df_core::privacy::{PrivacyRegime, RANDOMIZED_RESPONSE_EPSILON};
    pub use df_core::report::ResponseFormat;
    pub use df_core::subsets::{subset_audit, SubsetAudit};
    pub use df_core::theta::{posterior_theta, ThetaClass};
    pub use df_core::{
        DfError, EpsilonResult, EpsilonWitness, GroupOutcomes, JointCounts, ProtectedAttribute,
        ProtectedSpace,
    };
    pub use df_data::adult;
    pub use df_data::chunks::{CsvChunks, FrameChunks, LabelChunk};
    pub use df_data::frame::{Column, DataFrame, Interner};
    pub use df_data::replay::{
        csv_to_log, read_frame_log, tally_from_log, write_frame_log, ChunkColumn, CodeChunk,
        CodeSchema, LogColumn, LogSchema, LogStats, ReplayChunks, ReplayWriter,
    };
    pub use df_data::view::FrameView;
    pub use df_data::workloads::{
        drift_replay_frame, fleet_drift_streams, interleave_replays, timestamped_drift_stream,
        ArrivalProcess, DriftSegment, FleetDriftPlan, GaussianScoreGroups, TimedChunk,
        TimestampedReplay,
    };
    pub use df_learn::fair::{FairLogisticConfig, FairLogisticRegression};
    pub use df_learn::logistic::{LogisticConfig, LogisticRegression};
    pub use df_learn::threshold::ThresholdMechanism;
    pub use df_obs::{
        Clock, Counter, Gauge, Histogram, HistogramSnapshot, ManualClock, RealClock, Registry,
        Span, SpanRecord, TraceRing, Tracer,
    };
    pub use df_prob::contingency::{Axis, ContingencyTable};
    pub use df_prob::partial::{PartialCounts, Tally};
    pub use df_prob::rng::{DfRng, Pcg32};
    pub use df_server::client::{ClientResponse, Http1Client};
    pub use df_server::{AccessRecord, Server, ServerBuilder};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_types_are_usable() {
        let rr = df_core::privacy::randomized_response_table();
        assert!((rr.epsilon().epsilon - RANDOMIZED_RESPONSE_EPSILON).abs() < 1e-12);
        let _rng = Pcg32::new(1);
        let _mech = ThresholdMechanism::new(0.5);
    }

    #[test]
    fn frame_audit_matches_direct_counts() {
        let frame = DataFrame::new(vec![
            Column::categorical("y", &["a", "b", "a", "b", "a", "a"]),
            Column::categorical("g", &["x", "x", "x", "y", "y", "y"]),
        ])
        .unwrap();
        let via_frame = Audit::of_frame(&frame, "y", &["g"])
            .unwrap()
            .estimator(Smoothed { alpha: 1.0 })
            .run()
            .unwrap();
        let counts = JointCounts::from_table(frame.contingency(&["y", "g"]).unwrap(), "y").unwrap();
        let direct = Audit::of(&counts)
            .estimator(Smoothed { alpha: 1.0 })
            .run()
            .unwrap();
        assert_eq!(via_frame, direct);
    }
}
