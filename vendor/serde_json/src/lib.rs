//! Offline stand-in for `serde_json`: renders and parses the vendored
//! [`serde::Value`] model as JSON text.
//!
//! Divergence from the real crate (documented in the `serde` stub too):
//! non-finite floats render as the strings `"inf"` / `"-inf"` / `"nan"` so
//! that ε = ∞ survives a round-trip.

#![forbid(unsafe_code)]

use std::fmt;

pub use serde::Value;
use serde::{DeError, Deserialize, Serialize};

/// Error produced by this stub (parsing or deserialization).
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json: {}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.serialize(), &mut out, None, 0);
    Ok(out)
}

/// Serializes a value to 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.serialize(), &mut out, Some(2), 0);
    Ok(out)
}

/// Converts a value into the [`Value`] model without rendering text.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.serialize())
}

/// Parses JSON text and deserializes into `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    T::deserialize(&value).map_err(Error::from)
}

/// Deserializes a [`Value`] into `T`.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    T::deserialize(value).map_err(Error::from)
}

// ---------------------------------------------------------------------------
// Writer.
// ---------------------------------------------------------------------------

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => write_float(*f, out),
        Value::Str(s) => write_string(s, out),
        Value::Arr(items) => write_seq(items.iter(), out, indent, depth, ('[', ']'), |x, o, d| {
            write_value(x, o, indent, d)
        }),
        Value::Obj(pairs) => write_seq(
            pairs.iter(),
            out,
            indent,
            depth,
            ('{', '}'),
            |(k, x), o, d| {
                write_string(k, o);
                o.push(':');
                if indent.is_some() {
                    o.push(' ');
                }
                write_value(x, o, indent, d);
            },
        ),
    }
}

fn write_seq<I, F>(
    items: I,
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    brackets: (char, char),
    mut write_item: F,
) where
    I: ExactSizeIterator,
    F: FnMut(I::Item, &mut String, usize),
{
    out.push(brackets.0);
    let n = items.len();
    for (i, item) in items.enumerate() {
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        write_item(item, out, depth + 1);
        if i + 1 < n {
            out.push(',');
        }
    }
    if n > 0 {
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * depth));
        }
    }
    out.push(brackets.1);
}

fn write_float(f: f64, out: &mut String) {
    if f.is_finite() {
        if f == f.trunc() && f.abs() < 1e15 {
            // Keep a fractional marker so floats stay floats on re-parse.
            out.push_str(&format!("{f:.1}"));
        } else {
            out.push_str(&format!("{f}"));
        }
    } else if f.is_nan() {
        out.push_str("\"nan\"");
    } else if f > 0.0 {
        out.push_str("\"inf\"");
    } else {
        out.push_str("\"-inf\"");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser.
// ---------------------------------------------------------------------------

/// Parses JSON text into a [`Value`].
pub fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing input at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_word(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_word("null") => Ok(Value::Null),
            Some(b't') if self.eat_word("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_word("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at {}", self.pos))),
            }
        }
    }

    /// Reads the 4 hex digits of a `\u` escape; expects `pos` at the `u`,
    /// leaves it on the last digit (the caller's `+= 1` moves past it).
    fn u_escape_digits(&mut self) -> Result<u32, Error> {
        let hex = self
            .bytes
            .get(self.pos + 1..self.pos + 5)
            .ok_or_else(|| Error::new("truncated \\u escape"))?;
        let code = u32::from_str_radix(
            std::str::from_utf8(hex).map_err(|_| Error::new("bad \\u escape"))?,
            16,
        )
        .map_err(|_| Error::new("bad \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hi = self.u_escape_digits()?;
                            let code = if (0xD800..=0xDBFF).contains(&hi) {
                                // High surrogate: a low surrogate escape must
                                // follow; combine into one code point.
                                if self.bytes.get(self.pos + 1) != Some(&b'\\')
                                    || self.bytes.get(self.pos + 2) != Some(&b'u')
                                {
                                    return Err(Error::new("unpaired high surrogate"));
                                }
                                self.pos += 2;
                                let lo = self.u_escape_digits()?;
                                if !(0xDC00..=0xDFFF).contains(&lo) {
                                    return Err(Error::new("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("nonempty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("bad float `{text}`")))
        } else {
            text.parse::<i64>()
                .map(Value::Int)
                .or_else(|_| text.parse::<f64>().map(Value::Float))
                .map_err(|_| Error::new(format!("bad number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let v = Value::Obj(vec![
            (
                "a".into(),
                Value::Arr(vec![Value::Int(1), Value::Float(2.5)]),
            ),
            ("b".into(), Value::Str("x \"y\" \n".into())),
            ("c".into(), Value::Null),
            ("d".into(), Value::Bool(true)),
        ]);
        let text = to_string(&v).unwrap();
        assert_eq!(parse(&text).unwrap(), v);
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(parse(&pretty).unwrap(), v);
    }

    #[test]
    fn non_finite_floats_survive() {
        let v = Value::Arr(vec![Value::Float(f64::INFINITY), Value::Float(1.0)]);
        let text = to_string(&v).unwrap();
        assert!(text.contains("\"inf\""));
        let back: Vec<f64> = from_str(&text).unwrap();
        assert!(back[0].is_infinite());
        assert_eq!(back[1], 1.0);
    }

    #[test]
    fn surrogate_pair_escapes_decode() {
        // Python json.dumps("😀") emits "\ud83d\ude00".
        let v = parse("\"\\ud83d\\ude00 ok\"").unwrap();
        assert_eq!(v, Value::Str("\u{1F600} ok".to_string()));
        // Unpaired or malformed surrogates are rejected, not mangled.
        assert!(parse("\"\\ud83d\"").is_err());
        assert!(parse("\"\\ud83d\\u0041\"").is_err());
    }

    #[test]
    fn integral_floats_keep_a_decimal_marker() {
        let text = to_string(&3.0f64).unwrap();
        assert_eq!(text, "3.0");
        let back: f64 = from_str(&text).unwrap();
        assert_eq!(back, 3.0);
    }
}
