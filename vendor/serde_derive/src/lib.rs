//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! vendored serde stub (no `syn`/`quote` available offline).
//!
//! Supported shapes — exactly what this workspace uses:
//! - structs with named fields → JSON objects keyed by field name;
//! - enums with unit variants → JSON strings of the variant name;
//! - enums with struct variants → externally tagged objects
//!   `{"Variant": {..fields..}}` (serde's default representation).
//!
//! Tuple structs, tuple variants, and generic types are rejected with a
//! compile error rather than silently mis-serialized.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (conversion into `serde::Value`).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

/// Derives `serde::Deserialize` (conversion out of `serde::Value`).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

enum Shape {
    Struct(Vec<String>),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    /// `None` for unit variants, field names for struct variants.
    fields: Option<Vec<String>>,
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    match parse(input) {
        Ok((name, shape)) => {
            let code = match (&shape, mode) {
                (Shape::Struct(fields), Mode::Serialize) => struct_serialize(&name, fields),
                (Shape::Struct(fields), Mode::Deserialize) => struct_deserialize(&name, fields),
                (Shape::Enum(variants), Mode::Serialize) => enum_serialize(&name, variants),
                (Shape::Enum(variants), Mode::Deserialize) => enum_deserialize(&name, variants),
            };
            code.parse().expect("generated impl parses")
        }
        Err(msg) => format!("compile_error!({msg:?});")
            .parse()
            .expect("error parses"),
    }
}

// ---------------------------------------------------------------------------
// Parsing.
// ---------------------------------------------------------------------------

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Self {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    /// Skips any number of `#[...]` attributes (doc comments included).
    fn skip_attrs(&mut self) {
        while let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() != '#' {
                break;
            }
            self.next();
            // The bracketed attribute body.
            self.next();
        }
    }

    /// Skips `pub` / `pub(crate)` / `pub(in ...)`.
    fn skip_visibility(&mut self) {
        if let Some(TokenTree::Ident(id)) = self.peek() {
            if id.to_string() == "pub" {
                self.next();
                if let Some(TokenTree::Group(g)) = self.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        self.next();
                    }
                }
            }
        }
    }

    fn expect_ident(&mut self) -> Result<String, String> {
        match self.next() {
            Some(TokenTree::Ident(id)) => Ok(id.to_string()),
            other => Err(format!("expected identifier, found {other:?}")),
        }
    }

    /// Skips a type up to (but not past) a top-level `,`, tracking `<...>`
    /// nesting so commas inside generic arguments don't terminate early.
    fn skip_type(&mut self) {
        let mut angle_depth = 0i32;
        while let Some(t) = self.peek() {
            match t {
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                TokenTree::Punct(p) if p.as_char() == '<' => {
                    angle_depth += 1;
                    self.next();
                }
                TokenTree::Punct(p) if p.as_char() == '>' => {
                    angle_depth -= 1;
                    self.next();
                }
                _ => {
                    self.next();
                }
            }
        }
    }
}

fn parse(input: TokenStream) -> Result<(String, Shape), String> {
    let mut c = Cursor::new(input);
    c.skip_attrs();
    c.skip_visibility();
    let kind = c.expect_ident()?;
    if kind != "struct" && kind != "enum" {
        return Err(format!("derive supports struct/enum, found `{kind}`"));
    }
    let name = c.expect_ident()?;
    if let Some(TokenTree::Punct(p)) = c.peek() {
        if p.as_char() == '<' {
            return Err(format!("`{name}`: generic types are not supported"));
        }
    }
    let body = match c.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        Some(TokenTree::Group(_)) => {
            return Err(format!("`{name}`: tuple structs are not supported"))
        }
        _ => return Err(format!("`{name}`: unit structs are not supported")),
    };
    if kind == "struct" {
        Ok((name, Shape::Struct(parse_named_fields(body)?)))
    } else {
        Ok((name, Shape::Enum(parse_variants(body)?)))
    }
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut c = Cursor::new(stream);
    let mut fields = Vec::new();
    loop {
        c.skip_attrs();
        if c.at_end() {
            break;
        }
        c.skip_visibility();
        let field = c.expect_ident()?;
        match c.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => {
                return Err(format!(
                    "expected `:` after field `{field}`, found {other:?}"
                ))
            }
        }
        c.skip_type();
        // Consume the trailing comma if present.
        c.next();
        fields.push(field);
    }
    Ok(fields)
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut c = Cursor::new(stream);
    let mut variants = Vec::new();
    loop {
        c.skip_attrs();
        if c.at_end() {
            break;
        }
        let name = c.expect_ident()?;
        let fields = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner = g.stream();
                c.next();
                Some(parse_named_fields(inner)?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                return Err(format!("tuple variant `{name}` is not supported"));
            }
            _ => None,
        };
        // Consume the trailing comma if present.
        if let Some(TokenTree::Punct(p)) = c.peek() {
            if p.as_char() == ',' {
                c.next();
            }
        }
        variants.push(Variant { name, fields });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Code generation.
// ---------------------------------------------------------------------------

fn struct_serialize(name: &str, fields: &[String]) -> String {
    let mut pushes = String::new();
    for f in fields {
        pushes.push_str(&format!(
            "obj.push(({f:?}.to_string(), ::serde::Serialize::serialize(&self.{f})));\n"
        ));
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn serialize(&self) -> ::serde::Value {{\n\
                 let mut obj: Vec<(String, ::serde::Value)> = Vec::new();\n\
                 {pushes}\
                 ::serde::Value::Obj(obj)\n\
             }}\n\
         }}"
    )
}

fn struct_deserialize(name: &str, fields: &[String]) -> String {
    let mut inits = String::new();
    for f in fields {
        inits.push_str(&format!(
            "{f}: ::serde::Deserialize::deserialize(v.field({f:?})).map_err(|e| e.at({f:?}))?,\n"
        ));
    }
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn deserialize(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 v.as_obj({name:?})?;\n\
                 Ok({name} {{ {inits} }})\n\
             }}\n\
         }}"
    )
}

fn enum_serialize(name: &str, variants: &[Variant]) -> String {
    let mut arms = String::new();
    for v in variants {
        let vn = &v.name;
        match &v.fields {
            None => arms.push_str(&format!(
                "{name}::{vn} => ::serde::Value::Str({vn:?}.to_string()),\n"
            )),
            Some(fields) => {
                let bind = fields.join(", ");
                let mut pushes = String::new();
                for f in fields {
                    pushes.push_str(&format!(
                        "obj.push(({f:?}.to_string(), ::serde::Serialize::serialize({f})));\n"
                    ));
                }
                arms.push_str(&format!(
                    "{name}::{vn} {{ {bind} }} => {{\n\
                         let mut obj: Vec<(String, ::serde::Value)> = Vec::new();\n\
                         {pushes}\
                         ::serde::Value::Obj(vec![({vn:?}.to_string(), ::serde::Value::Obj(obj))])\n\
                     }}\n"
                ));
            }
        }
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn serialize(&self) -> ::serde::Value {{\n\
                 match self {{ {arms} }}\n\
             }}\n\
         }}"
    )
}

fn enum_deserialize(name: &str, variants: &[Variant]) -> String {
    let mut unit_arms = String::new();
    let mut tagged_arms = String::new();
    for v in variants {
        let vn = &v.name;
        match &v.fields {
            None => unit_arms.push_str(&format!("{vn:?} => Ok({name}::{vn}),\n")),
            Some(fields) => {
                let mut inits = String::new();
                for f in fields {
                    inits.push_str(&format!(
                        "{f}: ::serde::Deserialize::deserialize(_inner.field({f:?}))\
                             .map_err(|e| e.at({f:?}))?,\n"
                    ));
                }
                tagged_arms.push_str(&format!("{vn:?} => Ok({name}::{vn} {{ {inits} }}),\n"));
            }
        }
    }
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn deserialize(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 match v {{\n\
                     ::serde::Value::Str(s) => match s.as_str() {{\n\
                         {unit_arms}\
                         other => Err(::serde::DeError::new(format!(\n\
                             \"unknown variant `{{other}}` of {name}\"))),\n\
                     }},\n\
                     ::serde::Value::Obj(pairs) if pairs.len() == 1 => {{\n\
                         let (tag, _inner) = &pairs[0];\n\
                         match tag.as_str() {{\n\
                             {tagged_arms}\
                             other => Err(::serde::DeError::new(format!(\n\
                                 \"unknown variant `{{other}}` of {name}\"))),\n\
                         }}\n\
                     }}\n\
                     other => Err(::serde::DeError::new(format!(\n\
                         \"expected a {name} variant, found {{}}\", other.kind()))),\n\
                 }}\n\
             }}\n\
         }}"
    )
}
