//! Offline stand-in for `serde`.
//!
//! The build environment has no network access, so this workspace vendors a
//! minimal serialization framework under the `serde` name. It intentionally
//! collapses serde's generic data model to a single JSON-shaped [`Value`]:
//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` (re-exported from the
//! companion `serde_derive` proc-macro crate) generate conversions to and
//! from [`Value`], and the vendored `serde_json` renders/parses that value.
//!
//! Divergence from real serde worth knowing about: non-finite floats are
//! serialized as the JSON strings `"inf"` / `"-inf"` / `"nan"` (and parsed
//! back), because ε = ∞ is a meaningful value in this workspace and real
//! serde_json's `null` lowering would destroy it on round-trip.

#![forbid(unsafe_code)]

use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped self-describing value: the entire data model of this stub.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON integer (no fractional part).
    Int(i64),
    /// JSON float.
    Float(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Arr(Vec<Value>),
    /// JSON object; insertion order is preserved.
    Obj(Vec<(String, Value)>),
}

/// A `null` with a `'static` lifetime, used for absent object fields.
pub static NULL: Value = Value::Null;

impl Value {
    /// Looks up a field of an object, yielding `Null` when absent so that
    /// `Option<T>` fields deserialize to `None`.
    pub fn field<'a>(&'a self, name: &str) -> &'a Value {
        match self {
            Value::Obj(pairs) => pairs
                .iter()
                .find(|(k, _)| k == name)
                .map_or(&NULL, |(_, v)| v),
            _ => &NULL,
        }
    }

    /// The object entries, or an error naming the expected type.
    pub fn as_obj(&self, what: &str) -> Result<&[(String, Value)], DeError> {
        match self {
            Value::Obj(pairs) => Ok(pairs),
            other => Err(DeError::new(format!(
                "expected object for {what}, found {}",
                other.kind()
            ))),
        }
    }

    /// The array entries, or an error naming the expected type.
    pub fn as_arr(&self, what: &str) -> Result<&[Value], DeError> {
        match self {
            Value::Arr(items) => Ok(items),
            other => Err(DeError::new(format!(
                "expected array for {what}, found {}",
                other.kind()
            ))),
        }
    }

    /// Short name of the value's JSON kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Obj(_) => "object",
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Creates an error with a message.
    pub fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }

    /// Annotates the error with the field it occurred at.
    pub fn at(mut self, field: &str) -> Self {
        self.msg = format!("{}: {}", field, self.msg);
        self
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for DeError {}

/// Conversion into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn serialize(&self) -> Value;
}

/// Conversion out of the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a [`Value`].
    fn deserialize(v: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------------
// Serialize impls for primitives and containers.
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| DeError::new(format!("{i} out of range"))),
                    // Integral floats are accepted, but only within the
                    // target range — `as` would silently saturate.
                    Value::Float(f)
                        if f.fract() == 0.0
                            && *f >= <$t>::MIN as f64
                            && *f <= <$t>::MAX as f64 =>
                    {
                        Ok(*f as $t)
                    }
                    Value::Float(f) => {
                        Err(DeError::new(format!("{f} is not a valid integer")))
                    }
                    other => Err(DeError::new(format!(
                        "expected integer, found {}",
                        other.kind()
                    ))),
                }
            }
        }
    )*};
}
int_impls!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(x) => x.serialize(),
            None => Value::Null,
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize(&self) -> Value {
        Value::Arr(vec![self.0.serialize(), self.1.serialize()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn serialize(&self) -> Value {
        Value::Arr(vec![
            self.0.serialize(),
            self.1.serialize(),
            self.2.serialize(),
        ])
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls.
// ---------------------------------------------------------------------------

impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::new(format!(
                "expected bool, found {}",
                other.kind()
            ))),
        }
    }
}

impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::new(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }
}

impl Deserialize for f64 {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            Value::Str(s) => match s.as_str() {
                "inf" => Ok(f64::INFINITY),
                "-inf" => Ok(f64::NEG_INFINITY),
                "nan" => Ok(f64::NAN),
                _ => Err(DeError::new(format!("expected number, found `{s}`"))),
            },
            other => Err(DeError::new(format!(
                "expected number, found {}",
                other.kind()
            ))),
        }
    }
}

impl Deserialize for f32 {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        f64::deserialize(v).map(|f| f as f32)
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        v.as_arr("Vec")?.iter().map(T::deserialize).collect()
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        let items = v.as_arr("2-tuple")?;
        if items.len() != 2 {
            return Err(DeError::new(format!(
                "expected 2 elements, found {}",
                items.len()
            )));
        }
        Ok((A::deserialize(&items[0])?, B::deserialize(&items[1])?))
    }
}

impl Deserialize for Value {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}
