//! Offline stand-in for the parts of `rand` this workspace touches.
//!
//! The build environment has no network access, so the real crates.io
//! `rand` cannot be fetched. `df-prob` only *implements* [`RngCore`] for its
//! own from-scratch generators (PCG32, SplitMix64) so they stay
//! source-compatible with the wider ecosystem; this crate provides exactly
//! that trait with the `rand 0.8` method set and nothing else.

#![forbid(unsafe_code)]

use std::fmt;

/// Error type mirroring `rand::Error` (infallible for in-process PRNGs).
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error with a message.
    pub fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rng error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

/// The core random-number-generator trait, matching `rand 0.8::RngCore`.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible variant of [`RngCore::fill_bytes`].
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error>;
}
