//! Offline stand-in for `criterion`.
//!
//! Implements the API surface the df-bench benches use — `Criterion`,
//! benchmark groups, `bench_function` / `bench_with_input`, `Throughput`,
//! `BenchmarkId`, and the `criterion_group!` / `criterion_main!` macros —
//! over a simple wall-clock measurement loop: a calibration phase sizes the
//! batch so one sample takes ≳1 ms, then `sample_size` samples are timed and
//! the median/min/mean per-iteration latencies (and element throughput, when
//! configured) are printed. No plotting, no statistics beyond that.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 30 }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_benchmark(name, self.sample_size, None, &mut f);
        self
    }
}

/// A named group of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for subsequent benchmarks.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Declares the amount of work one iteration performs.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs a benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_benchmark(&label, self.sample_size, self.throughput, &mut f);
        self
    }

    /// Runs a benchmark parameterized by an input value.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_benchmark(&label, self.sample_size, self.throughput, &mut |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (prints nothing extra; provided for API parity).
    pub fn finish(self) {}
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id built from a function label and a parameter.
    pub fn new(label: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self {
            label: format!("{label}/{parameter}"),
        }
    }

    /// An id that is just the parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

/// Conversion into a benchmark label (accepts `BenchmarkId` or strings).
pub trait IntoBenchmarkId {
    /// The label to display.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.label
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Work performed per iteration, for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Passed to the benchmark closure; runs and times the measured routine.
pub struct Bencher {
    batch: u64,
    samples: Vec<Duration>,
    mode: BencherMode,
}

enum BencherMode {
    /// Determine a batch size so one sample lasts ≳1 ms.
    Calibrate,
    /// Collect timed samples.
    Measure,
}

impl Bencher {
    /// Times `f`, called `batch` times per sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        match self.mode {
            BencherMode::Calibrate => {
                let target = Duration::from_millis(1);
                let mut batch = 1u64;
                loop {
                    let start = Instant::now();
                    for _ in 0..batch {
                        black_box(f());
                    }
                    let elapsed = start.elapsed();
                    if elapsed >= target || batch >= 1 << 24 {
                        self.batch = batch;
                        break;
                    }
                    batch *= 2;
                }
            }
            BencherMode::Measure => {
                let start = Instant::now();
                for _ in 0..self.batch {
                    black_box(f());
                }
                self.samples.push(start.elapsed());
            }
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    f: &mut F,
) {
    // Calibration pass (also serves as warm-up).
    let mut b = Bencher {
        batch: 1,
        samples: Vec::new(),
        mode: BencherMode::Calibrate,
    };
    f(&mut b);
    let batch = b.batch;

    let mut b = Bencher {
        batch,
        samples: Vec::with_capacity(sample_size),
        mode: BencherMode::Measure,
    };
    for _ in 0..sample_size {
        f(&mut b);
    }

    let mut per_iter: Vec<f64> = b
        .samples
        .iter()
        .map(|d| d.as_secs_f64() / batch as f64)
        .collect();
    per_iter.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let min = per_iter.first().copied().unwrap_or(0.0);
    let median = per_iter[per_iter.len() / 2];
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;

    let mut line = format!(
        "{label:<48} median {:>12}  min {:>12}  mean {:>12}",
        fmt_time(median),
        fmt_time(min),
        fmt_time(mean)
    );
    if let Some(Throughput::Elements(n)) = throughput {
        if median > 0.0 {
            line.push_str(&format!("  {:>14.0} elem/s", n as f64 / median));
        }
    }
    if let Some(Throughput::Bytes(n)) = throughput {
        if median > 0.0 {
            line.push_str(&format!("  {:>14.0} B/s", n as f64 / median));
        }
    }
    println!("{line}");
}

fn fmt_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} us", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Declares a function running the listed benchmark functions in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
