//! Offline stand-in for `proptest`.
//!
//! Provides the subset this workspace uses: the [`Strategy`] trait over
//! numeric ranges / tuples / `collection::vec`, `any::<T>()`, the
//! [`proptest!`] macro, `prop_assert!` / `prop_assert_eq!`, and
//! [`ProptestConfig`]. Cases are generated from a deterministic SplitMix64
//! stream seeded by the test name, so failures are reproducible; there is
//! no shrinking — the failing inputs are reported as generated.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::Range;

/// Configuration accepted via `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    /// 48 cases, overridable via the `PROPTEST_CASES` environment variable
    /// (mirroring real proptest) so CI can pin an explicit budget.
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&c| c > 0)
            .unwrap_or(48);
        Self { cases }
    }
}

/// Failure raised by `prop_assert!` family macros.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    /// Creates a failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

/// Deterministic generator driving case generation (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the stream from a test name, deterministically.
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the name gives a stable per-test seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        // 128-bit multiply-shift; bias is negligible for test generation.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates an intermediate value, then a value from the strategy it
    /// selects.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy adapter for [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy adapter for [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);

/// `&str` strategies are interpreted as a small regex subset generating
/// matching strings: literal characters, character classes `[a-z0-9,\"]`
/// (with `-` ranges and backslash escapes), and `{n}` / `{lo,hi}`
/// quantifiers on the preceding atom. This covers the patterns used by the
/// workspace's property tests; unsupported syntax panics loudly.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        #[derive(Clone)]
        struct Atom {
            choices: Vec<char>,
            lo: u64,
            hi: u64,
        }
        let mut atoms: Vec<Atom> = Vec::new();
        let mut chars = self.chars().peekable();
        while let Some(c) = chars.next() {
            let choices = match c {
                '[' => {
                    let mut set = Vec::new();
                    loop {
                        match chars.next() {
                            Some(']') => break,
                            Some('\\') => {
                                set.push(chars.next().expect("escape in class"));
                            }
                            Some(a) => {
                                if chars.peek() == Some(&'-') {
                                    chars.next();
                                    match chars.peek() {
                                        Some(&']') | None => set.push('-'),
                                        Some(&b) => {
                                            chars.next();
                                            for code in (a as u32)..=(b as u32) {
                                                set.push(
                                                    char::from_u32(code).expect("valid range"),
                                                );
                                            }
                                        }
                                    }
                                    if set.last() != Some(&'-') {
                                        continue;
                                    }
                                } else {
                                    set.push(a);
                                }
                            }
                            None => panic!("unterminated character class in `{self}`"),
                        }
                    }
                    set
                }
                '\\' => vec![chars.next().expect("escape")],
                '{' | '}' | '*' | '+' | '?' | '(' | ')' | '|' | '.' => {
                    panic!("unsupported pattern syntax `{c}` in `{self}`")
                }
                lit => vec![lit],
            };
            // Optional quantifier.
            let (lo, hi) = if chars.peek() == Some(&'{') {
                chars.next();
                let mut spec = String::new();
                for q in chars.by_ref() {
                    if q == '}' {
                        break;
                    }
                    spec.push(q);
                }
                match spec.split_once(',') {
                    Some((a, b)) => (
                        a.parse().expect("quantifier lower bound"),
                        b.parse().expect("quantifier upper bound"),
                    ),
                    None => {
                        let n: u64 = spec.parse().expect("quantifier count");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            atoms.push(Atom { choices, lo, hi });
        }
        let mut out = String::new();
        for atom in atoms {
            let n = atom.lo + rng.below(atom.hi - atom.lo + 1);
            for _ in 0..n {
                out.push(atom.choices[rng.below(atom.choices.len() as u64) as usize]);
            }
        }
        out
    }
}

/// Types with a canonical "anything" strategy.
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, moderately sized values: arbitrary bit patterns are
        // mostly useless (NaN/subnormal) for numeric property tests.
        (rng.unit_f64() - 0.5) * 2e6
    }
}

/// The `any::<T>()` strategy.
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy for any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// A fixed or ranged collection length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty length range");
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy for a `Vec` of values drawn from `element`, with a fixed or
    /// ranged length.
    pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            len: len.into(),
        }
    }

    /// Strategy produced by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.hi - self.len.lo) as u64;
            let n = self.len.lo + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, proptest, Arbitrary, Just, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Defines property tests: each case draws fresh inputs from the argument
/// strategies and runs the body; `prop_assert!` failures report the case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @cfg ($cfg) $($rest)* }
    };
    (@cfg ($cfg:expr)
        $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    let result = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        Ok(())
                    })();
                    if let Err(e) = result {
                        panic!("property `{}` failed on case {}: {}", stringify!($name), case, e);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! { @cfg ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not the
/// whole process) with context.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}: {}",
                stringify!($cond),
                format!($($fmt)+)
            )));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (lhs, rhs) = (&$a, &$b);
        if lhs != rhs {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($a),
                stringify!($b),
                lhs,
                rhs
            )));
        }
    }};
}
