//! Cross-crate integration tests: data generation → frames → counts →
//! fairness audits → classifiers → amplification, through the facade.

use differential_fairness::core::baselines::{equalized_odds_gap, GroupConfusion};
use differential_fairness::core::data_fairness::{
    dataset_epsilon, dataset_posterior_epsilon, DataModel,
};
use differential_fairness::data::adult::synth::{generate, SynthConfig};
use differential_fairness::data::csv::{read_str, CsvOptions};
use differential_fairness::data::encode::{binary_labels, FrameEncoder};
use differential_fairness::learn::metrics;
use differential_fairness::learn::naive_bayes::NaiveBayes;
use differential_fairness::learn::tree::{DecisionTree, TreeConfig};
use differential_fairness::prelude::*;

fn small_adult() -> differential_fairness::data::adult::AdultDataset {
    generate(&SynthConfig {
        seed: 99,
        n_train: 6_000,
        n_test: 2_000,
        ..SynthConfig::default()
    })
    .unwrap()
    .with_protected()
    .unwrap()
}

fn counts_of(frame: &DataFrame, outcome: &str) -> JointCounts {
    JointCounts::from_table(
        frame
            .contingency(&[outcome, "race_m", "gender", "nationality"])
            .unwrap(),
        outcome,
    )
    .unwrap()
}

#[test]
fn full_audit_roundtrips_through_json() {
    let dataset = small_adult();
    let counts = counts_of(&dataset.train, "income");
    let report = Audit::of(&counts)
        .estimator(Empirical)
        .estimator(Smoothed { alpha: 1.0 })
        .baselines(Baselines::all().with_subgroups(false).positive(">50K"))
        .reference_epsilon(2.0)
        .run()
        .unwrap();
    assert!(report.epsilon.epsilon.is_finite());
    assert_eq!(report.bound_violations, Some(vec![]));
    let json = serde_json::to_string_pretty(&report).unwrap();
    assert!(json.contains("race_m"));
    assert!(json.contains("demographic_parity"));
    let back: AuditReport = serde_json::from_str(&json).unwrap();
    assert_eq!(back, report);
    // The rendered table mentions every subset.
    let rendered = report.render_subset_table();
    assert_eq!(rendered.lines().count(), 2 + 7);
}

#[test]
#[allow(deprecated)]
fn deprecated_shim_agrees_with_builder() {
    let dataset = small_adult();
    let counts = counts_of(&dataset.train, "income");
    let legacy = FairnessAudit::run(
        &counts,
        &AuditConfig {
            alpha: 1.0,
            positive_outcome: Some(">50K".into()),
            reference_epsilon: Some(2.0),
        },
    )
    .unwrap();
    let report = Audit::of(&counts)
        .estimator(Empirical)
        .estimator(Smoothed { alpha: 1.0 })
        .baselines(Baselines::all().with_subgroups(false).positive(">50K"))
        .reference_epsilon(2.0)
        .run()
        .unwrap();
    assert_eq!(legacy.n_records, report.total_weight);
    assert_eq!(legacy.epsilon, report.epsilon);
    assert_eq!(legacy.regime, report.regime);
    assert_eq!(Some(legacy.demographic_parity), report.demographic_parity);
    assert_eq!(legacy.disparate_impact, report.disparate_impact);
    assert_eq!(
        legacy.smoothed.full_intersection().result,
        report.estimator("eps-DF(a=1)").unwrap().result
    );
}

#[test]
fn dataset_definitions_agree_across_paths() {
    let dataset = small_adult();
    let counts = counts_of(&dataset.train, "income");
    // Definition 4.2 = Eq. 6 = JointCounts::edf.
    let a = dataset_epsilon(&counts, DataModel::Empirical).unwrap();
    let b = counts.edf().unwrap();
    assert_eq!(a, b);
    // Definition 4.1 with Dirichlet-multinomial = Eq. 7.
    let c = dataset_epsilon(&counts, DataModel::DirichletMultinomial { alpha: 1.0 }).unwrap();
    let d = counts.edf_smoothed(1.0).unwrap();
    assert_eq!(c, d);
}

#[test]
fn posterior_theta_brackets_empirical_epsilon() {
    let dataset = small_adult();
    let counts = counts_of(&dataset.train, "income");
    let mut rng = Pcg32::new(17);
    let (sup, theta) = dataset_posterior_epsilon(&counts, 1.0, 60, &mut rng).unwrap();
    let point = counts.edf().unwrap().epsilon;
    assert!(sup.epsilon >= point * 0.8);
    let (lo, hi) = theta.epsilon_credible_interval(0.9).unwrap();
    assert!(lo < hi);
    assert!(
        point <= hi * 1.2,
        "point {point} should sit near [{lo}, {hi}]"
    );
}

#[test]
fn classifier_amplification_pipeline() {
    use differential_fairness::learn::pipeline::{run_feature_selection, ADULT_BASE_FEATURES};
    let dataset = small_adult();
    let run = run_feature_selection(
        &dataset.train,
        &dataset.test,
        &ADULT_BASE_FEATURES,
        &[],
        "income",
        ">50K",
        &LogisticConfig::default(),
    )
    .unwrap();
    assert!(run.error_rate < 0.24, "beats majority class");

    let labels: Vec<&str> = run
        .test_predictions
        .iter()
        .map(|&p| if p >= 0.5 { ">50K" } else { "<=50K" })
        .collect();
    let mut frame = dataset.test.clone();
    frame
        .add_column(Column::categorical("prediction", &labels))
        .unwrap();
    let pred_eps = counts_of(&frame, "prediction")
        .edf_smoothed(1.0)
        .unwrap()
        .epsilon;
    let data_eps = counts_of(&dataset.test, "income")
        .edf_smoothed(1.0)
        .unwrap()
        .epsilon;
    let amp = BiasAmplification::new(pred_eps, data_eps);
    assert!(amp.delta().is_finite());
    assert!(amp.utility_disparity_factor() > 0.0);
}

#[test]
fn alternative_learners_audit_cleanly() {
    let dataset = small_adult();
    let y_train = binary_labels(&dataset.train, "income", ">50K").unwrap();
    let y_test = binary_labels(&dataset.test, "income", ">50K").unwrap();

    // Naive Bayes straight off the frame.
    let nb = NaiveBayes::fit(
        &dataset.train,
        &[
            "education-num",
            "hours-per-week",
            "marital-status",
            "occupation",
        ],
        &y_train,
        1.0,
    )
    .unwrap();
    let nb_preds = nb.predict(&dataset.test).unwrap();
    let nb_err = metrics::error_rate(&nb_preds, &y_test).unwrap();
    assert!(nb_err < 0.24, "NB beats majority class: {nb_err}");

    // Decision tree over encoded features.
    let encoder = FrameEncoder::fit(
        &dataset.train,
        &["education-num", "hours-per-week", "age", "capital-gain"],
    )
    .unwrap();
    let x_train = encoder.transform(&dataset.train).unwrap();
    let x_test = encoder.transform(&dataset.test).unwrap();
    let tree = DecisionTree::fit(&x_train, &y_train, &TreeConfig::default()).unwrap();
    let tree_preds = tree.predict(&x_test).unwrap();
    let tree_err = metrics::error_rate(&tree_preds, &y_test).unwrap();
    assert!(tree_err < 0.24, "tree beats majority class: {tree_err}");

    // Both yield finite fairness audits via the Mechanism tally.
    let (groups, group_labels) = dataset
        .test
        .group_indices(&["race_m", "gender", "nationality"])
        .unwrap();
    for preds in [&nb_preds, &tree_preds] {
        let mech = FnMechanism::new(vec!["p0".into(), "p1".into()], |p: &f64| {
            usize::from(*p >= 0.5)
        });
        let est = estimate_group_outcomes(
            &mech,
            group_labels.clone(),
            groups.iter().copied().zip(preds.iter().copied()),
            1.0,
        )
        .unwrap();
        assert!(est.group_outcomes.epsilon().is_finite());
    }
}

#[test]
fn equalized_odds_baseline_over_intersections() {
    let dataset = small_adult();
    let y_test = binary_labels(&dataset.test, "income", ">50K").unwrap();
    // A deliberately crude classifier: education threshold.
    let edu = dataset
        .test
        .column("education-num")
        .unwrap()
        .as_numeric()
        .unwrap();
    let preds: Vec<f64> = edu.iter().map(|&e| f64::from(e >= 12.0)).collect();
    let (groups, labels) = dataset.test.group_indices(&["gender"]).unwrap();
    let mut confusions = vec![GroupConfusion::default(); labels.len()];
    for ((&g, &p), &y) in groups.iter().zip(&preds).zip(&y_test) {
        let c = &mut confusions[g];
        match (p >= 0.5, y >= 0.5) {
            (true, true) => c.tp += 1.0,
            (true, false) => c.fp += 1.0,
            (false, false) => c.tn += 1.0,
            (false, true) => c.fn_ += 1.0,
        }
    }
    let gap = equalized_odds_gap(&confusions);
    assert!(gap.tpr_gap >= 0.0 && gap.tpr_gap <= 1.0);
    assert!(gap.fpr_gap >= 0.0 && gap.fpr_gap <= 1.0);
}

#[test]
fn csv_to_fairness_audit_path() {
    // A miniature dataset arriving as CSV text, through the full stack.
    let csv = "\
approve, F, black
deny, F, black
approve, M, white
approve, M, white
deny, F, white
approve, F, white
approve, M, black
deny, M, black
";
    let records = read_str(csv, &CsvOptions::adult()).unwrap();
    let outcome: Vec<&str> = records.iter().map(|r| r[0].as_str()).collect();
    let gender: Vec<&str> = records.iter().map(|r| r[1].as_str()).collect();
    let race: Vec<&str> = records.iter().map(|r| r[2].as_str()).collect();
    let frame = DataFrame::new(vec![
        Column::categorical("outcome", &outcome),
        Column::categorical("gender", &gender),
        Column::categorical("race", &race),
    ])
    .unwrap();
    let counts = JointCounts::from_table(
        frame.contingency(&["outcome", "gender", "race"]).unwrap(),
        "outcome",
    )
    .unwrap();
    assert_eq!(counts.total(), 8.0);
    let eps = counts.edf_smoothed(1.0).unwrap();
    assert!(eps.is_finite());
    // Same counts assembled directly must agree exactly.
    let direct = JointCounts::from_records(
        Axis::from_strs("outcome", &["approve", "deny"]).unwrap(),
        vec![
            Axis::from_strs("gender", &["F", "M"]).unwrap(),
            Axis::from_strs("race", &["black", "white"]).unwrap(),
        ],
        records
            .iter()
            .map(|r| (r[0].as_str(), vec![r[1].as_str(), r[2].as_str()]))
            .collect::<Vec<_>>(),
    )
    .unwrap();
    assert_eq!(
        direct.edf_smoothed(1.0).unwrap().epsilon,
        eps.epsilon,
        "CSV path and direct path agree"
    );
}

#[test]
fn quota_and_iid_allocations_converge_at_scale() {
    use differential_fairness::data::adult::calibration;
    use differential_fairness::data::adult::synth::CellAllocation;
    let truth = calibration::population_epsilon(0b111);
    let quota = generate(&SynthConfig {
        seed: 5,
        n_train: 30_000,
        n_test: 16,
        allocation: CellAllocation::Quota,
    })
    .unwrap()
    .with_protected()
    .unwrap();
    let eps_quota = counts_of(&quota.train, "income").edf().unwrap().epsilon;
    assert!(
        (eps_quota - truth).abs() < 0.05,
        "quota {eps_quota} vs {truth}"
    );

    let iid = generate(&SynthConfig {
        seed: 5,
        n_train: 30_000,
        n_test: 16,
        allocation: CellAllocation::Iid,
    })
    .unwrap()
    .with_protected()
    .unwrap();
    let eps_iid = counts_of(&iid.train, "income").edf().unwrap().epsilon;
    // iid carries sampling noise but should be within a generous band.
    assert!((eps_iid - truth).abs() < 1.0, "iid {eps_iid} vs {truth}");
}
