//! The wall-clock monitor's core guarantees, made observable at the API
//! surface:
//!
//! 1. **Windowed ε is byte-identical to a batch audit** of exactly the
//!    in-window records — for arbitrary timestamp sequences (bursty,
//!    sparse, out-of-order within a bucket *and* across in-window
//!    buckets) and arbitrary chunk splits. A record at time `t` is
//!    in-window iff `⌊t / b⌋ > ⌊now / b⌋ − ⌈T / b⌉` with `now` the
//!    largest timestamp seen; the reference model below recomputes that
//!    membership from scratch at every step while the monitor maintains
//!    it incrementally through exact merge/subtract.
//! 2. **Advancing time with zero arrivals evicts correctly**, all the way
//!    down to the empty window (vacuous ε = 0).
//! 3. **`MonitorSnapshot::merge` is a commutative monoid** up to the
//!    fleet-relevant state: commutative, associative, with the untouched
//!    monitor's snapshot as identity — so shard aggregation order can
//!    never change fleet-wide ε or alarm state.
//!
//! Case budget: `PROPTEST_CASES` (CI pins 64).

use differential_fairness::prelude::*;
use proptest::prelude::*;

/// A chunk of `(outcome, group)` index pairs.
#[derive(Debug, Clone)]
struct Pairs(Vec<[usize; 2]>);

impl Tally for Pairs {
    fn tally_into(&self, shard: &mut PartialCounts) -> differential_fairness::prob::Result<()> {
        for idx in &self.0 {
            shard.record(idx);
        }
        Ok(())
    }
}

fn axes(arity: usize) -> Vec<Axis> {
    vec![
        Axis::from_strs("y", &["no", "yes"]).unwrap(),
        Axis::new("g", (0..arity).map(|i| format!("g{i}")).collect()).unwrap(),
    ]
}

/// Batch-audits `rows` and returns the headline ε, serialized.
fn batch_epsilon_json(rows: &[[usize; 2]], arity: usize) -> String {
    let mut shard = PartialCounts::zeros(axes(arity)).unwrap();
    for idx in rows {
        shard.record(idx);
    }
    let counts = JointCounts::from_table(shard.into_table(), "y").unwrap();
    let report = Audit::of_counts(counts)
        .unwrap()
        .estimator(Smoothed { alpha: 1.0 })
        .subsets(SubsetPolicy::None)
        .run()
        .unwrap();
    serde_json::to_string(&report.epsilon).unwrap()
}

proptest! {
    /// At every push — through warm-up, out-of-order arrivals, bursts
    /// landing in one bucket, sparse stretches skipping many buckets, and
    /// the final idle drain — the wall-clock monitor's ε serializes to
    /// the same bytes as a batch `Audit` of the records the window claims
    /// to hold, and the window counts equal a fresh tally of those
    /// records bit for bit.
    #[test]
    fn wall_clock_epsilon_is_byte_identical_to_batch_audit(
        arity in 2usize..4,
        window_buckets in 3i64..8,
        chunks in proptest::collection::vec(
            // (row picks, bucket advance 0..3, in-window backdate, sub-bucket jitter)
            (
                proptest::collection::vec(any::<u64>(), 1..8),
                0i64..3,
                any::<u64>(),
                any::<u64>(),
            ),
            1..30,
        ),
    ) {
        // b = 1 s buckets, T = window_buckets seconds → the window spans
        // exactly `window_buckets` buckets.
        let mut monitor = Audit::monitor("y", axes(arity))
            .estimator(Smoothed { alpha: 1.0 })
            .window_seconds(window_buckets as f64)
            .bucket_seconds(1.0)
            .build()
            .unwrap();
        // The reference model: every arrival with its bucket, membership
        // recomputed from scratch at each step. The monitor's clock is
        // the max over the timestamps it has actually seen — the model
        // must track exactly that, never a virtual "current time" no
        // arrival has carried.
        let mut log: Vec<(i64, Vec<[usize; 2]>)> = Vec::new();
        let mut now_bucket = 0i64;
        for (picks, advance, backdate, jitter) in &chunks {
            let rows: Vec<[usize; 2]> = picks
                .iter()
                .map(|&p| [(p % 2) as usize, (p as usize / 2) % arity])
                .collect();
            // Either advance the clock 1..3 buckets (2 = a sparse skip),
            // or stay at `advance == 0` and possibly backdate the chunk
            // into any bucket still inside the window (0 buckets back =
            // a burst, more = an out-of-order arrival).
            let bucket = if *advance > 0 {
                now_bucket + advance
            } else {
                let max_back = (window_buckets - 1).min(now_bucket);
                now_bucket - (*backdate % (max_back as u64 + 1)) as i64
            };
            let ts = bucket as f64 + (*jitter % 100) as f64 / 100.0;
            let step = monitor.push_at(&Pairs(rows.clone()), ts).unwrap();
            log.push((bucket, rows));
            now_bucket = now_bucket.max(bucket);
            let horizon = now_bucket - window_buckets;
            let window_rows: Vec<[usize; 2]> = log
                .iter()
                .filter(|(b, _)| *b > horizon)
                .flat_map(|(_, r)| r.iter().copied())
                .collect();
            prop_assert_eq!(step.window_rows as usize, window_rows.len());
            // Counts: bit-identical to a fresh tally of the in-window rows.
            let mut fresh = PartialCounts::zeros(axes(arity)).unwrap();
            for idx in &window_rows {
                fresh.record(idx);
            }
            prop_assert_eq!(monitor.window_counts().data(), fresh.table().data());
            // ε: byte-identical to the batch audit.
            let monitor_json = serde_json::to_string(&step.epsilon).unwrap();
            prop_assert_eq!(monitor_json, batch_epsilon_json(&window_rows, arity));
        }
        // Idle drain: advancing the clock with zero arrivals evicts the
        // whole ring — empty window, vacuous ε, untouched records_seen.
        let total: usize = log.iter().map(|(_, r)| r.len()).sum();
        let step = monitor
            .advance_to((now_bucket + window_buckets + 1) as f64)
            .unwrap();
        prop_assert_eq!(step.window_rows, 0);
        prop_assert_eq!(step.epsilon.epsilon, 0.0);
        prop_assert!(monitor.window_counts().data().iter().all(|&v| v == 0.0));
        prop_assert_eq!(monitor.records_seen() as usize, total);
        let empty_json = serde_json::to_string(&step.epsilon).unwrap();
        prop_assert_eq!(empty_json, batch_epsilon_json(&[], arity));
    }

    /// `MonitorSnapshot::merge` algebra over wall-clock shards carrying
    /// live alert and change-point state: commutative, associative, and
    /// the untouched monitor's snapshot is the identity. Window cells are
    /// integer tallies and every other merged field is built from max,
    /// sum, or canonically ordered concatenation, so aggregation-tree
    /// order cannot leak into fleet-wide ε or alarm state.
    #[test]
    fn snapshot_merge_is_a_commutative_monoid(
        arity in 2usize..4,
        shards in proptest::collection::vec(
            proptest::collection::vec(
                (proptest::collection::vec(any::<u64>(), 1..6), 0i64..3),
                1..8,
            ),
            3..4,
        ),
    ) {
        let estimator = Smoothed { alpha: 1.0 };
        let build = || {
            Audit::monitor("y", axes(arity))
                .estimator(Smoothed { alpha: 1.0 })
                .window_seconds(6.0)
                .bucket_seconds(1.0)
                .alert(AlertRule::epsilon_above(0.1))
                .changepoint(Cusum::new(0.0, 0.05, 0.4))
                .changepoint(PageHinkley::new(0.0, 0.05, 0.4))
                .build()
                .unwrap()
        };
        let mut monitors: Vec<FairnessMonitor> = (0..3).map(|_| build()).collect();
        for (monitor, stream) in monitors.iter_mut().zip(&shards) {
            let mut bucket = 0i64;
            for (picks, advance) in stream {
                bucket += advance;
                let rows: Vec<[usize; 2]> = picks
                    .iter()
                    .map(|&p| [(p % 2) as usize, (p as usize / 2) % arity])
                    .collect();
                monitor.push_at(&Pairs(rows), bucket as f64).unwrap();
            }
        }
        let a = monitors[0].snapshot().unwrap();
        let b = monitors[1].snapshot().unwrap();
        let c = monitors[2].snapshot().unwrap();
        // Identity: merging with a fresh shard changes nothing.
        let empty = build().snapshot().unwrap();
        prop_assert_eq!(&a.merge(&empty, &estimator).unwrap(), &a);
        prop_assert_eq!(&empty.merge(&a, &estimator).unwrap(), &a);
        // Commutativity.
        let ab = a.merge(&b, &estimator).unwrap();
        prop_assert_eq!(&ab, &b.merge(&a, &estimator).unwrap());
        // Associativity.
        let bc = b.merge(&c, &estimator).unwrap();
        prop_assert_eq!(
            ab.merge(&c, &estimator).unwrap(),
            a.merge(&bc, &estimator).unwrap()
        );
    }
}
