//! Integration tests for the documented extensions: differential equalized
//! odds, bootstrap CIs, fairness-regularized training, fairness-aware model
//! selection, and the ProtectedSpace helper — all through the facade.

use differential_fairness::data::adult::synth::{generate, SynthConfig};
use differential_fairness::data::encode::{binary_labels, FrameEncoder};
use differential_fairness::learn::model_selection::{
    cross_validate_l2_grid, select_within_epsilon,
};
use differential_fairness::learn::pipeline::ADULT_BASE_FEATURES;
use differential_fairness::prelude::*;

fn adult_8k() -> differential_fairness::data::adult::AdultDataset {
    generate(&SynthConfig {
        seed: 321,
        n_train: 8_000,
        n_test: 3_000,
        ..SynthConfig::default()
    })
    .unwrap()
    .with_protected()
    .unwrap()
}

#[test]
fn protected_space_mirrors_frame_group_indexing() {
    // ProtectedSpace::flatten must agree with DataFrame::group_indices so
    // audits and reports name the same intersections.
    let dataset = adult_8k();
    let (indices, labels) = dataset
        .train
        .group_indices(&["gender", "nationality"])
        .unwrap();
    let space = ProtectedSpace::new(vec![
        ProtectedAttribute::from_strs("gender", &["Male", "Female"]).unwrap(),
        ProtectedAttribute::from_strs("nationality", &["US", "Non-US"]).unwrap(),
    ])
    .unwrap();
    assert_eq!(space.intersection_count(), labels.len());
    for (flat, label) in labels.iter().enumerate() {
        assert_eq!(&space.describe(flat).unwrap(), label);
    }
    assert!(indices.iter().all(|&g| g < space.intersection_count()));
    // Subset enumeration matches the audit lattice.
    assert_eq!(space.subsets().len(), 3);
}

#[test]
fn bootstrap_interval_contains_point_estimate() {
    let dataset = adult_8k();
    let counts = JointCounts::from_table(
        dataset
            .train
            .contingency(&["income", "gender", "nationality"])
            .unwrap(),
        "income",
    )
    .unwrap();
    let mut rng = Pcg32::new(55);
    let boot = bootstrap_epsilon(&counts, 1.0, 200, 0.95, &mut rng).unwrap();
    assert!(boot.point.is_finite());
    assert!(
        boot.interval.0 <= boot.point * 1.05 && boot.point * 0.95 <= boot.interval.1,
        "point {} outside CI [{}, {}]",
        boot.point,
        boot.interval.0,
        boot.interval.1
    );
    assert!(boot.std_error().unwrap() > 0.0);
    // Serializes for report pipelines.
    let json = serde_json::to_string(&boot).unwrap();
    assert!(json.contains("interval"));

    // The builder's bootstrap stage resamples the same way, driven by the
    // headline estimator, and lands in the report.
    let report = Audit::of(&counts)
        .estimator(Smoothed { alpha: 1.0 })
        .subsets(SubsetPolicy::None)
        .bootstrap(200, 55)
        .run()
        .unwrap();
    let built = report.bootstrap.unwrap();
    assert_eq!(built.replicates.len(), 200);
    assert!((built.point - boot.point).abs() < 1e-9);
    assert!(built.interval.0 <= built.point && built.point <= built.interval.1 * 1.05);
}

#[test]
fn equalized_odds_extension_on_a_real_classifier() {
    let dataset = adult_8k();
    let encoder = FrameEncoder::fit(&dataset.train, &ADULT_BASE_FEATURES).unwrap();
    let x_train = encoder.transform(&dataset.train).unwrap();
    let x_test = encoder.transform(&dataset.test).unwrap();
    let y_train = binary_labels(&dataset.train, "income", ">50K").unwrap();
    let y_test = binary_labels(&dataset.test, "income", ">50K").unwrap();
    let model = LogisticRegression::fit(&x_train, &y_train, &LogisticConfig::default()).unwrap();
    let preds = model.predict(&x_test).unwrap();

    let (groups, group_labels) = dataset.test.group_indices(&["gender"]).unwrap();
    let eo = EqualizedOddsCounts::from_records(
        vec!["<=50K".into(), ">50K".into()],
        vec!["pred0".into(), "pred1".into()],
        group_labels,
        y_test
            .iter()
            .zip(&preds)
            .zip(&groups)
            .map(|((&y, &p), &g)| (y as usize, p as usize, g)),
    )
    .unwrap();
    let deo = eo.epsilon(1.0).unwrap();
    assert!(deo.is_finite());
    // DEO dominates each conditional stratum, including opportunity.
    let opp = opportunity_epsilon(&eo, ">50K", 1.0).unwrap();
    assert!(deo.epsilon >= opp.epsilon - 1e-12);
    // The conditional table is inspectable per stratum.
    let table = eo.conditional_table(">50K", 1.0).unwrap();
    assert_eq!(table.num_groups(), 2);
}

#[test]
fn fair_regularizer_reduces_epsilon_on_adult() {
    let dataset = adult_8k();
    let encoder = FrameEncoder::fit(&dataset.train, &ADULT_BASE_FEATURES).unwrap();
    let x_train = encoder.transform(&dataset.train).unwrap();
    let y_train = binary_labels(&dataset.train, "income", ">50K").unwrap();
    let (groups, labels) = dataset.train.group_indices(&["gender"]).unwrap();

    let base = FairLogisticRegression::fit(
        &x_train,
        &y_train,
        &groups,
        labels.len(),
        &FairLogisticConfig {
            fairness_weight: 0.0,
            max_iter: 200,
            ..FairLogisticConfig::default()
        },
    )
    .unwrap();
    let fair = FairLogisticRegression::fit(
        &x_train,
        &y_train,
        &groups,
        labels.len(),
        &FairLogisticConfig {
            fairness_weight: 10.0,
            max_iter: 200,
            ..FairLogisticConfig::default()
        },
    )
    .unwrap();
    assert!(
        fair.train_soft_epsilon < 0.5 * base.train_soft_epsilon,
        "fair {} vs base {}",
        fair.train_soft_epsilon,
        base.train_soft_epsilon
    );
}

#[test]
fn model_selection_trades_error_for_epsilon() {
    let dataset = adult_8k();
    let encoder = FrameEncoder::fit(&dataset.train, &ADULT_BASE_FEATURES).unwrap();
    let x = encoder.transform(&dataset.train).unwrap();
    let y = binary_labels(&dataset.train, "income", ">50K").unwrap();
    let (groups, labels) = dataset.train.group_indices(&["race_m", "gender"]).unwrap();
    let mut rng = Pcg32::new(77);
    let results = cross_validate_l2_grid(
        &x,
        &y,
        &groups,
        labels.len(),
        &[1e-4, 1.0, 1e4],
        4,
        &mut rng,
    )
    .unwrap();
    assert_eq!(results.len(), 3);
    // Every candidate beats the majority-class error except (possibly) the
    // absurdly regularized one.
    assert!(results[0].error < 0.24);
    let chosen = select_within_epsilon(&results, f64::INFINITY).unwrap();
    // Unbounded budget → the pure error minimizer.
    let min_err = results
        .iter()
        .map(|r| r.error)
        .fold(f64::INFINITY, f64::min);
    assert!((chosen.error - min_err).abs() < 1e-12);
}

#[test]
fn audit_report_names_match_space_descriptions() {
    // End-to-end naming consistency: JointCounts group labels equal the
    // "attr=value" convention used everywhere (reports, witnesses, specs).
    let dataset = adult_8k();
    let counts = JointCounts::from_table(
        dataset
            .train
            .contingency(&["income", "gender", "nationality"])
            .unwrap(),
        "income",
    )
    .unwrap();
    let go = counts.group_outcomes(1.0).unwrap();
    assert!(go
        .group_labels()
        .iter()
        .all(|l| l.contains("gender=") && l.contains("nationality=")));
    let eps = go.epsilon();
    let w = eps.witness.unwrap();
    assert!(go.group_labels().contains(&w.group_hi));
    assert!(go.group_labels().contains(&w.group_lo));
}
