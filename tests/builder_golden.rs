//! Golden tests for the `Audit` builder: the paper's Table 1 numbers end to
//! end, and JSON round-tripping of the unified report — all through the
//! facade, exactly as a downstream user would.

use differential_fairness::data::kidney;
use differential_fairness::prelude::*;

fn table1_counts() -> JointCounts {
    JointCounts::from_table(kidney::admissions_counts(), "outcome").unwrap()
}

/// The paper's §5.1 numbers from one builder chain: ε ≈ 1.511 empirical on
/// the full intersection, the smoothed (α = 1) companion, and an empty
/// Theorem 3.2 bound check.
#[test]
fn golden_table1_through_the_builder() {
    let report = Audit::of(&table1_counts())
        .estimator(Empirical)
        .estimator(Smoothed { alpha: 1.0 })
        .subsets(SubsetPolicy::All)
        .baselines(Baselines::all().positive("admit"))
        .run()
        .unwrap();

    // Record accounting is exact.
    assert_eq!(report.total_weight, 700.0);
    assert_eq!(report.n_records, Some(700));

    // Empirical ε (Eq. 6): the paper's 1.511 / 0.2329 / 0.8667.
    let edf = report.estimator("eps-EDF").unwrap();
    let eps = |attrs: &[&str]| edf.get(attrs).unwrap().result.epsilon;
    assert!((eps(&["gender", "race"]) - 1.511).abs() < 1e-3);
    assert!((eps(&["gender"]) - 0.2329).abs() < 1e-3);
    assert!((eps(&["race"]) - 0.8667).abs() < 1e-3);

    // Smoothed at α = 1 (Eq. 7) agrees with the direct Eq. 7 path and is
    // slightly tempered relative to Eq. 6 on this fully populated table.
    let smoothed = report.estimator("eps-DF(a=1)").unwrap();
    let direct = table1_counts().edf_smoothed(1.0).unwrap().epsilon;
    assert!((smoothed.result.epsilon - direct).abs() < 1e-9);
    assert!(smoothed.result.epsilon < edf.result.epsilon);

    // Headline = last estimator; regime per §3.3.
    assert_eq!(report.headline, "eps-DF(a=1)");
    assert_eq!(report.epsilon, smoothed.result);
    assert_eq!(report.regime, PrivacyRegime::Moderate);

    // Theorem 3.2: the bound check ran and found nothing.
    assert_eq!(report.bound_violations, Some(vec![]));

    // The witness names real groups in the attr=value convention.
    let w = edf.result.witness.as_ref().unwrap();
    assert_eq!(w.outcome, "decline");
    assert!(w.group_hi.contains("gender=") && w.group_hi.contains("race="));
}

/// Serialize → deserialize → equal, for a report exercising every optional
/// stage (subsets, baselines, subgroups, bootstrap, amplification,
/// equalized odds).
#[test]
fn golden_report_json_round_trip() {
    let eo = EqualizedOddsCounts::from_records(
        vec!["neg".into(), "pos".into()],
        vec!["p0".into(), "p1".into()],
        vec!["a".into(), "b".into()],
        vec![
            (0usize, 0usize, 0usize),
            (0, 0, 1),
            (0, 1, 1),
            (1, 1, 0),
            (1, 1, 1),
            (1, 0, 0),
        ],
    )
    .unwrap();
    let report = Audit::of(&table1_counts())
        .estimator(Empirical)
        .estimator(Smoothed { alpha: 1.0 })
        .baselines(Baselines::all().positive("admit"))
        .bootstrap(50, 17)
        .equalized_odds(eo, 1.0)
        .reference_epsilon(1.0)
        .run()
        .unwrap();

    let json = serde_json::to_string(&report).unwrap();
    let back: AuditReport = serde_json::from_str(&json).unwrap();
    assert_eq!(back, report);

    // Pretty output round-trips identically too.
    let pretty = serde_json::to_string_pretty(&report).unwrap();
    let back: AuditReport = serde_json::from_str(&pretty).unwrap();
    assert_eq!(back, report);

    // Spot-check the serialized shape downstream pipelines rely on.
    assert!(json.contains("\"total_weight\""));
    assert!(json.contains("\"n_records\":700"));
    assert!(json.contains("\"estimators\""));
    assert!(json.contains("\"bound_violations\""));
}

/// ε = ∞ (a structurally gerrymandered table) survives the JSON round-trip
/// — the vendored serde stub encodes non-finite floats as strings instead
/// of nulling them out.
#[test]
fn golden_infinite_epsilon_round_trips() {
    let counts = JointCounts::from_records(
        Axis::from_strs("y", &["no", "yes"]).unwrap(),
        vec![Axis::from_strs("g", &["a", "b"]).unwrap()],
        vec![("yes", vec!["a"]), ("no", vec!["b"])],
    )
    .unwrap();
    let report = Audit::of(&counts).estimator(Empirical).run().unwrap();
    assert!(report.epsilon.epsilon.is_infinite());
    let json = serde_json::to_string(&report).unwrap();
    let back: AuditReport = serde_json::from_str(&json).unwrap();
    assert_eq!(back, report);
    assert!(back.epsilon.epsilon.is_infinite());
}

/// The three estimator strategies order sensibly on sparse data: smoothing
/// tempers the point estimate, the posterior supremum dominates it.
#[test]
fn golden_estimator_ordering() {
    let counts = table1_counts();
    let report = Audit::of(&counts)
        .estimator(Empirical)
        .estimator(Smoothed { alpha: 1.0 })
        .estimator(PosteriorSup {
            alpha: 1.0,
            samples: 200,
            seed: 5,
        })
        .subsets(SubsetPolicy::None)
        .run()
        .unwrap();
    let by_name = |n: &str| report.estimator(n).unwrap().result.epsilon;
    let empirical = by_name("eps-EDF");
    let smoothed = by_name("eps-DF(a=1)");
    let sup = by_name("eps-sup(a=1,m=200)");
    assert!(smoothed < empirical);
    assert!(sup > empirical, "sup {sup} vs point {empirical}");
}
