//! Golden tests for the `Audit` builder: the paper's Table 1, 2, and 3
//! numbers end to end, JSON round-tripping of the unified report, and the
//! streaming/parallel paths' determinism guarantees — all through the
//! facade, exactly as a downstream user would.

use differential_fairness::data::adult;
use differential_fairness::data::kidney;
use differential_fairness::learn::pipeline::{run_feature_selection, ADULT_BASE_FEATURES};
use differential_fairness::prelude::*;

fn table1_counts() -> JointCounts {
    JointCounts::from_table(kidney::admissions_counts(), "outcome").unwrap()
}

/// The paper's §5.1 numbers from one builder chain: ε ≈ 1.511 empirical on
/// the full intersection, the smoothed (α = 1) companion, and an empty
/// Theorem 3.2 bound check.
#[test]
fn golden_table1_through_the_builder() {
    let report = Audit::of(&table1_counts())
        .estimator(Empirical)
        .estimator(Smoothed { alpha: 1.0 })
        .subsets(SubsetPolicy::All)
        .baselines(Baselines::all().positive("admit"))
        .run()
        .unwrap();

    // Record accounting is exact.
    assert_eq!(report.total_weight, 700.0);
    assert_eq!(report.n_records, Some(700));

    // Empirical ε (Eq. 6): the paper's 1.511 / 0.2329 / 0.8667.
    let edf = report.estimator("eps-EDF").unwrap();
    let eps = |attrs: &[&str]| edf.get(attrs).unwrap().result.epsilon;
    assert!((eps(&["gender", "race"]) - 1.511).abs() < 1e-3);
    assert!((eps(&["gender"]) - 0.2329).abs() < 1e-3);
    assert!((eps(&["race"]) - 0.8667).abs() < 1e-3);

    // Smoothed at α = 1 (Eq. 7) agrees with the direct Eq. 7 path and is
    // slightly tempered relative to Eq. 6 on this fully populated table.
    let smoothed = report.estimator("eps-DF(a=1)").unwrap();
    let direct = table1_counts().edf_smoothed(1.0).unwrap().epsilon;
    assert!((smoothed.result.epsilon - direct).abs() < 1e-9);
    assert!(smoothed.result.epsilon < edf.result.epsilon);

    // Headline = last estimator; regime per §3.3.
    assert_eq!(report.headline, "eps-DF(a=1)");
    assert_eq!(report.epsilon, smoothed.result);
    assert_eq!(report.regime, PrivacyRegime::Moderate);

    // Theorem 3.2: the bound check ran and found nothing.
    assert_eq!(report.bound_violations, Some(vec![]));

    // The witness names real groups in the attr=value convention.
    let w = edf.result.witness.as_ref().unwrap();
    assert_eq!(w.outcome, "decline");
    assert!(w.group_hi.contains("gender=") && w.group_hi.contains("race="));
}

/// Serialize → deserialize → equal, for a report exercising every optional
/// stage (subsets, baselines, subgroups, bootstrap, amplification,
/// equalized odds).
#[test]
fn golden_report_json_round_trip() {
    let eo = EqualizedOddsCounts::from_records(
        vec!["neg".into(), "pos".into()],
        vec!["p0".into(), "p1".into()],
        vec!["a".into(), "b".into()],
        vec![
            (0usize, 0usize, 0usize),
            (0, 0, 1),
            (0, 1, 1),
            (1, 1, 0),
            (1, 1, 1),
            (1, 0, 0),
        ],
    )
    .unwrap();
    let report = Audit::of(&table1_counts())
        .estimator(Empirical)
        .estimator(Smoothed { alpha: 1.0 })
        .baselines(Baselines::all().positive("admit"))
        .bootstrap(50, 17)
        .equalized_odds(eo, 1.0)
        .reference_epsilon(1.0)
        .run()
        .unwrap();

    let json = serde_json::to_string(&report).unwrap();
    let back: AuditReport = serde_json::from_str(&json).unwrap();
    assert_eq!(back, report);

    // Pretty output round-trips identically too.
    let pretty = serde_json::to_string_pretty(&report).unwrap();
    let back: AuditReport = serde_json::from_str(&pretty).unwrap();
    assert_eq!(back, report);

    // Spot-check the serialized shape downstream pipelines rely on.
    assert!(json.contains("\"total_weight\""));
    assert!(json.contains("\"n_records\":700"));
    assert!(json.contains("\"estimators\""));
    assert!(json.contains("\"bound_violations\""));
}

/// ε = ∞ (a structurally gerrymandered table) survives the JSON round-trip
/// — the vendored serde stub encodes non-finite floats as strings instead
/// of nulling them out.
#[test]
fn golden_infinite_epsilon_round_trips() {
    let counts = JointCounts::from_records(
        Axis::from_strs("y", &["no", "yes"]).unwrap(),
        vec![Axis::from_strs("g", &["a", "b"]).unwrap()],
        vec![("yes", vec!["a"]), ("no", vec!["b"])],
    )
    .unwrap();
    let report = Audit::of(&counts).estimator(Empirical).run().unwrap();
    assert!(report.epsilon.epsilon.is_infinite());
    let json = serde_json::to_string(&report).unwrap();
    let back: AuditReport = serde_json::from_str(&json).unwrap();
    assert_eq!(back, report);
    assert!(back.epsilon.epsilon.is_infinite());
}

/// The paper's Table 2 through the builder: ε-EDF of the (calibrated
/// synthetic) Adult training set for all 7 subsets of
/// {race, gender, nationality} — and, as the acceptance gate for the
/// streaming engine, the sharded `of_stream` path (4 shards) must produce
/// a **byte-identical** report JSON to the batch path on this case study.
#[test]
fn golden_table2_through_builder_batch_and_stream() {
    let dataset = adult::synth::generate_default()
        .unwrap()
        .with_protected()
        .unwrap();
    let protected = ["race_m", "gender", "nationality"];

    let batch = Audit::of_frame(&dataset.train, "income", &protected)
        .unwrap()
        .estimator(Empirical)
        .estimator(Smoothed { alpha: 1.0 })
        .subsets(SubsetPolicy::All)
        .run()
        .unwrap();
    assert_eq!(batch.n_records, Some(32_561));

    // Table 2's seven rows (paper values; the synthetic generator is
    // calibrated to them, see EXPERIMENTS.md).
    let audit = batch.estimator("eps-EDF").unwrap();
    let rows: [(&[&str], f64); 7] = [
        (&["nationality"], 0.219),
        (&["race_m"], 0.930),
        (&["gender"], 1.03),
        (&["gender", "nationality"], 1.16),
        (&["race_m", "nationality"], 1.21),
        (&["race_m", "gender"], 1.76),
        (&["race_m", "gender", "nationality"], 2.14),
    ];
    for (attrs, paper) in rows {
        let eps = audit.get(attrs).unwrap().result.epsilon;
        assert!(
            (eps - paper).abs() < 0.05,
            "Table 2 {attrs:?}: measured {eps} vs paper {paper}"
        );
    }
    // The intersectional finding: the full intersection is the worst, and
    // the Theorem 3.2 check ran clean over the complete lattice.
    assert!(audit.result.epsilon > audit.get(&["gender"]).unwrap().result.epsilon);
    assert_eq!(batch.bound_violations, Some(vec![]));

    // Streaming with 4 shards: byte-identical serialized report.
    let streamed = Audit::of_frame_streaming(&dataset.train, "income", &protected, 4096, 4)
        .unwrap()
        .estimator(Empirical)
        .estimator(Smoothed { alpha: 1.0 })
        .subsets(SubsetPolicy::All)
        .run()
        .unwrap();
    assert_eq!(
        serde_json::to_string(&streamed).unwrap(),
        serde_json::to_string(&batch).unwrap(),
        "of_stream(4 shards) must serialize byte-identically to the batch path"
    );
}

/// The paper's Table 3 through the builder: a logistic regression trained
/// without sensitive features, its test predictions audited at α = 1
/// (Eq. 7) with bias amplification against the test data's own ε.
#[test]
fn golden_table3_classifier_audit_through_builder() {
    let dataset = adult::synth::generate_default()
        .unwrap()
        .with_protected()
        .unwrap();
    let run = run_feature_selection(
        &dataset.train,
        &dataset.test,
        &ADULT_BASE_FEATURES,
        &[], // the paper's best row: all sensitive attributes withheld
        "income",
        ">50K",
        &LogisticConfig::default(),
    )
    .unwrap();
    // Paper error band is 14.90–15.21%; the synthetic features land close.
    assert!(
        (0.135..=0.165).contains(&run.error_rate),
        "error rate {} outside the Table 3 band",
        run.error_rate
    );

    // Tally (prediction, protected…) over the test set and audit it.
    let labels: Vec<&str> = run
        .test_predictions
        .iter()
        .map(|&p| if p >= 0.5 { "pred>50K" } else { "pred<=50K" })
        .collect();
    let mut frame = dataset.test.clone();
    frame
        .add_column(Column::categorical("prediction", &labels))
        .unwrap();
    let counts = JointCounts::from_table(
        frame
            .contingency(&["prediction", "race_m", "gender", "nationality"])
            .unwrap(),
        "prediction",
    )
    .unwrap();

    let data_eps = Audit::of_frame(
        &dataset.test,
        "income",
        &["race_m", "gender", "nationality"],
    )
    .unwrap()
    .estimator(Smoothed { alpha: 1.0 })
    .subsets(SubsetPolicy::None)
    .run()
    .unwrap()
    .epsilon
    .epsilon;

    let report = Audit::of_counts(counts)
        .unwrap()
        .estimator(Smoothed { alpha: 1.0 })
        .subsets(SubsetPolicy::None)
        .reference_epsilon(data_eps)
        .run()
        .unwrap();
    let eps = report.epsilon.epsilon;
    // Table 3's classifier ε sits in a plausible band around the data ε.
    assert!(
        (1.5..=4.0).contains(&eps),
        "classifier eps {eps} out of band"
    );
    let amp = report.amplification.unwrap();
    assert!((amp.delta() - (eps - data_eps)).abs() < 1e-12);
    assert_eq!(report.headline, "eps-DF(a=1)");
}

/// Deterministic-seed guarantee for the parallel bootstrap: the same seed
/// must produce the identical replicate list and CI whether replicates run
/// serially or across 4 worker threads.
#[test]
fn golden_parallel_bootstrap_ci_matches_serial() {
    let counts = table1_counts();
    let run = |threads: usize| {
        Audit::of(&counts)
            .estimator(Smoothed { alpha: 1.0 })
            .subsets(SubsetPolicy::None)
            .bootstrap(200, 2024)
            .bootstrap_threads(threads)
            .run()
            .unwrap()
            .bootstrap
            .unwrap()
    };
    let serial = run(1);
    let parallel = run(4);
    assert_eq!(parallel, serial);
    assert_eq!(parallel.interval, serial.interval);
    assert_eq!(parallel.replicates, serial.replicates);
    assert!(serial.interval.0 <= serial.point && serial.point <= serial.interval.1);
}

/// The three estimator strategies order sensibly on sparse data: smoothing
/// tempers the point estimate, the posterior supremum dominates it.
#[test]
fn golden_estimator_ordering() {
    let counts = table1_counts();
    let report = Audit::of(&counts)
        .estimator(Empirical)
        .estimator(Smoothed { alpha: 1.0 })
        .estimator(PosteriorSup {
            alpha: 1.0,
            samples: 200,
            seed: 5,
        })
        .subsets(SubsetPolicy::None)
        .run()
        .unwrap();
    let by_name = |n: &str| report.estimator(n).unwrap().result.epsilon;
    let empirical = by_name("eps-EDF");
    let smoothed = by_name("eps-DF(a=1)");
    let sup = by_name("eps-sup(a=1,m=200)");
    assert!(smoothed < empirical);
    assert!(sup > empirical, "sup {sup} vs point {empirical}");
}
