//! Property-based tests of the core invariants, driven by proptest.

use differential_fairness::prelude::*;
use proptest::prelude::*;

/// Strategy: joint counts over outcome(2) × a(2) × b(3) as 12 cells in
/// [0, 60], with at least one positive cell per (a, b) group so groups are
/// populated (unpopulated groups are covered by unit tests).
fn joint_counts_strategy() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0u32..60, 12).prop_map(|cells| {
        let mut data: Vec<f64> = cells.into_iter().map(f64::from).collect();
        // Ensure every group column has some mass: bump y=0 cell if empty.
        for g in 0..6 {
            if data[g] + data[6 + g] == 0.0 {
                data[g] = 1.0;
            }
        }
        data
    })
}

fn counts_from(data: Vec<f64>) -> JointCounts {
    let axes = vec![
        Axis::from_strs("y", &["0", "1"]).unwrap(),
        Axis::from_strs("a", &["a0", "a1"]).unwrap(),
        Axis::from_strs("b", &["b0", "b1", "b2"]).unwrap(),
    ];
    JointCounts::from_table(ContingencyTable::from_data(axes, data).unwrap(), "y").unwrap()
}

proptest! {
    /// ε is non-negative, and exp(-ε) ≤ every realized ratio ≤ exp(ε).
    #[test]
    fn epsilon_is_a_valid_bound(data in joint_counts_strategy()) {
        let jc = counts_from(data);
        let go = jc.group_outcomes(0.0).unwrap();
        let eps = go.epsilon();
        prop_assert!(eps.epsilon >= 0.0);
        if eps.is_finite() {
            let bound = eps.epsilon + 1e-9;
            for y in 0..go.num_outcomes() {
                for &i in &go.populated_groups() {
                    for &j in &go.populated_groups() {
                        let (pi, pj) = (go.prob(i, y), go.prob(j, y));
                        if pi > 0.0 && pj > 0.0 {
                            prop_assert!((pi / pj).ln().abs() <= bound);
                        }
                    }
                }
            }
        }
    }

    /// Scaling all counts by a constant leaves EDF unchanged.
    #[test]
    fn edf_is_scale_invariant(data in joint_counts_strategy(), scale in 1u32..50) {
        let base = counts_from(data.clone()).edf().unwrap().epsilon;
        let scaled_data: Vec<f64> = data.iter().map(|&v| v * f64::from(scale)).collect();
        let scaled = counts_from(scaled_data).edf().unwrap().epsilon;
        if base.is_finite() {
            prop_assert!((base - scaled).abs() < 1e-10);
        } else {
            prop_assert!(scaled.is_infinite());
        }
    }

    /// The paper's Theorem 3.2 (2ε) and the sharpened convexity bound (1ε):
    /// every subset ε is at most the full-intersection ε.
    #[test]
    fn subset_bounds_hold(data in joint_counts_strategy()) {
        let jc = counts_from(data);
        let audit = subset_audit(&jc, 0.0).unwrap();
        let full = audit.full_intersection().result.epsilon;
        for s in &audit.subsets {
            // Holds with infinities: subset ∞ implies full ∞.
            prop_assert!(
                s.result.epsilon <= full + 1e-9 || (s.result.epsilon.is_infinite() && full.is_infinite()),
                "subset {:?} eps {} > full {}", s.attributes, s.result.epsilon, full
            );
        }
        prop_assert!(audit.verify_bound(1e-9).is_empty());
        prop_assert!(audit.verify_sharpened_bound(1e-9).is_empty());
    }

    /// Smoothing: ε is finite for any α > 0 and vanishes as α → ∞ (every
    /// group's posterior predictive collapses to uniform). Note ε(α) is
    /// *not* globally monotone in α — groups with equal rates but different
    /// sizes diverge under smoothing — so only the limits are asserted.
    #[test]
    fn smoothing_is_finite_and_vanishes_in_the_limit(data in joint_counts_strategy()) {
        let jc = counts_from(data);
        for alpha in [0.5, 2.0, 8.0] {
            prop_assert!(jc.edf_smoothed(alpha).unwrap().epsilon.is_finite());
        }
        let huge = jc.edf_smoothed(1e7).unwrap().epsilon;
        prop_assert!(huge < 1e-4, "alpha → ∞ should give ε → 0, got {huge}");
    }

    /// α → 0 convergence to EDF on strictly positive tables.
    #[test]
    fn smoothing_converges_to_edf(cells in proptest::collection::vec(1u32..60, 12)) {
        let data: Vec<f64> = cells.into_iter().map(f64::from).collect();
        let jc = counts_from(data);
        let edf = jc.edf().unwrap().epsilon;
        let tiny = jc.edf_smoothed(1e-7).unwrap().epsilon;
        prop_assert!((edf - tiny).abs() < 1e-4, "edf {edf} vs tiny-alpha {tiny}");
    }

    /// Group order must not matter: permuting the attribute axes preserves
    /// the full-intersection ε.
    #[test]
    fn epsilon_invariant_to_axis_order(data in joint_counts_strategy()) {
        let jc = counts_from(data.clone());
        let eps_ab = jc.edf().unwrap().epsilon;
        // Rebuild with axes (b, a): reindex cells accordingly.
        let mut permuted = vec![0.0; 12];
        for y in 0..2 {
            for a in 0..2 {
                for b in 0..3 {
                    // original flat: ((y*2)+a)*3 + b; permuted: ((y*3)+b)*2 + a
                    permuted[(y * 3 + b) * 2 + a] = data[(y * 2 + a) * 3 + b];
                }
            }
        }
        let axes = vec![
            Axis::from_strs("y", &["0", "1"]).unwrap(),
            Axis::from_strs("b", &["b0", "b1", "b2"]).unwrap(),
            Axis::from_strs("a", &["a0", "a1"]).unwrap(),
        ];
        let jc2 = JointCounts::from_table(
            ContingencyTable::from_data(axes, permuted).unwrap(),
            "y",
        )
        .unwrap();
        let eps_ba = jc2.edf().unwrap().epsilon;
        if eps_ab.is_finite() {
            prop_assert!((eps_ab - eps_ba).abs() < 1e-10);
        } else {
            prop_assert!(eps_ba.is_infinite());
        }
    }

    /// The privacy identity (Eq. 4): the worst posterior-odds shift equals
    /// ε exactly, for any group weights.
    #[test]
    fn posterior_odds_shift_equals_epsilon(
        probs in proptest::collection::vec(0.01f64..0.99, 3),
        weights in proptest::collection::vec(1u32..100, 3),
    ) {
        let flat: Vec<f64> = probs
            .iter()
            .flat_map(|&p| vec![1.0 - p, p])
            .collect();
        let go = GroupOutcomes::new(
            vec!["no".into(), "yes".into()],
            vec!["g1".into(), "g2".into(), "g3".into()],
            flat,
            weights.into_iter().map(f64::from).collect(),
        )
        .unwrap();
        let eps = go.epsilon().epsilon;
        let shift =
            differential_fairness::core::privacy::max_posterior_odds_shift(&go).unwrap();
        prop_assert!((eps - shift).abs() < 1e-9, "eps {eps} vs shift {shift}");
    }

    /// Eq. 5: expected-utility disparity is bounded by e^ε for random
    /// non-negative utilities.
    #[test]
    fn utility_disparity_bounded(
        probs in proptest::collection::vec(0.01f64..0.99, 3),
        utility in proptest::collection::vec(0.0f64..10.0, 2),
    ) {
        let flat: Vec<f64> = probs
            .iter()
            .flat_map(|&p| vec![1.0 - p, p])
            .collect();
        let go = GroupOutcomes::with_uniform_weights(
            vec!["no".into(), "yes".into()],
            vec!["g1".into(), "g2".into(), "g3".into()],
            flat,
        )
        .unwrap();
        let eps = go.epsilon();
        let disparity =
            differential_fairness::core::privacy::max_utility_disparity(&go, &utility)
                .unwrap();
        prop_assert!(disparity <= eps.probability_ratio_bound() + 1e-9);
    }

    /// Contingency marginalization preserves total mass and commutes with
    /// further marginalization.
    #[test]
    fn marginalization_composes(data in joint_counts_strategy()) {
        let axes = vec![
            Axis::from_strs("y", &["0", "1"]).unwrap(),
            Axis::from_strs("a", &["a0", "a1"]).unwrap(),
            Axis::from_strs("b", &["b0", "b1", "b2"]).unwrap(),
        ];
        let t = ContingencyTable::from_data(axes, data).unwrap();
        let m1 = t.marginalize(&["y", "a"]).unwrap();
        prop_assert!((m1.total() - t.total()).abs() < 1e-9);
        // (y,a,b) → (y,a) → (y)  ==  (y,a,b) → (y)
        let via = m1.marginalize(&["y"]).unwrap();
        let direct = t.marginalize(&["y"]).unwrap();
        for k in 0..2 {
            prop_assert!((via.get(&[k]) - direct.get(&[k])).abs() < 1e-9);
        }
    }

    /// The PCG32 stream is stable across clones and divergent across seeds.
    #[test]
    fn rng_determinism(seed in any::<u64>()) {
        let mut a = Pcg32::new(seed);
        let mut b = a.clone();
        for _ in 0..16 {
            prop_assert_eq!(a.next_u32_raw(), b.next_u32_raw());
        }
        let mut c = Pcg32::new(seed.wrapping_add(1));
        let matches = (0..16).filter(|_| a.next_u32_raw() == c.next_u32_raw()).count();
        prop_assert!(matches < 8);
    }

    /// BiasAmplification algebra: delta and factor are consistent.
    #[test]
    fn amplification_algebra(e1 in 0.0f64..5.0, e2 in 0.0f64..5.0) {
        let amp = BiasAmplification::new(e2, e1);
        prop_assert!((amp.delta() - (e2 - e1)).abs() < 1e-12);
        prop_assert!((amp.utility_disparity_factor() - (e2 - e1).exp()).abs() < 1e-9);
        prop_assert_eq!(amp.amplifies(), e2 > e1);
    }
}
