//! The cross-metric differential test harness: every fairness metric the
//! [`df_core::metric`] registry knows must report **identically across
//! every ingestion path** the crate offers, on one planted-drift replay:
//!
//! 1. **Batch audit** — `Audit::of_counts` over the full tally.
//! 2. **Chunked stream** — `Audit::of_stream` over per-bucket chunks,
//!    sharded 4 ways. Byte-identical `AuditReport` JSON to (1).
//! 3. **Wall-clock monitor** — one `FairnessMonitor` replaying the
//!    stream; its headline result equals the audit headline exactly.
//! 4. **N-shard fleet ingest** — 4 producers round-robining the same
//!    chunks, merged. Byte-identical `MonitorSnapshot` JSON to (3).
//! 5. **HTTP round-trip** — a `df-server` ingesting the same rows over
//!    TCP; `GET /v1/audit?metric=` is byte-identical to (1) and
//!    `GET /v1/monitor?metric=` to the snapshot re-derived locally via
//!    `MonitorSnapshot::with_metric`.
//!
//! Plus golden detection-delay runs: on the PR 4 change-point workload
//! (Poisson 50 rec/s, 60 s window, 5 s buckets, step to ε = 1.2 at
//! t = 300 s) every metric's windowed statistic must drive CUSUM and
//! Page–Hinkley to alarm within one window span — at thresholds rescaled
//! to each statistic's range — and raise zero false alarms on the null
//! stream. ε-DF is unbounded; the worst-case ratio/difference and
//! α-intersectional statistics live in `[0, 1]`, so their targets sit
//! below the ε-scale 0.25.

use differential_fairness::prelude::*;

const RATE: f64 = 50.0;
const BUCKET_SECONDS: f64 = 5.0;
const WINDOW_SECONDS: f64 = 60.0;

/// Every registry metric, by canonical tag. `deo` conditions on `attr1`
/// as the true-label axis.
const METRICS: [&str; 5] = [
    "eps-df",
    "wc-ratio",
    "wc-diff",
    "alpha-if(alpha=0.5)",
    "deo(label=attr1)",
];

fn axes() -> Vec<Axis> {
    vec![
        Axis::from_strs("outcome", &["y0", "y1"]).unwrap(),
        Axis::from_strs("attr0", &["v0", "v1"]).unwrap(),
        Axis::from_strs("attr1", &["v0", "v1"]).unwrap(),
    ]
}

/// The one planted-drift replay every path consumes: 300 s in control,
/// then a step to ε = 1.2, Poisson arrivals over 2×2 groups.
fn drift_replay(seed: u64, segments: &[DriftSegment]) -> TimestampedReplay {
    let mut rng = Pcg32::new(seed);
    timestamped_drift_stream(
        &mut rng,
        &[2, 2],
        0.4,
        segments,
        ArrivalProcess::Poisson { rate: RATE },
    )
    .unwrap()
}

fn stepped_segments() -> [DriftSegment; 2] {
    [DriftSegment::new(300.0, 0.0), DriftSegment::new(300.0, 1.2)]
}

/// The replay's records as label rows, bucketed exactly like
/// `bucket_chunks`: `(rows, first-arrival timestamp)` per bucket.
fn label_buckets(replay: &TimestampedReplay) -> Vec<(Vec<Vec<String>>, f64)> {
    let names = replay.frame.column_names();
    let columns: Vec<(&[u32], &[String])> = names
        .iter()
        .map(|n| replay.frame.column(n).unwrap().as_categorical().unwrap())
        .collect();
    let mut buckets: Vec<(Vec<Vec<String>>, f64)> = Vec::new();
    let mut current: Option<i64> = None;
    for (i, &t) in replay.timestamps.iter().enumerate() {
        let bucket = (t / BUCKET_SECONDS).floor() as i64;
        if current != Some(bucket) {
            current = Some(bucket);
            buckets.push((Vec::new(), t));
        }
        let row = columns
            .iter()
            .map(|(codes, vocab)| vocab[codes[i] as usize].clone())
            .collect();
        buckets.last_mut().unwrap().0.push(row);
    }
    buckets
}

fn json_chunk(rows: &[Vec<String>], at: f64) -> Vec<u8> {
    let rows = rows
        .iter()
        .map(|r| {
            format!(
                "[{}]",
                r.iter()
                    .map(|l| format!("\"{l}\""))
                    .collect::<Vec<_>>()
                    .join(",")
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    format!("{{\"rows\": [{rows}], \"at\": {at}}}").into_bytes()
}

/// The acceptance sweep: one replay, five paths, every metric.
#[test]
fn every_metric_reports_identically_across_all_five_paths() {
    let replay = drift_replay(42, &stepped_segments());
    let chunks = replay.bucket_chunks(BUCKET_SECONDS).unwrap();
    let buckets = label_buckets(&replay);
    assert_eq!(
        chunks.len(),
        buckets.len(),
        "label bucketing must mirror bucket_chunks"
    );

    // Path 5 setup: one server, the rows ingested once over TCP; every
    // metric then queries the same merged state.
    let server = Server::builder("outcome", axes())
        .window_seconds(1e6)
        .bucket_seconds(BUCKET_SECONDS)
        .shards(3)
        .workers(4)
        .bind("127.0.0.1:0")
        .unwrap();
    let mut client = Http1Client::connect(server.local_addr()).unwrap();
    for (rows, at) in &buckets {
        let resp = client
            .request(
                "POST",
                "/v1/ingest/records",
                &[("Content-Type", "application/json")],
                &json_chunk(rows, *at),
            )
            .unwrap();
        assert_eq!(resp.status, 200, "{}", resp.text());
    }
    // The server-shaped reference monitor (subsets None, default metric):
    // by the fleet≡one-monitor law its snapshot is what the server's
    // 3-shard merge serves, and `with_metric` re-derives it per query.
    let mut http_ref = Audit::monitor("outcome", axes())
        .estimator(Smoothed { alpha: 1.0 })
        .window_seconds(1e6)
        .bucket_seconds(BUCKET_SECONDS)
        .build()
        .unwrap();
    for (rows, at) in &buckets {
        http_ref
            .push_at(&LabelChunk::new(rows.clone()), *at)
            .unwrap();
    }
    let http_snap = http_ref.snapshot().unwrap();

    // Paths 1–2 share the batch tally.
    let table = replay
        .frame
        .contingency(&["outcome", "attr0", "attr1"])
        .unwrap();
    let counts = JointCounts::from_table(table, "outcome").unwrap();

    for tag in METRICS {
        // Path 1: batch audit (default estimator pair, default lattice).
        let batch = Audit::of_counts(counts.clone())
            .unwrap()
            .boxed_metric(metric_from_tag(tag).unwrap())
            .run()
            .unwrap();
        assert_eq!(batch.metric, tag);
        let batch_json = serde_json::to_string(&batch).unwrap();

        // Path 2: chunked stream audit, 4 tally shards.
        let stream = Audit::of_stream(
            "outcome",
            axes(),
            chunks.iter().cloned().map(Ok::<_, DfError>),
            4,
        )
        .unwrap()
        .boxed_metric(metric_from_tag(tag).unwrap())
        .run()
        .unwrap();
        assert_eq!(
            serde_json::to_string(&stream).unwrap(),
            batch_json,
            "{tag}: chunked stream audit diverged from the batch audit"
        );

        // Path 3: wall-clock monitor over the same stream.
        let monitor_builder = || {
            Audit::monitor("outcome", axes())
                .estimator(Smoothed { alpha: 1.0 })
                .boxed_metric(metric_from_tag(tag).unwrap())
                .window_seconds(1e6)
                .bucket_seconds(BUCKET_SECONDS)
                .subsets(SubsetPolicy::All)
        };
        let mut monitor = monitor_builder().build().unwrap();
        for chunk in &chunks {
            monitor.push_at(chunk, chunk.timestamp).unwrap();
        }
        let snap = monitor.snapshot().unwrap();
        assert_eq!(snap.metric, tag);
        // The monitor headline is the audit headline (the audit's last
        // default estimator is the monitor's `Smoothed { alpha: 1 }`).
        assert_eq!(
            serde_json::to_string(&snap.epsilon).unwrap(),
            serde_json::to_string(&batch.epsilon).unwrap(),
            "{tag}: monitor headline diverged from the audit headline"
        );
        let snap_json = serde_json::to_string(&snap).unwrap();

        // Path 4: 4-shard fleet ingest of the round-robined chunks.
        let fleet: FleetIngest<TimedChunk> = monitor_builder().fleet(4).unwrap();
        {
            let producers: Vec<_> = (0..4).map(|i| fleet.producer(i).unwrap()).collect();
            for (i, chunk) in chunks.iter().enumerate() {
                producers[i % 4]
                    .send(chunk.clone(), chunk.timestamp)
                    .unwrap();
            }
        }
        let merged = fleet.finish().unwrap();
        assert_eq!(
            serde_json::to_string(&merged).unwrap(),
            snap_json,
            "{tag}: fleet merge diverged from the single monitor"
        );

        // Path 5: the HTTP round-trip. Audit bytes ≡ path 1; monitor
        // bytes ≡ the reference snapshot re-derived under the metric.
        let audit = client.get(&format!("/v1/audit?metric={tag}")).unwrap();
        assert_eq!(audit.status, 200, "{tag}: {}", audit.text());
        assert_eq!(
            audit.text(),
            batch_json,
            "{tag}: HTTP audit diverged from the batch audit"
        );
        let monitor_http = client
            .get(&format!("/v1/monitor?metric={tag}&format=json"))
            .unwrap();
        assert_eq!(monitor_http.status, 200, "{tag}: {}", monitor_http.text());
        let expected = http_snap
            .with_metric(tag, &Smoothed { alpha: 1.0 })
            .unwrap()
            .render(ResponseFormat::Json)
            .unwrap();
        assert_eq!(
            monitor_http.text(),
            expected,
            "{tag}: HTTP monitor diverged from the re-derived snapshot"
        );
    }
    server.shutdown();
}

// ---------------------------------------------------------------------------
// Golden detection-delay runs, per metric.
// ---------------------------------------------------------------------------

/// Per-metric CUSUM / Page–Hinkley parameters `(target, slack,
/// threshold)`, rescaled to each statistic's range (see module docs).
fn detector_scale(tag: &str) -> (f64, f64, f64) {
    match tag {
        // The ε-scale PR 4 configuration (null peak ≈ 0.55 decays fast;
        // a jump to ε = 1.2 sustains ≈ 0.9 of per-sample excess).
        "eps-df" => (0.25, 0.05, 1.0),
        // Per-stratum ε is noisier (half the data per stratum, null
        // peak ≈ 0.38) but the planted shift lands at ≈ 0.85.
        "deo(label=attr1)" => (0.4, 0.05, 0.35),
        // Bounded [0, 1] statistics; targets sit just above each null
        // peak so the null stream accumulates nothing at all.
        "wc-ratio" => (0.45, 0.05, 0.2), // null ≈ 0.42, shift ≈ 0.69
        "wc-diff" => (0.18, 0.03, 0.05), // null ≈ 0.1–0.22, shift ≈ 0.27
        "alpha-if(alpha=0.5)" => (0.6, 0.05, 0.15), // null ≈ 0.56, shift ≈ 0.78
        other => panic!("no detector scale for {other}"),
    }
}

/// Replays `segments` through a 60 s / 5 s monitor computing `tag`,
/// returning (CUSUM alarm times, Page–Hinkley alarm times).
fn metric_alarms(tag: &str, seed: u64, segments: &[DriftSegment]) -> (Vec<f64>, Vec<f64>) {
    let replay = drift_replay(seed, segments);
    let (target, slack, threshold) = detector_scale(tag);
    let mut monitor = Audit::monitor("outcome", axes())
        .estimator(Smoothed { alpha: 1.0 })
        .boxed_metric(metric_from_tag(tag).unwrap())
        .window_seconds(WINDOW_SECONDS)
        .bucket_seconds(BUCKET_SECONDS)
        .changepoint(Cusum::new(target, slack, threshold))
        .changepoint(PageHinkley::new(target, slack, threshold))
        .build()
        .unwrap();
    let mut cusum = Vec::new();
    let mut ph = Vec::new();
    for chunk in replay.bucket_chunks(BUCKET_SECONDS).unwrap() {
        let step = monitor.push_at(&chunk, chunk.timestamp).unwrap();
        for alarm in &step.alarms {
            let at = alarm.at_seconds.expect("wall-clock alarms carry the clock");
            match alarm.detector.name() {
                "cusum" => cusum.push(at),
                "page-hinkley" => ph.push(at),
                other => panic!("unexpected detector {other}"),
            }
        }
    }
    (cusum, ph)
}

/// Prints each metric's windowed statistic trajectory — used once to
/// pick `detector_scale`; kept ignored as a tuning aid.
#[test]
#[ignore = "threshold-tuning probe, run with --ignored --nocapture"]
fn probe_statistic_trajectories() {
    for seed in [42, 7] {
        let replay = drift_replay(seed, &stepped_segments());
        for tag in METRICS {
            let mut monitor = Audit::monitor("outcome", axes())
                .estimator(Smoothed { alpha: 1.0 })
                .boxed_metric(metric_from_tag(tag).unwrap())
                .window_seconds(WINDOW_SECONDS)
                .bucket_seconds(BUCKET_SECONDS)
                .build()
                .unwrap();
            let mut null_peak = f64::MIN;
            let mut post_peak = f64::MIN;
            let mut post_sum = 0.0;
            let mut post_n = 0u32;
            let mut ramp = Vec::new();
            for chunk in replay.bucket_chunks(BUCKET_SECONDS).unwrap() {
                let step = monitor.push_at(&chunk, chunk.timestamp).unwrap();
                let s = step.epsilon.epsilon;
                if chunk.timestamp < 300.0 {
                    null_peak = null_peak.max(s);
                } else if chunk.timestamp >= 360.0 {
                    post_peak = post_peak.max(s);
                    post_sum += s;
                    post_n += 1;
                }
                if (295.0..=380.0).contains(&chunk.timestamp) {
                    ramp.push(format!("{:.0}:{s:.3}", chunk.timestamp));
                }
            }
            println!(
            "seed {seed} {tag}: null peak {null_peak:.3}, post-change mean {:.3} peak {post_peak:.3}\n  ramp {}",
            post_sum / f64::from(post_n),
            ramp.join(" ")
        );
        }
    }
}

#[test]
fn null_stream_raises_zero_false_alarms_for_every_metric() {
    let null = [DriftSegment::new(600.0, 0.0)];
    for tag in METRICS {
        for seed in [42, 7] {
            let (cusum, ph) = metric_alarms(tag, seed, &null);
            assert!(
                cusum.is_empty(),
                "{tag} seed {seed}: CUSUM false alarms at {cusum:?}"
            );
            assert!(
                ph.is_empty(),
                "{tag} seed {seed}: Page-Hinkley false alarms at {ph:?}"
            );
        }
    }
}

#[test]
fn planted_change_is_detected_within_one_window_span_by_every_metric() {
    let change_at = 300.0;
    let stepped = stepped_segments();
    for tag in METRICS {
        for seed in [42, 7] {
            let (cusum, ph) = metric_alarms(tag, seed, &stepped);
            for (name, alarms) in [("CUSUM", &cusum), ("Page-Hinkley", &ph)] {
                let first = *alarms
                    .first()
                    .unwrap_or_else(|| panic!("{tag} seed {seed}: {name} never alarmed"));
                let delay = first - change_at;
                assert!(
                    delay > 0.0,
                    "{tag} seed {seed}: {name} alarmed before the change ({first})"
                );
                assert!(
                    delay <= WINDOW_SECONDS,
                    "{tag} seed {seed}: {name} delay {delay} exceeds one window span"
                );
            }
        }
    }
}

#[test]
fn detection_is_deterministic_under_replay_for_every_metric() {
    let stepped = stepped_segments();
    for tag in METRICS {
        assert_eq!(
            metric_alarms(tag, 42, &stepped),
            metric_alarms(tag, 42, &stepped),
            "{tag}: replay must be deterministic"
        );
    }
}
