//! Property tests for the streaming/sharded audit engine: for *arbitrary*
//! frames, chunk sizes, and thread counts, the streamed audit must be
//! indistinguishable from the batch audit — same ε (to 1e-12; in fact the
//! counts are bit-identical), same serialized report, byte for byte.
//!
//! Case budget: `PROPTEST_CASES` (default 48) — see CI.

use differential_fairness::prelude::*;
use proptest::prelude::*;

/// A random categorical frame: outcome column (arity 2–3) plus 1–2
/// protected attributes (arity 2–4), 1–120 rows, codes drawn arbitrarily.
#[derive(Debug, Clone)]
struct ArbitraryFrame {
    outcome_arity: usize,
    attr_arities: Vec<usize>,
    raw: Vec<u64>,
}

impl ArbitraryFrame {
    fn build(&self) -> DataFrame {
        let n_rows = self.raw.len();
        let col = |name: &str, arity: usize, salt: u64| {
            let codes: Vec<u32> = self
                .raw
                .iter()
                .map(|&r| ((r.rotate_left(salt as u32 * 13) ^ salt) % arity as u64) as u32)
                .collect();
            Column::categorical_from_codes(
                name,
                codes,
                (0..arity).map(|i| format!("c{i}")).collect(),
            )
            .unwrap()
        };
        let mut columns = vec![col("outcome", self.outcome_arity, 1)];
        for (k, &a) in self.attr_arities.iter().enumerate() {
            columns.push(col(&format!("attr{k}"), a, k as u64 + 2));
        }
        assert_eq!(columns[0].len(), n_rows);
        DataFrame::new(columns).unwrap()
    }

    fn attr_names(&self) -> Vec<String> {
        (0..self.attr_arities.len())
            .map(|k| format!("attr{k}"))
            .collect()
    }
}

fn run_batch(frame: &DataFrame, attrs: &[&str]) -> AuditReport {
    Audit::of_frame(frame, "outcome", attrs)
        .unwrap()
        .estimator(Empirical)
        .estimator(Smoothed { alpha: 1.0 })
        .run()
        .unwrap()
}

proptest! {
    /// Streaming ≡ batch for every (chunk size, thread count) combination:
    /// the reports serialize to the identical JSON byte string.
    #[test]
    fn streamed_audit_is_byte_identical_to_batch(
        outcome_arity in 2usize..4,
        attr_arity in 2usize..5,
        n_attrs in 1usize..3,
        raw in proptest::collection::vec(any::<u64>(), 1..120),
        chunk_rows in 1usize..40,
        threads in 1usize..5,
    ) {
        let spec = ArbitraryFrame {
            outcome_arity,
            attr_arities: vec![attr_arity; n_attrs],
            raw,
        };
        let frame = spec.build();
        let attr_names = spec.attr_names();
        let attrs: Vec<&str> = attr_names.iter().map(String::as_str).collect();

        let batch = run_batch(&frame, &attrs);
        let streamed = Audit::of_frame_streaming(&frame, "outcome", &attrs, chunk_rows, threads)
            .unwrap()
            .estimator(Empirical)
            .estimator(Smoothed { alpha: 1.0 })
            .run()
            .unwrap();

        prop_assert!(
            (streamed.epsilon.epsilon - batch.epsilon.epsilon).abs() < 1e-12
                || (streamed.epsilon.epsilon.is_infinite()
                    && batch.epsilon.epsilon.is_infinite())
        );
        let batch_json = serde_json::to_string(&batch).unwrap();
        let streamed_json = serde_json::to_string(&streamed).unwrap();
        prop_assert_eq!(streamed_json, batch_json);
    }

    /// Shard-count invariance: the same stream tallied with 1–6 shards
    /// yields one ε, to 1e-12 (the merged counts are in fact identical).
    #[test]
    fn epsilon_is_invariant_in_the_shard_count(
        raw in proptest::collection::vec(any::<u64>(), 1..200),
        chunk_rows in 1usize..25,
    ) {
        let spec = ArbitraryFrame {
            outcome_arity: 2,
            attr_arities: vec![2, 2],
            raw,
        };
        let frame = spec.build();
        let eps_of = |threads: usize| {
            Audit::of_frame_streaming(
                &frame,
                "outcome",
                &["attr0", "attr1"],
                chunk_rows,
                threads,
            )
            .unwrap()
            .estimator(Smoothed { alpha: 1.0 })
            .run()
            .unwrap()
            .epsilon
            .epsilon
        };
        let reference = eps_of(1);
        for threads in 2..=6 {
            let eps = eps_of(threads);
            prop_assert!(
                (eps - reference).abs() < 1e-12,
                "threads={threads}: {eps} vs {reference}"
            );
        }
    }

    /// The streaming CSV reader agrees with the in-memory paths: parsing
    /// the frame's CSV rendering in fixed-size batches tallies the same
    /// report as the frame itself.
    #[test]
    fn csv_stream_matches_frame_audit(
        raw in proptest::collection::vec(any::<u64>(), 1..80),
        chunk_rows in 1usize..20,
        threads in 1usize..4,
    ) {
        let spec = ArbitraryFrame {
            outcome_arity: 2,
            attr_arities: vec![3],
            raw,
        };
        let frame = spec.build();
        let batch = run_batch(&frame, &["attr0"]);

        let csv = differential_fairness::data::workloads::frame_to_csv(
            &frame,
            &["outcome", "attr0"],
        )
        .unwrap();
        let chunks = CsvChunks::new(
            csv.as_bytes(),
            differential_fairness::data::csv::CsvOptions::default(),
            chunk_rows,
        )
        .unwrap();
        let axes = FrameChunks::new(&frame, &["outcome", "attr0"], 1)
            .unwrap()
            .axes()
            .unwrap();
        let streamed = Audit::of_stream(
            "outcome",
            axes,
            chunks.map(|r| r.map_err(|e| DfError::Invalid(e.to_string()))),
            threads,
        )
        .unwrap()
        .estimator(Empirical)
        .estimator(Smoothed { alpha: 1.0 })
        .run()
        .unwrap();

        prop_assert_eq!(
            serde_json::to_string(&streamed).unwrap(),
            serde_json::to_string(&batch).unwrap()
        );
    }
}
