//! End-to-end telemetry test: real traffic over TCP through
//! [`Http1Client`], then a `/v1/metrics` scrape (text and JSON) that
//! must cover all three instrumented layers — request latency and
//! status-class counters at the HTTP edge, per-shard traffic and
//! staleness in the fleet ingest, and alert counts from the shard
//! monitors — plus the trace ring, the extended health check, and the
//! access-log hook.

use differential_fairness::prelude::*;
use serde_json::Value;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::Duration;

fn axes() -> Vec<Axis> {
    vec![
        Axis::from_strs("y", &["no", "yes"]).unwrap(),
        Axis::from_strs("g", &["a", "b"]).unwrap(),
    ]
}

fn num(v: &Value) -> f64 {
    match v {
        Value::Int(i) => *i as f64,
        Value::Float(f) => *f,
        other => panic!("expected a number, got {other:?}"),
    }
}

/// The `"series"` array of the named metric in a `?format=json` scrape.
fn series<'a>(scrape: &'a Value, metric: &str) -> &'a [Value] {
    let metrics = scrape.field("metrics").as_arr("metrics").unwrap();
    let found = metrics
        .iter()
        .find(|m| matches!(m.field("name"), Value::Str(n) if n == metric))
        .unwrap_or_else(|| panic!("metric {metric} not in the scrape"));
    found.field("series").as_arr("series").unwrap()
}

/// The single series of `metric` whose labels include `(key, value)`.
fn series_with<'a>(scrape: &'a Value, metric: &str, key: &str, value: &str) -> &'a Value {
    series(scrape, metric)
        .iter()
        .find(|s| matches!(s.field("labels").field(key), Value::Str(v) if v == value))
        .unwrap_or_else(|| panic!("{metric}{{{key}={value}}} not in the scrape"))
}

fn raw_exchange(addr: SocketAddr, bytes: &[u8]) -> String {
    let mut stream = TcpStream::connect(addr).unwrap();
    // The server may respond and close before we half-close; a failed
    // write/shutdown is part of the scenario, not a test failure.
    let _ = stream.write_all(bytes);
    let _ = stream.shutdown(std::net::Shutdown::Write);
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut out = String::new();
    let _ = stream.read_to_string(&mut out);
    out
}

#[test]
fn metrics_scrape_covers_all_three_layers() {
    let log: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&log);
    let server = Server::builder("y", axes())
        .window_seconds(1e6)
        .bucket_seconds(1.0)
        .shards(2)
        .workers(2)
        .alert(AlertRule::epsilon_above(1.0))
        .trace_spans(64)
        .access_log(move |r| sink.lock().unwrap().push(r.to_line()))
        .bind("127.0.0.1:0")
        .unwrap();
    let mut c = Http1Client::connect(server.local_addr()).unwrap();

    // Shard 0, data time 10: a balanced chunk (ε = 0, no alert), then a
    // heavily skewed one (smoothed ε = ln 9 > 1 ⇒ exactly one alert).
    let balanced = br#"[["no","a"],["yes","a"],["no","b"],["yes","b"]]"#;
    let resp = c
        .request("POST", "/v1/ingest/records?at=10&shard=0", &[], balanced)
        .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.text());
    let skewed: Vec<Vec<&str>> = (0..8)
        .map(|_| vec!["no", "a"])
        .chain((0..8).map(|_| vec!["yes", "b"]))
        .collect();
    let body = serde_json::to_string(&Value::Arr(
        skewed
            .iter()
            .map(|r| Value::Arr(r.iter().map(|s| Value::Str(s.to_string())).collect()))
            .collect(),
    ))
    .unwrap();
    let resp = c
        .request(
            "POST",
            "/v1/ingest/records?at=10&shard=0",
            &[],
            body.as_bytes(),
        )
        .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.text());

    // Shard 1, data time 4: one quiet row — six seconds of lag.
    let resp = c
        .request(
            "POST",
            "/v1/ingest/records?at=4&shard=1",
            &[],
            br#"[["no","a"]]"#,
        )
        .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.text());

    // Two identical audits: the first cuts the fleet (both caches miss),
    // the second is served entirely warm (both caches hit).
    assert_eq!(c.get("/v1/audit").unwrap().status, 200);
    assert_eq!(c.get("/v1/audit").unwrap().status, 200);

    // A routed 404 and a pre-route parse failure: both must land in the
    // status-class counters under endpoint="other".
    assert_eq!(c.get("/no/such/route").unwrap().status, 404);
    let garbage = raw_exchange(server.local_addr(), b"BLAH\r\n\r\n");
    assert!(garbage.starts_with("HTTP/1.1 400"), "{garbage}");

    // --- Prometheus text exposition. ---
    let text_resp = c.get("/v1/metrics").unwrap();
    assert_eq!(text_resp.status, 200);
    assert_eq!(
        text_resp.header("content-type"),
        Some("text/plain; version=0.0.4")
    );
    let text = text_resp.text();
    for needle in [
        "df_requests_total{endpoint=\"ingest_records\",status=\"2xx\"} 3",
        "df_requests_total{endpoint=\"audit\",status=\"2xx\"} 2",
        "df_requests_total{endpoint=\"other\",status=\"4xx\"} 2",
        "df_request_seconds_count{endpoint=\"audit\"} 2",
        "df_ingest_rows_total{shard=\"0\"} 20",
        "df_ingest_rows_total{shard=\"1\"} 1",
        "df_ingest_chunks_total{shard=\"0\"} 2",
        "df_cache_requests_total{cache=\"snapshot\",result=\"hit\"} 1",
        "df_cache_requests_total{cache=\"snapshot\",result=\"miss\"} 1",
        "df_cache_requests_total{cache=\"render\",result=\"hit\"} 1",
        "df_cache_requests_total{cache=\"render\",result=\"miss\"} 1",
        "df_snapshots_total 1",
        "df_monitor_alerts_total 1",
        "df_monitor_evictions_total 0",
        "# TYPE df_request_seconds histogram",
        "# HELP df_fleet_max_lag_seconds",
    ] {
        assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
    }

    // --- JSON exposition: the numbers the dashboards would read. ---
    let json_resp = c.get("/v1/metrics?format=json").unwrap();
    assert_eq!(json_resp.status, 200);
    assert_eq!(json_resp.header("content-type"), Some("application/json"));
    let scrape = serde_json::parse(&json_resp.text()).unwrap();
    let lag = &series(&scrape, "df_fleet_max_lag_seconds")[0];
    assert!((num(lag.field("value")) - 6.0).abs() < 1e-9);
    let shard0 = series_with(&scrape, "df_shard_last_seen_seconds", "shard", "0");
    assert!((num(shard0.field("value")) - 10.0).abs() < 1e-9);
    let audit_latency = series_with(&scrape, "df_request_seconds", "endpoint", "audit");
    assert_eq!(num(audit_latency.field("count")), 2.0);
    assert!(num(audit_latency.field("p99")) > 0.0);
    let pushes = &series(&scrape, "df_monitor_push_seconds")[0];
    assert_eq!(num(pushes.field("count")), 3.0);
    assert!(num(series(&scrape, "df_uptime_seconds")[0].field("value")) >= 0.0);
    let cut = &series(&scrape, "df_snapshot_cut_seconds")[0];
    assert_eq!(num(cut.field("count")), 1.0);
    // Queue depths have converged to zero once the cut completed.
    for s in series(&scrape, "df_ingest_queue_depth") {
        assert_eq!(num(s.field("value")), 0.0);
    }

    // Unknown scrape format → a plain 400, not a negotiation error.
    assert_eq!(c.get("/v1/metrics?format=yaml").unwrap().status, 400);

    // --- Trace ring: spans with fields, recent and slowest orders. ---
    let trace = serde_json::parse(&c.get("/v1/trace?n=50").unwrap().text()).unwrap();
    assert_eq!(trace.field("enabled"), &Value::Bool(true));
    let spans = trace.field("spans").as_arr("spans").unwrap();
    assert!(spans.len() >= 7, "only {} spans traced", spans.len());
    let audit_span = spans
        .iter()
        .find(|s| matches!(s.field("name"), Value::Str(n) if n == "audit"))
        .unwrap();
    assert_eq!(
        audit_span.field("fields").field("status"),
        &Value::Str("200".to_string())
    );
    assert!(num(audit_span.field("duration_seconds")) >= 0.0);
    let slowest = serde_json::parse(&c.get("/v1/trace?order=slowest&n=2").unwrap().text()).unwrap();
    assert!(slowest.field("spans").as_arr("spans").unwrap().len() <= 2);
    assert_eq!(c.get("/v1/trace?order=sideways").unwrap().status, 400);

    // --- Extended health check. ---
    let health = serde_json::parse(&c.get("/v1/healthz").unwrap().text()).unwrap();
    assert_eq!(health.field("status"), &Value::Str("ok".to_string()));
    assert!(matches!(health.field("build"), Value::Str(v) if !v.is_empty()));
    assert!(num(health.field("uptime_seconds")) >= 0.0);
    assert_eq!(
        health.field("queue_depths").as_arr("depths").unwrap().len(),
        2
    );
    assert!((num(health.field("max_lag_seconds")) - 6.0).abs() < 1e-9);

    server.shutdown();

    // --- Access log: one line per response, error paths included. ---
    let lines = log.lock().unwrap().clone();
    let of = |needle: &str| lines.iter().filter(|l| l.contains(needle)).count();
    assert_eq!(of("path=/v1/audit "), 2, "{lines:#?}");
    assert_eq!(of("status=404"), 1, "{lines:#?}");
    assert_eq!(of("method=- path=- "), 1, "{lines:#?}");
    assert!(lines.iter().any(|l| l.contains("path=/v1/metrics")
        && l.contains("status=200")
        && l.contains("query=\"format=json\"")));
}

#[test]
fn tracing_can_be_disabled_and_metrics_stay_uncached() {
    let server = Server::builder("y", axes())
        .window_seconds(1e6)
        .bucket_seconds(1.0)
        .shards(1)
        .workers(1)
        .trace_spans(0)
        .bind("127.0.0.1:0")
        .unwrap();
    let mut c = Http1Client::connect(server.local_addr()).unwrap();

    let trace = serde_json::parse(&c.get("/v1/trace").unwrap().text()).unwrap();
    assert_eq!(trace.field("enabled"), &Value::Bool(false));
    assert!(trace.field("spans").as_arr("spans").unwrap().is_empty());

    // Latency histograms still fill with tracing off, and successive
    // scrapes see successively newer values (no response cache).
    assert_eq!(c.get("/v1/healthz").unwrap().status, 200);
    let first = c.get("/v1/metrics").unwrap().text();
    assert!(first.contains("df_request_seconds_count{endpoint=\"healthz\"} 1"));
    assert!(first.contains("df_requests_total{endpoint=\"metrics\",status=\"2xx\"} 0"));
    let second = c.get("/v1/metrics").unwrap().text();
    assert!(second.contains("df_requests_total{endpoint=\"metrics\",status=\"2xx\"} 1"));

    // Wrong method on the new routes answers 405 with an Allow header.
    let resp = c.request("POST", "/v1/metrics", &[], b"").unwrap();
    assert_eq!(resp.status, 405);
    assert_eq!(resp.header("allow"), Some("GET"));
    server.shutdown();
}
