//! The sliding-window monitor's core guarantee: the ring-buffer path
//! (merge new bucket, subtract expired bucket) yields **byte-identical**
//! ε certificates to a fresh batch `Audit` of the very same window
//! contents, at every step — evictions included. Counts are integers, so
//! `subtract` is the exact inverse of `merge`; these tests make that
//! exactness observable at the API surface, on random streams and on a
//! realistic drifting replay.
//!
//! Case budget: `PROPTEST_CASES` (CI pins 64).

use differential_fairness::prelude::*;
use proptest::prelude::*;

/// A chunk of `(outcome, group)` index pairs.
#[derive(Debug, Clone)]
struct Pairs(Vec<[usize; 2]>);

impl Tally for Pairs {
    fn tally_into(&self, shard: &mut PartialCounts) -> differential_fairness::prob::Result<()> {
        for idx in &self.0 {
            shard.record(idx);
        }
        Ok(())
    }
}

fn axes(arity: usize) -> Vec<Axis> {
    vec![
        Axis::from_strs("y", &["no", "yes"]).unwrap(),
        Axis::new("g", (0..arity).map(|i| format!("g{i}")).collect()).unwrap(),
    ]
}

/// Batch-audits `rows` and returns the headline ε, serialized.
fn batch_epsilon_json(rows: &[[usize; 2]], arity: usize) -> String {
    let mut shard = PartialCounts::zeros(axes(arity)).unwrap();
    for idx in rows {
        shard.record(idx);
    }
    let counts = JointCounts::from_table(shard.into_table(), "y").unwrap();
    let report = Audit::of_counts(counts)
        .unwrap()
        .estimator(Smoothed { alpha: 1.0 })
        .subsets(SubsetPolicy::None)
        .run()
        .unwrap();
    serde_json::to_string(&report.epsilon).unwrap()
}

proptest! {
    /// At every push — through warm-up, the first eviction, and steady
    /// state — the monitor's ε serializes to the same bytes as a batch
    /// `Audit` of the records the window claims to hold, and the window
    /// counts equal a fresh tally of those records bit for bit.
    #[test]
    fn windowed_epsilon_is_byte_identical_to_batch_audit(
        arity in 2usize..4,
        window in 8usize..33,
        chunks in proptest::collection::vec(
            proptest::collection::vec(any::<u64>(), 1..8),
            1..30,
        ),
    ) {
        let mut monitor = Audit::monitor("y", axes(arity))
            .estimator(Smoothed { alpha: 1.0 })
            .window(window)
            .build()
            .unwrap();
        // The reference model: a deque of chunks under the same eviction
        // rule (evict whole oldest buckets while over W records).
        let mut held: Vec<Vec<[usize; 2]>> = Vec::new();
        let mut held_rows = 0usize;
        for picks in &chunks {
            let rows: Vec<[usize; 2]> = picks
                .iter()
                .map(|&p| [(p % 2) as usize, (p as usize / 2) % arity])
                .collect();
            let step = monitor.push(&Pairs(rows.clone())).unwrap();
            held.push(rows);
            held_rows += picks.len();
            while held_rows > window {
                held_rows -= held.remove(0).len();
            }
            prop_assert_eq!(step.window_rows as usize, held_rows);
            let window_rows: Vec<[usize; 2]> =
                held.iter().flatten().copied().collect();
            // Counts: bit-identical to a fresh tally.
            let mut fresh = PartialCounts::zeros(axes(arity)).unwrap();
            for idx in &window_rows {
                fresh.record(idx);
            }
            prop_assert_eq!(monitor.window_counts().data(), fresh.table().data());
            // ε: byte-identical to the batch audit.
            let monitor_json = serde_json::to_string(&step.epsilon).unwrap();
            prop_assert_eq!(monitor_json, batch_epsilon_json(&window_rows, arity));
        }
    }

    /// Splitting one stream across two shard monitors and merging their
    /// snapshots gives the same window counts and ε as one monitor that
    /// saw everything (windows sized so nothing evicts: the union is then
    /// exactly the whole stream).
    #[test]
    fn sharded_snapshots_merge_to_the_union(
        arity in 2usize..4,
        picks in proptest::collection::vec(any::<u64>(), 2..60),
        at_frac in 1usize..9,
    ) {
        let rows: Vec<[usize; 2]> = picks
            .iter()
            .map(|&p| [(p % 2) as usize, (p as usize / 2) % arity])
            .collect();
        let cut = (rows.len() * at_frac / 10).clamp(1, rows.len() - 1);
        let build = || {
            Audit::monitor("y", axes(arity))
                .estimator(Smoothed { alpha: 1.0 })
                .window(rows.len())
                .build()
                .unwrap()
        };
        let mut shard_a = build();
        shard_a.push(&Pairs(rows[..cut].to_vec())).unwrap();
        let mut shard_b = build();
        shard_b.push(&Pairs(rows[cut..].to_vec())).unwrap();
        let merged = shard_a
            .snapshot()
            .unwrap()
            .merge(&shard_b.snapshot().unwrap(), &Smoothed { alpha: 1.0 })
            .unwrap();
        let mut whole = build();
        whole.push(&Pairs(rows.clone())).unwrap();
        let direct = whole.snapshot().unwrap();
        prop_assert_eq!(&merged.window, &direct.window);
        prop_assert_eq!(
            serde_json::to_string(&merged.epsilon).unwrap(),
            serde_json::to_string(&direct.epsilon).unwrap()
        );
        prop_assert_eq!(merged.window_rows, rows.len() as u64);
    }
}

/// Window size of the drift replay; also the boundary chunk size (a
/// chunk exactly filling the window replaces it wholesale on each push).
const DRIFT_WINDOW: usize = 3_000;
const DRIFT_ROWS: usize = 24_000;

/// End-to-end drift replay through the facade: a `FrameChunks` source
/// feeds the monitor, the planted drift pushes ε through the alert
/// threshold, and spot-checked windows stay byte-identical to batch
/// audits of the same rows. `chunk_rows` parameterizes the feed
/// granularity — from per-record pushes to chunk == window.
fn drift_replay(workload_seed: u64, chunk_rows: usize) -> Result<(), TestCaseError> {
    let mut rng = Pcg32::new(workload_seed);
    let frame = drift_replay_frame(&mut rng, DRIFT_ROWS, &[2, 2], 0.4, 0.0, 2.0).unwrap();
    let columns = ["outcome", "attr0", "attr1"];

    let chunks = FrameChunks::new(&frame, &columns, chunk_rows).unwrap();
    let schema = chunks.axes().unwrap();
    // Decay is applied once per absorbed bucket, so the horizon's
    // timescale is `chunk_rows / ln(1/λ)` *records* — hold that constant
    // across chunk sizes (≈ 25k records, λ = 0.98 at 500-row chunks) or
    // per-record pushes would turn the "long-run" horizon into a
    // 50-record EMA that outruns the window.
    let lambda = 0.98f64.powf(chunk_rows as f64 / 500.0);
    let mut monitor = Audit::monitor("outcome", schema.clone())
        .estimator(Smoothed { alpha: 1.0 })
        .window(DRIFT_WINDOW)
        .decay(lambda)
        .alert(AlertRule::epsilon_above(1.0).for_consecutive(3))
        .build()
        .unwrap();

    // Keep the raw coded rows around to re-audit windows from scratch.
    let (outcome, _) = frame.column("outcome").unwrap().as_categorical().unwrap();
    let (a0, _) = frame.column("attr0").unwrap().as_categorical().unwrap();
    let (a1, _) = frame.column("attr1").unwrap().as_categorical().unwrap();

    let mut early = None;
    let mut late = None;
    let mut checked = 0usize;
    let mut processed = 0usize;
    for chunk in chunks {
        let step = monitor.push(&chunk).unwrap();
        processed += chunk.n_rows();
        // Byte-identity spot checks: once warm (first push past 2 W), and
        // on the final window. `window_rows` sizes the re-tally — when
        // the chunk size does not divide W, the ring legitimately holds
        // slightly fewer than W rows.
        let warm_check = early.is_none() && processed >= 2 * DRIFT_WINDOW;
        if warm_check || processed == DRIFT_ROWS {
            let held = monitor.window_rows();
            prop_assert_eq!(step.window_rows as usize, held);
            prop_assert!(held <= DRIFT_WINDOW);
            let mut fresh = PartialCounts::zeros(schema.clone()).unwrap();
            for i in processed - held..processed {
                fresh.record(&[outcome[i] as usize, a0[i] as usize, a1[i] as usize]);
            }
            let counts = JointCounts::from_table(fresh.into_table(), "outcome").unwrap();
            let batch = Audit::of_counts(counts)
                .unwrap()
                .estimator(Smoothed { alpha: 1.0 })
                .subsets(SubsetPolicy::None)
                .run()
                .unwrap();
            let monitor_json = serde_json::to_string(&step.epsilon).unwrap();
            let batch_json = serde_json::to_string(&batch.epsilon).unwrap();
            prop_assert!(
                monitor_json == batch_json,
                "windowed eps must match the batch audit at record {processed} \
                 (chunk {chunk_rows}): {monitor_json} vs {batch_json}"
            );
            checked += 1;
        }
        if warm_check {
            early = Some(step.epsilon.epsilon);
        }
        if processed == DRIFT_ROWS {
            late = Some(step.epsilon.epsilon);
        }
    }
    prop_assert_eq!(checked, 2);
    let (early, late) = (early.unwrap(), late.unwrap());
    prop_assert!(
        late > early + 0.5,
        "drift must raise windowed eps: early {early}, late {late}"
    );
    // The sustained breach fired (hysteresis suppresses refires while ε
    // stays above threshold; noise dipping across it may re-arm the rule
    // — the finer the chunks, the more often ε is sampled near the
    // threshold — but the log never approaches one alert per window).
    let snap = monitor.snapshot().unwrap();
    prop_assert!(!snap.alerts.is_empty());
    prop_assert!(
        snap.alerts.len() < 100,
        "alert flood: {} alerts",
        snap.alerts.len()
    );
    let alert = &snap.alerts[0];
    prop_assert!(alert.epsilon > 1.0);
    prop_assert!(alert.witness.is_some(), "worst-group witness attached");
    // The decayed horizon lags the window on a monotone drift.
    prop_assert!(snap.trend().unwrap() > 0.0);
    prop_assert_eq!(snap.records_seen as usize, DRIFT_ROWS);
    Ok(())
}

proptest! {
    // Every case sweeps all four chunk sizes — per-record, non-dividing,
    // the classic mid-size, and the chunk == window boundary — so the
    // boundary cases are exercised deterministically each run; proptest
    // varies the drifting workload underneath them. The sweep re-audits
    // windows from scratch, so a few cases already cost seconds.
    #![proptest_config(ProptestConfig::with_cases(3))]
    #[test]
    fn drift_replay_raises_epsilon_for_every_chunk_size(workload_seed in any::<u64>()) {
        for chunk_rows in [1usize, 7, 100, DRIFT_WINDOW] {
            drift_replay(workload_seed, chunk_rows)?;
        }
    }
}
