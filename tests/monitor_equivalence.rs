//! The sliding-window monitor's core guarantee: the ring-buffer path
//! (merge new bucket, subtract expired bucket) yields **byte-identical**
//! ε certificates to a fresh batch `Audit` of the very same window
//! contents, at every step — evictions included. Counts are integers, so
//! `subtract` is the exact inverse of `merge`; these tests make that
//! exactness observable at the API surface, on random streams and on a
//! realistic drifting replay.
//!
//! Case budget: `PROPTEST_CASES` (CI pins 64).

use differential_fairness::prelude::*;
use proptest::prelude::*;

/// A chunk of `(outcome, group)` index pairs.
#[derive(Debug, Clone)]
struct Pairs(Vec<[usize; 2]>);

impl Tally for Pairs {
    fn tally_into(&self, shard: &mut PartialCounts) -> differential_fairness::prob::Result<()> {
        for idx in &self.0 {
            shard.record(idx);
        }
        Ok(())
    }
}

fn axes(arity: usize) -> Vec<Axis> {
    vec![
        Axis::from_strs("y", &["no", "yes"]).unwrap(),
        Axis::new("g", (0..arity).map(|i| format!("g{i}")).collect()).unwrap(),
    ]
}

/// Batch-audits `rows` and returns the headline ε, serialized.
fn batch_epsilon_json(rows: &[[usize; 2]], arity: usize) -> String {
    let mut shard = PartialCounts::zeros(axes(arity)).unwrap();
    for idx in rows {
        shard.record(idx);
    }
    let counts = JointCounts::from_table(shard.into_table(), "y").unwrap();
    let report = Audit::of_counts(counts)
        .unwrap()
        .estimator(Smoothed { alpha: 1.0 })
        .subsets(SubsetPolicy::None)
        .run()
        .unwrap();
    serde_json::to_string(&report.epsilon).unwrap()
}

proptest! {
    /// At every push — through warm-up, the first eviction, and steady
    /// state — the monitor's ε serializes to the same bytes as a batch
    /// `Audit` of the records the window claims to hold, and the window
    /// counts equal a fresh tally of those records bit for bit.
    #[test]
    fn windowed_epsilon_is_byte_identical_to_batch_audit(
        arity in 2usize..4,
        window in 8usize..33,
        chunks in proptest::collection::vec(
            proptest::collection::vec(any::<u64>(), 1..8),
            1..30,
        ),
    ) {
        let mut monitor = Audit::monitor("y", axes(arity))
            .estimator(Smoothed { alpha: 1.0 })
            .window(window)
            .build()
            .unwrap();
        // The reference model: a deque of chunks under the same eviction
        // rule (evict whole oldest buckets while over W records).
        let mut held: Vec<Vec<[usize; 2]>> = Vec::new();
        let mut held_rows = 0usize;
        for picks in &chunks {
            let rows: Vec<[usize; 2]> = picks
                .iter()
                .map(|&p| [(p % 2) as usize, (p as usize / 2) % arity])
                .collect();
            let step = monitor.push(&Pairs(rows.clone())).unwrap();
            held.push(rows);
            held_rows += picks.len();
            while held_rows > window {
                held_rows -= held.remove(0).len();
            }
            prop_assert_eq!(step.window_rows as usize, held_rows);
            let window_rows: Vec<[usize; 2]> =
                held.iter().flatten().copied().collect();
            // Counts: bit-identical to a fresh tally.
            let mut fresh = PartialCounts::zeros(axes(arity)).unwrap();
            for idx in &window_rows {
                fresh.record(idx);
            }
            prop_assert_eq!(monitor.window_counts().data(), fresh.table().data());
            // ε: byte-identical to the batch audit.
            let monitor_json = serde_json::to_string(&step.epsilon).unwrap();
            prop_assert_eq!(monitor_json, batch_epsilon_json(&window_rows, arity));
        }
    }

    /// Splitting one stream across two shard monitors and merging their
    /// snapshots gives the same window counts and ε as one monitor that
    /// saw everything (windows sized so nothing evicts: the union is then
    /// exactly the whole stream).
    #[test]
    fn sharded_snapshots_merge_to_the_union(
        arity in 2usize..4,
        picks in proptest::collection::vec(any::<u64>(), 2..60),
        at_frac in 1usize..9,
    ) {
        let rows: Vec<[usize; 2]> = picks
            .iter()
            .map(|&p| [(p % 2) as usize, (p as usize / 2) % arity])
            .collect();
        let cut = (rows.len() * at_frac / 10).clamp(1, rows.len() - 1);
        let build = || {
            Audit::monitor("y", axes(arity))
                .estimator(Smoothed { alpha: 1.0 })
                .window(rows.len())
                .build()
                .unwrap()
        };
        let mut shard_a = build();
        shard_a.push(&Pairs(rows[..cut].to_vec())).unwrap();
        let mut shard_b = build();
        shard_b.push(&Pairs(rows[cut..].to_vec())).unwrap();
        let merged = shard_a
            .snapshot()
            .unwrap()
            .merge(&shard_b.snapshot().unwrap(), &Smoothed { alpha: 1.0 })
            .unwrap();
        let mut whole = build();
        whole.push(&Pairs(rows.clone())).unwrap();
        let direct = whole.snapshot().unwrap();
        prop_assert_eq!(&merged.window, &direct.window);
        prop_assert_eq!(
            serde_json::to_string(&merged.epsilon).unwrap(),
            serde_json::to_string(&direct.epsilon).unwrap()
        );
        prop_assert_eq!(merged.window_rows, rows.len() as u64);
    }
}

/// End-to-end drift replay through the facade: a `FrameChunks` source
/// feeds the monitor, the planted drift pushes ε through the alert
/// threshold, and spot-checked windows stay byte-identical to batch
/// audits of the same rows.
#[test]
fn drift_replay_raises_epsilon_and_fires_the_alert() {
    let mut rng = Pcg32::new(42);
    let n_rows = 60_000;
    let frame = drift_replay_frame(&mut rng, n_rows, &[2, 2], 0.4, 0.0, 2.0).unwrap();
    let columns = ["outcome", "attr0", "attr1"];
    let chunk_rows = 500;
    let window = 5_000;

    let chunks = FrameChunks::new(&frame, &columns, chunk_rows).unwrap();
    let schema = chunks.axes().unwrap();
    let mut monitor = Audit::monitor("outcome", schema.clone())
        .estimator(Smoothed { alpha: 1.0 })
        .window(window)
        .decay(0.98)
        .alert(AlertRule::epsilon_above(1.0).for_consecutive(3))
        .build()
        .unwrap();

    // Keep the raw coded rows around to re-audit windows from scratch.
    let (outcome, _) = frame.column("outcome").unwrap().as_categorical().unwrap();
    let (a0, _) = frame.column("attr0").unwrap().as_categorical().unwrap();
    let (a1, _) = frame.column("attr1").unwrap().as_categorical().unwrap();

    let mut early = None;
    let mut late = None;
    let mut processed = 0usize;
    for chunk in chunks {
        let step = monitor.push(&chunk).unwrap();
        processed += chunk.n_rows();
        // Byte-identity spot checks once the window is warm.
        if processed == 10_000 || processed == n_rows {
            let start = processed - window;
            let mut fresh = PartialCounts::zeros(schema.clone()).unwrap();
            for i in start..processed {
                fresh.record(&[outcome[i] as usize, a0[i] as usize, a1[i] as usize]);
            }
            let counts = JointCounts::from_table(fresh.into_table(), "outcome").unwrap();
            let batch = Audit::of_counts(counts)
                .unwrap()
                .estimator(Smoothed { alpha: 1.0 })
                .subsets(SubsetPolicy::None)
                .run()
                .unwrap();
            assert_eq!(
                serde_json::to_string(&step.epsilon).unwrap(),
                serde_json::to_string(&batch.epsilon).unwrap(),
                "windowed eps must match the batch audit at record {processed}"
            );
        }
        if processed == 10_000 {
            early = Some(step.epsilon.epsilon);
        }
        if processed == n_rows {
            late = Some(step.epsilon.epsilon);
        }
    }
    let (early, late) = (early.unwrap(), late.unwrap());
    assert!(
        late > early + 0.5,
        "drift must raise windowed eps: early {early}, late {late}"
    );
    // The sustained breach fired (hysteresis suppresses refires while ε
    // stays above threshold; noise dipping across it may re-arm the rule,
    // so the log can hold a couple of alerts — never one per window).
    let snap = monitor.snapshot().unwrap();
    assert!(!snap.alerts.is_empty());
    assert!(snap.alerts.len() < 10, "alerts: {:?}", snap.alerts);
    let alert = &snap.alerts[0];
    assert!(alert.epsilon > 1.0);
    assert!(alert.witness.is_some(), "worst-group witness attached");
    // The decayed horizon lags the window on a monotone drift.
    assert!(snap.trend().unwrap() > 0.0);
    assert_eq!(snap.window_rows as usize, window);
    assert_eq!(snap.records_seen as usize, n_rows);
}
