//! End-to-end tests for the `df-server` audit service over real TCP:
//!
//! 1. **Concurrent ingest ≡ batch audit.** N client threads POST
//!    interleaved JSON/CSV record chunks and binary `DFLT` snapshot
//!    frames; afterwards `GET /v1/audit` returns JSON byte-identical to
//!    a batch [`Audit`] over the union of the same records — the
//!    server's consistent-cut merge and renderer add nothing and lose
//!    nothing.
//! 2. **Parameterized queries.** Estimator, subset-lattice, baseline,
//!    and marginalization query parameters reproduce the matching
//!    builder calls byte-for-byte.
//! 3. **Content negotiation.** All four formats via `?format=` and
//!    `Accept`, with `400`/`406` on the failure paths.
//! 4. **Malformed HTTP.** Truncated request lines, oversized bodies,
//!    bad `Content-Length`, unknown routes, wrong methods, oversized
//!    header blocks, chunked transfer encoding, and corrupt `DFLT`
//!    frames all map to their typed statuses over a raw socket.

use differential_fairness::prelude::*;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::thread;
use std::time::Duration;

fn axes() -> Vec<Axis> {
    vec![
        Axis::from_strs("y", &["no", "yes"]).unwrap(),
        Axis::from_strs("g", &["a", "b"]).unwrap(),
        Axis::from_strs("r", &["u", "v"]).unwrap(),
    ]
}

fn server() -> Server {
    Server::builder("y", axes())
        .window_seconds(1e6)
        .bucket_seconds(1.0)
        .shards(3)
        .workers(4)
        .bind("127.0.0.1:0")
        .unwrap()
}

/// Deterministic label row for global record index `i`.
fn row(i: usize) -> Vec<String> {
    let y = ["no", "yes"][i % 2];
    let g = ["a", "b"][(i / 2) % 2];
    let r = ["u", "v"][(i / 3) % 2];
    vec![y.to_string(), g.to_string(), r.to_string()]
}

/// A replica-side monitor configured identically to [`server`].
fn replica_monitor() -> FairnessMonitor {
    Audit::monitor("y", axes())
        .estimator(Smoothed { alpha: 1.0 })
        .window_seconds(1e6)
        .bucket_seconds(1.0)
        .subsets(SubsetPolicy::None)
        .build()
        .unwrap()
}

fn json_chunk(rows: &[Vec<String>], at: f64) -> Vec<u8> {
    let rows = rows
        .iter()
        .map(|r| {
            format!(
                "[{}]",
                r.iter()
                    .map(|l| format!("\"{l}\""))
                    .collect::<Vec<_>>()
                    .join(",")
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    format!("{{\"rows\": [{rows}], \"at\": {at}}}").into_bytes()
}

fn csv_chunk(rows: &[Vec<String>]) -> Vec<u8> {
    rows.iter()
        .map(|r| r.join(","))
        .collect::<Vec<_>>()
        .join("\n")
        .into_bytes()
}

/// The batch-side comparator: tally `rows` into a contingency table with
/// the server's schema and run the same default audit the endpoint runs.
fn batch_audit_json(rows: &[Vec<String>]) -> String {
    let mut table = ContingencyTable::zeros(axes()).unwrap();
    for r in rows {
        let labels: Vec<&str> = r.iter().map(String::as_str).collect();
        table.increment_by_labels(&labels).unwrap();
    }
    let report = Audit::of_counts(JointCounts::from_table(table, "y").unwrap())
        .unwrap()
        .run()
        .unwrap();
    serde_json::to_string(&report).unwrap()
}

/// Acceptance E2E: 4 record clients (alternating JSON and CSV chunks)
/// plus 2 snapshot replicas POST concurrently over TCP; the audit the
/// server then serves is byte-identical to a batch audit over the union
/// of everything ingested.
#[test]
fn concurrent_ingest_matches_batch_audit_byte_for_byte() {
    let server = server();
    let addr = server.local_addr();

    // Four record-posting clients, six chunks of ten rows each.
    let mut handles = Vec::new();
    for client_id in 0..4usize {
        handles.push(thread::spawn(move || {
            let mut c = Http1Client::connect(addr).unwrap();
            for chunk in 0..6usize {
                let rows: Vec<Vec<String>> = (0..10)
                    .map(|j| row(client_id * 100 + chunk * 10 + j))
                    .collect();
                let at = 1000.0 + chunk as f64;
                let resp = if chunk % 2 == 0 {
                    c.request(
                        "POST",
                        "/v1/ingest/records",
                        &[("Content-Type", "application/json")],
                        &json_chunk(&rows, at),
                    )
                    .unwrap()
                } else {
                    c.request(
                        "POST",
                        &format!("/v1/ingest/records?at={at}"),
                        &[("Content-Type", "text/csv")],
                        &csv_chunk(&rows),
                    )
                    .unwrap()
                };
                assert_eq!(resp.status, 200, "{}", resp.text());
            }
        }));
    }

    // Two snapshot replicas, each POSTing cumulative DFLT frames (delta
    // frames after the first — the decoder interns the schema).
    for (replica_id, replica) in ["alpha", "beta"].into_iter().enumerate() {
        handles.push(thread::spawn(move || {
            let mut c = Http1Client::connect(addr).unwrap();
            let mut monitor = replica_monitor();
            let mut encoder = SnapshotEncoder::new();
            for chunk in 0..5usize {
                let rows: Vec<Vec<String>> = (0..8)
                    .map(|j| row(1000 + replica_id * 100 + chunk * 8 + j))
                    .collect();
                monitor
                    .push_at(&LabelChunk::new(rows), 1000.0 + chunk as f64)
                    .unwrap();
                let frame = encoder.encode(&monitor.snapshot().unwrap()).unwrap();
                let resp = c
                    .request(
                        "POST",
                        &format!("/v1/ingest/snapshot?replica={replica}"),
                        &[("Content-Type", "application/octet-stream")],
                        &frame,
                    )
                    .unwrap();
                assert_eq!(resp.status, 200, "{}", resp.text());
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }

    // The union the server should now hold: every HTTP row plus the
    // final (cumulative) state of each replica.
    let mut expected_rows: Vec<Vec<String>> = Vec::new();
    for client_id in 0..4usize {
        for chunk in 0..6usize {
            expected_rows.extend((0..10).map(|j| row(client_id * 100 + chunk * 10 + j)));
        }
    }
    for replica_id in 0..2usize {
        expected_rows.extend((0..40).map(|j| row(1000 + replica_id * 100 + j)));
    }

    let mut c = Http1Client::connect(addr).unwrap();
    let audit = c.get("/v1/audit").unwrap();
    assert_eq!(audit.status, 200, "{}", audit.text());
    assert_eq!(audit.header("content-type"), Some("application/json"));
    assert_eq!(audit.text(), batch_audit_json(&expected_rows));

    // The warm path serves the identical bytes again.
    let again = c.get("/v1/audit").unwrap();
    assert_eq!(again.text(), audit.text());

    // Monitor totals agree with the union.
    let monitor = c.get("/v1/monitor").unwrap();
    assert_eq!(monitor.status, 200);
    assert!(monitor
        .text()
        .contains(&format!("\"records_seen\":{}", expected_rows.len())));

    server.shutdown();
}

#[test]
fn query_parameters_reproduce_builder_calls() {
    let server = server();
    let mut c = Http1Client::connect(server.local_addr()).unwrap();
    let rows: Vec<Vec<String>> = (0..60).map(row).collect();
    let posted = c
        .request(
            "POST",
            "/v1/ingest/records?at=1000",
            &[("Content-Type", "application/json")],
            &json_chunk(&rows, 1000.0),
        )
        .unwrap();
    assert_eq!(posted.status, 200, "{}", posted.text());

    let mut table = ContingencyTable::zeros(axes()).unwrap();
    for r in &rows {
        let labels: Vec<&str> = r.iter().map(String::as_str).collect();
        table.increment_by_labels(&labels).unwrap();
    }
    let counts = JointCounts::from_table(table, "y").unwrap();

    // estimator/subsets/positive parameters ≡ the same builder calls.
    let expected = Audit::of_counts(counts.clone())
        .unwrap()
        .estimator(Empirical)
        .estimator(Smoothed { alpha: 0.5 })
        .subsets(SubsetPolicy::All)
        .baselines(Baselines::all().positive("yes"))
        .run()
        .unwrap();
    let got = c
        .get("/v1/audit?estimator=empirical&estimator=smoothed&alpha=0.5&subsets=all&positive=yes")
        .unwrap();
    assert_eq!(got.status, 200, "{}", got.text());
    assert_eq!(got.text(), serde_json::to_string(&expected).unwrap());

    // attrs= marginalizes before auditing.
    let expected = Audit::of_counts(counts.marginal_to(&["g"]).unwrap())
        .unwrap()
        .run()
        .unwrap();
    let got = c.get("/v1/audit?attrs=g").unwrap();
    assert_eq!(got.status, 200, "{}", got.text());
    assert_eq!(got.text(), serde_json::to_string(&expected).unwrap());

    // A posterior-sup estimator is accepted and deterministic per seed.
    let a = c
        .get("/v1/audit?estimator=posterior&samples=50&seed=7")
        .unwrap();
    let b = c
        .get("/v1/audit?estimator=posterior&samples=50&seed=7")
        .unwrap();
    assert_eq!(a.status, 200, "{}", a.text());
    assert_eq!(a.text(), b.text());

    // window=decayed without decay configured is a clean 400.
    let got = c.get("/v1/audit?window=decayed").unwrap();
    assert_eq!(got.status, 400);
    assert!(got.text().contains("\"kind\":\"invalid\""));

    server.shutdown();
}

#[test]
fn all_formats_negotiate_over_both_channels() {
    let server = server();
    let mut c = Http1Client::connect(server.local_addr()).unwrap();
    let rows: Vec<Vec<String>> = (0..24).map(row).collect();
    c.request(
        "POST",
        "/v1/ingest/records?at=1000",
        &[],
        &json_chunk(&rows, 1000.0),
    )
    .unwrap();

    for (format, mime, needle) in [
        ("json", "application/json", "\"epsilon\""),
        ("csv", "text/csv", "protected attributes,"),
        ("markdown", "text/markdown", "| protected attributes |"),
        ("text", "text/plain; charset=utf-8", "records audited: 24"),
    ] {
        let via_param = c.get(&format!("/v1/audit?format={format}")).unwrap();
        assert_eq!(via_param.status, 200, "{}", via_param.text());
        assert_eq!(via_param.header("content-type"), Some(mime));
        assert!(
            via_param
                .text()
                .to_lowercase()
                .contains(&needle.to_lowercase()),
            "format {format}: {}",
            via_param.text()
        );

        let accept = mime.split(';').next().unwrap();
        let via_accept = c
            .request("GET", "/v1/audit", &[("Accept", accept)], &[])
            .unwrap();
        assert_eq!(via_accept.status, 200);
        assert_eq!(via_accept.text(), via_param.text());
    }

    // The monitor negotiates the same four formats.
    for format in ["json", "csv", "markdown", "text"] {
        let resp = c.get(&format!("/v1/monitor?format={format}")).unwrap();
        assert_eq!(resp.status, 200, "format {format}: {}", resp.text());
    }
    let csv = c.get("/v1/monitor?format=csv").unwrap();
    assert!(csv.text().starts_with("y,g,r,count\n"), "{}", csv.text());
    assert!(csv.text().contains("records_seen,24"), "{}", csv.text());

    // Failure paths: unknown ?format= is 400, unsatisfiable Accept is 406.
    let bad = c.get("/v1/audit?format=yaml").unwrap();
    assert_eq!(bad.status, 400);
    assert!(bad.text().contains("\"kind\":\"unknown_format\""));
    let nope = c
        .request("GET", "/v1/audit", &[("Accept", "image/png")], &[])
        .unwrap();
    assert_eq!(nope.status, 406);
    assert!(nope.text().contains("\"kind\":\"not_acceptable\""));

    server.shutdown();
}

/// `?metric=` selects a registry metric per query: the audit bytes
/// reproduce the matching `boxed_metric` builder call, the monitor bytes
/// reproduce a local `with_metric` re-derivation, both render in all
/// four formats, and an unknown metric name is the typed 400.
#[test]
fn metric_queries_reproduce_builders_render_everywhere_and_reject_unknowns() {
    let server = server();
    let mut c = Http1Client::connect(server.local_addr()).unwrap();
    let rows: Vec<Vec<String>> = (0..60).map(row).collect();
    let posted = c
        .request(
            "POST",
            "/v1/ingest/records?at=1000",
            &[("Content-Type", "application/json")],
            &json_chunk(&rows, 1000.0),
        )
        .unwrap();
    assert_eq!(posted.status, 200, "{}", posted.text());

    let mut table = ContingencyTable::zeros(axes()).unwrap();
    for r in &rows {
        let labels: Vec<&str> = r.iter().map(String::as_str).collect();
        table.increment_by_labels(&labels).unwrap();
    }
    let counts = JointCounts::from_table(table, "y").unwrap();
    let mut replica = replica_monitor();
    replica
        .push_at(&LabelChunk::new(rows.clone()), 1000.0)
        .unwrap();
    let snap = replica.snapshot().unwrap();
    let est = Smoothed { alpha: 1.0 };

    for tag in ["wc-ratio", "wc-diff", "alpha-if(alpha=0.5)", "deo(label=r)"] {
        let expected = Audit::of_counts(counts.clone())
            .unwrap()
            .boxed_metric(metric_from_tag(tag).unwrap())
            .run()
            .unwrap();
        let expected_snap = snap.with_metric(tag, &est).unwrap();
        for format in ResponseFormat::ALL {
            let audit = c
                .get(&format!("/v1/audit?metric={tag}&format={}", format.name()))
                .unwrap();
            assert_eq!(
                audit.status,
                200,
                "{tag}/{}: {}",
                format.name(),
                audit.text()
            );
            assert_eq!(
                audit.text(),
                expected.render(format).unwrap(),
                "{tag}/{}: audit render diverged from the builder",
                format.name()
            );
            let monitor = c
                .get(&format!(
                    "/v1/monitor?metric={tag}&format={}",
                    format.name()
                ))
                .unwrap();
            assert_eq!(
                monitor.status,
                200,
                "{tag}/{}: {}",
                format.name(),
                monitor.text()
            );
            assert_eq!(
                monitor.text(),
                expected_snap.render(format).unwrap(),
                "{tag}/{}: monitor render diverged from with_metric",
                format.name()
            );
        }
        // Non-default metrics surface their tag in the prose render.
        let text = c
            .get(&format!("/v1/monitor?metric={tag}&format=text"))
            .unwrap();
        assert!(text.text().contains(tag), "{tag}: {}", text.text());
    }

    // Naming the default metric explicitly changes nothing.
    let implicit = c.get("/v1/audit").unwrap();
    let explicit = c.get("/v1/audit?metric=eps-df").unwrap();
    assert_eq!(implicit.text(), explicit.text());

    // The schema advertises the configured metric.
    let schema = c.get("/v1/schema").unwrap();
    assert!(
        schema.text().contains("\"metric\":\"eps-df\""),
        "{}",
        schema.text()
    );

    // Unknown metric names are typed 400s on both endpoints.
    for path in ["/v1/audit?metric=martian", "/v1/monitor?metric=martian"] {
        let bad = c.get(path).unwrap();
        assert_eq!(bad.status, 400, "{path}: {}", bad.text());
        assert!(
            bad.text().contains("\"kind\":\"invalid\""),
            "{}",
            bad.text()
        );
        assert!(bad.text().contains("unknown metric"), "{}", bad.text());
    }

    server.shutdown();
}

// ---------------------------------------------------------------------------
// Malformed HTTP, over a raw socket.
// ---------------------------------------------------------------------------

/// Writes raw bytes, half-closes, and returns whatever the server sent.
fn raw_exchange(addr: SocketAddr, bytes: &[u8]) -> String {
    let mut stream = TcpStream::connect(addr).unwrap();
    // The server may refuse mid-read and close with our bytes still
    // unread (e.g. the 431 oversized-header path), which RSTs the
    // connection; a failed write/half-close is then part of the
    // scenario — the response (if any) is still readable.
    let _ = stream.write_all(bytes);
    let _ = stream.shutdown(std::net::Shutdown::Write);
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut out = String::new();
    let _ = stream.read_to_string(&mut out);
    out
}

#[test]
fn malformed_requests_map_to_typed_statuses() {
    let server = Server::builder("y", axes())
        .window_seconds(1e6)
        .bucket_seconds(1.0)
        .workers(2)
        .max_body_bytes(64)
        .bind("127.0.0.1:0")
        .unwrap();
    let addr = server.local_addr();

    // A garbage request line is a 400.
    let resp = raw_exchange(addr, b"GARBAGE\r\n\r\n");
    assert!(resp.starts_with("HTTP/1.1 400"), "{resp}");
    assert!(resp.contains("\"kind\":\"bad_request\""), "{resp}");
    assert!(resp.contains("malformed request line"), "{resp}");

    // A request line truncated by EOF closes quietly: no response at all.
    let resp = raw_exchange(addr, b"GET /v1/hea");
    assert!(resp.is_empty(), "expected silent close, got: {resp}");

    // A declared body over the cap is refused before it is read.
    let resp = raw_exchange(
        addr,
        b"POST /v1/ingest/records HTTP/1.1\r\nHost: x\r\nContent-Length: 1000\r\n\r\n",
    );
    assert!(resp.starts_with("HTTP/1.1 413"), "{resp}");
    assert!(resp.contains("\"kind\":\"body_too_large\""), "{resp}");

    // A Content-Length that is not a length is a 400.
    let resp = raw_exchange(
        addr,
        b"POST /v1/ingest/records HTTP/1.1\r\nHost: x\r\nContent-Length: banana\r\n\r\n",
    );
    assert!(resp.starts_with("HTTP/1.1 400"), "{resp}");
    assert!(resp.contains("bad Content-Length"), "{resp}");

    // A body shorter than its declaration is a 400, not a hang.
    let resp = raw_exchange(
        addr,
        b"POST /v1/ingest/records HTTP/1.1\r\nHost: x\r\nContent-Length: 20\r\n\r\nshort",
    );
    assert!(resp.starts_with("HTTP/1.1 400"), "{resp}");
    assert!(resp.contains("body truncated"), "{resp}");

    // Unknown route: 404 with the route echoed.
    let resp = raw_exchange(addr, b"GET /v1/nope HTTP/1.1\r\nConnection: close\r\n\r\n");
    assert!(resp.starts_with("HTTP/1.1 404"), "{resp}");
    assert!(resp.contains("\"kind\":\"not_found\""), "{resp}");

    // Known route, wrong method: 405 with Allow.
    let resp = raw_exchange(
        addr,
        b"DELETE /v1/audit HTTP/1.1\r\nConnection: close\r\n\r\n",
    );
    assert!(resp.starts_with("HTTP/1.1 405"), "{resp}");
    assert!(resp.contains("Allow: GET"), "{resp}");

    // An oversized header block is a 431.
    let mut big = b"GET /v1/healthz HTTP/1.1\r\n".to_vec();
    big.extend_from_slice(format!("X-Pad: {}\r\n\r\n", "a".repeat(20 * 1024)).as_bytes());
    let resp = raw_exchange(addr, &big);
    assert!(resp.starts_with("HTTP/1.1 431"), "{resp}");

    // Chunked transfer encoding is explicitly unimplemented: 501.
    let resp = raw_exchange(
        addr,
        b"POST /v1/ingest/records HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
    );
    assert!(resp.starts_with("HTTP/1.1 501"), "{resp}");

    server.shutdown();
}

#[test]
fn corrupt_snapshot_frames_are_typed_400s() {
    let server = server();
    let mut c = Http1Client::connect(server.local_addr()).unwrap();

    // Garbage bytes: not a DFLT frame at all.
    let resp = c
        .request("POST", "/v1/ingest/snapshot", &[], b"not a DFLT frame")
        .unwrap();
    assert_eq!(resp.status, 400);
    assert!(
        resp.text().contains("\"kind\":\"invalid\""),
        "{}",
        resp.text()
    );

    // A truncated valid frame.
    let mut monitor = replica_monitor();
    monitor
        .push_at(&LabelChunk::new(vec![row(0), row(1)]), 1000.0)
        .unwrap();
    let frame = SnapshotEncoder::new()
        .encode(&monitor.snapshot().unwrap())
        .unwrap();
    let resp = c
        .request(
            "POST",
            "/v1/ingest/snapshot",
            &[],
            &frame[..frame.len() / 2],
        )
        .unwrap();
    assert_eq!(resp.status, 400, "{}", resp.text());

    // A frame whose cell counts are corrupted in flight: the varint for
    // the known cell count 299 (0xAB 0x02) is spliced into the varint for
    // 2^64−1, which exceeds the codec's exactness bound — the decoder
    // answers with the *typed* `corrupt_counts` error, not generic prose.
    let mut monitor = replica_monitor();
    let mut rows: Vec<Vec<String>> = (0..299).map(|_| row(0)).collect();
    rows.push(row(1));
    monitor.push_at(&LabelChunk::new(rows), 1000.0).unwrap();
    let frame = SnapshotEncoder::new()
        .encode(&monitor.snapshot().unwrap())
        .unwrap();
    let pat = [0xAB, 0x02]; // varint(299), unique to the corrupted cell
    let hits: Vec<usize> = frame
        .windows(2)
        .enumerate()
        .filter(|(_, w)| *w == pat)
        .map(|(i, _)| i)
        .collect();
    assert_eq!(hits.len(), 1, "cell varint must be unique in the frame");
    let mut corrupted = frame[..hits[0]].to_vec();
    corrupted.extend_from_slice(&[0xFF; 9]);
    corrupted.push(0x01);
    corrupted.extend_from_slice(&frame[hits[0] + 2..]);
    let resp = c
        .request("POST", "/v1/ingest/snapshot", &[], &corrupted)
        .unwrap();
    assert_eq!(resp.status, 400, "{}", resp.text());
    assert!(
        resp.text().contains("\"kind\":\"corrupt_counts\""),
        "{}",
        resp.text()
    );

    // An incompatible window configuration is refused at the door.
    let mut other = Audit::monitor("y", axes())
        .estimator(Smoothed { alpha: 1.0 })
        .window_seconds(60.0)
        .bucket_seconds(1.0)
        .subsets(SubsetPolicy::None)
        .build()
        .unwrap();
    other
        .push_at(&LabelChunk::new(vec![row(0)]), 1000.0)
        .unwrap();
    let frame = SnapshotEncoder::new()
        .encode(&other.snapshot().unwrap())
        .unwrap();
    let resp = c
        .request("POST", "/v1/ingest/snapshot", &[], &frame)
        .unwrap();
    assert_eq!(resp.status, 400, "{}", resp.text());

    // None of the rejects poisoned anything: a good frame still lands.
    let mut good = replica_monitor();
    good.push_at(&LabelChunk::new(vec![row(0)]), 1000.0)
        .unwrap();
    let frame = SnapshotEncoder::new()
        .encode(&good.snapshot().unwrap())
        .unwrap();
    let resp = c
        .request("POST", "/v1/ingest/snapshot", &[], &frame)
        .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.text());

    server.shutdown();
}

#[test]
fn stale_timestamps_are_refused_without_poisoning_shards() {
    let server = Server::builder("y", axes())
        .window_seconds(100.0)
        .bucket_seconds(1.0)
        .workers(1)
        .bind("127.0.0.1:0")
        .unwrap();
    let mut c = Http1Client::connect(server.local_addr()).unwrap();

    let ok = c
        .request(
            "POST",
            "/v1/ingest/records?at=1000",
            &[],
            &json_chunk(&[row(0)], 1000.0),
        )
        .unwrap();
    assert_eq!(ok.status, 200, "{}", ok.text());

    // 1000 − 100 + 1 = 901 is the oldest acceptable arrival.
    let stale = c
        .request(
            "POST",
            "/v1/ingest/records?at=900",
            &[],
            &json_chunk(&[row(1)], 900.0),
        )
        .unwrap();
    assert_eq!(stale.status, 400, "{}", stale.text());
    assert!(stale.text().contains("too old"), "{}", stale.text());

    let edge = c
        .request(
            "POST",
            "/v1/ingest/records?at=901",
            &[],
            &json_chunk(&[row(1)], 901.0),
        )
        .unwrap();
    assert_eq!(edge.status, 200, "{}", edge.text());

    // Every shard still answers: the reject never reached a worker.
    let audit = c.get("/v1/audit").unwrap();
    assert_eq!(audit.status, 200, "{}", audit.text());
    assert!(audit.text().contains("\"n_records\":2"), "{}", audit.text());

    server.shutdown();
}

#[test]
fn former_panic_sites_answer_4xx_not_closed_connection() {
    // Regression suite for the `no-panic-path` lint sweep: every input
    // below is aimed at a site that once held an unwrap/expect/index on
    // the request path. The contract is uniform — the server answers
    // with a typed 4xx over the same connection; an empty response
    // (closed socket) means a worker died.
    let server = server();
    let addr = server.local_addr();

    // Percent-escape edge cases in the request target exercise the
    // rewritten index-free `percent_decode`: a bare trailing `%`, a
    // truncated escape, and junk hex must all fall through to routing
    // (404 for an unknown decoded path), never kill the worker.
    for target in [
        "/v1/nope%",
        "/v1/nope%2",
        "/v1/nope%zz",
        "/%",
        "/%C0%afnope",
    ] {
        let req = format!("GET {target} HTTP/1.1\r\nConnection: close\r\n\r\n");
        let resp = raw_exchange(addr, req.as_bytes());
        assert!(
            resp.starts_with("HTTP/1.1 404"),
            "target {target}: expected a 404 answer, got: {resp:?}"
        );
    }

    // A DFLT frame cut mid-u64 (10 bytes ends inside the schema hash)
    // exercises the typed error that replaced `try_into().expect("8
    // bytes")` in the codec reader.
    let mut c = Http1Client::connect(addr).unwrap();
    let mut monitor = replica_monitor();
    monitor
        .push_at(&LabelChunk::new(vec![row(0), row(1)]), 1000.0)
        .unwrap();
    let snap = monitor.snapshot().unwrap();
    let frame = SnapshotEncoder::new().encode(&snap).unwrap();
    let resp = c
        .request("POST", "/v1/ingest/snapshot", &[], &frame[..10])
        .unwrap();
    assert_eq!(resp.status, 400, "{}", resp.text());

    // Byte surgery on the alert block: an alert rule demanding 2^33
    // consecutive breaches once truncated silently through `as usize`;
    // now it is a typed CorruptCounts → 400 on every target.
    let mut doctored_snap = snap.clone();
    let threshold = 0.123_456_789_f64;
    doctored_snap.alerts.push(Alert {
        rule: AlertRule {
            threshold,
            consecutive: 3,
        },
        at_record: 2,
        at_seconds: Some(1000.0),
        epsilon: 0.5,
        witness: None,
    });
    let armed = SnapshotEncoder::new().encode(&doctored_snap).unwrap();
    let needle = threshold.to_bits().to_le_bytes();
    let at = armed
        .windows(needle.len())
        .position(|w| w == needle)
        .expect("distinctive threshold bytes present");
    let mut doctored = armed[..at + needle.len()].to_vec();
    doctored.extend_from_slice(&[0x80, 0x80, 0x80, 0x80, 0x20]); // varint(2^33)
    doctored.extend_from_slice(&armed[at + needle.len() + 1..]);
    let resp = c
        .request("POST", "/v1/ingest/snapshot", &[], &doctored)
        .unwrap();
    assert_eq!(resp.status, 400, "{}", resp.text());
    assert!(
        resp.text().contains("corrupt"),
        "expected a corrupt-counts error, got: {}",
        resp.text()
    );

    // The connection survived all of it: a well-formed frame on the
    // same client still ingests, and the server still audits.
    let resp = c
        .request("POST", "/v1/ingest/snapshot?replica=r1", &[], &frame)
        .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.text());
    let audit = c.get("/v1/audit").unwrap();
    assert_eq!(audit.status, 200, "{}", audit.text());

    server.shutdown();
}
