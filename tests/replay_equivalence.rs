//! DFRL replay-log equivalence and robustness:
//!
//! 1. **CSV ≡ DFRL.** For arbitrary frames, auditing a DFRL log produces
//!    a byte-identical serialized `AuditReport` to the CSV streaming path
//!    and the batch frame path, for every chunk size and thread count.
//! 2. **`csv_to_log` ≡ direct CSV.** Converting CSV bytes to a log and
//!    replaying the log matches parsing the CSV directly.
//! 3. **Monitor replay.** A `FairnessMonitor` fed the log's `CodeChunk`s
//!    snapshots identically to one fed the frame's chunks.
//! 4. **Hostile bytes.** Truncating the log at every prefix and flipping
//!    bits anywhere yields typed errors (or a still-valid log), never a
//!    panic.
//!
//! Case budget: `PROPTEST_CASES` (default 32) — see CI.

use df_data::workloads::{frame_to_csv, synthetic_audit_frame};
use differential_fairness::prelude::*;
use proptest::prelude::*;

/// A random categorical frame: outcome column plus 1–2 protected
/// attributes, codes drawn arbitrarily (mirrors `stream_equivalence`).
#[derive(Debug, Clone)]
struct ArbitraryFrame {
    outcome_arity: usize,
    attr_arities: Vec<usize>,
    raw: Vec<u64>,
}

impl ArbitraryFrame {
    fn build(&self) -> DataFrame {
        let col = |name: &str, arity: usize, salt: u64| {
            let codes: Vec<u32> = self
                .raw
                .iter()
                .map(|&r| ((r.rotate_left(salt as u32 * 13) ^ salt) % arity as u64) as u32)
                .collect();
            Column::categorical_from_codes(
                name,
                codes,
                (0..arity).map(|i| format!("c{i}")).collect(),
            )
            .unwrap()
        };
        let mut columns = vec![col("outcome", self.outcome_arity, 1)];
        for (k, &a) in self.attr_arities.iter().enumerate() {
            columns.push(col(&format!("attr{k}"), a, k as u64 + 2));
        }
        DataFrame::new(columns).unwrap()
    }

    fn attr_names(&self) -> Vec<String> {
        (0..self.attr_arities.len())
            .map(|k| format!("attr{k}"))
            .collect()
    }
}

fn report_json(audit: Audit<'static>) -> String {
    let report = audit
        .estimator(Empirical)
        .estimator(Smoothed { alpha: 1.0 })
        .run()
        .unwrap();
    serde_json::to_string(&report).unwrap()
}

fn csv_audit_json(csv: &str, columns: &[&str], axes: Vec<Axis>, threads: usize) -> String {
    let chunks = CsvChunks::new(csv.as_bytes(), df_data::csv::CsvOptions::default(), 1_024)
        .unwrap()
        .map(|r| r.map_err(|e| differential_fairness::core::DfError::Invalid(e.to_string())));
    report_json(Audit::of_stream(columns.first().unwrap(), axes, chunks, threads).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(32),
    })]

    /// Frame → DFRL → audit is byte-identical (serialized report) to the
    /// batch audit and the CSV streaming audit of the same rows, across
    /// chunk sizes and thread counts.
    #[test]
    fn replay_log_audit_is_byte_identical_to_csv_and_batch(
        outcome_arity in 2usize..4,
        attr_arity in 2usize..5,
        n_attrs in 1usize..3,
        raw in proptest::collection::vec(any::<u64>(), 1..120),
        chunk_rows in 1usize..40,
        threads in 1usize..5,
    ) {
        let spec = ArbitraryFrame { outcome_arity, attr_arities: vec![attr_arity; n_attrs], raw };
        let frame = spec.build();
        let attr_names = spec.attr_names();
        let mut columns = vec!["outcome"];
        columns.extend(attr_names.iter().map(String::as_str));

        let batch = report_json(Audit::of_frame(&frame, "outcome", &columns[1..]).unwrap());

        let mut log = Vec::new();
        write_frame_log(&frame, chunk_rows, &mut log).unwrap();
        let replayed = report_json(
            Audit::of_replay_log(log.as_slice(), "outcome", &columns[1..], threads).unwrap(),
        );
        prop_assert_eq!(&replayed, &batch);

        let axes: Vec<Axis> = columns
            .iter()
            .map(|n| {
                let (_, vocab) = frame.column(n).unwrap().as_categorical().unwrap();
                Axis::new(n.to_string(), vocab.to_vec()).unwrap()
            })
            .collect();
        let csv = frame_to_csv(&frame, &columns).unwrap();
        let via_csv = csv_audit_json(&csv, &columns, axes, threads);
        prop_assert_eq!(&via_csv, &batch);

        // The scan-free tally agrees with the batch contingency.
        let table = tally_from_log(log.as_slice(), &columns).unwrap();
        prop_assert_eq!(table, frame.contingency(&columns).unwrap());
    }

    /// CSV → DFRL conversion preserves the audit: replaying the converted
    /// log matches parsing the CSV directly (both intern labels in CSV
    /// first-occurrence order), byte for byte.
    #[test]
    fn csv_to_log_preserves_the_audit(
        raw in proptest::collection::vec(any::<u64>(), 1..100),
        chunk_rows in 1usize..32,
    ) {
        let spec = ArbitraryFrame { outcome_arity: 2, attr_arities: vec![2, 3], raw };
        let frame = spec.build();
        let columns = ["outcome", "attr0", "attr1"];
        let csv = frame_to_csv(&frame, &columns).unwrap();
        let opts = df_data::csv::CsvOptions::default();

        let mut log = Vec::new();
        csv_to_log(csv.as_bytes(), &opts, &columns, chunk_rows, &mut log).unwrap();

        // The reference: the CSV parsed straight into a frame, interning
        // each column in first-occurrence order — exactly what the
        // converter does.
        let records = df_data::csv::read_str(&csv, &opts).unwrap();
        let csv_frame = DataFrame::new(
            columns
                .iter()
                .enumerate()
                .map(|(i, name)| {
                    let values: Vec<&str> =
                        records.iter().map(|r| r[i].as_str()).collect();
                    Column::categorical(*name, &values)
                })
                .collect(),
        )
        .unwrap();

        // Occurrence interning shrinks arity when a label never shows up;
        // skip those degenerate draws (both paths reject an arity-1
        // outcome identically, but there is no report to compare).
        let arity = |name: &str| {
            csv_frame
                .column(name)
                .unwrap()
                .as_categorical()
                .unwrap()
                .1
                .len()
        };
        if arity("outcome") != 2 || arity("attr0") != 2 || arity("attr1") != 3 {
            return Ok(()); // vendored proptest has no prop_assume
        }

        let batch = report_json(Audit::of_frame(&csv_frame, "outcome", &columns[1..]).unwrap());
        let replayed = report_json(
            Audit::of_replay_log(log.as_slice(), "outcome", &columns[1..], 1).unwrap(),
        );
        prop_assert_eq!(replayed, batch);
    }
}

/// The monitor ingests log chunks exactly as it ingests frame chunks:
/// identical snapshots (serialized), step by step.
#[test]
fn monitor_replay_from_log_matches_frame_chunks() {
    let mut rng = Pcg32::new(7);
    let frame = synthetic_audit_frame(&mut rng, 2_000, 2, &[2, 3]).unwrap();
    let columns = ["outcome", "attr0", "attr1"];
    let axes: Vec<Axis> = columns
        .iter()
        .map(|n| {
            let (_, vocab) = frame.column(n).unwrap().as_categorical().unwrap();
            Axis::new(n.to_string(), vocab.to_vec()).unwrap()
        })
        .collect();

    let mut log = Vec::new();
    write_frame_log(&frame, 256, &mut log).unwrap();

    let mut from_frame = Audit::monitor("outcome", axes.clone()).build().unwrap();
    let mut from_log = Audit::monitor("outcome", axes).build().unwrap();

    let frame_chunks = FrameChunks::new(&frame, &columns, 256).unwrap();
    let log_chunks = ReplayChunks::new(log.as_slice())
        .unwrap()
        .with_columns(&columns)
        .unwrap();

    for (fc, lc) in frame_chunks.zip(log_chunks) {
        from_frame.push(&fc).unwrap();
        from_log.push(&lc.unwrap()).unwrap();
        let a = serde_json::to_string(&from_frame.snapshot().unwrap()).unwrap();
        let b = serde_json::to_string(&from_log.snapshot().unwrap()).unwrap();
        assert_eq!(a, b);
    }
}

/// Every strict prefix of a valid log is rejected with a typed error —
/// the audit entry point never panics and never fabricates a report.
#[test]
fn truncated_logs_are_typed_errors_never_panics() {
    let mut rng = Pcg32::new(11);
    let frame = synthetic_audit_frame(&mut rng, 200, 2, &[2, 2]).unwrap();
    let mut log = Vec::new();
    write_frame_log(&frame, 32, &mut log).unwrap();

    for cut in 0..log.len() {
        let prefix = &log[..cut];
        match Audit::of_replay_log(prefix, "outcome", &["attr0", "attr1"], 1) {
            Ok(audit) => {
                // Header parsed but the stream is cut: running the audit
                // must surface the decode error, not a partial report.
                assert!(
                    audit.estimator(Empirical).run().is_err(),
                    "prefix of {cut} bytes produced a report"
                );
            }
            Err(differential_fairness::core::DfError::Invalid(_)) => {}
            Err(other) => panic!("unexpected error at cut {cut}: {other:?}"),
        }
    }
}

/// Randomly corrupted logs never panic: every flip either fails with a
/// typed error or still decodes to in-range codes.
#[test]
fn bit_flipped_logs_never_panic() {
    let mut rng = Pcg32::new(13);
    let frame = synthetic_audit_frame(&mut rng, 300, 2, &[2, 4]).unwrap();
    let mut log = Vec::new();
    write_frame_log(&frame, 64, &mut log).unwrap();

    for _ in 0..400 {
        let mut corrupt = log.clone();
        let pos = rng.next_below(corrupt.len() as u32) as usize;
        corrupt[pos] ^= 1u8 << rng.next_below(8);
        match Audit::of_replay_log(corrupt.as_slice(), "outcome", &["attr0", "attr1"], 1) {
            Ok(audit) => {
                // A still-parsable log must still produce a well-formed
                // report or a typed error — exercise it.
                let _ = audit.estimator(Empirical).run().map(|r| r.epsilon);
            }
            Err(differential_fairness::core::DfError::Invalid(_)) => {}
            Err(other) => panic!("unexpected error: {other:?}"),
        }
    }
}
