//! The fleet aggregation subsystem's three contracts, made observable at
//! the API surface:
//!
//! 1. **Codec identity and stability.** `decode(encode(s)) == s` for
//!    arbitrary live monitor states — full frames and schema-interned
//!    delta frames alike — and encoding is byte-stable: the same
//!    snapshot produces the same bytes on any encoder, and a decoded
//!    frame re-encodes to the original bytes.
//! 2. **Tree ≡ pairwise fold.** `merge_many` / `merge_tree` produce
//!    byte-identical JSON to the sequential pairwise
//!    `MonitorSnapshot::merge` fold for arbitrary tree arity *and*
//!    arbitrary leaf permutations — the commutative-monoid laws of the
//!    PR 4 suite, exploited at fleet scale.
//! 3. **Fleet ≡ one monitor.** N concurrent producers feeding a
//!    `FleetIngest` merge into a snapshot byte-identical (as JSON) to a
//!    single monitor ingesting the interleaved stream in timestamp
//!    order — the union-of-traffic ε per-silo monitoring cannot see.
//!
//! Case budget: `PROPTEST_CASES` (CI pins 64).

use differential_fairness::prelude::*;
use proptest::prelude::*;

/// A chunk of `(outcome, group)` index pairs.
#[derive(Debug, Clone)]
struct Pairs(Vec<[usize; 2]>);

impl Tally for Pairs {
    fn tally_into(&self, shard: &mut PartialCounts) -> differential_fairness::prob::Result<()> {
        for idx in &self.0 {
            shard.record(idx);
        }
        Ok(())
    }
}

fn axes(arity: usize) -> Vec<Axis> {
    vec![
        Axis::from_strs("y", &["no", "yes"]).unwrap(),
        Axis::new("g", (0..arity).map(|i| format!("g{i}")).collect()).unwrap(),
    ]
}

/// A wall-clock monitor with every snapshot-visible feature enabled:
/// subsets, a (dyadic) decayed horizon, an alert rule, both detector
/// families. λ = 0.5 keeps decayed cells dyadic, so cell sums reassociate
/// exactly and byte-identity is meaningful for any tree shape.
fn rich_monitor(arity: usize, window_buckets: f64) -> FairnessMonitor {
    Audit::monitor("y", axes(arity))
        .estimator(Smoothed { alpha: 1.0 })
        .subsets(SubsetPolicy::All)
        .window_seconds(window_buckets)
        .bucket_seconds(1.0)
        .decay(0.5)
        .alert(AlertRule::epsilon_above(0.05))
        .changepoint(Cusum::new(0.0, 0.01, 0.05))
        .changepoint(PageHinkley::new(0.0, 0.01, 0.05))
        .build()
        .unwrap()
}

/// Replays `chunks` (row picks + bucket advances) into `monitor`,
/// returning the snapshot after every push.
fn replay(
    monitor: &mut FairnessMonitor,
    arity: usize,
    chunks: &[(Vec<u64>, i64)],
) -> Vec<MonitorSnapshot> {
    let mut now = 0i64;
    let mut snaps = Vec::with_capacity(chunks.len());
    for (picks, advance) in chunks {
        now += advance;
        let rows: Vec<[usize; 2]> = picks
            .iter()
            .map(|&p| [(p % 2) as usize, (p as usize / 2) % arity])
            .collect();
        monitor.push_at(&Pairs(rows), now as f64).unwrap();
        snaps.push(monitor.snapshot().unwrap());
    }
    snaps
}

proptest! {
    /// Codec round trip and byte stability over live monitor states: the
    /// first frame interns the schema, every later tick rides a delta
    /// frame, and each decodes back to the exact snapshot. Independent
    /// encoders agree byte for byte, and decode→re-encode is the
    /// identity on the bytes.
    #[test]
    fn codec_round_trips_and_is_byte_stable(
        arity in 2usize..4,
        chunks in proptest::collection::vec(
            (proptest::collection::vec(any::<u64>(), 1..6), 0i64..3),
            1..12,
        ),
    ) {
        let mut monitor = rich_monitor(arity, 5.0);
        let snaps = replay(&mut monitor, arity, &chunks);
        let mut encoder = SnapshotEncoder::new();
        let mut twin = SnapshotEncoder::new();
        let mut decoder = SnapshotDecoder::new();
        for (tick, snap) in snaps.iter().enumerate() {
            let frame = encoder.encode(snap).unwrap();
            // Byte stability: an independent encoder in the same state
            // produces the identical frame.
            prop_assert_eq!(&twin.encode(snap).unwrap(), &frame);
            // Round trip identity, through the interning decoder.
            let back = decoder.decode(&frame).unwrap();
            prop_assert_eq!(&back, snap);
            // Full frames are self-describing: decode → re-encode is the
            // byte identity.
            if tick == 0 {
                prop_assert_eq!(&encode_snapshot(&back).unwrap(), &frame);
            }
        }
        // One schema shipped once, however many ticks followed.
        prop_assert_eq!(decoder.interned_schemas(), 1);
    }

    /// Steady-state delta frames stay several times smaller than the
    /// JSON form of the same snapshot. The `fleet` bench pins the >= 5x
    /// headline at fleet-realistic window sizes; this property pins a 4x
    /// floor for *arbitrary* tiny adversarial states (where f64-encoded
    /// decayed horizons and witness strings dominate the frame).
    #[test]
    fn delta_frames_beat_json_by_4x(
        arity in 2usize..4,
        chunks in proptest::collection::vec(
            (proptest::collection::vec(any::<u64>(), 1..6), 0i64..3),
            2..10,
        ),
    ) {
        let mut monitor = rich_monitor(arity, 5.0);
        let snaps = replay(&mut monitor, arity, &chunks);
        let mut encoder = SnapshotEncoder::new();
        encoder.encode(&snaps[0]).unwrap();
        let last = snaps.last().unwrap();
        let delta = encoder.encode(last).unwrap();
        let json = serde_json::to_string(last).unwrap();
        prop_assert!(
            delta.len() * 4 <= json.len(),
            "delta {} B vs JSON {} B",
            delta.len(),
            json.len()
        );
    }

    /// `merge_tree` at any arity over any leaf permutation serializes to
    /// the same JSON bytes as the sequential pairwise fold in original
    /// order — tree shape and leaf order are deployment choices, never
    /// semantic ones.
    #[test]
    fn merge_tree_is_byte_identical_to_pairwise_fold(
        arity in 2usize..4,
        tree_arity in 2usize..7,
        seed in any::<u64>(),
        shards in proptest::collection::vec(
            proptest::collection::vec(
                (proptest::collection::vec(any::<u64>(), 1..5), 0i64..3),
                1..6,
            ),
            2..7,
        ),
    ) {
        let estimator = Smoothed { alpha: 1.0 };
        let snaps: Vec<MonitorSnapshot> = shards
            .iter()
            .map(|chunks| {
                let mut monitor = rich_monitor(arity, 5.0);
                replay(&mut monitor, arity, chunks)
                    .pop()
                    .expect("at least one chunk per shard")
            })
            .collect();
        // Reference: the sequential pairwise fold, in original order.
        let mut reference = snaps[0].clone();
        for snap in &snaps[1..] {
            reference = reference.merge(snap, &estimator).unwrap();
        }
        let reference = serde_json::to_string(&reference).unwrap();
        // A deterministic pseudo-random permutation of the leaves.
        let mut order: Vec<usize> = (0..snaps.len()).collect();
        let mut rng = Pcg32::new(seed);
        for i in (1..order.len()).rev() {
            order.swap(i, rng.next_below(i as u32 + 1) as usize);
        }
        let permuted: Vec<MonitorSnapshot> =
            order.iter().map(|&i| snaps[i].clone()).collect();
        let tree = merge_tree(&permuted, tree_arity, &estimator).unwrap();
        prop_assert_eq!(serde_json::to_string(&tree).unwrap(), reference.clone());
        let flat = merge_many(&permuted, &estimator).unwrap();
        prop_assert_eq!(serde_json::to_string(&flat).unwrap(), reference);
    }

    /// The acceptance property: a fleet of N concurrent producers, each
    /// feeding its own shard monitor, merges into a snapshot that is
    /// byte-identical JSON to ONE monitor ingesting the interleaved
    /// stream in timestamp order. (Alert rules and detectors are
    /// per-shard evidence, so the equivalence configuration runs
    /// without them; counts, clocks, ε, and the subset lattice are the
    /// fleet-wide state being pinned.)
    #[test]
    fn fleet_of_producers_is_byte_identical_to_one_monitor(
        arity in 2usize..4,
        n_shards in 1usize..5,
        shards in proptest::collection::vec(
            proptest::collection::vec(
                (proptest::collection::vec(any::<u64>(), 1..5), 0i64..3),
                1..8,
            ),
            5,
        ),
    ) {
        let build = || {
            Audit::monitor("y", axes(arity))
                .estimator(Smoothed { alpha: 1.0 })
                .subsets(SubsetPolicy::All)
                .window_seconds(6.0)
                .bucket_seconds(1.0)
        };
        let shards = &shards[..n_shards];
        // Materialize each shard's timestamped feed.
        let feeds: Vec<Vec<(Pairs, f64)>> = shards
            .iter()
            .map(|chunks| {
                let mut now = 0i64;
                chunks
                    .iter()
                    .map(|(picks, advance)| {
                        now += advance;
                        let rows: Vec<[usize; 2]> = picks
                            .iter()
                            .map(|&p| [(p % 2) as usize, (p as usize / 2) % arity])
                            .collect();
                        (Pairs(rows), now as f64)
                    })
                    .collect()
            })
            .collect();
        // The fleet: one producer thread per shard.
        let fleet: FleetIngest<Pairs> = build().fleet(n_shards).unwrap();
        std::thread::scope(|scope| {
            for (i, feed) in feeds.iter().enumerate() {
                let producer = fleet.producer(i).unwrap();
                scope.spawn(move || {
                    for (chunk, at) in feed {
                        producer.send(chunk.clone(), *at).unwrap();
                    }
                });
            }
        });
        let merged = fleet.finish().unwrap();
        // The reference: one monitor over the same records in timestamp
        // order (stable within equal timestamps — same-bucket arrivals
        // commute through the counts monoid).
        let mut all: Vec<(f64, usize, &Pairs)> = Vec::new();
        for (shard, feed) in feeds.iter().enumerate() {
            for (chunk, at) in feed {
                all.push((*at, shard, chunk));
            }
        }
        all.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let mut single = build().build().unwrap();
        for (at, _, chunk) in &all {
            single.push_at(*chunk, *at).unwrap();
        }
        // Align the lone monitor to the fleet clock (the fleet snapshot
        // advanced every shard to the fleet-wide max, which is exactly
        // the max timestamp the single monitor has already seen).
        prop_assert_eq!(
            serde_json::to_string(&merged).unwrap(),
            serde_json::to_string(&single.snapshot().unwrap()).unwrap()
        );
    }
}

/// A chunk of `(outcome, attr, attr)` index triples, for the
/// three-axis schemas label-conditioned metrics need.
#[derive(Debug, Clone)]
struct Triples(Vec<[usize; 3]>);

impl Tally for Triples {
    fn tally_into(&self, shard: &mut PartialCounts) -> differential_fairness::prob::Result<()> {
        for idx in &self.0 {
            shard.record(idx);
        }
        Ok(())
    }
}

/// Every registry metric over the y×g×h schema below.
const METRIC_TAGS: [&str; 5] = [
    "eps-df",
    "wc-ratio",
    "wc-diff",
    "alpha-if(alpha=0.5)",
    "deo(label=h)",
];

fn three_axes() -> Vec<Axis> {
    vec![
        Axis::from_strs("y", &["no", "yes"]).unwrap(),
        Axis::from_strs("g", &["a", "b"]).unwrap(),
        Axis::from_strs("h", &["u", "v"]).unwrap(),
    ]
}

/// A [`rich_monitor`]-shaped monitor computing `tag` over y×g×h.
fn metric_monitor(tag: &str) -> FairnessMonitor {
    Audit::monitor("y", three_axes())
        .estimator(Smoothed { alpha: 1.0 })
        .boxed_metric(metric_from_tag(tag).unwrap())
        .subsets(SubsetPolicy::All)
        .window_seconds(5.0)
        .bucket_seconds(1.0)
        .decay(0.5)
        .alert(AlertRule::epsilon_above(0.05))
        .changepoint(Cusum::new(0.0, 0.01, 0.05))
        .changepoint(PageHinkley::new(0.0, 0.01, 0.05))
        .build()
        .unwrap()
}

proptest! {
    /// The codec identity of `codec_round_trips_and_is_byte_stable`, per
    /// metric tag: the tag rides inside the fingerprinted schema, so
    /// every frame decodes back to a snapshot carrying the exact metric,
    /// one schema is interned per stream, and re-encoding is the byte
    /// identity — for every registry metric.
    #[test]
    fn codec_round_trips_for_every_metric_tag(
        tag_idx in 0usize..5,
        chunks in proptest::collection::vec(
            (proptest::collection::vec(any::<u64>(), 1..6), 0i64..3),
            1..8,
        ),
    ) {
        let tag = METRIC_TAGS[tag_idx];
        let mut monitor = metric_monitor(tag);
        let mut now = 0i64;
        let mut encoder = SnapshotEncoder::new();
        let mut decoder = SnapshotDecoder::new();
        for (picks, advance) in &chunks {
            now += advance;
            let rows: Vec<[usize; 3]> = picks
                .iter()
                .map(|&p| [(p % 2) as usize, (p as usize / 2) % 2, (p as usize / 4) % 2])
                .collect();
            monitor.push_at(&Triples(rows), now as f64).unwrap();
            let snap = monitor.snapshot().unwrap();
            prop_assert_eq!(&snap.metric, tag);
            let frame = encoder.encode(&snap).unwrap();
            let back = decoder.decode(&frame).unwrap();
            prop_assert_eq!(&back, &snap);
        }
        prop_assert_eq!(decoder.interned_schemas(), 1);
    }
}

/// Snapshots computed under different metrics never merge — by value or
/// through the fleet fold — and the refusal is the typed
/// [`DfError::Invalid`], naming both metrics, never a silently
/// substituted ε.
#[test]
fn mismatched_metric_snapshots_refuse_to_merge_with_typed_error() {
    let est = Smoothed { alpha: 1.0 };
    let snapshot_under = |tag: &str| {
        let mut monitor = metric_monitor(tag);
        monitor
            .push_at(&Triples(vec![[0, 0, 0], [1, 1, 1]]), 1.0)
            .unwrap();
        monitor.snapshot().unwrap()
    };
    let eps = snapshot_under("eps-df");
    let ratio = snapshot_under("wc-ratio");
    match eps.merge(&ratio, &est) {
        Err(DfError::Invalid(msg)) => {
            assert!(
                msg.contains("eps-df") && msg.contains("wc-ratio"),
                "refusal must name both metrics: {msg}"
            );
        }
        Err(other) => panic!("wrong error kind: {other}"),
        Ok(_) => panic!("cross-metric merge must fail"),
    }
    assert!(matches!(
        merge_many(&[eps.clone(), ratio], &est),
        Err(DfError::Invalid(_))
    ));

    // An unknown tag is a typed *decode* error: the frame parses but the
    // schema is rejected before any ε could be silently recomputed.
    let mut forged = eps;
    forged.metric = "martian".to_string();
    let frame = encode_snapshot(&forged).unwrap();
    match decode_snapshot(&frame) {
        Err(DfError::Invalid(msg)) => {
            assert!(msg.contains("unknown metric"), "{msg}");
        }
        Err(other) => panic!("wrong error kind: {other}"),
        Ok(_) => panic!("unknown metric tag must not decode"),
    }
}

/// Satellite regression: a hand-corrupted JSON snapshot — the wire form a
/// dashboard or hostile replica could ship — is rejected by `to_table`
/// with the typed `CorruptCounts` error (mirroring `Audit::of_counts`),
/// so no corrupt cell ever reaches the ε kernel through the merge path.
#[test]
fn corrupt_json_snapshot_is_rejected_with_typed_error() {
    let json = r#"{"axes":[["y",["no","yes"]],["g",["a","b"]]],"data":[4.0,1.0,-2.0,3.0]}"#;
    let counts: CountsSnapshot = serde_json::from_str(json).unwrap();
    match counts.to_table() {
        Err(DfError::CorruptCounts { cell, value }) => {
            assert_eq!(cell, 2);
            assert_eq!(value, -2.0);
        }
        other => panic!("expected CorruptCounts, got {other:?}"),
    }
    // The same corruption inside a full MonitorSnapshot poisons merging:
    // build a healthy snapshot, corrupt one window cell, and watch the
    // merge refuse instead of certifying a NaN ε.
    let mut monitor = Audit::monitor("y", axes(2))
        .estimator(Smoothed { alpha: 1.0 })
        .window_seconds(4.0)
        .build()
        .unwrap();
    monitor.push_at(&Pairs(vec![[0, 0], [1, 1]]), 1.0).unwrap();
    let healthy = monitor.snapshot().unwrap();
    let mut corrupt = healthy.clone();
    corrupt.window.data[0] = f64::NAN;
    let est = Smoothed { alpha: 1.0 };
    assert!(matches!(
        healthy.merge(&corrupt, &est),
        Err(DfError::CorruptCounts { .. })
    ));
    assert!(matches!(
        merge_many(&[healthy, corrupt], &est),
        Err(DfError::CorruptCounts { .. })
    ));
}

/// The binary codec refuses corrupt cells in both directions (encode and
/// decode), with the same typed error.
#[test]
fn codec_rejects_corrupt_cells_with_typed_error() {
    let mut monitor = Audit::monitor("y", axes(2))
        .estimator(Smoothed { alpha: 1.0 })
        .window_seconds(4.0)
        .build()
        .unwrap();
    monitor.push_at(&Pairs(vec![[0, 0], [1, 1]]), 1.0).unwrap();
    let mut snap = monitor.snapshot().unwrap();
    snap.window.data[1] = -1.0;
    assert!(matches!(
        encode_snapshot(&snap),
        Err(DfError::CorruptCounts { cell: 1, .. })
    ));
}
