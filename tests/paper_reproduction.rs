//! End-to-end assertions of every number the paper reports, wired through
//! the public API exactly as a downstream user would reach them.

use differential_fairness::data::kidney;
use differential_fairness::prelude::*;

fn assert_close(measured: f64, paper: f64, tol: f64, what: &str) {
    assert!(
        (measured - paper).abs() <= tol,
        "{what}: measured {measured:.4}, paper {paper:.4} (tol {tol})"
    );
}

/// Figure 2: the threshold worked example.
#[test]
fn figure2_worked_example() {
    let workload = GaussianScoreGroups::figure2();
    let mech = ThresholdMechanism::new(10.5);
    let probs = mech.group_outcome_probabilities(&workload);
    assert_close(probs[0][1], 0.3085, 1e-3, "P(yes|group1)");
    assert_close(probs[1][1], 0.9332, 1e-3, "P(yes|group2)");
    assert_close(probs[0][0], 0.6915, 1e-3, "P(no|group1)");
    assert_close(probs[1][0], 0.0668, 1e-3, "P(no|group2)");

    let go = GroupOutcomes::with_uniform_weights(
        vec!["no".into(), "yes".into()],
        vec!["group1".into(), "group2".into()],
        probs.iter().flat_map(|r| r.iter().copied()).collect(),
    )
    .unwrap();
    let eps = go.epsilon();
    assert_close(eps.epsilon, 2.337, 2e-3, "Figure 2 epsilon");
    assert_close(eps.probability_ratio_bound(), 10.35, 2e-2, "Figure 2 e^eps");
    // Log-ratio table entries.
    let no = go.log_ratio_table(0).unwrap();
    let entry = no.iter().find(|&&(i, j, _)| i == 0 && j == 1).unwrap();
    assert_close(entry.2, 2.337, 2e-3, "log ratio (no, 1, 2)");
    let yes = go.log_ratio_table(1).unwrap();
    let entry = yes.iter().find(|&&(i, j, _)| i == 0 && j == 1).unwrap();
    assert_close(entry.2, -1.107, 2e-3, "log ratio (yes, 1, 2)");
}

/// Table 1 / §5.1: Simpson's paradox admissions, through the audit builder.
#[test]
fn table1_simpsons_paradox() {
    let counts = JointCounts::from_table(kidney::admissions_counts(), "outcome").unwrap();
    let report = Audit::of(&counts)
        .estimator(Empirical)
        .subsets(SubsetPolicy::All)
        .run()
        .unwrap();
    assert_eq!(report.n_records, Some(700));
    let edf = report.estimator("eps-EDF").unwrap();
    let eps = |attrs: &[&str]| edf.get(attrs).unwrap().result.epsilon;
    assert_close(eps(&["gender", "race"]), 1.511, 1e-3, "Gender x Race");
    assert_close(eps(&["gender"]), 0.2329, 1e-3, "Gender");
    assert_close(eps(&["race"]), 0.8667, 1e-3, "Race");
    // Theorem 3.1's quoted bound: at most 2 eps = 3.022.
    assert!(eps(&["gender"]) <= 3.022 && eps(&["race"]) <= 3.022);
    assert_eq!(report.bound_violations, Some(vec![]));
}

/// Table 2: EDF of the Adult training set for every subset, through the
/// frame-level audit entry point.
#[test]
fn table2_adult_subset_epsilons() {
    let dataset = adult::synth::generate_default()
        .unwrap()
        .with_protected()
        .unwrap();
    assert_eq!(dataset.train.n_rows(), 32_561);
    assert_eq!(dataset.test.n_rows(), 16_281);
    let report = Audit::of_frame(
        &dataset.train,
        "income",
        &["race_m", "gender", "nationality"],
    )
    .unwrap()
    .estimator(Empirical)
    .subsets(SubsetPolicy::All)
    .run()
    .unwrap();
    assert_eq!(report.n_records, Some(32_561));
    let audit = report.estimator("eps-EDF").unwrap();
    let rows: [(&[&str], f64); 7] = [
        (&["nationality"], 0.219),
        (&["race_m"], 0.930),
        (&["gender"], 1.03),
        (&["gender", "nationality"], 1.16),
        (&["race_m", "nationality"], 1.21),
        (&["race_m", "gender"], 1.76),
        (&["race_m", "gender", "nationality"], 2.14),
    ];
    for (attrs, paper) in rows {
        let eps = audit.get(attrs).unwrap().result.epsilon;
        assert_close(eps, paper, 0.05, &format!("Table 2 {attrs:?}"));
    }
    // The paper's narrative ordering.
    let eps = |attrs: &[&str]| audit.get(attrs).unwrap().result.epsilon;
    assert!(eps(&["nationality"]) < eps(&["race_m"]));
    assert!(eps(&["race_m"]) < eps(&["gender"]));
    assert!(eps(&["race_m", "gender"]) > eps(&["gender"]) + 0.5);
}

/// §3.3: randomized response is ln 3-DF; regime classification.
#[test]
fn randomized_response_calibration() {
    let table = differential_fairness::core::privacy::randomized_response_table();
    let eps = table.epsilon().epsilon;
    assert_close(eps, 3.0_f64.ln(), 1e-12, "randomized response");
    assert_close(eps, RANDOMIZED_RESPONSE_EPSILON, 1e-12, "constant");
    assert_eq!(PrivacyRegime::of(eps), PrivacyRegime::Moderate);
    assert_eq!(PrivacyRegime::of(0.9), PrivacyRegime::High);
}

/// §3.3's loan example: a ln(3)-DF process can award 3x the expected
/// utility.
#[test]
fn utility_disparity_example() {
    let go = GroupOutcomes::with_uniform_weights(
        vec!["deny".into(), "approve".into()],
        vec!["white_men".into(), "white_women".into()],
        vec![0.4, 0.6, 0.8, 0.2],
    )
    .unwrap();
    assert_close(go.epsilon().epsilon, 3.0_f64.ln(), 1e-12, "ln 3 process");
    let u = go.expected_utilities(&[0.0, 1.0]).unwrap();
    assert_close(u[0] / u[1], 3.0, 1e-12, "3x expected utility");
}

/// Table 3's smoothing formula (Eq. 7) at α = 1 on a concrete cell.
#[test]
fn eq7_smoothing_closed_form() {
    let counts = JointCounts::from_table(kidney::admissions_counts(), "outcome").unwrap();
    let go = counts.group_outcomes(1.0).unwrap();
    // Gender A, race 1: admits 81 of 87 → (81+1)/(87+2).
    let g = go
        .group_labels()
        .iter()
        .position(|l| l == "gender=A, race=1")
        .unwrap();
    assert_close(go.prob(g, 0), 82.0 / 89.0, 1e-12, "Eq. 7 cell");
}

/// Table 3 shape: error band and the race-feature effect (the absolute ε
/// values depend on the synthetic feature model — see EXPERIMENTS.md).
#[test]
fn table3_shape() {
    use differential_fairness::learn::pipeline::{run_feature_selection, ADULT_BASE_FEATURES};
    let dataset = adult::synth::generate_default()
        .unwrap()
        .with_protected()
        .unwrap();

    let eps_of = |preds: &[f64]| {
        let labels: Vec<&str> = preds
            .iter()
            .map(|&p| if p >= 0.5 { "p1" } else { "p0" })
            .collect();
        let mut frame = dataset.test.clone();
        frame
            .add_column(Column::categorical("prediction", &labels))
            .unwrap();
        JointCounts::from_table(
            frame
                .contingency(&["prediction", "race_m", "gender", "nationality"])
                .unwrap(),
            "prediction",
        )
        .unwrap()
        .edf_smoothed(1.0)
        .unwrap()
        .epsilon
    };

    let none = run_feature_selection(
        &dataset.train,
        &dataset.test,
        &ADULT_BASE_FEATURES,
        &[],
        "income",
        ">50K",
        &LogisticConfig::default(),
    )
    .unwrap();
    let with_race = run_feature_selection(
        &dataset.train,
        &dataset.test,
        &ADULT_BASE_FEATURES,
        &["race_m"],
        "income",
        ">50K",
        &LogisticConfig::default(),
    )
    .unwrap();

    // Error band: the paper reports 14.90-15.21%.
    assert!(
        (0.135..=0.165).contains(&none.error_rate),
        "error {} outside the paper band",
        none.error_rate
    );
    // Giving the classifier race increases the unfairness eps (the paper's
    // headline Table 3 finding).
    let eps_none = eps_of(&none.test_predictions);
    let eps_race = eps_of(&with_race.test_predictions);
    assert!(
        eps_race > eps_none,
        "race feature should increase eps: {eps_race} vs {eps_none}"
    );
    // All classifier eps stay in a plausible band around the data eps.
    for eps in [eps_none, eps_race] {
        assert!((1.5..=4.0).contains(&eps), "eps {eps} out of band");
    }
}
