//! Change-point detection golden tests: on seeded `workloads` streams
//! with planted change-points, CUSUM and Page–Hinkley must detect within
//! a pinned delay bound — and must raise **zero** false alarms on the
//! null stream — at the documented thresholds.
//!
//! The configuration under test is the one EXPERIMENTS.md documents:
//!
//! - traffic: Poisson arrivals at 50 records/s over 4 intersectional
//!   groups, positive base rate 0.4;
//! - window: last 60 s at 5 s buckets (≈ 3 000 records when warm), ε
//!   under `Smoothed { alpha: 1.0 }`, one chunk pushed per bucket (so
//!   detectors sample once per 5 s bucket);
//! - detectors: `Cusum::new(0.25, 0.05, 1.0)` and
//!   `PageHinkley::new(0.25, 0.05, 1.0)` — target 0.25 sits above the
//!   null stream's windowed-ε noise ceiling (empirically ≈ 0.26 peak,
//!   0.08–0.14 mean across seeds), slack 0.05 absorbs the rest, and
//!   threshold 1.0 then buys zero false alarms over 600 s of null
//!   traffic while still detecting a planted jump to ε = 1.2 within a
//!   single window span.
//!
//! Everything is seeded and deterministic: identical replays must
//! produce identical alarm times, which is also asserted.

use differential_fairness::prelude::*;

const RATE: f64 = 50.0;
const WINDOW_SECONDS: f64 = 60.0;
const BUCKET_SECONDS: f64 = 5.0;

fn detectors() -> (Cusum, PageHinkley) {
    (
        Cusum::new(0.25, 0.05, 1.0),
        PageHinkley::new(0.25, 0.05, 1.0),
    )
}

/// Replays `segments` through a wall-clock monitor, pushing one chunk
/// per 5 s bucket; returns the alarm times (seconds) per detector.
fn replay_alarms(seed: u64, segments: &[DriftSegment]) -> (Vec<f64>, Vec<f64>) {
    let mut rng = Pcg32::new(seed);
    let replay = timestamped_drift_stream(
        &mut rng,
        &[2, 2],
        0.4,
        segments,
        ArrivalProcess::Poisson { rate: RATE },
    )
    .unwrap();
    let axes = vec![
        Axis::from_strs("outcome", &["y0", "y1"]).unwrap(),
        Axis::from_strs("attr0", &["v0", "v1"]).unwrap(),
        Axis::from_strs("attr1", &["v0", "v1"]).unwrap(),
    ];
    let (cusum, ph) = detectors();
    let mut monitor = Audit::monitor("outcome", axes)
        .estimator(Smoothed { alpha: 1.0 })
        .window_seconds(WINDOW_SECONDS)
        .bucket_seconds(BUCKET_SECONDS)
        .changepoint(cusum)
        .changepoint(ph)
        .build()
        .unwrap();
    let mut cusum_alarms = Vec::new();
    let mut ph_alarms = Vec::new();
    // One chunk per bucket, so detectors sample on a fixed 5 s cadence.
    for chunk in replay.bucket_chunks(BUCKET_SECONDS).unwrap() {
        let step = monitor.push_at(&chunk, chunk.timestamp).unwrap();
        for alarm in &step.alarms {
            let at = alarm.at_seconds.expect("wall-clock alarms carry the clock");
            match alarm.detector.name() {
                "cusum" => cusum_alarms.push(at),
                "page-hinkley" => ph_alarms.push(at),
                other => panic!("unexpected detector {other}"),
            }
        }
    }
    (cusum_alarms, ph_alarms)
}

#[test]
fn null_stream_raises_zero_false_alarms() {
    let null = [DriftSegment::new(600.0, 0.0)];
    for seed in [42, 7, 2026] {
        let (cusum, ph) = replay_alarms(seed, &null);
        assert!(
            cusum.is_empty(),
            "seed {seed}: CUSUM false alarms at {cusum:?}"
        );
        assert!(
            ph.is_empty(),
            "seed {seed}: Page-Hinkley false alarms at {ph:?}"
        );
    }
}

#[test]
fn planted_change_is_detected_within_one_window_span() {
    // 300 s in control, then a step to ε = 1.2 — the change-point the
    // generator reports sits exactly at the boundary.
    let change_at = 300.0;
    let stepped = [
        DriftSegment::new(change_at, 0.0),
        DriftSegment::new(300.0, 1.2),
    ];
    for seed in [42, 7, 2026] {
        let (cusum, ph) = replay_alarms(seed, &stepped);
        for (name, alarms) in [("CUSUM", &cusum), ("Page-Hinkley", &ph)] {
            let first = *alarms
                .first()
                .unwrap_or_else(|| panic!("seed {seed}: {name} never alarmed"));
            let delay = first - change_at;
            assert!(
                delay > 0.0,
                "seed {seed}: {name} alarmed before the change ({first})"
            );
            // Pinned bound: detection within one 60 s window span.
            // Empirically the delay is 40–45 s across these seeds (the
            // window must part-fill with drifted traffic before ε climbs
            // past target + slack).
            assert!(
                delay <= WINDOW_SECONDS,
                "seed {seed}: {name} delay {delay} exceeds one window span"
            );
        }
        // After the first alarm the detector resets and keeps watching:
        // a persistent shift keeps raising alarms.
        assert!(cusum.len() > 1, "seed {seed}: CUSUM should re-alarm");
        assert!(ph.len() > 1, "seed {seed}: Page-Hinkley should re-alarm");
    }
}

#[test]
fn detection_is_deterministic_under_replay() {
    let stepped = [DriftSegment::new(300.0, 0.0), DriftSegment::new(300.0, 1.2)];
    assert_eq!(replay_alarms(42, &stepped), replay_alarms(42, &stepped));
}
