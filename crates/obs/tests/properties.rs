//! Property-based tests of the telemetry primitives: concurrent bumps
//! lose nothing, and histogram merging is a commutative monoid.
//!
//! Observed values are **dyadic rationals** (`k / 16`) so every f64 sum
//! is exact regardless of addition order — the monoid laws can then be
//! asserted with `==` on whole snapshots instead of epsilon smudge.

use df_obs::{Counter, Histogram, HistogramSnapshot};
use proptest::prelude::*;
use std::sync::Arc;

/// Strategy: a batch of dyadic observations in [0, 16).
fn dyadic_values() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0u32..256, 0..40)
        .prop_map(|ks| ks.into_iter().map(|k| f64::from(k) / 16.0).collect())
}

fn snapshot_of(bounds: &[f64], values: &[f64]) -> HistogramSnapshot {
    let h = Histogram::new(bounds).unwrap();
    for &v in values {
        h.observe(v);
    }
    h.snapshot()
}

const BOUNDS: [f64; 5] = [0.5, 1.0, 2.0, 4.0, 8.0];

proptest! {
    /// N threads hammering shared counter and histogram handles lose no
    /// increments: the totals equal the per-thread sums exactly.
    #[test]
    fn concurrent_bumps_lose_nothing(
        threads in 2usize..6,
        per_thread in dyadic_values(),
        step in 1u64..100,
    ) {
        let counter = Counter::new();
        let hist = Histogram::new(&BOUNDS).unwrap();
        let work = Arc::new(per_thread);
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let counter = counter.clone();
                let hist = hist.clone();
                let work = Arc::clone(&work);
                std::thread::spawn(move || {
                    for &v in work.iter() {
                        counter.add(step);
                        hist.observe(v);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let n = work.len() as u64 * threads as u64;
        prop_assert_eq!(counter.get(), n * step);
        let snap = hist.snapshot();
        prop_assert_eq!(snap.count, n);
        let expected_sum: f64 = work.iter().sum::<f64>() * threads as f64;
        // Dyadic values: the CAS-loop sum must be bit-exact. (`+ 0.0`
        // canonicalizes the signed zero `Sum<f64>` starts from.)
        prop_assert_eq!((snap.sum + 0.0).to_bits(), (expected_sum + 0.0).to_bits());
        prop_assert_eq!(snap.buckets.iter().sum::<u64>(), n);
    }

    /// `merge` is commutative and has `empty` as a two-sided identity.
    #[test]
    fn merge_commutes_with_identity(a in dyadic_values(), b in dyadic_values()) {
        let sa = snapshot_of(&BOUNDS, &a);
        let sb = snapshot_of(&BOUNDS, &b);
        prop_assert_eq!(sa.merge(&sb).unwrap(), sb.merge(&sa).unwrap());
        let id = HistogramSnapshot::empty(&BOUNDS);
        prop_assert_eq!(sa.merge(&id).unwrap(), sa.clone());
        prop_assert_eq!(id.merge(&sa).unwrap(), sa);
    }

    /// `merge` is associative, and merging equals observing the
    /// concatenated stream — the property that makes per-shard
    /// histograms aggregate into exact fleet-wide ones.
    #[test]
    fn merge_is_associative_and_matches_concatenation(
        a in dyadic_values(),
        b in dyadic_values(),
        c in dyadic_values(),
    ) {
        let (sa, sb, sc) = (
            snapshot_of(&BOUNDS, &a),
            snapshot_of(&BOUNDS, &b),
            snapshot_of(&BOUNDS, &c),
        );
        let left = sa.merge(&sb).unwrap().merge(&sc).unwrap();
        let right = sa.merge(&sb.merge(&sc).unwrap()).unwrap();
        prop_assert_eq!(&left, &right);
        let concat: Vec<f64> = a.iter().chain(&b).chain(&c).copied().collect();
        prop_assert_eq!(left, snapshot_of(&BOUNDS, &concat));
    }

    /// `Histogram::merge_from` agrees with snapshot-level `merge`.
    #[test]
    fn merge_from_matches_snapshot_merge(a in dyadic_values(), b in dyadic_values()) {
        let ha = Histogram::new(&BOUNDS).unwrap();
        for &v in &a {
            ha.observe(v);
        }
        let hb = Histogram::new(&BOUNDS).unwrap();
        for &v in &b {
            hb.observe(v);
        }
        let expected = ha.snapshot().merge(&hb.snapshot()).unwrap();
        ha.merge_from(&hb).unwrap();
        prop_assert_eq!(ha.snapshot(), expected);
    }

    /// Quantiles answer from a real bucket: p50 ≤ p90 ≤ p99, and every
    /// quantile of a non-empty histogram lands on a boundary value the
    /// stream could actually have reached.
    #[test]
    fn quantiles_are_monotone(
        values in proptest::collection::vec(0u32..256, 1..40)
            .prop_map(|ks| ks.into_iter().map(|k| f64::from(k) / 16.0).collect::<Vec<f64>>()),
    ) {
        let snap = snapshot_of(&BOUNDS, &values);
        let (p50, p90, p99) = (snap.p50(), snap.p90(), snap.p99());
        prop_assert!(p50 <= p90 && p90 <= p99);
        prop_assert!(p99 <= BOUNDS[BOUNDS.len() - 1] || values.iter().any(|&v| v > BOUNDS[BOUNDS.len() - 1]));
    }
}
