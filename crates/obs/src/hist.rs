//! Fixed-boundary latency histograms: lock-free `observe`, exact
//! merges, quantile estimation.
//!
//! A histogram is a vector of upper bounds `b_0 < b_1 < … < b_{k-1}`
//! plus `k + 1` atomic bucket counts (the last is the overflow bucket
//! for samples above `b_{k-1}`), a total count, and a CAS-maintained
//! `f64` sum. `observe` is a binary search plus two relaxed atomic adds
//! and one CAS loop — no locks, so N threads observing concurrently
//! lose nothing (pinned by the concurrency property suite).
//!
//! Two histograms with **identical boundaries** merge exactly: bucket
//! counts and totals add as `u64`s, so merged snapshots form a
//! commutative monoid over bucket vectors (the laws suite pins
//! identity/commutativity/associativity; the `f64` sum is associative
//! only when the additions are exact, which the tests arrange by
//! observing dyadic values).
//!
//! Quantiles are estimated the standard Prometheus way: find the bucket
//! where the cumulative count crosses `q · total`, then interpolate
//! linearly inside it. With log-scale boundaries (factor 2 per bucket)
//! the estimate is within 2× of the true value — plenty for p99
//! dashboards, and mergeable across shards, which exact quantiles are
//! not.

use crate::error::{ObsError, Result};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

#[derive(Debug)]
struct HistInner {
    /// Strictly increasing, finite upper bounds.
    bounds: Box<[f64]>,
    /// `bounds.len() + 1` buckets; the last is the overflow bucket.
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    /// Sum of observed values as IEEE bits, maintained by CAS.
    sum_bits: AtomicU64,
}

/// A live, lock-free histogram. `Clone` shares the cells.
#[derive(Clone, Debug)]
pub struct Histogram {
    inner: Arc<HistInner>,
}

impl Histogram {
    /// A histogram over explicit upper bounds (strictly increasing,
    /// finite, non-empty).
    pub fn new(bounds: &[f64]) -> Result<Self> {
        if bounds.is_empty() {
            return Err(ObsError::BadBoundaries("empty boundary vector".into()));
        }
        if bounds.iter().any(|b| !b.is_finite()) {
            return Err(ObsError::BadBoundaries(
                "boundaries must all be finite".into(),
            ));
        }
        // Finiteness is established above, so `>=` is NaN-free here.
        for w in bounds.windows(2) {
            if w[0] >= w[1] {
                return Err(ObsError::BadBoundaries(format!(
                    "boundaries must be strictly increasing, got {} then {}",
                    w[0], w[1]
                )));
            }
        }
        let buckets = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Ok(Self {
            inner: Arc::new(HistInner {
                bounds: bounds.into(),
                buckets,
                count: AtomicU64::new(0),
                sum_bits: AtomicU64::new(0f64.to_bits()),
            }),
        })
    }

    /// Log-scale bounds: `start, start·factor, …` for `n` buckets.
    pub fn log_scale(start: f64, factor: f64, n: usize) -> Result<Self> {
        // `is_finite` first so NaN can't slip past the `<=` checks.
        if !start.is_finite() || start <= 0.0 || !factor.is_finite() || factor <= 1.0 || n == 0 {
            return Err(ObsError::BadBoundaries(format!(
                "log scale needs start > 0, factor > 1, n > 0; got ({start}, {factor}, {n})"
            )));
        }
        let mut bounds = Vec::with_capacity(n);
        let mut b = start;
        for _ in 0..n {
            bounds.push(b);
            b *= factor;
        }
        Self::new(&bounds)
    }

    /// The default latency scale: 1 µs to ~33.5 s, doubling per bucket
    /// (26 bounds + overflow). Covers a cache-hit microsecond audit and
    /// a pathological multi-second consistent cut on the same axis.
    pub fn default_latency() -> Self {
        match Self::log_scale(1e-6, 2.0, 26) {
            Ok(h) => h,
            // Unreachable: the constants above satisfy every check.
            Err(_) => unreachable!("default latency boundaries are statically valid"),
        }
    }

    pub fn bounds(&self) -> &[f64] {
        &self.inner.bounds
    }

    /// Records one sample: binary-search the bucket, bump it, bump the
    /// total, CAS the sum. Non-finite samples are ignored — a duration
    /// is always finite, and admitting `NaN` would poison the sum.
    pub fn observe(&self, v: f64) {
        if !v.is_finite() {
            return;
        }
        let idx = self.inner.bounds.partition_point(|&b| b < v);
        self.inner.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.inner.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = self.inner.sum_bits.load(Ordering::Relaxed);
        loop {
            let new = (f64::from_bits(cur) + v).to_bits();
            match self.inner.sum_bits.compare_exchange_weak(
                cur,
                new,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Records a duration given in nanoseconds (the span layer's unit),
    /// observed in seconds.
    pub fn observe_nanos(&self, nanos: u64) {
        self.observe(nanos as f64 * 1e-9);
    }

    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// Folds another live histogram into this one. Boundaries must be
    /// bit-identical.
    pub fn merge_from(&self, other: &Histogram) -> Result<()> {
        check_bounds_match(self.bounds(), other.bounds())?;
        for (mine, theirs) in self.inner.buckets.iter().zip(other.inner.buckets.iter()) {
            mine.fetch_add(theirs.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        self.inner
            .count
            .fetch_add(other.inner.count.load(Ordering::Relaxed), Ordering::Relaxed);
        let add = f64::from_bits(other.inner.sum_bits.load(Ordering::Relaxed));
        let mut cur = self.inner.sum_bits.load(Ordering::Relaxed);
        loop {
            let new = (f64::from_bits(cur) + add).to_bits();
            match self.inner.sum_bits.compare_exchange_weak(
                cur,
                new,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
        Ok(())
    }

    /// A point-in-time copy for rendering, merging, and quantiles.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.inner.bounds.to_vec(),
            buckets: self
                .inner
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.inner.count.load(Ordering::Relaxed),
            sum: f64::from_bits(self.inner.sum_bits.load(Ordering::Relaxed)),
        }
    }

    pub(crate) fn same_cell(&self, other: &Histogram) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

fn check_bounds_match(a: &[f64], b: &[f64]) -> Result<()> {
    // Bitwise comparison: exact, NaN-proof, and free of float `==`.
    let same = a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits());
    if same {
        Ok(())
    } else {
        Err(ObsError::BoundaryMismatch(format!(
            "cannot merge histograms with {} vs {} boundaries",
            a.len(),
            b.len()
        )))
    }
}

/// An immutable histogram snapshot — the mergeable value object.
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramSnapshot {
    pub bounds: Vec<f64>,
    /// `bounds.len() + 1` entries, last is overflow.
    pub buckets: Vec<u64>,
    pub count: u64,
    pub sum: f64,
}

impl HistogramSnapshot {
    /// The identity element for `merge` over a boundary vector.
    pub fn empty(bounds: &[f64]) -> Self {
        Self {
            bounds: bounds.to_vec(),
            buckets: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0.0,
        }
    }

    /// Exact snapshot merge: bucket-wise `u64` addition. This is the
    /// commutative-monoid operation the laws suite pins.
    pub fn merge(&self, other: &HistogramSnapshot) -> Result<HistogramSnapshot> {
        check_bounds_match(&self.bounds, &other.bounds)?;
        Ok(HistogramSnapshot {
            bounds: self.bounds.clone(),
            buckets: self
                .buckets
                .iter()
                .zip(&other.buckets)
                .map(|(a, b)| a + b)
                .collect(),
            count: self.count + other.count,
            sum: self.sum + other.sum,
        })
    }

    /// The estimated `q`-quantile (`0 ≤ q ≤ 1`): linear interpolation
    /// inside the bucket where the cumulative count crosses
    /// `q · count`. Returns 0.0 for an empty histogram. Mass in the
    /// overflow bucket reports the largest finite boundary — the
    /// estimate saturates rather than invents values beyond the scale.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = q * self.count as f64;
        let mut cum = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            let next = cum + n;
            if (next as f64) >= target && n > 0 {
                let lower = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                let upper = match self.bounds.get(i) {
                    Some(&b) => b,
                    // Overflow bucket: saturate at the top boundary.
                    None => return self.bounds[self.bounds.len() - 1],
                };
                let frac = ((target - cum as f64) / n as f64).clamp(0.0, 1.0);
                return lower + (upper - lower) * frac;
            }
            cum = next;
        }
        self.bounds[self.bounds.len() - 1]
    }

    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    pub fn p90(&self) -> f64 {
        self.quantile(0.90)
    }

    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// Mean of the observed values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn bounds_are_validated() {
        assert!(Histogram::new(&[]).is_err());
        assert!(Histogram::new(&[1.0, 1.0]).is_err());
        assert!(Histogram::new(&[2.0, 1.0]).is_err());
        assert!(Histogram::new(&[1.0, f64::INFINITY]).is_err());
        assert!(Histogram::log_scale(0.0, 2.0, 4).is_err());
        assert!(Histogram::log_scale(1.0, 1.0, 4).is_err());
        assert!(Histogram::log_scale(1.0, 2.0, 0).is_err());
        assert!(Histogram::new(&[0.5, 1.0, 2.0]).is_ok());
    }

    #[test]
    fn observations_land_in_the_right_buckets() {
        let h = Histogram::new(&[1.0, 2.0, 4.0]).unwrap();
        for v in [0.5, 1.0, 1.5, 3.0, 100.0] {
            h.observe(v);
        }
        h.observe(f64::NAN); // ignored
        h.observe(f64::INFINITY); // ignored
        let s = h.snapshot();
        // ≤1.0 → bucket 0 (0.5 and the boundary value 1.0), ≤2.0 → 1.5,
        // ≤4.0 → 3.0, overflow → 100.0.
        assert_eq!(s.buckets, vec![2, 1, 1, 1]);
        assert_eq!(s.count, 5);
        assert!((s.sum - 106.0).abs() < 1e-12);
    }

    #[test]
    fn default_latency_scale_covers_microseconds_to_seconds() {
        let h = Histogram::default_latency();
        assert_eq!(h.bounds().len(), 26);
        assert!(h.bounds()[0].to_bits() == 1e-6f64.to_bits());
        assert!(*h.bounds().last().unwrap() > 30.0);
        h.observe_nanos(1_500);
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        // 1.5 µs lands in the (1 µs, 2 µs] bucket.
        assert_eq!(s.buckets[1], 1);
    }

    #[test]
    fn merge_is_exact_and_checks_bounds() {
        let a = Histogram::new(&[1.0, 2.0]).unwrap();
        let b = Histogram::new(&[1.0, 2.0]).unwrap();
        let c = Histogram::new(&[1.0, 3.0]).unwrap();
        a.observe(0.5);
        b.observe(1.5);
        b.observe(9.0);
        a.merge_from(&b).unwrap();
        let s = a.snapshot();
        assert_eq!(s.buckets, vec![1, 1, 1]);
        assert_eq!(s.count, 3);
        assert!(a.merge_from(&c).is_err());
        assert!(a.snapshot().merge(&c.snapshot()).is_err());
    }

    #[test]
    fn quantiles_interpolate() {
        let h = Histogram::new(&[10.0, 20.0, 40.0]).unwrap();
        // 100 samples uniform in bucket 0, 0 in bucket 1, 100 in bucket 2.
        for _ in 0..100 {
            h.observe(5.0);
            h.observe(30.0);
        }
        let s = h.snapshot();
        // p50 target = 100 → crosses at the end of bucket 0 → 10.0.
        assert!((s.p50() - 10.0).abs() < 1e-9);
        // p99 target = 198 → 98% through bucket (20, 40].
        let p99 = s.p99();
        assert!(p99 > 39.0 && p99 <= 40.0, "p99 = {p99}");
        // Overflow-only histogram saturates at the top bound.
        let o = Histogram::new(&[1.0]).unwrap();
        o.observe(50.0);
        assert!((o.snapshot().p50() - 1.0).abs() < 1e-12);
        // Empty histogram quantile is 0.
        assert!(Histogram::new(&[1.0]).unwrap().snapshot().p99().abs() < 1e-12);
    }

    #[test]
    fn concurrent_observations_lose_nothing() {
        let h = Histogram::new(&[0.25, 0.5, 0.75]).unwrap();
        let threads = 8u64;
        let per_thread = 5_000u64;
        thread::scope(|s| {
            for t in 0..threads {
                let h = h.clone();
                s.spawn(move || {
                    for i in 0..per_thread {
                        // Dyadic values → the concurrent sum is exact.
                        h.observe(((t + i) % 4) as f64 * 0.25);
                    }
                });
            }
        });
        let s = h.snapshot();
        assert_eq!(s.count, threads * per_thread);
        assert_eq!(s.buckets.iter().sum::<u64>(), threads * per_thread);
        let expected: f64 = (0..threads)
            .map(|t| {
                (0..per_thread)
                    .map(|i| ((t + i) % 4) as f64 * 0.25)
                    .sum::<f64>()
            })
            .sum();
        assert!(s.sum.to_bits() == expected.to_bits());
    }
}
