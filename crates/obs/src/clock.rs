//! The one place in the telemetry stack allowed to read real time.
//!
//! Everything in `df-obs` that measures a duration does it through the
//! [`Clock`] trait, so tests drive spans with a [`ManualClock`] and the
//! df-lint `no-wall-clock` rule (whose scope covers `crates/obs/src`)
//! has exactly one audited suppression to point at: the
//! `Instant::now()` inside [`RealClock`]. A `RealClock` anchors at an
//! arbitrary origin and reports *monotonic nanoseconds since that
//! origin* — the absolute value is meaningless, only differences are,
//! which is all a span ever computes.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic nanosecond source. Implementations must be cheap and
/// thread-safe: spans call `monotonic_nanos` twice per request on the
/// server hot path.
pub trait Clock: Send + Sync + fmt::Debug {
    /// Nanoseconds since this clock's origin. Must never decrease.
    fn monotonic_nanos(&self) -> u64;
}

/// The production clock: monotonic nanoseconds since construction.
///
/// This struct owns the telemetry layer's only wall-clock read; every
/// other duration in the crate is a subtraction of two
/// `monotonic_nanos` samples.
#[derive(Debug)]
pub struct RealClock {
    origin: Instant,
}

impl RealClock {
    pub fn new() -> Self {
        Self {
            // df-lint: allow(no-wall-clock) -- the audited Clock seam: telemetry durations only; the origin anchor never feeds data timestamps, windows, or epsilon
            origin: Instant::now(),
        }
    }
}

impl Default for RealClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for RealClock {
    fn monotonic_nanos(&self) -> u64 {
        // ~584 years of uptime before u64 nanoseconds saturate; clamp
        // rather than truncate so a (theoretical) overflow still obeys
        // the never-decreases contract.
        u64::try_from(self.origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// A hand-cranked clock for deterministic tests: starts at zero,
/// advances only when told to.
#[derive(Debug, Default)]
pub struct ManualClock {
    nanos: AtomicU64,
}

impl ManualClock {
    pub fn new() -> Self {
        Self::default()
    }

    /// Jumps to an absolute reading. Saturates at the current value —
    /// the clock never runs backwards, matching the trait contract.
    pub fn set(&self, nanos: u64) {
        self.nanos.fetch_max(nanos, Ordering::Relaxed);
    }

    /// Advances by a delta.
    pub fn advance(&self, delta_nanos: u64) {
        self.nanos.fetch_add(delta_nanos, Ordering::Relaxed);
    }
}

impl Clock for ManualClock {
    fn monotonic_nanos(&self) -> u64 {
        self.nanos.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_is_monotonic_and_exact() {
        let clock = ManualClock::new();
        assert_eq!(clock.monotonic_nanos(), 0);
        clock.advance(250);
        assert_eq!(clock.monotonic_nanos(), 250);
        clock.set(1_000);
        assert_eq!(clock.monotonic_nanos(), 1_000);
        // set() never rewinds.
        clock.set(10);
        assert_eq!(clock.monotonic_nanos(), 1_000);
    }

    #[test]
    fn real_clock_never_decreases() {
        let clock = RealClock::new();
        let a = clock.monotonic_nanos();
        let b = clock.monotonic_nanos();
        assert!(b >= a);
    }
}
