//! `df-obs` — the workspace's telemetry layer, in the same hand-rolled
//! dependency-free house style as the HTTP server and the linter.
//!
//! The crate provides five small pieces that compose into a full
//! metrics/tracing story for the audit service:
//!
//! - [`Counter`] / [`Gauge`]: lock-free atomic primitives. Handles are
//!   cheap `Arc` clones, so a hot path holds its handle and never takes
//!   a lock; readers observe monotonic (counter) or last-write (gauge)
//!   values with relaxed ordering.
//! - [`Histogram`]: fixed-boundary latency histograms with log-scale
//!   constructors, lock-free `observe`, exact mergeability (identical
//!   boundaries required), and p50/p90/p99 quantile estimation by
//!   linear interpolation over the cumulative bucket counts.
//! - [`Registry`]: interned metric names + label sets mapping to live
//!   series handles. The registry lock is taken only at registration
//!   and render time — never per observation.
//! - [`render`]: Prometheus text exposition and a hand-rolled JSON
//!   view over a registry, both byte-deterministic (series sorted by
//!   name, then label set) so golden tests can pin them.
//! - [`Span`] / [`Tracer`] / [`TraceRing`]: RAII timing spans that
//!   record into a duration histogram and an optional bounded ring of
//!   recent spans with per-span fields, behind the [`Clock`] seam.
//!
//! # The `Clock` seam and the `no-wall-clock` rule
//!
//! `df_core` is forbidden (by df-lint) from reading wall clocks, so
//! that replaying a recorded stream reproduces every ε byte for byte.
//! Telemetry needs real durations, so this crate owns the boundary:
//! every timing primitive takes a [`Clock`] — [`RealClock`] holds the
//! *single audited* `Instant::now()` call in the crate (df-lint's
//! `no-wall-clock` scope covers `crates/obs`, and that one line carries
//! the justified pragma), while [`ManualClock`] makes every span test
//! deterministic. Core code never times itself: it either takes
//! caller-supplied durations (the `MonitorTelemetry`-style counter
//! bundles live in `df-core` and are bumped clock-free) or is timed
//! from the edge.

pub mod clock;
pub mod error;
pub mod hist;
pub mod metrics;
pub mod registry;
pub mod render;
pub mod span;

pub use clock::{Clock, ManualClock, RealClock};
pub use error::ObsError;
pub use hist::{Histogram, HistogramSnapshot};
pub use metrics::{Counter, Gauge};
pub use registry::Registry;
pub use span::{Span, SpanRecord, TraceRing, Tracer};
