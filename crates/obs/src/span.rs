//! Lightweight timing spans: `Span::enter` → duration histogram +
//! optional bounded trace ring with per-span fields.
//!
//! A [`Tracer`] bundles a [`Clock`] with an optional [`TraceRing`]. A
//! span samples the clock on enter, accumulates `(key, value)` fields
//! while open, and on `finish` (or drop) observes its duration into the
//! histogram it was entered with and appends a [`SpanRecord`] to the
//! ring. The ring is a fixed-capacity `VecDeque` behind a mutex —
//! bounded memory by construction, oldest spans evicted first, with a
//! dropped-count so a scrape can tell how much history it lost. The
//! mutex is uncontended in practice (one push per request, µs-scale
//! critical section); the *histogram* side stays lock-free, so
//! disabling the ring (`capacity 0` → `None`) leaves pure atomics on
//! the hot path.

use crate::clock::Clock;
use crate::hist::Histogram;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex, MutexGuard};

/// One finished span, as stored in the ring.
#[derive(Clone, Debug)]
pub struct SpanRecord {
    pub name: String,
    /// Clock reading at enter (nanoseconds since the clock's origin).
    pub start_nanos: u64,
    pub duration_nanos: u64,
    /// Insertion-ordered `(key, value)` pairs attached while open.
    pub fields: Vec<(String, String)>,
}

struct RingInner {
    spans: VecDeque<SpanRecord>,
    dropped: u64,
}

/// A bounded ring of recent [`SpanRecord`]s. `Clone` shares the ring.
#[derive(Clone)]
pub struct TraceRing {
    inner: Arc<Mutex<RingInner>>,
    capacity: usize,
}

impl std::fmt::Debug for TraceRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.lock();
        write!(
            f,
            "TraceRing({}/{} spans, {} dropped)",
            inner.spans.len(),
            self.capacity,
            inner.dropped
        )
    }
}

impl TraceRing {
    /// A ring holding the most recent `capacity` spans.
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Arc::new(Mutex::new(RingInner {
                spans: VecDeque::with_capacity(capacity),
                dropped: 0,
            })),
            capacity,
        }
    }

    fn lock(&self) -> MutexGuard<'_, RingInner> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Appends a record, evicting the oldest if full.
    pub fn push(&self, record: SpanRecord) {
        let mut inner = self.lock();
        if self.capacity == 0 {
            inner.dropped += 1;
            return;
        }
        if inner.spans.len() == self.capacity {
            inner.spans.pop_front();
            inner.dropped += 1;
        }
        inner.spans.push_back(record);
    }

    /// Spans evicted (or refused, for a zero-capacity ring) so far.
    pub fn dropped(&self) -> u64 {
        self.lock().dropped
    }

    /// The most recent spans, oldest first.
    pub fn recent(&self) -> Vec<SpanRecord> {
        self.lock().spans.iter().cloned().collect()
    }

    /// The `limit` slowest retained spans, slowest first — the
    /// `/v1/trace` view. Ties break toward the more recent span.
    pub fn slowest(&self, limit: usize) -> Vec<SpanRecord> {
        let mut spans = self.recent();
        // Stable sort + reverse index keeps recency as the tiebreak.
        spans.reverse();
        spans.sort_by_key(|s| std::cmp::Reverse(s.duration_nanos));
        spans.truncate(limit);
        spans
    }
}

/// A clock plus an optional ring: the factory for [`Span`]s.
#[derive(Clone, Debug)]
pub struct Tracer {
    clock: Arc<dyn Clock>,
    ring: Option<TraceRing>,
}

impl Tracer {
    /// A tracer recording into `ring` (pass `None` to keep only the
    /// histogram side).
    pub fn new(clock: Arc<dyn Clock>, ring: Option<TraceRing>) -> Self {
        Self { clock, ring }
    }

    pub fn ring(&self) -> Option<&TraceRing> {
        self.ring.as_ref()
    }

    pub fn clock(&self) -> &dyn Clock {
        self.clock.as_ref()
    }

    /// Convenience for [`Span::enter`].
    pub fn span(&self, name: impl Into<String>, hist: &Histogram) -> Span<'_> {
        Span::enter(self, name, hist)
    }
}

/// An open span. Records on `finish` or on drop, whichever comes first.
#[derive(Debug)]
pub struct Span<'t> {
    tracer: &'t Tracer,
    name: String,
    hist: Histogram,
    start_nanos: u64,
    fields: Vec<(String, String)>,
    recorded: bool,
}

impl<'t> Span<'t> {
    /// Samples the clock and opens a span that will observe its
    /// duration into `hist`.
    pub fn enter(tracer: &'t Tracer, name: impl Into<String>, hist: &Histogram) -> Self {
        Self {
            tracer,
            name: name.into(),
            hist: hist.clone(),
            start_nanos: tracer.clock.monotonic_nanos(),
            fields: Vec::new(),
            recorded: false,
        }
    }

    /// Attaches a `(key, value)` field, kept in insertion order.
    pub fn field(&mut self, key: impl Into<String>, value: impl Into<String>) {
        self.fields.push((key.into(), value.into()));
    }

    /// Closes the span now and returns its duration in seconds.
    pub fn finish(mut self) -> f64 {
        self.record()
    }

    fn record(&mut self) -> f64 {
        if self.recorded {
            return 0.0;
        }
        self.recorded = true;
        let end = self.tracer.clock.monotonic_nanos();
        let duration_nanos = end.saturating_sub(self.start_nanos);
        self.hist.observe_nanos(duration_nanos);
        if let Some(ring) = &self.tracer.ring {
            ring.push(SpanRecord {
                name: std::mem::take(&mut self.name),
                start_nanos: self.start_nanos,
                duration_nanos,
                fields: std::mem::take(&mut self.fields),
            });
        }
        duration_nanos as f64 * 1e-9
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        self.record();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    fn tracer(capacity: usize) -> (Arc<ManualClock>, Tracer) {
        let clock = Arc::new(ManualClock::new());
        let ring = (capacity > 0).then(|| TraceRing::new(capacity));
        (clock.clone(), Tracer::new(clock, ring))
    }

    #[test]
    fn span_records_duration_and_fields() {
        let (clock, tracer) = tracer(8);
        let hist = Histogram::default_latency();
        let mut span = Span::enter(&tracer, "audit", &hist);
        span.field("endpoint", "/v1/audit");
        clock.advance(1_500_000); // 1.5 ms
        let seconds = span.finish();
        assert!((seconds - 0.0015).abs() < 1e-12);
        assert_eq!(hist.count(), 1);
        let spans = tracer.ring().unwrap().recent();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "audit");
        assert_eq!(spans[0].duration_nanos, 1_500_000);
        assert_eq!(
            spans[0].fields,
            vec![("endpoint".into(), "/v1/audit".into())]
        );
    }

    #[test]
    fn dropping_a_span_records_it_once() {
        let (clock, tracer) = tracer(8);
        let hist = Histogram::default_latency();
        {
            let mut span = tracer.span("implicit", &hist);
            span.field("k", "v");
            clock.advance(10);
        } // dropped here
        assert_eq!(hist.count(), 1);
        assert_eq!(tracer.ring().unwrap().recent().len(), 1);
    }

    #[test]
    fn ring_is_bounded_and_counts_drops() {
        let (clock, tracer) = tracer(2);
        let hist = Histogram::default_latency();
        for i in 0..5u64 {
            let span = tracer.span(format!("s{i}"), &hist);
            clock.advance(i + 1);
            span.finish();
        }
        let ring = tracer.ring().unwrap();
        let names: Vec<String> = ring.recent().into_iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["s3", "s4"]);
        assert_eq!(ring.dropped(), 3);
    }

    #[test]
    fn slowest_sorts_by_duration_with_recency_tiebreak() {
        let (clock, tracer) = tracer(8);
        let hist = Histogram::default_latency();
        for (name, d) in [("a", 30u64), ("b", 10), ("c", 30), ("d", 20)] {
            let span = tracer.span(name, &hist);
            clock.advance(d);
            span.finish();
        }
        let slowest: Vec<String> = tracer
            .ring()
            .unwrap()
            .slowest(3)
            .into_iter()
            .map(|s| s.name)
            .collect();
        // 30 ns twice ("a" then "c", more recent first), then 20 ns.
        assert_eq!(slowest, vec!["c", "a", "d"]);
    }

    #[test]
    fn zero_capacity_ring_refuses_everything() {
        let ring = TraceRing::new(0);
        ring.push(SpanRecord {
            name: "x".into(),
            start_nanos: 0,
            duration_nanos: 1,
            fields: vec![],
        });
        assert!(ring.recent().is_empty());
        assert_eq!(ring.dropped(), 1);
    }
}
