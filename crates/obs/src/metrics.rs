//! Lock-free scalar metrics: monotonic [`Counter`]s and last-write
//! [`Gauge`]s.
//!
//! Handles are `Arc`-backed and `Clone`: the hot path clones a handle
//! once at startup and then bumps it with a single relaxed atomic op —
//! no locks, no allocation, no branches. Relaxed ordering is
//! deliberate: telemetry values are statistical summaries read at
//! scrape time, not synchronization edges; the scrape may be a few
//! increments stale but every increment lands exactly once (the
//! concurrency property suite pins this).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically increasing `u64` counter.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    value: Arc<AtomicU64>,
}

impl Counter {
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`. A single `fetch_add`, so concurrent callers never lose
    /// increments.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Whether two handles share the same underlying cell — used by the
    /// registry to make re-registration of the *same* series idempotent
    /// while still refusing a conflicting one.
    pub(crate) fn same_cell(&self, other: &Counter) -> bool {
        Arc::ptr_eq(&self.value, &other.value)
    }
}

/// A last-write-wins `f64` gauge, stored as IEEE bits in an `AtomicU64`.
///
/// Gauges start **unset** (`NaN`): a scrape can distinguish "this shard
/// has never reported" from "this shard reported 0.0". Use
/// [`Gauge::get_finite`] when the distinction matters.
#[derive(Clone, Debug)]
pub struct Gauge {
    bits: Arc<AtomicU64>,
}

impl Default for Gauge {
    fn default() -> Self {
        Self {
            bits: Arc::new(AtomicU64::new(f64::NAN.to_bits())),
        }
    }
}

impl Gauge {
    /// An unset gauge (`get()` reads `NaN` until the first `set`).
    pub fn new() -> Self {
        Self::default()
    }

    /// A gauge pre-initialised to `v`.
    pub fn with_value(v: f64) -> Self {
        let g = Self::new();
        g.set(v);
        g
    }

    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    /// `Some(value)` once set, `None` while still `NaN`.
    pub fn get_finite(&self) -> Option<f64> {
        let v = self.get();
        v.is_finite().then_some(v)
    }

    pub(crate) fn same_cell(&self, other: &Gauge) -> bool {
        Arc::ptr_eq(&self.bits, &other.bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        // Clones share the cell.
        let c2 = c.clone();
        c2.inc();
        assert_eq!(c.get(), 43);
        assert!(c.same_cell(&c2));
        assert!(!c.same_cell(&Counter::new()));
    }

    #[test]
    fn gauge_starts_unset_then_tracks_last_write() {
        let g = Gauge::new();
        assert!(g.get().is_nan());
        assert_eq!(g.get_finite(), None);
        g.set(2.5);
        assert_eq!(g.get_finite(), Some(2.5));
        g.set(-1.0);
        assert_eq!(g.get_finite(), Some(-1.0));
    }

    #[test]
    fn concurrent_increments_all_land() {
        let c = Counter::new();
        let threads = 8u64;
        let per_thread = 10_000u64;
        thread::scope(|s| {
            for _ in 0..threads {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..per_thread {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), threads * per_thread);
    }
}
