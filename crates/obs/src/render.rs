//! Exposition renderers: Prometheus text and hand-rolled JSON.
//!
//! Both walk the registry's sorted series list, so the output is
//! byte-deterministic for a given registry state — the golden suite
//! pins the text format down to the byte. Values are formatted with
//! Rust's shortest-roundtrip `Display` for `f64` (which never emits
//! exponent notation), `u64` counters verbatim.
//!
//! Histograms render the full Prometheus shape — cumulative
//! `_bucket{le="…"}` series, `_sum`, `_count` — and the JSON view adds
//! the derived p50/p90/p99/mean so dashboards don't have to re-derive
//! quantiles client-side.

use crate::hist::HistogramSnapshot;
use crate::registry::{Registry, SeriesEntry, SeriesKind};
use std::fmt::Write as _;

/// Prometheus text exposition format (v0.0.4).
pub fn render_text(registry: &Registry) -> String {
    let (series, helps) = registry.collect();
    let mut out = String::new();
    let mut last_name: Option<&str> = None;
    for entry in &series {
        if last_name != Some(entry.name.as_ref()) {
            if let Some(help) = helps.get(&entry.name) {
                let _ = writeln!(out, "# HELP {} {}", entry.name, help);
            }
            let _ = writeln!(out, "# TYPE {} {}", entry.name, entry.kind.type_name());
            last_name = Some(entry.name.as_ref());
        }
        match &entry.kind {
            SeriesKind::Counter(c) => {
                let _ = writeln!(out, "{} {}", series_ref(entry, &[]), c.get());
            }
            SeriesKind::Gauge(g) => {
                let _ = writeln!(out, "{} {}", series_ref(entry, &[]), text_f64(g.get()));
            }
            SeriesKind::GaugeFn(f) => {
                let _ = writeln!(out, "{} {}", series_ref(entry, &[]), text_f64(f()));
            }
            SeriesKind::Histogram(h) => {
                let snap = h.snapshot();
                let mut cum = 0u64;
                for (bound, n) in snap.bounds.iter().zip(&snap.buckets) {
                    cum += n;
                    let _ = writeln!(
                        out,
                        "{} {}",
                        series_suffixed(entry, "_bucket", &[("le", &text_f64(*bound))]),
                        cum
                    );
                }
                let _ = writeln!(
                    out,
                    "{} {}",
                    series_suffixed(entry, "_bucket", &[("le", "+Inf")]),
                    snap.count
                );
                let _ = writeln!(
                    out,
                    "{} {}",
                    series_suffixed(entry, "_sum", &[]),
                    text_f64(snap.sum)
                );
                let _ = writeln!(
                    out,
                    "{} {}",
                    series_suffixed(entry, "_count", &[]),
                    snap.count
                );
            }
        }
    }
    out
}

/// JSON exposition: `{"metrics":[{name, type, help?, series:[…]}]}`,
/// grouped by metric name in the same sorted order as the text format.
pub fn render_json(registry: &Registry) -> String {
    let (series, helps) = registry.collect();
    let mut out = String::from("{\"metrics\":[");
    let mut first_metric = true;
    let mut idx = 0;
    while idx < series.len() {
        let name = series[idx].name.clone();
        let kind_name = series[idx].kind.type_name();
        if !first_metric {
            out.push(',');
        }
        first_metric = false;
        let _ = write!(
            out,
            "{{\"name\":{},\"type\":{}",
            json_str(&name),
            json_str(kind_name)
        );
        if let Some(help) = helps.get(&name) {
            let _ = write!(out, ",\"help\":{}", json_str(help));
        }
        out.push_str(",\"series\":[");
        let mut first_series = true;
        while idx < series.len() && series[idx].name == name {
            let entry = &series[idx];
            if !first_series {
                out.push(',');
            }
            first_series = false;
            out.push_str("{\"labels\":{");
            for (i, (k, v)) in entry.labels.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{}:{}", json_str(k), json_str(v));
            }
            out.push('}');
            match &entry.kind {
                SeriesKind::Counter(c) => {
                    let _ = write!(out, ",\"value\":{}", c.get());
                }
                SeriesKind::Gauge(g) => {
                    let _ = write!(out, ",\"value\":{}", json_f64(g.get()));
                }
                SeriesKind::GaugeFn(f) => {
                    let _ = write!(out, ",\"value\":{}", json_f64(f()));
                }
                SeriesKind::Histogram(h) => {
                    json_histogram(&mut out, &h.snapshot());
                }
            }
            out.push('}');
            idx += 1;
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}

fn json_histogram(out: &mut String, snap: &HistogramSnapshot) {
    let _ = write!(
        out,
        ",\"count\":{},\"sum\":{},\"mean\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"buckets\":[",
        snap.count,
        json_f64(snap.sum),
        json_f64(snap.mean()),
        json_f64(snap.p50()),
        json_f64(snap.p90()),
        json_f64(snap.p99())
    );
    let mut cum = 0u64;
    for (i, (bound, n)) in snap.bounds.iter().zip(&snap.buckets).enumerate() {
        cum += n;
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{{\"le\":{},\"count\":{}}}", json_f64(*bound), cum);
    }
    let _ = write!(out, ",{{\"le\":\"+Inf\",\"count\":{}}}]", snap.count);
}

/// `name{k="v",…}` with the optional suffix and extra labels appended —
/// the shared series-reference printer for both plain and `_bucket`
/// lines.
fn series_ref(entry: &SeriesEntry, extra: &[(&str, &str)]) -> String {
    series_suffixed(entry, "", extra)
}

fn series_suffixed(entry: &SeriesEntry, suffix: &str, extra: &[(&str, &str)]) -> String {
    let mut s = format!("{}{}", entry.name, suffix);
    if entry.labels.is_empty() && extra.is_empty() {
        return s;
    }
    s.push('{');
    let mut first = true;
    for (k, v) in entry
        .labels
        .iter()
        .map(|(k, v)| (k.as_ref(), v.as_str()))
        .chain(extra.iter().copied())
    {
        if !first {
            s.push(',');
        }
        first = false;
        let _ = write!(s, "{k}=\"{}\"", escape_label(v));
    }
    s.push('}');
    s
}

/// Prometheus label-value escaping: backslash, quote, newline.
fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Prometheus text float: `Display`, with the spec spellings for the
/// non-finite values a gauge can legitimately hold (an unset gauge
/// reads `NaN`).
fn text_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".into()
    } else if v.is_infinite() {
        if v > 0.0 {
            "+Inf".into()
        } else {
            "-Inf".into()
        }
    } else {
        format!("{v}")
    }
}

/// JSON float: non-finite values have no JSON spelling, so they render
/// as `null` (an unset gauge scrapes as `"value":null`).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".into()
    }
}

/// Minimal JSON string encoder (quotes, backslashes, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_format_is_deterministic_and_complete() {
        let r = Registry::new();
        r.describe("df_requests_total", "Requests by endpoint and status class")
            .unwrap();
        let c = r
            .counter(
                "df_requests_total",
                &[("endpoint", "audit"), ("status", "2xx")],
            )
            .unwrap();
        c.add(3);
        let g = r.gauge("df_queue_depth", &[("shard", "0")]).unwrap();
        g.set(2.0);
        let h = r
            .histogram("df_request_seconds", &[], &[0.001, 0.01])
            .unwrap();
        h.observe(0.0005);
        h.observe(0.5);
        let text = r.render_text();
        let expected = "\
# TYPE df_queue_depth gauge
df_queue_depth{shard=\"0\"} 2
# TYPE df_request_seconds histogram
df_request_seconds_bucket{le=\"0.001\"} 1
df_request_seconds_bucket{le=\"0.01\"} 1
df_request_seconds_bucket{le=\"+Inf\"} 2
df_request_seconds_sum 0.5005
df_request_seconds_count 2
# HELP df_requests_total Requests by endpoint and status class
# TYPE df_requests_total counter
df_requests_total{endpoint=\"audit\",status=\"2xx\"} 3
";
        assert_eq!(text, expected);
        assert_eq!(r.render_text(), text, "repeat render must be identical");
    }

    #[test]
    fn json_is_parseable_shape_and_escapes() {
        let r = Registry::new();
        let c = r.counter("m", &[("k", "a\"b\\c\nd")]).unwrap();
        c.inc();
        let g = r.gauge("unset", &[]).unwrap();
        let json = r.render_json();
        assert!(json.contains("\"name\":\"m\""), "{json}");
        assert!(json.contains("\"k\":\"a\\\"b\\\\c\\nd\""), "{json}");
        // Unset gauge → null, not NaN (which is invalid JSON).
        assert!(json.contains("\"value\":null"), "{json}");
        g.set(1.5);
        assert!(r.render_json().contains("\"value\":1.5"));
    }

    #[test]
    fn label_escaping_covers_the_specials() {
        assert_eq!(escape_label("a\\b\"c\nd"), "a\\\\b\\\"c\\nd");
        assert_eq!(text_f64(f64::NAN), "NaN");
        assert_eq!(text_f64(f64::INFINITY), "+Inf");
        assert_eq!(text_f64(f64::NEG_INFINITY), "-Inf");
        assert_eq!(text_f64(0.25), "0.25");
        assert_eq!(json_f64(f64::NAN), "null");
    }
}
