//! The metric [`Registry`]: interned names + label sets mapping to live
//! series handles.
//!
//! Registration is the only locked operation. A caller registers (or
//! looks up) a series once at startup, receives a cheap `Arc`-backed
//! handle ([`Counter`], [`Gauge`], [`Histogram`]), and bumps it
//! lock-free forever after; the registry lock is otherwise taken only
//! when a scrape renders. Metric names and label *keys* are interned in
//! shared pools (`Arc<str>`), so a family with many label sets stores
//! its name and key strings exactly once.
//!
//! Series are kept sorted by `(name, label set)`, which makes both
//! exposition formats byte-deterministic — the golden test pins the
//! text rendering down to the byte.
//!
//! Derived values (queue depths, lag, uptime) register as **gauge
//! functions**: a closure evaluated at scrape time. Closures must not
//! call back into the same registry (the render path snapshots entries
//! under the lock, then evaluates closures after releasing it, so a
//! re-entrant closure deadlocks only if it registers, not if it reads
//! its own captured handles — keep them to captured handles).

use crate::error::{ObsError, Result};
use crate::hist::Histogram;
use crate::metrics::{Counter, Gauge};
use std::cmp::Ordering as CmpOrdering;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::{Arc, Mutex, MutexGuard};

/// A scrape-time gauge closure.
pub(crate) type GaugeFn = Arc<dyn Fn() -> f64 + Send + Sync>;

/// The live value behind one series.
#[derive(Clone)]
pub(crate) enum SeriesKind {
    Counter(Counter),
    Gauge(Gauge),
    GaugeFn(GaugeFn),
    Histogram(Histogram),
}

impl SeriesKind {
    pub(crate) fn type_name(&self) -> &'static str {
        match self {
            SeriesKind::Counter(_) => "counter",
            SeriesKind::Gauge(_) | SeriesKind::GaugeFn(_) => "gauge",
            SeriesKind::Histogram(_) => "histogram",
        }
    }
}

impl fmt::Debug for SeriesKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.type_name())
    }
}

/// One registered series: interned name, sorted label pairs, live value.
#[derive(Clone, Debug)]
pub(crate) struct SeriesEntry {
    pub(crate) name: Arc<str>,
    /// Sorted by key; keys interned, values owned.
    pub(crate) labels: Vec<(Arc<str>, String)>,
    pub(crate) kind: SeriesKind,
}

#[derive(Default)]
struct Inner {
    /// Intern pool for metric names.
    names: BTreeSet<Arc<str>>,
    /// Intern pool for label keys.
    label_keys: BTreeSet<Arc<str>>,
    /// Sorted by `(name, labels)` — binary-searched on registration,
    /// iterated in order on render.
    series: Vec<SeriesEntry>,
    /// Optional `# HELP` text per metric name.
    helps: BTreeMap<Arc<str>, &'static str>,
}

/// The metric registry. Cheap to share (`Clone` shares the store).
#[derive(Clone, Default)]
pub struct Registry {
    inner: Arc<Mutex<Inner>>,
}

impl fmt::Debug for Registry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Registry({} series)", self.lock().series.len())
    }
}

impl Registry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Poison-adopting lock, same policy as the server's `lock_recover`:
    /// telemetry state is a bag of atomics, always internally
    /// consistent, so a panicked writer leaves nothing to fear.
    fn lock(&self) -> MutexGuard<'_, Inner> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Gets or creates a counter series.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Result<Counter> {
        let labels = normalize_labels(name, labels)?;
        let mut inner = self.lock();
        match find(&inner.series, name, &labels) {
            Ok(idx) => match &inner.series[idx].kind {
                SeriesKind::Counter(c) => Ok(c.clone()),
                other => Err(kind_mismatch(name, &labels, other)),
            },
            Err(idx) => {
                let c = Counter::new();
                let entry = inner.entry(name, &labels, SeriesKind::Counter(c.clone()));
                inner.series.insert(idx, entry);
                Ok(c)
            }
        }
    }

    /// Gets or creates a gauge series.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Result<Gauge> {
        let labels = normalize_labels(name, labels)?;
        let mut inner = self.lock();
        match find(&inner.series, name, &labels) {
            Ok(idx) => match &inner.series[idx].kind {
                SeriesKind::Gauge(g) => Ok(g.clone()),
                other => Err(kind_mismatch(name, &labels, other)),
            },
            Err(idx) => {
                let g = Gauge::new();
                let entry = inner.entry(name, &labels, SeriesKind::Gauge(g.clone()));
                inner.series.insert(idx, entry);
                Ok(g)
            }
        }
    }

    /// Gets or creates a histogram series over `bounds`; an existing
    /// series must have bit-identical boundaries.
    pub fn histogram(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        bounds: &[f64],
    ) -> Result<Histogram> {
        let labels = normalize_labels(name, labels)?;
        let mut inner = self.lock();
        match find(&inner.series, name, &labels) {
            Ok(idx) => match &inner.series[idx].kind {
                SeriesKind::Histogram(h) => {
                    // Reuse merge's exact boundary check by round-trip.
                    let probe = Histogram::new(bounds)?;
                    probe.merge_from(h)?;
                    Ok(h.clone())
                }
                other => Err(kind_mismatch(name, &labels, other)),
            },
            Err(idx) => {
                let h = Histogram::new(bounds)?;
                let entry = inner.entry(name, &labels, SeriesKind::Histogram(h.clone()));
                inner.series.insert(idx, entry);
                Ok(h)
            }
        }
    }

    /// Registers an *existing* counter handle (e.g. one owned by
    /// `FleetTelemetry`) under a series key. Idempotent for the same
    /// underlying cell; refuses to shadow a different one.
    pub fn register_counter(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        counter: &Counter,
    ) -> Result<()> {
        let labels = normalize_labels(name, labels)?;
        let mut inner = self.lock();
        match find(&inner.series, name, &labels) {
            Ok(idx) => match &inner.series[idx].kind {
                SeriesKind::Counter(c) if c.same_cell(counter) => Ok(()),
                SeriesKind::Counter(_) => Err(duplicate(name, &labels)),
                other => Err(kind_mismatch(name, &labels, other)),
            },
            Err(idx) => {
                let entry = inner.entry(name, &labels, SeriesKind::Counter(counter.clone()));
                inner.series.insert(idx, entry);
                Ok(())
            }
        }
    }

    /// Registers an existing gauge handle; same semantics as
    /// [`Registry::register_counter`].
    pub fn register_gauge(&self, name: &str, labels: &[(&str, &str)], gauge: &Gauge) -> Result<()> {
        let labels = normalize_labels(name, labels)?;
        let mut inner = self.lock();
        match find(&inner.series, name, &labels) {
            Ok(idx) => match &inner.series[idx].kind {
                SeriesKind::Gauge(g) if g.same_cell(gauge) => Ok(()),
                SeriesKind::Gauge(_) => Err(duplicate(name, &labels)),
                other => Err(kind_mismatch(name, &labels, other)),
            },
            Err(idx) => {
                let entry = inner.entry(name, &labels, SeriesKind::Gauge(gauge.clone()));
                inner.series.insert(idx, entry);
                Ok(())
            }
        }
    }

    /// Registers an existing histogram handle; same semantics as
    /// [`Registry::register_counter`].
    pub fn register_histogram(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        hist: &Histogram,
    ) -> Result<()> {
        let labels = normalize_labels(name, labels)?;
        let mut inner = self.lock();
        match find(&inner.series, name, &labels) {
            Ok(idx) => match &inner.series[idx].kind {
                SeriesKind::Histogram(h) if h.same_cell(hist) => Ok(()),
                SeriesKind::Histogram(_) => Err(duplicate(name, &labels)),
                other => Err(kind_mismatch(name, &labels, other)),
            },
            Err(idx) => {
                let entry = inner.entry(name, &labels, SeriesKind::Histogram(hist.clone()));
                inner.series.insert(idx, entry);
                Ok(())
            }
        }
    }

    /// Registers a derived gauge evaluated at scrape time. Closures
    /// can't be compared, so re-registration is always a `Duplicate`.
    pub fn gauge_fn(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        f: impl Fn() -> f64 + Send + Sync + 'static,
    ) -> Result<()> {
        let labels = normalize_labels(name, labels)?;
        let mut inner = self.lock();
        match find(&inner.series, name, &labels) {
            Ok(_) => Err(duplicate(name, &labels)),
            Err(idx) => {
                let entry = inner.entry(name, &labels, SeriesKind::GaugeFn(Arc::new(f)));
                inner.series.insert(idx, entry);
                Ok(())
            }
        }
    }

    /// Attaches `# HELP` text to a metric name (rendered in both
    /// exposition formats).
    pub fn describe(&self, name: &str, help: &'static str) -> Result<()> {
        if !valid_metric_name(name) {
            return Err(ObsError::InvalidName(name.into()));
        }
        let mut inner = self.lock();
        let interned = intern(&mut inner.names, name);
        inner.helps.insert(interned, help);
        Ok(())
    }

    /// Snapshot of all entries (handles are cheap clones) plus help
    /// text, released-lock safe for the renderers to evaluate.
    pub(crate) fn collect(&self) -> (Vec<SeriesEntry>, BTreeMap<Arc<str>, &'static str>) {
        let inner = self.lock();
        (inner.series.clone(), inner.helps.clone())
    }

    /// Prometheus text exposition (see [`crate::render`]).
    pub fn render_text(&self) -> String {
        crate::render::render_text(self)
    }

    /// JSON exposition (see [`crate::render`]).
    pub fn render_json(&self) -> String {
        crate::render::render_json(self)
    }

    /// Number of registered series (diagnostics / tests).
    pub fn len(&self) -> usize {
        self.lock().series.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Inner {
    /// Builds an entry with interned name and label keys.
    fn entry(&mut self, name: &str, labels: &[(String, String)], kind: SeriesKind) -> SeriesEntry {
        let name = intern(&mut self.names, name);
        let labels = labels
            .iter()
            .map(|(k, v)| (intern(&mut self.label_keys, k), v.clone()))
            .collect();
        SeriesEntry { name, labels, kind }
    }
}

fn intern(pool: &mut BTreeSet<Arc<str>>, s: &str) -> Arc<str> {
    if let Some(existing) = pool.get(s) {
        existing.clone()
    } else {
        let a: Arc<str> = Arc::from(s);
        pool.insert(a.clone());
        a
    }
}

fn kind_mismatch(name: &str, labels: &[(String, String)], found: &SeriesKind) -> ObsError {
    ObsError::KindMismatch(format!(
        "{} is already registered as a {}",
        series_id(name, labels),
        found.type_name()
    ))
}

fn duplicate(name: &str, labels: &[(String, String)]) -> ObsError {
    ObsError::Duplicate(series_id(name, labels))
}

fn series_id(name: &str, labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        name.into()
    } else {
        let pairs: Vec<String> = labels.iter().map(|(k, v)| format!("{k}={v}")).collect();
        format!("{name}{{{}}}", pairs.join(","))
    }
}

/// Validates, sorts by key, and owns a label set; rejects repeated keys.
fn normalize_labels(name: &str, labels: &[(&str, &str)]) -> Result<Vec<(String, String)>> {
    if !valid_metric_name(name) {
        return Err(ObsError::InvalidName(format!("metric name {name:?}")));
    }
    let mut out: Vec<(String, String)> = labels
        .iter()
        .map(|(k, v)| ((*k).to_string(), (*v).to_string()))
        .collect();
    out.sort();
    for pair in &out {
        if !valid_label_name(&pair.0) {
            return Err(ObsError::InvalidName(format!(
                "label name {:?} on metric {name}",
                pair.0
            )));
        }
    }
    for w in out.windows(2) {
        if w[0].0 == w[1].0 {
            return Err(ObsError::InvalidName(format!(
                "label {:?} repeated on metric {name}",
                w[0].0
            )));
        }
    }
    Ok(out)
}

fn valid_metric_name(s: &str) -> bool {
    let mut chars = s.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(s: &str) -> bool {
    let mut chars = s.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_alphabetic() || c == '_')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Binary search over the sorted series vec by `(name, labels)`.
fn find(
    series: &[SeriesEntry],
    name: &str,
    labels: &[(String, String)],
) -> std::result::Result<usize, usize> {
    series.binary_search_by(|e| cmp_key(e, name, labels))
}

fn cmp_key(entry: &SeriesEntry, name: &str, labels: &[(String, String)]) -> CmpOrdering {
    match entry.name.as_ref().cmp(name) {
        CmpOrdering::Equal => {}
        other => return other,
    }
    for (mine, theirs) in entry.labels.iter().zip(labels.iter()) {
        match mine.0.as_ref().cmp(theirs.0.as_str()) {
            CmpOrdering::Equal => {}
            other => return other,
        }
        match mine.1.as_str().cmp(theirs.1.as_str()) {
            CmpOrdering::Equal => {}
            other => return other,
        }
    }
    entry.labels.len().cmp(&labels.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_handles_are_interned() {
        let r = Registry::new();
        let a = r
            .counter("df_requests_total", &[("endpoint", "audit")])
            .unwrap();
        // Same key (label order irrelevant after sorting) → same cell.
        let b = r
            .counter("df_requests_total", &[("endpoint", "audit")])
            .unwrap();
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert!(a.same_cell(&b));
        // Different label set → different cell.
        let c = r
            .counter("df_requests_total", &[("endpoint", "monitor")])
            .unwrap();
        assert!(!a.same_cell(&c));
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn label_order_does_not_matter() {
        let r = Registry::new();
        let a = r.counter("m", &[("b", "2"), ("a", "1")]).unwrap();
        let b = r.counter("m", &[("a", "1"), ("b", "2")]).unwrap();
        assert!(a.same_cell(&b));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn kind_clashes_are_typed_errors() {
        let r = Registry::new();
        r.counter("m", &[]).unwrap();
        assert!(matches!(r.gauge("m", &[]), Err(ObsError::KindMismatch(_))));
        assert!(matches!(
            r.histogram("m", &[], &[1.0]),
            Err(ObsError::KindMismatch(_))
        ));
    }

    #[test]
    fn names_and_labels_are_validated() {
        let r = Registry::new();
        assert!(matches!(r.counter("", &[]), Err(ObsError::InvalidName(_))));
        assert!(matches!(
            r.counter("9m", &[]),
            Err(ObsError::InvalidName(_))
        ));
        assert!(matches!(
            r.counter("m", &[("le", "1"), ("le", "2")]),
            Err(ObsError::InvalidName(_))
        ));
        assert!(matches!(
            r.counter("m", &[("bad-key", "1")]),
            Err(ObsError::InvalidName(_))
        ));
        assert!(r
            .counter("df:requests_total", &[("ok_key", "any value")])
            .is_ok());
    }

    #[test]
    fn register_existing_is_idempotent_but_refuses_shadowing() {
        let r = Registry::new();
        let mine = Counter::new();
        r.register_counter("m", &[], &mine).unwrap();
        // Same cell again: fine.
        r.register_counter("m", &[], &mine.clone()).unwrap();
        // A different cell under the same key: refused.
        assert!(matches!(
            r.register_counter("m", &[], &Counter::new()),
            Err(ObsError::Duplicate(_))
        ));
        mine.add(7);
        let viewed = r.counter("m", &[]).unwrap();
        assert_eq!(viewed.get(), 7);
    }

    #[test]
    fn histogram_reuse_requires_identical_bounds() {
        let r = Registry::new();
        let h = r.histogram("h", &[], &[1.0, 2.0]).unwrap();
        let again = r.histogram("h", &[], &[1.0, 2.0]).unwrap();
        assert!(h.same_cell(&again));
        assert!(matches!(
            r.histogram("h", &[], &[1.0, 3.0]),
            Err(ObsError::BoundaryMismatch(_))
        ));
    }

    #[test]
    fn gauge_fn_evaluates_at_scrape() {
        let r = Registry::new();
        let base = Counter::new();
        let handle = base.clone();
        r.gauge_fn("derived", &[], move || handle.get() as f64 * 0.5)
            .unwrap();
        assert!(matches!(
            r.gauge_fn("derived", &[], || 0.0),
            Err(ObsError::Duplicate(_))
        ));
        base.add(4);
        let text = r.render_text();
        assert!(text.contains("derived 2"), "{text}");
    }
}
