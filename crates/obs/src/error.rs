//! The telemetry error type. `df-obs` sits below `df-core`, so it
//! cannot reuse `DfError`; it carries its own small enum with the same
//! typed-errors-only discipline (no stringly `Box<dyn Error>` returns).

use std::fmt;

/// Everything that can go wrong registering or merging telemetry.
///
/// Observation paths (`inc`, `observe`, span recording) are infallible
/// by design — errors can only happen at registration/merge time, which
/// runs at startup or scrape time, never per-request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ObsError {
    /// Metric or label name fails the `[a-zA-Z_:][a-zA-Z0-9_:]*`
    /// (metric) / `[a-zA-Z_][a-zA-Z0-9_]*` (label) exposition grammar,
    /// or a label set repeats a key.
    InvalidName(String),
    /// Histogram boundaries are empty, non-finite, or not strictly
    /// increasing.
    BadBoundaries(String),
    /// Two histograms with different boundary vectors were merged.
    BoundaryMismatch(String),
    /// A series name + label set is already registered under a
    /// different metric kind (e.g. counter vs histogram).
    KindMismatch(String),
    /// A series was explicitly registered twice (`register_*` /
    /// `gauge_fn` refuse to silently replace a live handle).
    Duplicate(String),
}

impl fmt::Display for ObsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObsError::InvalidName(m) => write!(f, "invalid metric name: {m}"),
            ObsError::BadBoundaries(m) => write!(f, "bad histogram boundaries: {m}"),
            ObsError::BoundaryMismatch(m) => write!(f, "histogram boundary mismatch: {m}"),
            ObsError::KindMismatch(m) => write!(f, "metric kind mismatch: {m}"),
            ObsError::Duplicate(m) => write!(f, "duplicate metric registration: {m}"),
        }
    }
}

impl std::error::Error for ObsError {}

/// Crate-local result alias.
pub type Result<T> = std::result::Result<T, ObsError>;
