//! Property-based tests of the learners: logistic-regression invariances
//! and metric algebra.

use df_data::encode::FeatureMatrix;
use df_learn::logistic::{LogisticConfig, LogisticRegression};
use df_learn::metrics::{accuracy, auc, error_rate, log_loss, Confusion};
use df_prob::numerics::sigmoid;
use df_prob::rng::Pcg32;
use proptest::prelude::*;

fn matrix(rows: Vec<Vec<f64>>) -> FeatureMatrix {
    let n_rows = rows.len();
    let width = rows.first().map_or(0, Vec::len);
    FeatureMatrix {
        names: (0..width).map(|i| format!("x{i}")).collect(),
        data: rows.into_iter().flatten().collect(),
        n_rows,
    }
}

/// Labeled 1-feature dataset generated from a random logistic model.
fn dataset_strategy() -> impl Strategy<Value = (Vec<Vec<f64>>, Vec<f64>)> {
    (any::<u64>(), -2.0f64..2.0, -3.0f64..3.0).prop_map(|(seed, b0, b1)| {
        let mut rng = Pcg32::new(seed);
        let mut rows = Vec::with_capacity(200);
        let mut ys = Vec::with_capacity(200);
        let mut has = [false, false];
        for _ in 0..200 {
            let x = rng.next_f64() * 6.0 - 3.0;
            let y = f64::from(rng.next_f64() < sigmoid(b0 + b1 * x));
            has[y as usize] = true;
            rows.push(vec![x]);
            ys.push(y);
        }
        // Guarantee both classes.
        if !has[0] {
            ys[0] = 0.0;
        }
        if !has[1] {
            ys[1] = 1.0;
        }
        (rows, ys)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Training is invariant to feature translation up to the intercept:
    /// shifting x by c leaves predictions unchanged.
    #[test]
    fn logistic_prediction_is_translation_invariant((rows, ys) in dataset_strategy(), shift in -5.0f64..5.0) {
        let x = matrix(rows.clone());
        let shifted = matrix(rows.iter().map(|r| vec![r[0] + shift]).collect());
        let cfg = LogisticConfig::default();
        let m1 = LogisticRegression::fit(&x, &ys, &cfg).unwrap();
        let m2 = LogisticRegression::fit(&shifted, &ys, &cfg).unwrap();
        let p1 = m1.predict_proba(&x).unwrap();
        let p2 = m2.predict_proba(&shifted).unwrap();
        for (a, b) in p1.iter().zip(&p2) {
            prop_assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    /// Predicted probabilities are monotone in x when the slope is positive
    /// (and anti-monotone when negative) — a sanity invariant of the linear
    /// model.
    #[test]
    fn logistic_probabilities_are_monotone((rows, ys) in dataset_strategy()) {
        let x = matrix(rows);
        let model = LogisticRegression::fit(&x, &ys, &LogisticConfig::default()).unwrap();
        let slope = model.weights()[1];
        let lo = model.predict_proba_row(&[-10.0]);
        let hi = model.predict_proba_row(&[10.0]);
        if slope > 0.0 {
            prop_assert!(lo <= hi + 1e-12);
        } else {
            prop_assert!(hi <= lo + 1e-12);
        }
    }

    /// error_rate + accuracy = 1; confusion counts sum to n.
    #[test]
    fn metric_algebra(
        preds in proptest::collection::vec(0u8..2, 1..200),
        labels_seed in any::<u64>(),
    ) {
        let mut rng = Pcg32::new(labels_seed);
        let preds: Vec<f64> = preds.into_iter().map(f64::from).collect();
        let labels: Vec<f64> = preds.iter().map(|_| f64::from(rng.next_f64() < 0.4)).collect();
        let e = error_rate(&preds, &labels).unwrap();
        let a = accuracy(&preds, &labels).unwrap();
        prop_assert!((e + a - 1.0).abs() < 1e-12);
        let c = Confusion::from_predictions(&preds, &labels).unwrap();
        prop_assert_eq!(c.tp + c.fp + c.tn + c.fn_, preds.len());
    }

    /// AUC is invariant under strictly monotone score transforms.
    #[test]
    fn auc_is_rank_invariant(seed in any::<u64>()) {
        let mut rng = Pcg32::new(seed);
        let scores: Vec<f64> = (0..100).map(|_| rng.next_f64()).collect();
        let mut labels: Vec<f64> = (0..100).map(|_| f64::from(rng.next_f64() < 0.5)).collect();
        labels[0] = 0.0;
        labels[1] = 1.0;
        let transformed: Vec<f64> = scores.iter().map(|s| (3.0 * s).exp()).collect();
        let a1 = auc(&scores, &labels).unwrap();
        let a2 = auc(&transformed, &labels).unwrap();
        prop_assert!((a1 - a2).abs() < 1e-12);
        prop_assert!((0.0..=1.0).contains(&a1));
    }

    /// Log-loss is minimized (among constant predictors) at the base rate.
    #[test]
    fn log_loss_constant_predictor_optimum(k in 1usize..99) {
        let n = 100;
        let labels: Vec<f64> = (0..n).map(|i| f64::from(i < k)).collect();
        let base = k as f64 / n as f64;
        let at_base = log_loss(&vec![base; n], &labels).unwrap();
        for delta in [-0.1, 0.1] {
            let p = (base + delta).clamp(0.01, 0.99);
            if (p - base).abs() > 1e-9 {
                let other = log_loss(&vec![p; n], &labels).unwrap();
                prop_assert!(at_base <= other + 1e-12);
            }
        }
    }
}
