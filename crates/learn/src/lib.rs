//! # df-learn — machine-learning substrate
//!
//! From-scratch learners used by the paper's case study (§6) and worked
//! examples:
//!
//! - [`linalg`]: dense vector/matrix kernels and a Cholesky solver.
//! - [`optim`]: gradient-descent optimizers with convergence tracking.
//! - [`logistic`]: L2-regularized logistic regression trained by Newton
//!   (IRLS) or SGD — the classifier of Table 3.
//! - [`fair`]: differential-fairness-regularized logistic regression,
//!   implementing the paper's stated future-work direction (a learner that
//!   trades ε against accuracy with a tunable penalty).
//! - [`naive_bayes`]: hybrid categorical/Gaussian naive Bayes.
//! - [`tree`]: depth-limited CART decision trees (gini).
//! - [`metrics`]: error rate, confusion matrices, log-loss, AUC.
//! - [`model_selection`]: fairness-aware cross-validation and selection
//!   under an ε budget (the hyper-parameter-tuning use case of §1).
//! - [`threshold`]: score-threshold mechanisms — the Figure 2 worked
//!   example's hiring rule.
//! - [`pipeline`]: the Table 3 feature-selection sweep harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod fair;
pub mod linalg;
pub mod logistic;
pub mod metrics;
pub mod model_selection;
pub mod naive_bayes;
pub mod optim;
pub mod pipeline;
pub mod threshold;
pub mod tree;

pub use error::{LearnError, Result};
pub use logistic::LogisticRegression;
