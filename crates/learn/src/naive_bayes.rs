//! Hybrid naive Bayes over data-frame columns.
//!
//! Categorical features use Laplace-smoothed multinomial likelihoods;
//! numeric features use per-class Gaussians. Serves as an alternative
//! mechanism for fairness audits (different inductive bias → different ε
//! profile than logistic regression).

use crate::error::{LearnError, Result};
use df_data::frame::DataFrame;

#[derive(Debug, Clone)]
enum FeatureLikelihood {
    /// Per-class log P(value | class) with Laplace smoothing.
    Categorical {
        column: String,
        vocab: Vec<String>,
        /// `[class][code]` log-probabilities.
        log_probs: [Vec<f64>; 2],
    },
    /// Per-class Gaussian.
    Gaussian {
        column: String,
        mean: [f64; 2],
        var: [f64; 2],
    },
}

/// A fitted binary naive-Bayes classifier.
#[derive(Debug, Clone)]
pub struct NaiveBayes {
    log_prior: [f64; 2],
    features: Vec<FeatureLikelihood>,
}

impl NaiveBayes {
    /// Fits the model on the named feature columns against 0/1 labels.
    /// `laplace` is the smoothing pseudo-count for categorical features.
    pub fn fit(
        frame: &DataFrame,
        feature_columns: &[&str],
        labels: &[f64],
        laplace: f64,
    ) -> Result<NaiveBayes> {
        if labels.len() != frame.n_rows() {
            return Err(LearnError::ShapeMismatch {
                context: "NaiveBayes::fit",
                expected: frame.n_rows(),
                actual: labels.len(),
            });
        }
        if feature_columns.is_empty() {
            return Err(LearnError::Invalid("no feature columns".into()));
        }
        if !(laplace.is_finite() && laplace > 0.0) {
            return Err(LearnError::Invalid("laplace must be positive".into()));
        }
        let n = labels.len();
        let n1 = labels.iter().filter(|&&y| y >= 0.5).count();
        let n0 = n - n1;
        if n0 == 0 || n1 == 0 {
            return Err(LearnError::Invalid(
                "both classes must be present in training data".into(),
            ));
        }
        let class_counts = [n0 as f64, n1 as f64];
        let log_prior = [
            (class_counts[0] / n as f64).ln(),
            (class_counts[1] / n as f64).ln(),
        ];

        let mut features = Vec::with_capacity(feature_columns.len());
        for &name in feature_columns {
            let col = frame.column(name)?;
            if col.is_categorical() {
                let (codes, vocab) = col.as_categorical()?;
                let k = vocab.len();
                let mut counts = [vec![0.0f64; k], vec![0.0f64; k]];
                for (i, &code) in codes.iter().enumerate() {
                    let c = usize::from(labels[i] >= 0.5);
                    counts[c][code as usize] += 1.0;
                }
                let log_probs = [0, 1].map(|c| {
                    counts[c]
                        .iter()
                        .map(|&cnt| ((cnt + laplace) / (class_counts[c] + laplace * k as f64)).ln())
                        .collect()
                });
                features.push(FeatureLikelihood::Categorical {
                    column: name.to_string(),
                    vocab: vocab.to_vec(),
                    log_probs,
                });
            } else {
                let xs = col.as_numeric()?;
                let mut mean = [0.0f64; 2];
                for (i, &x) in xs.iter().enumerate() {
                    mean[usize::from(labels[i] >= 0.5)] += x;
                }
                mean[0] /= class_counts[0];
                mean[1] /= class_counts[1];
                let mut var = [0.0f64; 2];
                for (i, &x) in xs.iter().enumerate() {
                    let c = usize::from(labels[i] >= 0.5);
                    var[c] += (x - mean[c]).powi(2);
                }
                var[0] = (var[0] / class_counts[0]).max(1e-9);
                var[1] = (var[1] / class_counts[1]).max(1e-9);
                features.push(FeatureLikelihood::Gaussian {
                    column: name.to_string(),
                    mean,
                    var,
                });
            }
        }
        Ok(NaiveBayes {
            log_prior,
            features,
        })
    }

    /// Per-row `P(y = 1 | x)` over a frame containing the fitted columns.
    pub fn predict_proba(&self, frame: &DataFrame) -> Result<Vec<f64>> {
        let n = frame.n_rows();
        let mut log_joint = vec![[0.0f64; 2]; n];
        for lj in log_joint.iter_mut() {
            *lj = self.log_prior;
        }
        for feat in &self.features {
            match feat {
                FeatureLikelihood::Categorical {
                    column,
                    vocab,
                    log_probs,
                } => {
                    let (codes, frame_vocab) = frame.column(column)?.as_categorical()?;
                    // Remap frame codes into the fitted vocab; unseen values
                    // contribute the uniform-smoothing floor.
                    let remap: Vec<Option<usize>> = frame_vocab
                        .iter()
                        .map(|v| vocab.iter().position(|u| u == v))
                        .collect();
                    let floor = [
                        (1.0 / vocab.len() as f64).ln(),
                        (1.0 / vocab.len() as f64).ln(),
                    ];
                    for (i, &code) in codes.iter().enumerate() {
                        match remap[code as usize] {
                            Some(ix) => {
                                log_joint[i][0] += log_probs[0][ix];
                                log_joint[i][1] += log_probs[1][ix];
                            }
                            None => {
                                log_joint[i][0] += floor[0];
                                log_joint[i][1] += floor[1];
                            }
                        }
                    }
                }
                FeatureLikelihood::Gaussian { column, mean, var } => {
                    let xs = frame.column(column)?.as_numeric()?;
                    for (i, &x) in xs.iter().enumerate() {
                        for c in 0..2 {
                            let z = x - mean[c];
                            log_joint[i][c] += -0.5
                                * (z * z / var[c]
                                    + var[c].ln()
                                    + (2.0 * std::f64::consts::PI).ln());
                        }
                    }
                }
            }
        }
        Ok(log_joint
            .into_iter()
            .map(|[l0, l1]| {
                // σ of the log-odds, stable in both tails.
                df_prob::numerics::sigmoid(l1 - l0)
            })
            .collect())
    }

    /// Hard 0/1 predictions at the 0.5 threshold.
    pub fn predict(&self, frame: &DataFrame) -> Result<Vec<f64>> {
        Ok(self
            .predict_proba(frame)?
            .into_iter()
            .map(|p| if p >= 0.5 { 1.0 } else { 0.0 })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_data::frame::Column;

    fn toy_frame() -> (DataFrame, Vec<f64>) {
        // color ∈ {red, blue} perfectly predicts y; z is noise.
        let frame = DataFrame::new(vec![
            Column::categorical("color", &["red", "red", "red", "blue", "blue", "blue"]),
            Column::numeric("z", vec![0.1, -0.2, 0.3, 0.0, 0.2, -0.1]),
        ])
        .unwrap();
        let labels = vec![1.0, 1.0, 1.0, 0.0, 0.0, 0.0];
        (frame, labels)
    }

    #[test]
    fn validates_inputs() {
        let (f, y) = toy_frame();
        assert!(NaiveBayes::fit(&f, &[], &y, 1.0).is_err());
        assert!(NaiveBayes::fit(&f, &["color"], &y[..3], 1.0).is_err());
        assert!(NaiveBayes::fit(&f, &["color"], &y, 0.0).is_err());
        assert!(NaiveBayes::fit(&f, &["color"], &[1.0; 6], 1.0).is_err());
    }

    #[test]
    fn learns_categorical_signal() {
        let (f, y) = toy_frame();
        let nb = NaiveBayes::fit(&f, &["color"], &y, 1.0).unwrap();
        let preds = nb.predict(&f).unwrap();
        assert_eq!(preds, y);
        let probs = nb.predict_proba(&f).unwrap();
        assert!(probs[0] > 0.7 && probs[3] < 0.3);
    }

    #[test]
    fn gaussian_feature_separates_classes() {
        let mut values = Vec::new();
        let mut labels = Vec::new();
        for i in 0..200 {
            let y = i % 2;
            // Class 1 centered at +2, class 0 at -2.
            let x = if y == 1 { 2.0 } else { -2.0 } + (i as f64 * 0.618).sin();
            values.push(x);
            labels.push(y as f64);
        }
        let f = DataFrame::new(vec![Column::numeric("x", values)]).unwrap();
        let nb = NaiveBayes::fit(&f, &["x"], &labels, 1.0).unwrap();
        let preds = nb.predict(&f).unwrap();
        let err =
            preds.iter().zip(&labels).filter(|(p, y)| p != y).count() as f64 / labels.len() as f64;
        assert!(err < 0.02, "err={err}");
    }

    #[test]
    fn unseen_category_does_not_crash() {
        let (f, y) = toy_frame();
        let nb = NaiveBayes::fit(&f, &["color"], &y, 1.0).unwrap();
        let test = DataFrame::new(vec![
            Column::categorical("color", &["green"]),
            Column::numeric("z", vec![0.0]),
        ])
        .unwrap();
        let p = nb.predict_proba(&test).unwrap();
        assert!(p[0].is_finite());
        // Uninformed: close to the prior (0.5 here).
        assert!((p[0] - 0.5).abs() < 0.2);
    }

    #[test]
    fn laplace_smoothing_avoids_zero_probabilities() {
        // "blue" never appears with y=1; the smoothed likelihood must stay
        // finite so an unseen combination does not produce -inf.
        let (f, y) = toy_frame();
        let nb = NaiveBayes::fit(&f, &["color", "z"], &y, 1.0).unwrap();
        let probs = nb.predict_proba(&f).unwrap();
        assert!(probs.iter().all(|p| p.is_finite() && *p > 0.0 && *p < 1.0));
    }
}
