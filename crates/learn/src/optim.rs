//! First-order optimizers with convergence tracking.
//!
//! Used by the DF-regularized learner in [`crate::fair`] (whose penalty has
//! no closed-form Newton step) and available for SGD training of the plain
//! logistic model.

use crate::error::{LearnError, Result};
use crate::linalg::norm2;

/// A differentiable objective: returns `(value, gradient)` at `w`.
pub trait Objective {
    /// Evaluates the objective and its gradient.
    fn value_grad(&self, w: &[f64]) -> (f64, Vec<f64>);
}

impl<F: Fn(&[f64]) -> (f64, Vec<f64>)> Objective for F {
    fn value_grad(&self, w: &[f64]) -> (f64, Vec<f64>) {
        self(w)
    }
}

/// Result of an optimization run.
#[derive(Debug, Clone)]
pub struct OptimOutcome {
    /// Final parameter vector.
    pub w: Vec<f64>,
    /// Final objective value.
    pub value: f64,
    /// Iterations performed.
    pub iterations: usize,
    /// Final gradient norm.
    pub grad_norm: f64,
    /// Whether the gradient-norm tolerance was reached.
    pub converged: bool,
}

/// Gradient descent with backtracking (Armijo) line search.
#[derive(Debug, Clone)]
pub struct GradientDescent {
    /// Initial step size tried at each iteration.
    pub init_step: f64,
    /// Armijo sufficient-decrease constant (typically 1e-4).
    pub armijo_c: f64,
    /// Backtracking shrink factor in (0, 1).
    pub shrink: f64,
    /// Gradient-norm convergence tolerance.
    pub tol: f64,
    /// Maximum outer iterations.
    pub max_iter: usize,
}

impl Default for GradientDescent {
    fn default() -> Self {
        Self {
            init_step: 1.0,
            armijo_c: 1e-4,
            shrink: 0.5,
            tol: 1e-6,
            max_iter: 500,
        }
    }
}

impl GradientDescent {
    /// Minimizes `objective` from `w0`.
    pub fn minimize<O: Objective>(&self, objective: &O, w0: Vec<f64>) -> Result<OptimOutcome> {
        if !(self.shrink > 0.0 && self.shrink < 1.0) {
            return Err(LearnError::Invalid("shrink must lie in (0,1)".into()));
        }
        let mut w = w0;
        let (mut value, mut grad) = objective.value_grad(&w);
        if !value.is_finite() {
            return Err(LearnError::Optimization(
                "objective not finite at the initial point".into(),
            ));
        }
        let mut iterations = 0;
        while iterations < self.max_iter {
            let gnorm = norm2(&grad);
            if gnorm <= self.tol {
                return Ok(OptimOutcome {
                    w,
                    value,
                    iterations,
                    grad_norm: gnorm,
                    converged: true,
                });
            }
            // Backtracking line search along -grad.
            let mut step = self.init_step;
            let g2 = gnorm * gnorm;
            let mut accepted = false;
            for _ in 0..60 {
                let candidate: Vec<f64> =
                    w.iter().zip(&grad).map(|(wi, gi)| wi - step * gi).collect();
                let (cand_value, cand_grad) = objective.value_grad(&candidate);
                if cand_value.is_finite() && cand_value <= value - self.armijo_c * step * g2 {
                    w = candidate;
                    value = cand_value;
                    grad = cand_grad;
                    accepted = true;
                    break;
                }
                step *= self.shrink;
            }
            if !accepted {
                // Line search stalled: we are at numerical precision.
                let gnorm = norm2(&grad);
                return Ok(OptimOutcome {
                    w,
                    value,
                    iterations,
                    grad_norm: gnorm,
                    converged: gnorm <= self.tol * 100.0,
                });
            }
            iterations += 1;
        }
        let grad_norm = norm2(&grad);
        Ok(OptimOutcome {
            w,
            value,
            iterations,
            grad_norm,
            converged: false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_quadratic_bowl() {
        // f(w) = (w0-3)² + 2(w1+1)².
        let f = |w: &[f64]| {
            let v = (w[0] - 3.0).powi(2) + 2.0 * (w[1] + 1.0).powi(2);
            let g = vec![2.0 * (w[0] - 3.0), 4.0 * (w[1] + 1.0)];
            (v, g)
        };
        let out = GradientDescent::default()
            .minimize(&f, vec![0.0, 0.0])
            .unwrap();
        assert!(out.converged);
        assert!((out.w[0] - 3.0).abs() < 1e-4, "{:?}", out.w);
        assert!((out.w[1] + 1.0).abs() < 1e-4);
        assert!(out.value < 1e-8);
    }

    #[test]
    fn minimizes_rosenbrock_ish_slowly_but_surely() {
        // A mildly ill-conditioned quadratic.
        let f = |w: &[f64]| {
            let v = 100.0 * w[0] * w[0] + w[1] * w[1];
            (v, vec![200.0 * w[0], 2.0 * w[1]])
        };
        let gd = GradientDescent {
            max_iter: 5000,
            ..GradientDescent::default()
        };
        let out = gd.minimize(&f, vec![1.0, 1.0]).unwrap();
        assert!(out.value < 1e-8, "value={}", out.value);
    }

    #[test]
    fn reports_non_convergence_when_budget_exhausted() {
        let f = |w: &[f64]| {
            let v = w[0] * w[0];
            (v, vec![2.0 * w[0]])
        };
        let gd = GradientDescent {
            max_iter: 1,
            tol: 0.0,
            ..GradientDescent::default()
        };
        let out = gd.minimize(&f, vec![100.0]).unwrap();
        assert!(!out.converged);
        assert_eq!(out.iterations, 1);
    }

    #[test]
    fn rejects_bad_shrink() {
        let f = |w: &[f64]| (w[0] * w[0], vec![2.0 * w[0]]);
        let gd = GradientDescent {
            shrink: 1.5,
            ..GradientDescent::default()
        };
        assert!(gd.minimize(&f, vec![1.0]).is_err());
    }

    #[test]
    fn non_finite_initial_objective_is_an_error() {
        let f = |_: &[f64]| (f64::NAN, vec![0.0]);
        assert!(GradientDescent::default().minimize(&f, vec![0.0]).is_err());
    }
}
