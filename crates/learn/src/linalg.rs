//! Dense linear-algebra kernels.
//!
//! Small, allocation-conscious routines sized for the workspace's needs:
//! feature matrices of tens of columns, Newton steps over
//! tens-of-thousands-of-rows designs. Everything is `f64`, row-major.

use crate::error::{LearnError, Result};
use df_prob::numerics::exactly_zero;

/// Dot product of two equal-length slices.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// `y ← y + alpha · x`.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Euclidean norm.
#[inline]
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Row-major dense matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Wraps row-major data.
    pub fn from_data(rows: usize, cols: usize, data: Vec<f64>) -> Result<Matrix> {
        if data.len() != rows * cols {
            return Err(LearnError::ShapeMismatch {
                context: "Matrix::from_data",
                expected: rows * cols,
                actual: data.len(),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable row view.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Element access.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.cols + j]
    }

    /// Element assignment.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.cols + j] = v;
    }

    /// Adds `v` to an element.
    #[inline]
    pub fn add_to(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.cols + j] += v;
    }

    /// Matrix–vector product `A x`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.cols {
            return Err(LearnError::ShapeMismatch {
                context: "matvec",
                expected: self.cols,
                actual: x.len(),
            });
        }
        Ok((0..self.rows).map(|i| dot(self.row(i), x)).collect())
    }

    /// `Aᵀ x` for a vector with one entry per row.
    pub fn transpose_matvec(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.rows {
            return Err(LearnError::ShapeMismatch {
                context: "transpose_matvec",
                expected: self.rows,
                actual: x.len(),
            });
        }
        let mut out = vec![0.0; self.cols];
        for (i, &xi) in x.iter().enumerate() {
            if !exactly_zero(xi) {
                axpy(xi, self.row(i), &mut out);
            }
        }
        Ok(out)
    }

    /// Weighted Gram matrix `Aᵀ diag(w) A` — the Newton-step Hessian core.
    #[allow(clippy::needless_range_loop)] // triangular accumulation pattern
    pub fn weighted_gram(&self, w: &[f64]) -> Result<Matrix> {
        if w.len() != self.rows {
            return Err(LearnError::ShapeMismatch {
                context: "weighted_gram",
                expected: self.rows,
                actual: w.len(),
            });
        }
        let k = self.cols;
        let mut gram = Matrix::zeros(k, k);
        for (i, &wi) in w.iter().enumerate() {
            if exactly_zero(wi) {
                continue;
            }
            let row = self.row(i);
            for a in 0..k {
                let wa = wi * row[a];
                if exactly_zero(wa) {
                    continue;
                }
                // Upper triangle only; mirrored below.
                for b in a..k {
                    gram.add_to(a, b, wa * row[b]);
                }
            }
        }
        for a in 0..k {
            for b in 0..a {
                let v = gram.get(b, a);
                gram.set(a, b, v);
            }
        }
        Ok(gram)
    }
}

/// Solves the SPD system `A x = b` via Cholesky factorization.
///
/// Fails with [`LearnError::Optimization`] if `A` is not positive definite
/// (within a small pivot tolerance).
#[allow(clippy::needless_range_loop)] // triangular-solve index patterns
pub fn cholesky_solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    let n = a.rows();
    if a.cols() != n {
        return Err(LearnError::ShapeMismatch {
            context: "cholesky_solve (square)",
            expected: n,
            actual: a.cols(),
        });
    }
    if b.len() != n {
        return Err(LearnError::ShapeMismatch {
            context: "cholesky_solve (rhs)",
            expected: n,
            actual: b.len(),
        });
    }
    // Factor A = L Lᵀ, L lower-triangular, stored densely.
    let mut l = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a.get(i, j);
            for k in 0..j {
                sum -= l.get(i, k) * l.get(j, k);
            }
            if i == j {
                if sum <= 1e-12 {
                    return Err(LearnError::Optimization(format!(
                        "matrix not positive definite (pivot {sum:.3e} at {i})"
                    )));
                }
                l.set(i, j, sum.sqrt());
            } else {
                l.set(i, j, sum / l.get(j, j));
            }
        }
    }
    // Forward solve L z = b.
    let mut z = vec![0.0; n];
    for i in 0..n {
        let mut sum = b[i];
        for k in 0..i {
            sum -= l.get(i, k) * z[k];
        }
        z[i] = sum / l.get(i, i);
    }
    // Back solve Lᵀ x = z.
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut sum = z[i];
        for k in i + 1..n {
            sum -= l.get(k, i) * x[k];
        }
        x[i] = sum / l.get(i, i);
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_axpy_norm() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[1.0, -1.0], &mut y);
        assert_eq!(y, vec![3.0, -1.0]);
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-14);
    }

    #[test]
    fn matrix_shape_validation() {
        assert!(Matrix::from_data(2, 2, vec![1.0]).is_err());
        let m = Matrix::from_data(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert!(m.matvec(&[1.0]).is_err());
        assert!(m.transpose_matvec(&[1.0]).is_err());
        assert!(m.weighted_gram(&[1.0]).is_err());
    }

    #[test]
    fn matvec_and_transpose() {
        let m = Matrix::from_data(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        assert_eq!(m.matvec(&[1.0, 0.0, -1.0]).unwrap(), vec![-2.0, -2.0]);
        assert_eq!(
            m.transpose_matvec(&[1.0, 1.0]).unwrap(),
            vec![5.0, 7.0, 9.0]
        );
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn weighted_gram_matches_direct() {
        let m = Matrix::from_data(3, 2, vec![1.0, 2.0, 0.5, -1.0, 2.0, 0.0]).unwrap();
        let w = [2.0, 1.0, 0.5];
        let g = m.weighted_gram(&w).unwrap();
        // Direct computation: Σ wᵢ xᵢ xᵢᵀ.
        let mut direct = [[0.0f64; 2]; 2];
        for (i, &wi) in w.iter().enumerate() {
            let r = m.row(i);
            for a in 0..2 {
                for b in 0..2 {
                    direct[a][b] += wi * r[a] * r[b];
                }
            }
        }
        for a in 0..2 {
            for b in 0..2 {
                assert!((g.get(a, b) - direct[a][b]).abs() < 1e-12);
            }
        }
        // Symmetry.
        assert_eq!(g.get(0, 1), g.get(1, 0));
    }

    #[test]
    fn cholesky_solves_spd_system() {
        // A = [[4, 2], [2, 3]], b = [2, 5] → x = [-0.5, 2].
        let a = Matrix::from_data(2, 2, vec![4.0, 2.0, 2.0, 3.0]).unwrap();
        let x = cholesky_solve(&a, &[2.0, 5.0]).unwrap();
        assert!((x[0] + 0.5).abs() < 1e-12, "{x:?}");
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_data(2, 2, vec![1.0, 2.0, 2.0, 1.0]).unwrap();
        assert!(cholesky_solve(&a, &[1.0, 1.0]).is_err());
    }

    #[test]
    fn cholesky_random_roundtrip() {
        use df_prob::rng::Pcg32;
        let mut rng = Pcg32::new(3);
        for _ in 0..20 {
            let n = 5;
            // Build SPD as B Bᵀ + I.
            let bdata: Vec<f64> = (0..n * n).map(|_| rng.next_f64() * 2.0 - 1.0).collect();
            let b = Matrix::from_data(n, n, bdata).unwrap();
            let mut a = Matrix::zeros(n, n);
            for i in 0..n {
                for j in 0..n {
                    let mut s = if i == j { 1.0 } else { 0.0 };
                    for k in 0..n {
                        s += b.get(i, k) * b.get(j, k);
                    }
                    a.set(i, j, s);
                }
            }
            let x_true: Vec<f64> = (0..n).map(|i| i as f64 - 2.0).collect();
            let rhs = a.matvec(&x_true).unwrap();
            let x = cholesky_solve(&a, &rhs).unwrap();
            for (xs, xt) in x.iter().zip(&x_true) {
                assert!((xs - xt).abs() < 1e-9);
            }
        }
    }
}
