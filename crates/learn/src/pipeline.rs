//! The Table 3 feature-selection sweep harness.
//!
//! §6 of the paper trains a logistic regression on Adult, varying which
//! sensitive attributes are *used as features*, and reports each variant's
//! test-set ε, bias amplification, and error rate. This module runs one
//! such variant end-to-end — encode, fit, predict — returning the hard
//! predictions so callers can tally them against the protected groups with
//! df-core.

use crate::error::Result;
use crate::logistic::{LogisticConfig, LogisticRegression};
use crate::metrics::error_rate;
use df_data::encode::{binary_labels, FrameEncoder};
use df_data::frame::DataFrame;

/// The non-sensitive feature set used for the Adult runs: everything §6's
/// classifier could reasonably use, minus the protected attributes (and
/// minus `fnlwgt`, a survey weight, and the redundant `education` string).
pub const ADULT_BASE_FEATURES: [&str; 9] = [
    "age",
    "workclass",
    "education-num",
    "marital-status",
    "occupation",
    "relationship",
    "capital-gain",
    "capital-loss",
    "hours-per-week",
];

/// Result of one feature-selection run.
#[derive(Debug, Clone)]
pub struct FeatureSelectionRun {
    /// Sensitive columns included as features (possibly empty).
    pub sensitive_used: Vec<String>,
    /// Test-set error rate (fraction in [0, 1]).
    pub error_rate: f64,
    /// Hard 0/1 predictions on the test set.
    pub test_predictions: Vec<f64>,
    /// Hard 0/1 predictions on the training set (for train-side audits).
    pub train_predictions: Vec<f64>,
    /// Whether Newton converged.
    pub converged: bool,
}

/// Trains a logistic regression on `train` and evaluates on `test`,
/// using `base_features ∪ sensitive_features` as inputs and
/// `label_column == positive_label` as the target.
pub fn run_feature_selection(
    train: &DataFrame,
    test: &DataFrame,
    base_features: &[&str],
    sensitive_features: &[&str],
    label_column: &str,
    positive_label: &str,
    config: &LogisticConfig,
) -> Result<FeatureSelectionRun> {
    let mut features: Vec<&str> = base_features.to_vec();
    features.extend_from_slice(sensitive_features);

    let encoder = FrameEncoder::fit(train, &features)?;
    let x_train = encoder.transform(train)?;
    let x_test = encoder.transform(test)?;
    let y_train = binary_labels(train, label_column, positive_label)?;
    let y_test = binary_labels(test, label_column, positive_label)?;

    let model = LogisticRegression::fit(&x_train, &y_train, config)?;
    let test_predictions = model.predict(&x_test)?;
    let train_predictions = model.predict(&x_train)?;
    let err = error_rate(&test_predictions, &y_test)?;

    Ok(FeatureSelectionRun {
        sensitive_used: sensitive_features.iter().map(|s| s.to_string()).collect(),
        error_rate: err,
        test_predictions,
        train_predictions,
        converged: model.converged(),
    })
}

/// All 8 sensitive-feature subsets of Table 3, in the paper's row order:
/// none, nationality, race, gender, gender+nationality, race+nationality,
/// race+gender, race+gender+nationality. The entries name the *prepared*
/// protected columns.
pub fn table3_sensitive_sets() -> Vec<Vec<&'static str>> {
    vec![
        vec![],
        vec!["nationality"],
        vec!["race_m"],
        vec!["gender"],
        vec!["gender", "nationality"],
        vec!["race_m", "nationality"],
        vec!["race_m", "gender"],
        vec!["race_m", "gender", "nationality"],
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_data::adult::synth::{generate, SynthConfig};

    fn small_adult() -> (DataFrame, DataFrame) {
        let d = generate(&SynthConfig {
            seed: 13,
            n_train: 4000,
            n_test: 1500,
            ..SynthConfig::default()
        })
        .unwrap()
        .with_protected()
        .unwrap();
        (d.train, d.test)
    }

    #[test]
    fn baseline_run_beats_majority_class() {
        let (train, test) = small_adult();
        let run = run_feature_selection(
            &train,
            &test,
            &ADULT_BASE_FEATURES,
            &[],
            "income",
            ">50K",
            &LogisticConfig::default(),
        )
        .unwrap();
        assert!(run.converged);
        // Majority-class error is the positive rate ≈ 0.24.
        assert!(
            run.error_rate < 0.22,
            "error {} should beat majority-class 0.24",
            run.error_rate
        );
        assert_eq!(run.test_predictions.len(), test.n_rows());
        assert_eq!(run.train_predictions.len(), train.n_rows());
        assert!(run.sensitive_used.is_empty());
    }

    #[test]
    fn sensitive_features_are_appended() {
        let (train, test) = small_adult();
        let run = run_feature_selection(
            &train,
            &test,
            &ADULT_BASE_FEATURES,
            &["gender", "race_m"],
            "income",
            ">50K",
            &LogisticConfig::default(),
        )
        .unwrap();
        assert_eq!(run.sensitive_used, vec!["gender", "race_m"]);
        assert!(run.error_rate < 0.25);
    }

    #[test]
    fn table3_sets_cover_all_eight_rows() {
        let sets = table3_sensitive_sets();
        assert_eq!(sets.len(), 8);
        assert!(sets[0].is_empty());
        assert_eq!(sets[7].len(), 3);
        // Every named column exists in the prepared frame.
        let (train, _) = small_adult();
        for set in &sets {
            for col in set {
                assert!(train.column(col).is_ok(), "missing {col}");
            }
        }
    }

    #[test]
    fn unknown_label_is_an_error() {
        let (train, test) = small_adult();
        assert!(run_feature_selection(
            &train,
            &test,
            &ADULT_BASE_FEATURES,
            &[],
            "income",
            "banana",
            &LogisticConfig::default(),
        )
        .is_err());
    }
}
