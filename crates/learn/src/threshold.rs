//! Score-threshold mechanisms — the Figure 2 worked example.
//!
//! A threshold rule `M(x) = [score(x) ≥ t]` is the simplest deterministic
//! mechanism; when group score distributions are Gaussian its
//! group-conditional outcome probabilities are available in closed form, so
//! ε can be computed analytically and compared against Monte-Carlo
//! estimates.

use crate::error::{LearnError, Result};
use df_data::workloads::GaussianScoreGroups;
use df_prob::numerics::exactly_zero;

/// A deterministic pass/fail rule on a scalar score.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThresholdMechanism {
    /// Scores at or above this value pass ("yes").
    pub threshold: f64,
}

impl ThresholdMechanism {
    /// Creates the rule.
    pub fn new(threshold: f64) -> Self {
        Self { threshold }
    }

    /// Applies the rule: 1 = pass ("yes"), 0 = fail ("no").
    #[inline]
    pub fn decide(&self, score: f64) -> usize {
        usize::from(score >= self.threshold)
    }

    /// Analytic `[P(no|g), P(yes|g)]` rows for Gaussian score groups.
    pub fn group_outcome_probabilities(&self, workload: &GaussianScoreGroups) -> Vec<[f64; 2]> {
        workload
            .pass_rates(self.threshold)
            .into_iter()
            .map(|p| [1.0 - p, p])
            .collect()
    }

    /// The analytic tightest ε of the rule on Gaussian score groups
    /// (max absolute log-ratio over both outcomes).
    pub fn analytic_epsilon(&self, workload: &GaussianScoreGroups) -> f64 {
        let probs = self.group_outcome_probabilities(workload);
        let mut eps = 0.0f64;
        for y in 0..2 {
            for a in &probs {
                for b in &probs {
                    let (pa, pb) = (a[y], b[y]);
                    if pa > 0.0 && pb > 0.0 {
                        eps = eps.max((pa / pb).ln().abs());
                    } else if pa != pb {
                        return f64::INFINITY;
                    }
                }
            }
        }
        eps
    }

    /// Empirical `[P(no|g), P(yes|g)]` from labeled `(group, score)` samples.
    pub fn empirical_outcome_probabilities(
        &self,
        samples: &[(usize, f64)],
        n_groups: usize,
    ) -> Result<Vec<[f64; 2]>> {
        if n_groups == 0 {
            return Err(LearnError::Invalid("need at least one group".into()));
        }
        let mut pass = vec![0.0f64; n_groups];
        let mut total = vec![0.0f64; n_groups];
        for &(g, score) in samples {
            if g >= n_groups {
                return Err(LearnError::Invalid(format!("group index {g} out of range")));
            }
            total[g] += 1.0;
            pass[g] += self.decide(score) as f64;
        }
        Ok((0..n_groups)
            .map(|g| {
                if exactly_zero(total[g]) {
                    [0.0, 0.0]
                } else {
                    let p = pass[g] / total[g];
                    [1.0 - p, p]
                }
            })
            .collect())
    }

    /// Finds the threshold minimizing the analytic ε over a grid between the
    /// extreme group means ± 4σ, returning `(threshold, epsilon)` — a simple
    /// fairness-repair tool for score mechanisms.
    pub fn fairest_threshold(workload: &GaussianScoreGroups, grid: usize) -> Result<(f64, f64)> {
        if grid < 2 {
            return Err(LearnError::Invalid("grid must have >= 2 points".into()));
        }
        let lo = workload
            .distributions
            .iter()
            .map(|d| d.mean() - 4.0 * d.std_dev())
            .fold(f64::INFINITY, f64::min);
        let hi = workload
            .distributions
            .iter()
            .map(|d| d.mean() + 4.0 * d.std_dev())
            .fold(f64::NEG_INFINITY, f64::max);
        let mut best = (lo, f64::INFINITY);
        for i in 0..grid {
            let t = lo + (hi - lo) * i as f64 / (grid - 1) as f64;
            let eps = ThresholdMechanism::new(t).analytic_epsilon(workload);
            if eps < best.1 {
                best = (t, eps);
            }
        }
        Ok(best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_prob::rng::Pcg32;

    #[test]
    fn figure2_probabilities_and_epsilon() {
        let mech = ThresholdMechanism::new(10.5);
        let workload = GaussianScoreGroups::figure2();
        let probs = mech.group_outcome_probabilities(&workload);
        // Paper Figure 2: group 1 [0.6915, 0.3085], group 2 [0.0668, 0.9332].
        assert!((probs[0][1] - 0.3085).abs() < 1e-3);
        assert!((probs[1][1] - 0.9332).abs() < 1e-3);
        let eps = mech.analytic_epsilon(&workload);
        assert!((eps - 2.337).abs() < 2e-3, "eps={eps}");
    }

    #[test]
    fn empirical_matches_analytic() {
        let mech = ThresholdMechanism::new(10.5);
        let workload = GaussianScoreGroups::figure2();
        let mut rng = Pcg32::new(42);
        let samples = workload.sample(&mut rng, 200_000);
        let emp = mech.empirical_outcome_probabilities(&samples, 2).unwrap();
        let analytic = mech.group_outcome_probabilities(&workload);
        for g in 0..2 {
            for y in 0..2 {
                assert!(
                    (emp[g][y] - analytic[g][y]).abs() < 0.006,
                    "g={g} y={y}: {} vs {}",
                    emp[g][y],
                    analytic[g][y]
                );
            }
        }
    }

    #[test]
    fn empirical_validates_group_indices() {
        let mech = ThresholdMechanism::new(0.0);
        assert!(mech
            .empirical_outcome_probabilities(&[(5, 1.0)], 2)
            .is_err());
        assert!(mech.empirical_outcome_probabilities(&[], 0).is_err());
    }

    #[test]
    fn equal_groups_have_zero_epsilon() {
        let workload = GaussianScoreGroups::new(&[10.0, 10.0], &[1.0, 1.0], &[0.5, 0.5]).unwrap();
        let eps = ThresholdMechanism::new(10.5).analytic_epsilon(&workload);
        assert!(eps.abs() < 1e-12);
    }

    #[test]
    fn fairest_threshold_beats_figure2_choice() {
        let workload = GaussianScoreGroups::figure2();
        let (t, eps) = ThresholdMechanism::fairest_threshold(&workload, 400).unwrap();
        let fig2_eps = ThresholdMechanism::new(10.5).analytic_epsilon(&workload);
        assert!(
            eps < fig2_eps,
            "optimized {eps} vs paper threshold {fig2_eps}"
        );
        // The fairest cut for two offset Gaussians of equal σ sits in the
        // far tail (where both rates saturate in ratio terms) — the search
        // must at least find something strictly better than mid-gap.
        assert!(t.is_finite());
        assert!(ThresholdMechanism::fairest_threshold(&workload, 1).is_err());
    }

    #[test]
    fn decide_boundary_inclusive() {
        let mech = ThresholdMechanism::new(1.0);
        assert_eq!(mech.decide(1.0), 1);
        assert_eq!(mech.decide(0.999), 0);
    }
}
