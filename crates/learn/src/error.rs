//! Error type for the learning substrate.

use std::fmt;

/// Errors produced by df-learn.
#[derive(Debug)]
pub enum LearnError {
    /// Propagated from the data substrate.
    Data(df_data::DataError),
    /// Propagated from the probability substrate.
    Prob(df_prob::ProbError),
    /// Shape mismatch between features and labels.
    ShapeMismatch {
        /// What was being matched.
        context: &'static str,
        /// Expected extent.
        expected: usize,
        /// Actual extent.
        actual: usize,
    },
    /// Optimization failed (divergence, singular Hessian, …).
    Optimization(String),
    /// Generic invalid argument.
    Invalid(String),
}

impl fmt::Display for LearnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LearnError::Data(e) => write!(f, "data substrate: {e}"),
            LearnError::Prob(e) => write!(f, "probability substrate: {e}"),
            LearnError::ShapeMismatch {
                context,
                expected,
                actual,
            } => write!(
                f,
                "shape mismatch in {context}: expected {expected}, got {actual}"
            ),
            LearnError::Optimization(msg) => write!(f, "optimization failed: {msg}"),
            LearnError::Invalid(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for LearnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LearnError::Data(e) => Some(e),
            LearnError::Prob(e) => Some(e),
            _ => None,
        }
    }
}

impl From<df_data::DataError> for LearnError {
    fn from(e: df_data::DataError) -> Self {
        LearnError::Data(e)
    }
}

impl From<df_prob::ProbError> for LearnError {
    fn from(e: df_prob::ProbError) -> Self {
        LearnError::Prob(e)
    }
}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, LearnError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = LearnError::ShapeMismatch {
            context: "fit",
            expected: 10,
            actual: 5,
        };
        assert!(e.to_string().contains("fit"));
        let e = LearnError::Optimization("singular Hessian".into());
        assert!(e.to_string().contains("singular"));
    }
}
