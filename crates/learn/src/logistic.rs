//! L2-regularized binary logistic regression.
//!
//! The classifier of the paper's Table 3. Training uses Newton's method
//! (iteratively reweighted least squares) by default — quadratic local
//! convergence, a handful of iterations on the Adult-sized design — with a
//! ridge term that both regularizes and keeps the Hessian positive definite.

use crate::error::{LearnError, Result};
use crate::linalg::{cholesky_solve, dot, norm2, Matrix};
use df_data::encode::FeatureMatrix;
use df_prob::numerics::{exactly_one, exactly_zero, sigmoid};

/// Training configuration.
#[derive(Debug, Clone)]
pub struct LogisticConfig {
    /// L2 penalty strength λ (applied to all weights except the intercept).
    pub l2: f64,
    /// Newton convergence tolerance on the gradient norm.
    pub tol: f64,
    /// Maximum Newton iterations.
    pub max_iter: usize,
}

impl Default for LogisticConfig {
    fn default() -> Self {
        Self {
            l2: 1e-4,
            tol: 1e-8,
            max_iter: 50,
        }
    }
}

/// A fitted binary logistic-regression model.
///
/// The weight vector is laid out `[intercept, w₁, …, w_k]`.
#[derive(Debug, Clone, PartialEq)]
pub struct LogisticRegression {
    weights: Vec<f64>,
    feature_names: Vec<String>,
    iterations: usize,
    converged: bool,
}

impl LogisticRegression {
    /// Fits the model to a feature matrix and 0/1 labels.
    pub fn fit(x: &FeatureMatrix, y: &[f64], config: &LogisticConfig) -> Result<Self> {
        if y.len() != x.n_rows {
            return Err(LearnError::ShapeMismatch {
                context: "LogisticRegression::fit",
                expected: x.n_rows,
                actual: y.len(),
            });
        }
        if y.iter().any(|&v| !exactly_zero(v) && !exactly_one(v)) {
            return Err(LearnError::Invalid("labels must be 0 or 1".into()));
        }
        if !(config.l2.is_finite() && config.l2 >= 0.0) {
            return Err(LearnError::Invalid("l2 must be non-negative".into()));
        }
        let n = x.n_rows;
        let k = x.n_features() + 1; // +1 intercept

        // Design with an intercept column.
        let mut design = Matrix::zeros(n, k);
        for i in 0..n {
            design.set(i, 0, 1.0);
            let row = x.row(i);
            for (j, &v) in row.iter().enumerate() {
                design.set(i, j + 1, v);
            }
        }

        let mut w = vec![0.0; k];
        let mut iterations = 0;
        let mut converged = false;
        // Ridge floor keeps the Hessian PD even with separable data.
        let ridge = config.l2.max(1e-8);
        while iterations < config.max_iter {
            // p = σ(Xw); gradient = Xᵀ(p - y) + λw̃ (no penalty on intercept).
            let z = design.matvec(&w)?;
            let p: Vec<f64> = z.iter().map(|&zi| sigmoid(zi)).collect();
            let resid: Vec<f64> = p.iter().zip(y).map(|(&pi, &yi)| pi - yi).collect();
            let mut grad = design.transpose_matvec(&resid)?;
            for (j, g) in grad.iter_mut().enumerate().skip(1) {
                *g += config.l2 * w[j];
            }
            if norm2(&grad) <= config.tol * n as f64 {
                converged = true;
                break;
            }
            // Hessian = Xᵀ diag(p(1-p)) X + λI (floored weights for
            // numerical stability on saturated points).
            let weights_irls: Vec<f64> = p.iter().map(|&pi| (pi * (1.0 - pi)).max(1e-10)).collect();
            let mut hessian = design.weighted_gram(&weights_irls)?;
            for j in 0..k {
                let extra = if j == 0 { 1e-10 } else { ridge };
                hessian.add_to(j, j, extra);
            }
            let step = cholesky_solve(&hessian, &grad)?;
            // Damped Newton: halve until the loss does not increase.
            let loss_at = |w: &[f64]| -> Result<f64> {
                let z = design.matvec(w)?;
                let mut loss = 0.0;
                for (zi, &yi) in z.iter().zip(y) {
                    // -log-likelihood via the stable softplus form.
                    loss += df_prob::numerics::log1p_exp(*zi) - yi * zi;
                }
                for &wj in &w[1..] {
                    loss += 0.5 * config.l2 * wj * wj;
                }
                Ok(loss)
            };
            let current = loss_at(&w)?;
            let mut scale = 1.0;
            let mut accepted = false;
            for _ in 0..30 {
                let cand: Vec<f64> = w
                    .iter()
                    .zip(&step)
                    .map(|(wi, si)| wi - scale * si)
                    .collect();
                if loss_at(&cand)? <= current + 1e-12 {
                    w = cand;
                    accepted = true;
                    break;
                }
                scale *= 0.5;
            }
            if !accepted {
                converged = true; // at numerical precision
                break;
            }
            iterations += 1;
        }

        let mut feature_names = Vec::with_capacity(k);
        feature_names.push("(intercept)".to_string());
        feature_names.extend(x.names.iter().cloned());
        Ok(LogisticRegression {
            weights: w,
            feature_names,
            iterations,
            converged,
        })
    }

    /// Weight vector `[intercept, w₁, …]`.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Feature names aligned with [`Self::weights`].
    pub fn feature_names(&self) -> &[String] {
        &self.feature_names
    }

    /// Newton iterations used in training.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Whether the gradient tolerance was met.
    pub fn converged(&self) -> bool {
        self.converged
    }

    /// `P(y = 1 | x)` for one feature row (without intercept entry).
    pub fn predict_proba_row(&self, row: &[f64]) -> f64 {
        debug_assert_eq!(row.len() + 1, self.weights.len());
        sigmoid(self.weights[0] + dot(&self.weights[1..], row))
    }

    /// `P(y = 1 | x)` for every row of a feature matrix.
    pub fn predict_proba(&self, x: &FeatureMatrix) -> Result<Vec<f64>> {
        if x.n_features() + 1 != self.weights.len() {
            return Err(LearnError::ShapeMismatch {
                context: "predict_proba",
                expected: self.weights.len() - 1,
                actual: x.n_features(),
            });
        }
        Ok((0..x.n_rows)
            .map(|i| self.predict_proba_row(x.row(i)))
            .collect())
    }

    /// Hard 0/1 predictions at the 0.5 threshold.
    pub fn predict(&self, x: &FeatureMatrix) -> Result<Vec<f64>> {
        Ok(self
            .predict_proba(x)?
            .into_iter()
            .map(|p| if p >= 0.5 { 1.0 } else { 0.0 })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_prob::dist::{Normal, Sampler};
    use df_prob::rng::Pcg32;

    fn matrix(names: &[&str], rows: Vec<Vec<f64>>) -> FeatureMatrix {
        let n_rows = rows.len();
        FeatureMatrix {
            names: names.iter().map(|s| s.to_string()).collect(),
            data: rows.into_iter().flatten().collect(),
            n_rows,
        }
    }

    #[test]
    fn validates_inputs() {
        let x = matrix(&["a"], vec![vec![1.0], vec![2.0]]);
        assert!(LogisticRegression::fit(&x, &[0.0], &LogisticConfig::default()).is_err());
        assert!(LogisticRegression::fit(&x, &[0.0, 2.0], &LogisticConfig::default()).is_err());
        let cfg = LogisticConfig {
            l2: -1.0,
            ..LogisticConfig::default()
        };
        assert!(LogisticRegression::fit(&x, &[0.0, 1.0], &cfg).is_err());
    }

    #[test]
    fn learns_linearly_separable_data() {
        let mut rows = Vec::new();
        let mut ys = Vec::new();
        for i in 0..100 {
            let x = i as f64 / 10.0 - 5.0;
            rows.push(vec![x]);
            ys.push(if x > 0.3 { 1.0 } else { 0.0 });
        }
        let x = matrix(&["x"], rows);
        let model = LogisticRegression::fit(&x, &ys, &LogisticConfig::default()).unwrap();
        let preds = model.predict(&x).unwrap();
        let errors = preds.iter().zip(&ys).filter(|(p, y)| p != y).count();
        assert!(errors <= 1, "errors={errors}");
        assert!(model.weights()[1] > 0.0, "positive slope expected");
    }

    #[test]
    fn recovers_known_coefficients() {
        // Generate from a known logistic model and check recovery.
        let mut rng = Pcg32::new(77);
        let normal = Normal::standard();
        let (b0, b1, b2) = (-0.5, 1.2, -2.0);
        let mut rows = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..40_000 {
            let x1 = normal.sample(&mut rng);
            let x2 = normal.sample(&mut rng);
            let p = sigmoid(b0 + b1 * x1 + b2 * x2);
            ys.push(if rng.next_f64() < p { 1.0 } else { 0.0 });
            rows.push(vec![x1, x2]);
        }
        let x = matrix(&["x1", "x2"], rows);
        let model = LogisticRegression::fit(&x, &ys, &LogisticConfig::default()).unwrap();
        let w = model.weights();
        assert!((w[0] - b0).abs() < 0.06, "b0: {}", w[0]);
        assert!((w[1] - b1).abs() < 0.06, "b1: {}", w[1]);
        assert!((w[2] - b2).abs() < 0.06, "b2: {}", w[2]);
        assert!(model.converged());
        assert!(model.iterations() <= 15);
    }

    #[test]
    fn l2_shrinks_weights() {
        let mut rows = Vec::new();
        let mut ys = Vec::new();
        for i in 0..50 {
            let x = i as f64 - 25.0;
            rows.push(vec![x]);
            ys.push(if x > 0.0 { 1.0 } else { 0.0 });
        }
        let x = matrix(&["x"], rows);
        let loose = LogisticRegression::fit(
            &x,
            &ys,
            &LogisticConfig {
                l2: 1e-6,
                ..LogisticConfig::default()
            },
        )
        .unwrap();
        let tight = LogisticRegression::fit(
            &x,
            &ys,
            &LogisticConfig {
                l2: 10.0,
                ..LogisticConfig::default()
            },
        )
        .unwrap();
        assert!(tight.weights()[1].abs() < loose.weights()[1].abs());
    }

    #[test]
    fn separable_data_does_not_diverge() {
        // Perfect separation sends the MLE to infinity; the ridge floor must
        // keep everything finite.
        let x = matrix(&["x"], vec![vec![-1.0], vec![-2.0], vec![1.0], vec![2.0]]);
        let ys = [0.0, 0.0, 1.0, 1.0];
        let model = LogisticRegression::fit(&x, &ys, &LogisticConfig::default()).unwrap();
        assert!(model.weights().iter().all(|w| w.is_finite()));
        let p = model.predict_proba(&x).unwrap();
        assert!(p[0] < 0.5 && p[3] > 0.5);
    }

    #[test]
    fn predict_dimension_check() {
        let x = matrix(&["a"], vec![vec![0.0], vec![1.0]]);
        let model = LogisticRegression::fit(&x, &[0.0, 1.0], &LogisticConfig::default()).unwrap();
        let bad = matrix(&["a", "b"], vec![vec![0.0, 1.0]]);
        assert!(model.predict_proba(&bad).is_err());
    }

    #[test]
    fn intercept_only_model_matches_base_rate() {
        // Zero-variance feature: probability should equal the label mean.
        let x = matrix(&["k"], vec![vec![0.0]; 10]);
        let ys: Vec<f64> = (0..10).map(|i| if i < 3 { 1.0 } else { 0.0 }).collect();
        let model = LogisticRegression::fit(&x, &ys, &LogisticConfig::default()).unwrap();
        let p = model.predict_proba_row(&[0.0]);
        assert!((p - 0.3).abs() < 1e-6, "p={p}");
    }
}
