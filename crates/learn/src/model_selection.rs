//! Fairness-aware model selection.
//!
//! §1 of the paper anticipates DF being used "within the development cycle
//! of AI and ML systems, including hyper-parameter tuning, model selection,
//! and feature engineering." This module provides that workflow: k-fold
//! cross-validation reporting both error and the soft ε of each candidate,
//! and a selector that picks the most accurate model subject to an ε budget.

use crate::error::{LearnError, Result};
use crate::fair::soft_epsilon;
use crate::logistic::{LogisticConfig, LogisticRegression};
use df_data::encode::FeatureMatrix;
use df_prob::rng::Pcg32;

/// Per-candidate cross-validation summary.
#[derive(Debug, Clone)]
pub struct CvResult {
    /// The candidate's L2 strength.
    pub l2: f64,
    /// Mean validation error across folds.
    pub error: f64,
    /// Mean validation ε (smoothed hard-prediction rates per group).
    pub epsilon: f64,
    /// Per-fold (error, ε) pairs.
    pub folds: Vec<(f64, f64)>,
}

/// Splits `n` indices into `k` shuffled folds.
fn folds(n: usize, k: usize, rng: &mut Pcg32) -> Vec<Vec<usize>> {
    let mut indices: Vec<usize> = (0..n).collect();
    rng.shuffle(&mut indices);
    let mut out = vec![Vec::with_capacity(n / k + 1); k];
    for (i, ix) in indices.into_iter().enumerate() {
        out[i % k].push(ix);
    }
    out
}

fn take_rows(x: &FeatureMatrix, rows: &[usize]) -> FeatureMatrix {
    let w = x.n_features();
    let mut data = Vec::with_capacity(rows.len() * w);
    for &r in rows {
        data.extend_from_slice(x.row(r));
    }
    FeatureMatrix {
        names: x.names.clone(),
        data,
        n_rows: rows.len(),
    }
}

/// ε of hard predictions over groups, with α = 1 smoothing of the
/// per-group positive rates (both outcomes).
fn prediction_epsilon(preds: &[f64], groups: &[usize], n_groups: usize) -> f64 {
    let alpha = 1.0;
    let mut pos = vec![0.0f64; n_groups];
    let mut tot = vec![0.0f64; n_groups];
    for (&p, &g) in preds.iter().zip(groups) {
        tot[g] += 1.0;
        pos[g] += p;
    }
    let rates: Vec<f64> = (0..n_groups)
        .map(|g| (pos[g] + alpha) / (tot[g] + 2.0 * alpha))
        .collect();
    soft_epsilon(&rates, &tot)
}

/// Cross-validates logistic-regression candidates over an L2 grid,
/// reporting error and fairness per candidate.
///
/// `groups` assigns each row its protected intersection (from
/// `DataFrame::group_indices`).
pub fn cross_validate_l2_grid(
    x: &FeatureMatrix,
    y: &[f64],
    groups: &[usize],
    n_groups: usize,
    l2_grid: &[f64],
    k: usize,
    rng: &mut Pcg32,
) -> Result<Vec<CvResult>> {
    if y.len() != x.n_rows || groups.len() != x.n_rows {
        return Err(LearnError::ShapeMismatch {
            context: "cross_validate_l2_grid",
            expected: x.n_rows,
            actual: y.len().min(groups.len()),
        });
    }
    if k < 2 || x.n_rows < 2 * k {
        return Err(LearnError::Invalid(format!(
            "need k >= 2 and at least 2k rows (k = {k}, rows = {})",
            x.n_rows
        )));
    }
    if l2_grid.is_empty() {
        return Err(LearnError::Invalid("empty l2 grid".into()));
    }
    let fold_sets = folds(x.n_rows, k, rng);
    let mut results = Vec::with_capacity(l2_grid.len());
    for &l2 in l2_grid {
        let config = LogisticConfig {
            l2,
            ..LogisticConfig::default()
        };
        let mut fold_stats = Vec::with_capacity(k);
        for held_out in &fold_sets {
            let train_rows: Vec<usize> = fold_sets
                .iter()
                .filter(|f| !std::ptr::eq(*f, held_out))
                .flatten()
                .copied()
                .collect();
            let x_train = take_rows(x, &train_rows);
            let y_train: Vec<f64> = train_rows.iter().map(|&i| y[i]).collect();
            let x_val = take_rows(x, held_out);
            let y_val: Vec<f64> = held_out.iter().map(|&i| y[i]).collect();
            let g_val: Vec<usize> = held_out.iter().map(|&i| groups[i]).collect();

            let model = LogisticRegression::fit(&x_train, &y_train, &config)?;
            let preds = model.predict(&x_val)?;
            let err = preds.iter().zip(&y_val).filter(|(p, y)| p != y).count() as f64
                / y_val.len().max(1) as f64;
            let eps = prediction_epsilon(&preds, &g_val, n_groups);
            fold_stats.push((err, eps));
        }
        let error = fold_stats.iter().map(|(e, _)| e).sum::<f64>() / k as f64;
        let epsilon = fold_stats.iter().map(|(_, e)| e).sum::<f64>() / k as f64;
        results.push(CvResult {
            l2,
            error,
            epsilon,
            folds: fold_stats,
        });
    }
    Ok(results)
}

/// Selects the candidate with the lowest error among those whose mean ε is
/// within `epsilon_budget`; falls back to the overall lowest-ε candidate
/// when none qualifies (with `Ok(None)` never returned — selection is
/// total).
pub fn select_within_epsilon(results: &[CvResult], epsilon_budget: f64) -> Result<&CvResult> {
    if results.is_empty() {
        return Err(LearnError::Invalid("no candidates".into()));
    }
    let qualifying = results
        .iter()
        .filter(|r| r.epsilon <= epsilon_budget)
        .min_by(|a, b| a.error.partial_cmp(&b.error).expect("finite errors"));
    Ok(match qualifying {
        Some(r) => r,
        None => results
            .iter()
            .min_by(|a, b| a.epsilon.partial_cmp(&b.epsilon).expect("finite eps"))
            .expect("nonempty"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_prob::dist::{Normal, Sampler};
    use df_prob::numerics::sigmoid;

    fn dataset(n: usize, seed: u64) -> (FeatureMatrix, Vec<f64>, Vec<usize>) {
        let mut rng = Pcg32::new(seed);
        let normal = Normal::standard();
        let mut data = Vec::with_capacity(n * 2);
        let mut ys = Vec::with_capacity(n);
        let mut groups = Vec::with_capacity(n);
        for i in 0..n {
            let g = i % 2;
            let x1 = normal.sample(&mut rng) + if g == 1 { 0.8 } else { -0.8 };
            let x2 = normal.sample(&mut rng);
            let p = sigmoid(1.2 * x1 - 0.4 * x2);
            ys.push(if rng.next_f64() < p { 1.0 } else { 0.0 });
            data.extend([x1, x2]);
            groups.push(g);
        }
        (
            FeatureMatrix {
                names: vec!["x1".into(), "x2".into()],
                data,
                n_rows: n,
            },
            ys,
            groups,
        )
    }

    #[test]
    fn cv_produces_one_result_per_candidate() {
        let (x, y, g) = dataset(600, 1);
        let mut rng = Pcg32::new(2);
        let results =
            cross_validate_l2_grid(&x, &y, &g, 2, &[1e-4, 1.0, 100.0], 5, &mut rng).unwrap();
        assert_eq!(results.len(), 3);
        for r in &results {
            assert_eq!(r.folds.len(), 5);
            assert!(r.error >= 0.0 && r.error <= 1.0);
            assert!(r.epsilon >= 0.0);
        }
        // Heavy regularization hurts accuracy on this signal.
        assert!(results[2].error >= results[0].error - 0.02);
    }

    #[test]
    fn folds_partition_indices() {
        let mut rng = Pcg32::new(3);
        let f = folds(103, 5, &mut rng);
        assert_eq!(f.len(), 5);
        let mut all: Vec<usize> = f.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..103).collect::<Vec<_>>());
    }

    #[test]
    fn selection_respects_budget_and_falls_back() {
        let results = vec![
            CvResult {
                l2: 0.1,
                error: 0.10,
                epsilon: 2.0,
                folds: vec![],
            },
            CvResult {
                l2: 1.0,
                error: 0.14,
                epsilon: 0.8,
                folds: vec![],
            },
            CvResult {
                l2: 10.0,
                error: 0.20,
                epsilon: 0.5,
                folds: vec![],
            },
        ];
        // Budget admits the last two; lowest error among them is l2 = 1.
        let chosen = select_within_epsilon(&results, 1.0).unwrap();
        assert_eq!(chosen.l2, 1.0);
        // Impossible budget → fall back to minimal ε.
        let fallback = select_within_epsilon(&results, 0.1).unwrap();
        assert_eq!(fallback.l2, 10.0);
        assert!(select_within_epsilon(&[], 1.0).is_err());
    }

    #[test]
    fn validates_inputs() {
        let (x, y, g) = dataset(20, 4);
        let mut rng = Pcg32::new(5);
        assert!(cross_validate_l2_grid(&x, &y[..10], &g, 2, &[1.0], 3, &mut rng).is_err());
        assert!(cross_validate_l2_grid(&x, &y, &g, 2, &[], 3, &mut rng).is_err());
        assert!(cross_validate_l2_grid(&x, &y, &g, 2, &[1.0], 15, &mut rng).is_err());
    }
}
