//! Differential-fairness-regularized logistic regression.
//!
//! The paper's conclusion names "learning algorithms which use our criterion
//! as a regularizer to automatically balance the trade-off between fairness
//! and accuracy" as future work (following Foulds et al.'s later
//! DF-classifier). This module implements that learner:
//!
//! ```text
//! minimize  NLL(w)/n + (λ₂/2)‖w‖² + λ_f · R(w)
//!
//! R(w) = Σ_{i<j} [ max(0, |ln p̂ᵢ − ln p̂ⱼ| − ε_target) ]²
//!      + Σ_{i<j} [ max(0, |ln(1−p̂ᵢ) − ln(1−p̂ⱼ)| − ε_target) ]²
//! ```
//!
//! where `p̂_g = (α + Σ_{i∈g} σ(w·xᵢ)) / (2α + N_g)` is the smoothed soft
//! positive rate of intersection `g` — a differentiable surrogate of the
//! Eq. 7 estimator, so `R = 0` exactly when the soft ε meets `ε_target` on
//! both outcomes. Optimization is full-batch gradient descent with Armijo
//! line search.

use crate::error::{LearnError, Result};
use crate::optim::{GradientDescent, Objective};
use df_data::encode::FeatureMatrix;
use df_prob::numerics::{exactly_zero, sigmoid};

/// Configuration for the fair learner.
#[derive(Debug, Clone)]
pub struct FairLogisticConfig {
    /// Fairness penalty strength λ_f (0 recovers plain logistic
    /// regression trained by gradient descent).
    pub fairness_weight: f64,
    /// Target ε below which no penalty applies.
    pub epsilon_target: f64,
    /// Dirichlet smoothing α of the soft group rates.
    pub alpha: f64,
    /// L2 penalty λ₂.
    pub l2: f64,
    /// Maximum gradient-descent iterations.
    pub max_iter: usize,
}

impl Default for FairLogisticConfig {
    fn default() -> Self {
        Self {
            fairness_weight: 1.0,
            epsilon_target: 0.0,
            alpha: 1.0,
            l2: 1e-4,
            max_iter: 400,
        }
    }
}

/// A fitted DF-regularized model.
#[derive(Debug, Clone)]
pub struct FairLogisticRegression {
    weights: Vec<f64>, // [intercept, w...]
    n_features: usize,
    /// Soft ε of the training groups at the optimum.
    pub train_soft_epsilon: f64,
    /// Whether gradient descent converged.
    pub converged: bool,
}

struct FairObjective<'a> {
    x: &'a FeatureMatrix,
    y: &'a [f64],
    groups: &'a [usize],
    group_sizes: Vec<f64>,
    config: &'a FairLogisticConfig,
}

impl FairObjective<'_> {
    /// Soft rates and their weight-gradients premixed: returns
    /// (nll, grad_nll, soft_rates, per-group d p̂_g/dw).
    #[allow(clippy::type_complexity, clippy::needless_range_loop)]
    fn forward(&self, w: &[f64]) -> (f64, Vec<f64>, Vec<f64>, Vec<Vec<f64>>) {
        let k = w.len();
        let n = self.x.n_rows;
        let n_groups = self.group_sizes.len();
        let alpha = self.config.alpha;

        let mut nll = 0.0;
        let mut grad = vec![0.0; k];
        let mut soft_sum = vec![0.0f64; n_groups];
        let mut rate_grad = vec![vec![0.0f64; k]; n_groups];

        for i in 0..n {
            let row = self.x.row(i);
            let z = w[0] + row.iter().zip(&w[1..]).map(|(xi, wi)| xi * wi).sum::<f64>();
            let p = sigmoid(z);
            nll += df_prob::numerics::log1p_exp(z) - self.y[i] * z;
            let resid = p - self.y[i];
            grad[0] += resid;
            for (j, &xij) in row.iter().enumerate() {
                grad[j + 1] += resid * xij;
            }
            let g = self.groups[i];
            soft_sum[g] += p;
            let s = p * (1.0 - p);
            rate_grad[g][0] += s;
            for (j, &xij) in row.iter().enumerate() {
                rate_grad[g][j + 1] += s * xij;
            }
        }
        let inv_n = 1.0 / n as f64;
        nll *= inv_n;
        for g in grad.iter_mut() {
            *g *= inv_n;
        }
        let rates: Vec<f64> = (0..n_groups)
            .map(|g| (alpha + soft_sum[g]) / (2.0 * alpha + self.group_sizes[g]))
            .collect();
        for g in 0..n_groups {
            let denom = 2.0 * alpha + self.group_sizes[g];
            for v in rate_grad[g].iter_mut() {
                *v /= denom;
            }
        }
        (nll, grad, rates, rate_grad)
    }
}

/// Floor/ceiling keeping the log-ratios of the fairness penalty finite
/// when a soft group rate saturates at exactly 0.0 or 1.0 — which happens
/// whenever the sigmoid itself saturates in `f64` (|z| ≳ 37) and α is too
/// small to pull the rate off the boundary. Without the clamp, `ln 0`
/// injects `±inf` into the penalty and `inf − inf = NaN` into its
/// gradient, silently corrupting the optimizer state.
const RATE_CLAMP: f64 = 1e-12;

#[inline]
fn clamp_rate(p: f64) -> f64 {
    p.clamp(RATE_CLAMP, 1.0 - RATE_CLAMP)
}

impl Objective for FairObjective<'_> {
    fn value_grad(&self, w: &[f64]) -> (f64, Vec<f64>) {
        let (mut value, mut grad, raw_rates, rate_grad) = self.forward(w);
        let rates: Vec<f64> = raw_rates.into_iter().map(clamp_rate).collect();

        // L2 (skip intercept).
        for (j, &wj) in w.iter().enumerate().skip(1) {
            value += 0.5 * self.config.l2 * wj * wj;
            grad[j] += self.config.l2 * wj;
        }

        // Fairness hinge over populated group pairs, both outcomes.
        let lam = self.config.fairness_weight;
        if lam > 0.0 {
            let n_groups = rates.len();
            for i in 0..n_groups {
                if exactly_zero(self.group_sizes[i]) {
                    continue;
                }
                for j in i + 1..n_groups {
                    if exactly_zero(self.group_sizes[j]) {
                        continue;
                    }
                    // Positive outcome: d ln p / dw = (1/p) dp/dw.
                    let gap_pos = rates[i].ln() - rates[j].ln();
                    let hinge_pos = (gap_pos.abs() - self.config.epsilon_target).max(0.0);
                    if hinge_pos > 0.0 {
                        value += lam * hinge_pos * hinge_pos;
                        let coef = 2.0 * lam * hinge_pos * gap_pos.signum();
                        for (gslot, (gi, gj)) in grad
                            .iter_mut()
                            .zip(rate_grad[i].iter().zip(rate_grad[j].iter()))
                        {
                            *gslot += coef * (gi / rates[i] - gj / rates[j]);
                        }
                    }
                    // Negative outcome: d ln(1-p)/dw = -(1/(1-p)) dp/dw.
                    let gap_neg = (1.0 - rates[i]).ln() - (1.0 - rates[j]).ln();
                    let hinge_neg = (gap_neg.abs() - self.config.epsilon_target).max(0.0);
                    if hinge_neg > 0.0 {
                        value += lam * hinge_neg * hinge_neg;
                        let coef = 2.0 * lam * hinge_neg * gap_neg.signum();
                        for (gslot, (gi, gj)) in grad
                            .iter_mut()
                            .zip(rate_grad[i].iter().zip(rate_grad[j].iter()))
                        {
                            *gslot += coef * (-gi / (1.0 - rates[i]) + gj / (1.0 - rates[j]));
                        }
                    }
                }
            }
        }
        (value, grad)
    }
}

/// Soft ε of a rate vector: the max pairwise |log-ratio| over both outcomes
/// for populated groups. Rates are clamped to `[1e-12, 1 − 1e-12]` first,
/// so a saturated rate (exactly 0.0 or 1.0) yields a large but *finite*
/// ε instead of `inf`/NaN.
pub fn soft_epsilon(rates: &[f64], group_sizes: &[f64]) -> f64 {
    let mut eps = 0.0f64;
    for (i, &ri) in rates.iter().enumerate() {
        if exactly_zero(group_sizes[i]) {
            continue;
        }
        let ri = clamp_rate(ri);
        for (j, &rj) in rates.iter().enumerate() {
            if exactly_zero(group_sizes[j]) || i == j {
                continue;
            }
            let rj = clamp_rate(rj);
            eps = eps.max((ri.ln() - rj.ln()).abs());
            eps = eps.max(((1.0 - ri).ln() - (1.0 - rj).ln()).abs());
        }
    }
    eps
}

impl FairLogisticRegression {
    /// Fits the model. `groups[i]` is the intersection index of row `i`
    /// (as produced by `DataFrame::group_indices`), `n_groups` the number of
    /// intersections.
    pub fn fit(
        x: &FeatureMatrix,
        y: &[f64],
        groups: &[usize],
        n_groups: usize,
        config: &FairLogisticConfig,
    ) -> Result<FairLogisticRegression> {
        if y.len() != x.n_rows || groups.len() != x.n_rows {
            return Err(LearnError::ShapeMismatch {
                context: "FairLogisticRegression::fit",
                expected: x.n_rows,
                actual: y.len().min(groups.len()),
            });
        }
        if n_groups == 0 || groups.iter().any(|&g| g >= n_groups) {
            return Err(LearnError::Invalid("group index out of range".into()));
        }
        if config.alpha <= 0.0 || config.alpha.is_nan() {
            return Err(LearnError::Invalid(
                "alpha must be positive for the soft rates".into(),
            ));
        }
        let mut group_sizes = vec![0.0f64; n_groups];
        for &g in groups {
            group_sizes[g] += 1.0;
        }
        let objective = FairObjective {
            x,
            y,
            groups,
            group_sizes: group_sizes.clone(),
            config,
        };
        let gd = GradientDescent {
            max_iter: config.max_iter,
            tol: 1e-5,
            ..GradientDescent::default()
        };
        let out = gd.minimize(&objective, vec![0.0; x.n_features() + 1])?;
        let (_, _, rates, _) = objective.forward(&out.w);
        Ok(FairLogisticRegression {
            n_features: x.n_features(),
            train_soft_epsilon: soft_epsilon(&rates, &group_sizes),
            weights: out.w,
            converged: out.converged,
        })
    }

    /// Weight vector `[intercept, w₁, …]`.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// `P(y = 1 | x)` per row.
    pub fn predict_proba(&self, x: &FeatureMatrix) -> Result<Vec<f64>> {
        if x.n_features() != self.n_features {
            return Err(LearnError::ShapeMismatch {
                context: "FairLogisticRegression::predict_proba",
                expected: self.n_features,
                actual: x.n_features(),
            });
        }
        Ok((0..x.n_rows)
            .map(|i| {
                let row = x.row(i);
                sigmoid(
                    self.weights[0]
                        + row
                            .iter()
                            .zip(&self.weights[1..])
                            .map(|(xi, wi)| xi * wi)
                            .sum::<f64>(),
                )
            })
            .collect())
    }

    /// Hard 0/1 predictions at the 0.5 threshold.
    pub fn predict(&self, x: &FeatureMatrix) -> Result<Vec<f64>> {
        Ok(self
            .predict_proba(x)?
            .into_iter()
            .map(|p| if p >= 0.5 { 1.0 } else { 0.0 })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_prob::dist::{Normal, Sampler};
    use df_prob::rng::Pcg32;

    fn matrix(names: &[&str], rows: Vec<Vec<f64>>) -> FeatureMatrix {
        let n_rows = rows.len();
        FeatureMatrix {
            names: names.iter().map(|s| s.to_string()).collect(),
            data: rows.into_iter().flatten().collect(),
            n_rows,
        }
    }

    /// Biased two-group data: group 1's feature is shifted so an accuracy-
    /// optimal classifier strongly favours it.
    fn biased_dataset(n: usize, seed: u64) -> (FeatureMatrix, Vec<f64>, Vec<usize>) {
        let mut rng = Pcg32::new(seed);
        let normal = Normal::standard();
        let mut rows = Vec::with_capacity(n);
        let mut ys = Vec::with_capacity(n);
        let mut groups = Vec::with_capacity(n);
        for i in 0..n {
            let g = i % 2;
            let shift = if g == 1 { 1.8 } else { -1.8 };
            let x = normal.sample(&mut rng) + shift;
            let p = sigmoid(1.5 * x);
            ys.push(if rng.next_f64() < p { 1.0 } else { 0.0 });
            rows.push(vec![x]);
            groups.push(g);
        }
        (matrix(&["score"], rows), ys, groups)
    }

    #[test]
    fn validates_inputs() {
        let (x, y, g) = biased_dataset(50, 1);
        let cfg = FairLogisticConfig::default();
        assert!(FairLogisticRegression::fit(&x, &y[..10], &g, 2, &cfg).is_err());
        assert!(FairLogisticRegression::fit(&x, &y, &g, 1, &cfg).is_err());
        let bad_alpha = FairLogisticConfig { alpha: 0.0, ..cfg };
        assert!(FairLogisticRegression::fit(&x, &y, &g, 2, &bad_alpha).is_err());
    }

    #[test]
    fn zero_penalty_matches_plain_logistic() {
        let (x, y, g) = biased_dataset(4000, 2);
        let cfg = FairLogisticConfig {
            fairness_weight: 0.0,
            max_iter: 2000,
            ..FairLogisticConfig::default()
        };
        let fair = FairLogisticRegression::fit(&x, &y, &g, 2, &cfg).unwrap();
        let plain = crate::logistic::LogisticRegression::fit(
            &x,
            &y,
            &crate::logistic::LogisticConfig::default(),
        )
        .unwrap();
        // Same optimum up to optimizer tolerance.
        assert!(
            (fair.weights()[1] - plain.weights()[1]).abs() < 0.05,
            "{} vs {}",
            fair.weights()[1],
            plain.weights()[1]
        );
    }

    #[test]
    fn penalty_reduces_soft_epsilon() {
        let (x, y, g) = biased_dataset(4000, 3);
        let loose = FairLogisticRegression::fit(
            &x,
            &y,
            &g,
            2,
            &FairLogisticConfig {
                fairness_weight: 0.0,
                ..FairLogisticConfig::default()
            },
        )
        .unwrap();
        let strict = FairLogisticRegression::fit(
            &x,
            &y,
            &g,
            2,
            &FairLogisticConfig {
                fairness_weight: 50.0,
                ..FairLogisticConfig::default()
            },
        )
        .unwrap();
        assert!(
            strict.train_soft_epsilon < 0.3 * loose.train_soft_epsilon,
            "strict {} vs loose {}",
            strict.train_soft_epsilon,
            loose.train_soft_epsilon
        );
    }

    #[test]
    fn fairness_costs_accuracy_on_biased_data() {
        // The trade-off the paper describes: fairness at some expense to
        // predictive accuracy.
        let (x, y, g) = biased_dataset(4000, 4);
        let loose = FairLogisticRegression::fit(
            &x,
            &y,
            &g,
            2,
            &FairLogisticConfig {
                fairness_weight: 0.0,
                ..FairLogisticConfig::default()
            },
        )
        .unwrap();
        let strict = FairLogisticRegression::fit(
            &x,
            &y,
            &g,
            2,
            &FairLogisticConfig {
                fairness_weight: 50.0,
                ..FairLogisticConfig::default()
            },
        )
        .unwrap();
        let err = |m: &FairLogisticRegression| {
            let preds = m.predict(&x).unwrap();
            preds.iter().zip(&y).filter(|(p, y)| p != y).count() as f64 / y.len() as f64
        };
        assert!(err(&strict) >= err(&loose) - 1e-9);
        assert!(err(&loose) < 0.25, "baseline should be accurate");
    }

    #[test]
    fn epsilon_target_leaves_slack() {
        let (x, y, g) = biased_dataset(4000, 5);
        let targeted = FairLogisticRegression::fit(
            &x,
            &y,
            &g,
            2,
            &FairLogisticConfig {
                fairness_weight: 50.0,
                epsilon_target: 0.5,
                ..FairLogisticConfig::default()
            },
        )
        .unwrap();
        // The optimizer has no incentive to push soft-ε below the target.
        assert!(
            targeted.train_soft_epsilon <= 0.75,
            "soft eps {} should be near the 0.5 target",
            targeted.train_soft_epsilon
        );
        let strict = FairLogisticRegression::fit(
            &x,
            &y,
            &g,
            2,
            &FairLogisticConfig {
                fairness_weight: 50.0,
                epsilon_target: 0.0,
                ..FairLogisticConfig::default()
            },
        )
        .unwrap();
        assert!(strict.train_soft_epsilon < targeted.train_soft_epsilon + 1e-9);
    }

    #[test]
    fn saturated_rates_yield_finite_epsilon_and_gradients() {
        // Exactly-saturated rates: previously ln(0) → inf, and with both
        // outcomes saturated in opposite directions, NaN.
        let eps = soft_epsilon(&[1.0, 0.0], &[5.0, 5.0]);
        assert!(eps.is_finite(), "{eps}");
        assert!(eps > 20.0, "saturated gap must still register: {eps}");
        assert!(soft_epsilon(&[0.0, 0.0], &[1.0, 1.0]).is_finite());
        assert!(soft_epsilon(&[1.0, 1.0], &[1.0, 1.0]).is_finite());

        // End-to-end regression: extreme feature scale saturates the
        // sigmoid (|z| ≫ 37 → σ(z) is exactly 0.0/1.0 in f64) and a tiny α
        // cannot pull the soft group rates off the boundary, so the hinge
        // gradient used to go NaN and poison gradient descent.
        let x = matrix(
            &["score"],
            vec![vec![1e6], vec![1e6], vec![-1e6], vec![-1e6]],
        );
        let y = vec![1.0, 1.0, 0.0, 0.0];
        let groups = vec![0usize, 0, 1, 1];
        let cfg = FairLogisticConfig {
            fairness_weight: 10.0,
            alpha: 1e-300,
            max_iter: 50,
            ..FairLogisticConfig::default()
        };
        let model = FairLogisticRegression::fit(&x, &y, &groups, 2, &cfg).unwrap();
        assert!(
            model.weights().iter().all(|w| w.is_finite()),
            "{:?}",
            model.weights()
        );
        assert!(
            model.train_soft_epsilon.is_finite(),
            "{}",
            model.train_soft_epsilon
        );
    }

    #[test]
    fn soft_epsilon_ignores_empty_groups() {
        let eps = soft_epsilon(&[0.5, 0.9, 0.1], &[10.0, 10.0, 0.0]);
        let expect = ((0.9_f64 / 0.5).ln()).max(((1.0_f64 - 0.5) / (1.0 - 0.9)).ln());
        assert!((eps - expect).abs() < 1e-12);
    }
}
