//! Classification metrics.

use crate::error::{LearnError, Result};
use df_prob::numerics::exactly_zero;

/// Fraction of mismatched predictions.
pub fn error_rate(predictions: &[f64], labels: &[f64]) -> Result<f64> {
    if predictions.len() != labels.len() {
        return Err(LearnError::ShapeMismatch {
            context: "error_rate",
            expected: labels.len(),
            actual: predictions.len(),
        });
    }
    if predictions.is_empty() {
        return Err(LearnError::Invalid("empty prediction vector".into()));
    }
    let wrong = predictions
        .iter()
        .zip(labels)
        .filter(|(p, y)| p != y)
        .count();
    Ok(wrong as f64 / labels.len() as f64)
}

/// `1 − error_rate`.
pub fn accuracy(predictions: &[f64], labels: &[f64]) -> Result<f64> {
    Ok(1.0 - error_rate(predictions, labels)?)
}

/// Binary confusion counts.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Confusion {
    /// True positives (pred 1, label 1).
    pub tp: usize,
    /// False positives (pred 1, label 0).
    pub fp: usize,
    /// True negatives (pred 0, label 0).
    pub tn: usize,
    /// False negatives (pred 0, label 1).
    pub fn_: usize,
}

impl Confusion {
    /// Tallies a prediction/label pair sequence (both 0/1-valued).
    pub fn from_predictions(predictions: &[f64], labels: &[f64]) -> Result<Confusion> {
        if predictions.len() != labels.len() {
            return Err(LearnError::ShapeMismatch {
                context: "Confusion::from_predictions",
                expected: labels.len(),
                actual: predictions.len(),
            });
        }
        let mut c = Confusion::default();
        for (&p, &y) in predictions.iter().zip(labels) {
            match (p >= 0.5, y >= 0.5) {
                (true, true) => c.tp += 1,
                (true, false) => c.fp += 1,
                (false, false) => c.tn += 1,
                (false, true) => c.fn_ += 1,
            }
        }
        Ok(c)
    }

    /// Precision `tp / (tp + fp)`; `None` with no positive predictions.
    pub fn precision(&self) -> Option<f64> {
        let denom = self.tp + self.fp;
        (denom > 0).then(|| self.tp as f64 / denom as f64)
    }

    /// Recall / true-positive rate; `None` with no positive labels.
    pub fn recall(&self) -> Option<f64> {
        let denom = self.tp + self.fn_;
        (denom > 0).then(|| self.tp as f64 / denom as f64)
    }

    /// False-positive rate; `None` with no negative labels.
    pub fn fpr(&self) -> Option<f64> {
        let denom = self.fp + self.tn;
        (denom > 0).then(|| self.fp as f64 / denom as f64)
    }

    /// F1 score; `None` when precision or recall is undefined.
    pub fn f1(&self) -> Option<f64> {
        let p = self.precision()?;
        let r = self.recall()?;
        if exactly_zero(p + r) {
            return Some(0.0);
        }
        Some(2.0 * p * r / (p + r))
    }
}

/// Binary cross-entropy of probabilistic predictions, clipped away from
/// {0, 1} by 1e-12 for stability.
pub fn log_loss(probabilities: &[f64], labels: &[f64]) -> Result<f64> {
    if probabilities.len() != labels.len() {
        return Err(LearnError::ShapeMismatch {
            context: "log_loss",
            expected: labels.len(),
            actual: probabilities.len(),
        });
    }
    if probabilities.is_empty() {
        return Err(LearnError::Invalid("empty probability vector".into()));
    }
    let mut total = 0.0;
    for (&p, &y) in probabilities.iter().zip(labels) {
        let p = p.clamp(1e-12, 1.0 - 1e-12);
        total -= y * p.ln() + (1.0 - y) * (1.0 - p).ln();
    }
    Ok(total / labels.len() as f64)
}

/// Area under the ROC curve via the rank-sum (Mann–Whitney) estimator, with
/// the standard half-credit for ties. Errors when either class is absent.
pub fn auc(scores: &[f64], labels: &[f64]) -> Result<f64> {
    if scores.len() != labels.len() {
        return Err(LearnError::ShapeMismatch {
            context: "auc",
            expected: labels.len(),
            actual: scores.len(),
        });
    }
    let n_pos = labels.iter().filter(|&&y| y >= 0.5).count();
    let n_neg = labels.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return Err(LearnError::Invalid("AUC needs both classes present".into()));
    }
    // Rank scores ascending; sum positive ranks with tie-averaging.
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[a].partial_cmp(&scores[b]).expect("finite scores"));
    let mut rank_sum_pos = 0.0;
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && scores[order[j + 1]] == scores[order[i]] {
            j += 1;
        }
        // Average rank for the tie block [i, j] (1-based ranks).
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for &ix in &order[i..=j] {
            if labels[ix] >= 0.5 {
                rank_sum_pos += avg_rank;
            }
        }
        i = j + 1;
    }
    let auc =
        (rank_sum_pos - n_pos as f64 * (n_pos as f64 + 1.0) / 2.0) / (n_pos as f64 * n_neg as f64);
    Ok(auc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_rate_basic() {
        let e = error_rate(&[1.0, 0.0, 1.0, 1.0], &[1.0, 0.0, 0.0, 1.0]).unwrap();
        assert!((e - 0.25).abs() < 1e-14);
        assert!((accuracy(&[1.0], &[1.0]).unwrap() - 1.0).abs() < 1e-14);
        assert!(error_rate(&[], &[]).is_err());
        assert!(error_rate(&[1.0], &[1.0, 0.0]).is_err());
    }

    #[test]
    fn confusion_rates() {
        let preds = [1.0, 1.0, 0.0, 0.0, 1.0];
        let labels = [1.0, 0.0, 0.0, 1.0, 1.0];
        let c = Confusion::from_predictions(&preds, &labels).unwrap();
        assert_eq!((c.tp, c.fp, c.tn, c.fn_), (2, 1, 1, 1));
        assert!((c.precision().unwrap() - 2.0 / 3.0).abs() < 1e-14);
        assert!((c.recall().unwrap() - 2.0 / 3.0).abs() < 1e-14);
        assert!((c.fpr().unwrap() - 0.5).abs() < 1e-14);
        assert!((c.f1().unwrap() - 2.0 / 3.0).abs() < 1e-14);
    }

    #[test]
    fn confusion_undefined_rates() {
        let c = Confusion::from_predictions(&[0.0, 0.0], &[0.0, 0.0]).unwrap();
        assert!(c.precision().is_none());
        assert!(c.recall().is_none());
        assert!(c.fpr().is_some());
    }

    #[test]
    fn log_loss_perfect_and_uninformed() {
        let perfect = log_loss(&[1.0, 0.0], &[1.0, 0.0]).unwrap();
        assert!(perfect < 1e-10);
        let coin = log_loss(&[0.5, 0.5], &[1.0, 0.0]).unwrap();
        assert!((coin - 2.0_f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn auc_perfect_random_inverted() {
        let labels = [0.0, 0.0, 1.0, 1.0];
        assert!((auc(&[0.1, 0.2, 0.8, 0.9], &labels).unwrap() - 1.0).abs() < 1e-14);
        assert!((auc(&[0.9, 0.8, 0.2, 0.1], &labels).unwrap() - 0.0).abs() < 1e-14);
        // All-tied scores → 0.5.
        assert!((auc(&[0.5, 0.5, 0.5, 0.5], &labels).unwrap() - 0.5).abs() < 1e-14);
    }

    #[test]
    fn auc_tie_handling_matches_hand_computation() {
        // scores: neg [0.2, 0.4], pos [0.4, 0.9]
        // pairs: (0.2,0.4)=1, (0.2,0.9)=1, (0.4,0.4)=0.5, (0.4,0.9)=1 → 3.5/4.
        let a = auc(&[0.2, 0.4, 0.4, 0.9], &[0.0, 0.0, 1.0, 1.0]).unwrap();
        assert!((a - 0.875).abs() < 1e-14, "{a}");
    }

    #[test]
    fn auc_requires_both_classes() {
        assert!(auc(&[0.1, 0.2], &[1.0, 1.0]).is_err());
    }
}
