//! Depth-limited CART decision trees (gini impurity).
//!
//! A third mechanism family for fairness audits; axis-aligned splits over a
//! dense feature matrix (numeric features and one-hot indicators alike).

use crate::error::{LearnError, Result};
use df_data::encode::FeatureMatrix;
use df_prob::numerics::{exactly, exactly_zero};

/// Tree-growing configuration.
#[derive(Debug, Clone)]
pub struct TreeConfig {
    /// Maximum depth (a depth-0 tree is a single leaf).
    pub max_depth: usize,
    /// Minimum samples to attempt a split.
    pub min_samples_split: usize,
    /// Minimum impurity decrease to accept a split.
    pub min_gain: f64,
}

impl Default for TreeConfig {
    fn default() -> Self {
        Self {
            max_depth: 5,
            min_samples_split: 10,
            min_gain: 1e-7,
        }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        prob: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

/// A fitted binary decision tree.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    root: Node,
    n_features: usize,
}

fn gini(pos: f64, total: f64) -> f64 {
    if total <= 0.0 {
        return 0.0;
    }
    let p = pos / total;
    2.0 * p * (1.0 - p)
}

impl DecisionTree {
    /// Fits the tree to a feature matrix and 0/1 labels.
    pub fn fit(x: &FeatureMatrix, y: &[f64], config: &TreeConfig) -> Result<DecisionTree> {
        if y.len() != x.n_rows {
            return Err(LearnError::ShapeMismatch {
                context: "DecisionTree::fit",
                expected: x.n_rows,
                actual: y.len(),
            });
        }
        if y.is_empty() {
            return Err(LearnError::Invalid("empty training set".into()));
        }
        let indices: Vec<usize> = (0..x.n_rows).collect();
        let root = Self::grow(x, y, &indices, config.max_depth, config);
        Ok(DecisionTree {
            root,
            n_features: x.n_features(),
        })
    }

    fn leaf(y: &[f64], indices: &[usize]) -> Node {
        let pos: f64 = indices.iter().map(|&i| y[i]).sum();
        Node::Leaf {
            prob: pos / indices.len().max(1) as f64,
        }
    }

    fn grow(
        x: &FeatureMatrix,
        y: &[f64],
        indices: &[usize],
        depth_left: usize,
        config: &TreeConfig,
    ) -> Node {
        let total = indices.len() as f64;
        let pos: f64 = indices.iter().map(|&i| y[i]).sum();
        if depth_left == 0
            || indices.len() < config.min_samples_split
            || exactly_zero(pos)
            || exactly(pos, total)
        {
            return Self::leaf(y, indices);
        }
        let parent_impurity = gini(pos, total);

        // Best axis-aligned split by exhaustive scan over sorted values.
        let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, gain)
        let mut order: Vec<usize> = indices.to_vec();
        for f in 0..x.n_features() {
            order.sort_by(|&a, &b| {
                x.row(a)[f]
                    .partial_cmp(&x.row(b)[f])
                    .expect("finite features")
            });
            let mut left_pos = 0.0;
            let mut left_n = 0.0;
            for w in 0..order.len() - 1 {
                let i = order[w];
                left_pos += y[i];
                left_n += 1.0;
                let v = x.row(i)[f];
                let v_next = x.row(order[w + 1])[f];
                if v == v_next {
                    continue; // can't split between equal values
                }
                let right_pos = pos - left_pos;
                let right_n = total - left_n;
                let weighted = (left_n / total) * gini(left_pos, left_n)
                    + (right_n / total) * gini(right_pos, right_n);
                let gain = parent_impurity - weighted;
                if gain > config.min_gain && best.is_none_or(|(_, _, g)| gain > g) {
                    best = Some((f, (v + v_next) / 2.0, gain));
                }
            }
        }

        match best {
            None => Self::leaf(y, indices),
            Some((feature, threshold, _)) => {
                let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = indices
                    .iter()
                    .partition(|&&i| x.row(i)[feature] <= threshold);
                if left_idx.is_empty() || right_idx.is_empty() {
                    return Self::leaf(y, indices);
                }
                Node::Split {
                    feature,
                    threshold,
                    left: Box::new(Self::grow(x, y, &left_idx, depth_left - 1, config)),
                    right: Box::new(Self::grow(x, y, &right_idx, depth_left - 1, config)),
                }
            }
        }
    }

    /// Maximum depth actually realized.
    pub fn depth(&self) -> usize {
        fn d(node: &Node) -> usize {
            match node {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + d(left).max(d(right)),
            }
        }
        d(&self.root)
    }

    /// `P(y = 1 | x)` for one feature row.
    pub fn predict_proba_row(&self, row: &[f64]) -> f64 {
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { prob } => return *prob,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if row[*feature] <= *threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }

    /// `P(y = 1 | x)` for every row.
    pub fn predict_proba(&self, x: &FeatureMatrix) -> Result<Vec<f64>> {
        if x.n_features() != self.n_features {
            return Err(LearnError::ShapeMismatch {
                context: "DecisionTree::predict_proba",
                expected: self.n_features,
                actual: x.n_features(),
            });
        }
        Ok((0..x.n_rows)
            .map(|i| self.predict_proba_row(x.row(i)))
            .collect())
    }

    /// Hard 0/1 predictions at the 0.5 threshold.
    pub fn predict(&self, x: &FeatureMatrix) -> Result<Vec<f64>> {
        Ok(self
            .predict_proba(x)?
            .into_iter()
            .map(|p| if p >= 0.5 { 1.0 } else { 0.0 })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix(names: &[&str], rows: Vec<Vec<f64>>) -> FeatureMatrix {
        let n_rows = rows.len();
        FeatureMatrix {
            names: names.iter().map(|s| s.to_string()).collect(),
            data: rows.into_iter().flatten().collect(),
            n_rows,
        }
    }

    #[test]
    fn validates_inputs() {
        let x = matrix(&["a"], vec![vec![1.0]]);
        assert!(DecisionTree::fit(&x, &[], &TreeConfig::default()).is_err());
    }

    #[test]
    fn learns_single_threshold() {
        let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..20).map(|i| if i >= 12 { 1.0 } else { 0.0 }).collect();
        let x = matrix(&["v"], rows);
        let cfg = TreeConfig {
            max_depth: 1,
            min_samples_split: 2,
            ..TreeConfig::default()
        };
        let tree = DecisionTree::fit(&x, &y, &cfg).unwrap();
        assert_eq!(tree.depth(), 1);
        assert_eq!(tree.predict(&x).unwrap(), y);
        assert!(tree.predict_proba_row(&[11.0]) < 0.5);
        assert!(tree.predict_proba_row(&[12.0]) > 0.5);
    }

    #[test]
    fn learns_conjunction_with_depth_two() {
        // y = a AND b needs two levels; a stump cannot express it (but
        // unlike XOR, the greedy first split has positive gain).
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for a in 0..2 {
            for b in 0..2 {
                for _ in 0..10 {
                    rows.push(vec![a as f64, b as f64]);
                    y.push((a & b) as f64);
                }
            }
        }
        let x = matrix(&["a", "b"], rows);
        let cfg = TreeConfig {
            max_depth: 2,
            min_samples_split: 2,
            ..TreeConfig::default()
        };
        let tree = DecisionTree::fit(&x, &y, &cfg).unwrap();
        let err = tree
            .predict(&x)
            .unwrap()
            .iter()
            .zip(&y)
            .filter(|(p, y)| p != y)
            .count();
        assert_eq!(err, 0);
        assert_eq!(tree.depth(), 2);

        // A depth-1 stump cannot be perfect on this data.
        let stump = DecisionTree::fit(
            &x,
            &y,
            &TreeConfig {
                max_depth: 1,
                min_samples_split: 2,
                ..TreeConfig::default()
            },
        )
        .unwrap();
        let stump_err = stump
            .predict(&x)
            .unwrap()
            .iter()
            .zip(&y)
            .filter(|(p, y)| p != y)
            .count();
        assert!(stump_err > 0);
    }

    #[test]
    fn depth_zero_is_base_rate_leaf() {
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..10).map(|i| if i < 3 { 1.0 } else { 0.0 }).collect();
        let x = matrix(&["v"], rows);
        let cfg = TreeConfig {
            max_depth: 0,
            ..TreeConfig::default()
        };
        let tree = DecisionTree::fit(&x, &y, &cfg).unwrap();
        assert_eq!(tree.depth(), 0);
        assert!((tree.predict_proba_row(&[5.0]) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn pure_node_stops_early() {
        let x = matrix(&["v"], vec![vec![1.0], vec![2.0], vec![3.0]]);
        let y = [1.0, 1.0, 1.0];
        let tree = DecisionTree::fit(&x, &y, &TreeConfig::default()).unwrap();
        assert_eq!(tree.depth(), 0);
    }

    #[test]
    fn predict_dimension_check() {
        let x = matrix(&["v"], vec![vec![1.0], vec![2.0]]);
        let tree = DecisionTree::fit(&x, &[0.0, 1.0], &TreeConfig::default()).unwrap();
        let bad = matrix(&["a", "b"], vec![vec![1.0, 2.0]]);
        assert!(tree.predict_proba(&bad).is_err());
    }
}
