//! The "fairness gerrymandering" scenario (§7.1 of the paper, after Kearns
//! et al.): demographic parity can hold on every marginal while an
//! intersection is maximally mistreated. These tests certify that DF and
//! the subgroup-fairness baseline both catch it — the paper's motivation
//! for protecting intersections explicitly.

use df_core::baselines::{demographic_parity_distance, subgroup_fairness_violation};
use df_core::subsets::subset_audit;
use df_core::JointCounts;
use df_prob::contingency::{Axis, ContingencyTable};

/// A gerrymandered joint: marginals perfectly fair, the (a,x)/(b,y)
/// diagonal always favored, the anti-diagonal never. `leak` softens the
/// extremes so ε stays finite.
fn gerrymandered(leak: f64) -> JointCounts {
    let axes = vec![
        Axis::from_strs("y", &["no", "yes"]).unwrap(),
        Axis::from_strs("g1", &["a", "b"]).unwrap(),
        Axis::from_strs("g2", &["x", "y"]).unwrap(),
    ];
    let hi = 1.0 - leak;
    let lo = leak;
    let n = 1000.0;
    #[rustfmt::skip]
    let data = vec![
        // y=no: (a,x) (a,y) (b,x) (b,y)
        n * (1.0 - hi), n * (1.0 - lo), n * (1.0 - lo), n * (1.0 - hi),
        // y=yes
        n * hi, n * lo, n * lo, n * hi,
    ];
    JointCounts::from_table(ContingencyTable::from_data(axes, data).unwrap(), "y").unwrap()
}

#[test]
fn marginals_look_fair_but_intersection_is_not() {
    let jc = gerrymandered(0.05);
    let audit = subset_audit(&jc, 0.0).unwrap();

    // Each marginal alone: exactly fair (ε = 0).
    for attrs in [&["g1"][..], &["g2"][..]] {
        let eps = audit.get(attrs).unwrap().result.epsilon;
        assert!(
            eps.abs() < 1e-10,
            "marginal {attrs:?} should look perfectly fair, got {eps}"
        );
    }
    // The intersection: ln(0.95/0.05) ≈ 2.944 — flagrant.
    let full = audit.full_intersection().result.epsilon;
    assert!((full - (0.95_f64 / 0.05).ln()).abs() < 1e-9);

    // Demographic parity over the intersections also sees it, but
    // understates the ratio disparity (TV = 0.9 vs e^ε = 19x).
    let go = jc.group_outcomes(0.0).unwrap();
    let tv = demographic_parity_distance(&go);
    assert!((tv - 0.9).abs() < 1e-9);
}

#[test]
fn subgroup_audit_ranks_the_gerrymandered_conjunction_first() {
    let jc = gerrymandered(0.05);
    let violations = subgroup_fairness_violation(&jc, "yes").unwrap();
    // The top-weighted violations are conjunctions, not marginals.
    assert!(violations[0].subgroup.contains(", "));
    assert!(violations[0].weighted > 0.1);
    // All marginal subgroups have ~zero gap.
    for v in &violations {
        if !v.subgroup.contains(", ") {
            assert!(
                v.rate_gap.abs() < 1e-9,
                "marginal {} should have no gap",
                v.subgroup
            );
        }
    }
}

#[test]
fn theorem_bound_direction_is_the_useful_one() {
    // Theorem 3.1 transfers guarantees downward (intersection → marginal),
    // never upward: fair marginals do NOT certify the intersection. The
    // gerrymandered table realizes the extreme of that asymmetry, which is
    // exactly why the paper defines fairness at the intersection.
    let jc = gerrymandered(0.05);
    let audit = subset_audit(&jc, 0.0).unwrap();
    let full = audit.full_intersection().result.epsilon;
    // Downward: every subset within 2ε (trivially, they're 0).
    assert!(audit.verify_bound(1e-9).is_empty());
    // Upward would be false: subsets at 0 while the intersection is 2.94.
    assert!(full > 2.9);
}

#[test]
fn leak_controls_the_severity_smoothly() {
    let mut last = f64::INFINITY;
    for leak in [0.05, 0.1, 0.2, 0.4] {
        let eps = gerrymandered(leak).edf().unwrap().epsilon;
        assert!(eps < last, "ε should fall as the gerrymander weakens");
        last = eps;
    }
    // Fully mixed (leak 0.5) is perfectly fair.
    let eps = gerrymandered(0.5).edf().unwrap().epsilon;
    assert!(eps.abs() < 1e-10);
}
