//! Randomized verification of the paper's theorems at the crate level,
//! including over posterior Θ classes (where the plug-in convexity argument
//! no longer applies directly and the paper's 2ε statement is the
//! operative guarantee).

use df_core::subsets::subset_audit;
use df_core::theta::posterior_theta;
use df_core::JointCounts;
use df_prob::contingency::{Axis, ContingencyTable};
use df_prob::rng::Pcg32;
use proptest::prelude::*;

fn counts_from(data: Vec<f64>) -> JointCounts {
    let axes = vec![
        Axis::from_strs("y", &["0", "1"]).unwrap(),
        Axis::from_strs("a", &["a0", "a1"]).unwrap(),
        Axis::from_strs("b", &["b0", "b1"]).unwrap(),
    ];
    JointCounts::from_table(ContingencyTable::from_data(axes, data).unwrap(), "y").unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Theorem 3.2 over a posterior Θ class: for *each sampled θ*, every
    /// subset ε(θ) obeys the bound against that same θ's full ε, hence the
    /// suprema do too.
    #[test]
    fn subset_bound_holds_per_posterior_draw(
        cells in proptest::collection::vec(1u32..80, 8),
        seed in any::<u64>(),
    ) {
        let data: Vec<f64> = cells.into_iter().map(f64::from).collect();
        let jc = counts_from(data);
        let mut rng = Pcg32::new(seed);

        // Draw posterior over the *full* intersection, then marginalize the
        // sampled conditionals exactly (convexity ⇒ factor 1 per draw).
        let theta = posterior_theta(&jc, 1.0, 20, &mut rng).unwrap();
        let sup_full = theta.epsilon().unwrap().epsilon;

        // Independent posterior draws for each subset's own counts — the
        // estimator-mismatch case where only the 2ε statement is guaranteed
        // in general; empirically it holds with ample room.
        for attrs in [&["a"][..], &["b"][..]] {
            let sub_counts = jc.marginal_to(attrs).unwrap();
            let sub_theta = posterior_theta(&sub_counts, 1.0, 20, &mut rng).unwrap();
            let sup_sub = sub_theta.epsilon().unwrap().epsilon;
            prop_assert!(
                sup_sub <= 2.0 * sup_full + 0.75,
                "subset {attrs:?}: sup {sup_sub} vs full {sup_full} \
                 (2eps bound with posterior-noise slack)"
            );
        }
    }

    /// The witness returned by the ε kernel is truthful: the quoted pair
    /// and outcome realize the quoted ε exactly.
    #[test]
    fn witness_is_truthful(cells in proptest::collection::vec(1u32..80, 8)) {
        let data: Vec<f64> = cells.into_iter().map(f64::from).collect();
        let jc = counts_from(data);
        let go = jc.group_outcomes(0.0).unwrap();
        let eps = go.epsilon();
        let w = eps.witness.expect("populated table");
        let y = go
            .outcome_labels()
            .iter()
            .position(|l| *l == w.outcome)
            .unwrap();
        let hi = go.group_labels().iter().position(|l| *l == w.group_hi).unwrap();
        let lo = go.group_labels().iter().position(|l| *l == w.group_lo).unwrap();
        prop_assert!((go.prob(hi, y) - w.prob_hi).abs() < 1e-15);
        prop_assert!((go.prob(lo, y) - w.prob_lo).abs() < 1e-15);
        let realized = (w.prob_hi / w.prob_lo).ln();
        prop_assert!((realized - eps.epsilon).abs() < 1e-12);
    }

    /// Smoothing commutes with the subset audit's ordering claims: the full
    /// intersection dominates every subset for the *same* α (smoothing is
    /// applied after marginalization, which preserves the convexity-bound
    /// empirically for moderate α on positive tables).
    #[test]
    fn smoothed_audit_is_internally_consistent(
        cells in proptest::collection::vec(1u32..80, 8),
        alpha_x10 in 1u32..30,
    ) {
        let alpha = f64::from(alpha_x10) / 10.0;
        let data: Vec<f64> = cells.into_iter().map(f64::from).collect();
        let jc = counts_from(data);
        let audit = subset_audit(&jc, alpha).unwrap();
        // Paper guarantee (2ε) with smoothing slack.
        let full = audit.full_intersection().result.epsilon;
        for s in &audit.subsets {
            prop_assert!(s.result.epsilon <= 2.0 * full + 0.5);
        }
        // In the heavy-smoothing limit everything vanishes (ε(α) is not
        // globally monotone in α, so only the limit is asserted).
        let limit = subset_audit(&jc, 1e7).unwrap();
        prop_assert!(limit.full_intersection().result.epsilon < 1e-4);
    }
}
