//! Randomized verification of the paper's theorems at the crate level,
//! including over posterior Θ classes (where the plug-in convexity argument
//! no longer applies directly and the paper's 2ε statement is the
//! operative guarantee).

use df_core::subsets::subset_audit;
use df_core::theta::posterior_theta;
use df_core::JointCounts;
use df_prob::contingency::{Axis, ContingencyTable};
use df_prob::rng::Pcg32;
use proptest::prelude::*;

fn counts_from(data: Vec<f64>) -> JointCounts {
    let axes = vec![
        Axis::from_strs("y", &["0", "1"]).unwrap(),
        Axis::from_strs("a", &["a0", "a1"]).unwrap(),
        Axis::from_strs("b", &["b0", "b1"]).unwrap(),
    ];
    JointCounts::from_table(ContingencyTable::from_data(axes, data).unwrap(), "y").unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Theorem 3.2 over a posterior Θ class: for *each sampled θ*, every
    /// subset ε(θ) obeys the bound against that same θ's full ε, hence the
    /// suprema do too.
    #[test]
    fn subset_bound_holds_per_posterior_draw(
        cells in proptest::collection::vec(1u32..80, 8),
        seed in any::<u64>(),
    ) {
        let data: Vec<f64> = cells.into_iter().map(f64::from).collect();
        let jc = counts_from(data);
        let mut rng = Pcg32::new(seed);

        // Draw posterior over the *full* intersection, then marginalize the
        // sampled conditionals exactly (convexity ⇒ factor 1 per draw).
        let theta = posterior_theta(&jc, 1.0, 20, &mut rng).unwrap();
        let sup_full = theta.epsilon().unwrap().epsilon;

        // Independent posterior draws for each subset's own counts — the
        // estimator-mismatch case where only the 2ε statement is guaranteed
        // in general; empirically it holds with ample room.
        for attrs in [&["a"][..], &["b"][..]] {
            let sub_counts = jc.marginal_to(attrs).unwrap();
            let sub_theta = posterior_theta(&sub_counts, 1.0, 20, &mut rng).unwrap();
            let sup_sub = sub_theta.epsilon().unwrap().epsilon;
            prop_assert!(
                sup_sub <= 2.0 * sup_full + 0.75,
                "subset {attrs:?}: sup {sup_sub} vs full {sup_full} \
                 (2eps bound with posterior-noise slack)"
            );
        }
    }

    /// The witness returned by the ε kernel is truthful: the quoted pair
    /// and outcome realize the quoted ε exactly.
    #[test]
    fn witness_is_truthful(cells in proptest::collection::vec(1u32..80, 8)) {
        let data: Vec<f64> = cells.into_iter().map(f64::from).collect();
        let jc = counts_from(data);
        let go = jc.group_outcomes(0.0).unwrap();
        let eps = go.epsilon();
        let w = eps.witness.expect("populated table");
        let y = go
            .outcome_labels()
            .iter()
            .position(|l| *l == w.outcome)
            .unwrap();
        let hi = go.group_labels().iter().position(|l| *l == w.group_hi).unwrap();
        let lo = go.group_labels().iter().position(|l| *l == w.group_lo).unwrap();
        prop_assert!((go.prob(hi, y) - w.prob_hi).abs() < 1e-15);
        prop_assert!((go.prob(lo, y) - w.prob_lo).abs() < 1e-15);
        let realized = (w.prob_hi / w.prob_lo).ln();
        prop_assert!((realized - eps.epsilon).abs() < 1e-12);
    }

    /// Smoothing commutes with the subset audit's ordering claims: the full
    /// intersection dominates every subset for the *same* α (smoothing is
    /// applied after marginalization, which preserves the convexity-bound
    /// empirically for moderate α on positive tables).
    #[test]
    fn smoothed_audit_is_internally_consistent(
        cells in proptest::collection::vec(1u32..80, 8),
        alpha_x10 in 1u32..30,
    ) {
        let alpha = f64::from(alpha_x10) / 10.0;
        let data: Vec<f64> = cells.into_iter().map(f64::from).collect();
        let jc = counts_from(data);
        let audit = subset_audit(&jc, alpha).unwrap();
        // Paper guarantee (2ε) with smoothing slack.
        let full = audit.full_intersection().result.epsilon;
        for s in &audit.subsets {
            prop_assert!(s.result.epsilon <= 2.0 * full + 0.5);
        }
        // In the heavy-smoothing limit everything vanishes (ε(α) is not
        // globally monotone in α, so only the limit is asserted).
        let limit = subset_audit(&jc, 1e7).unwrap();
        prop_assert!(limit.full_intersection().result.epsilon < 1e-4);
    }

    /// Theorem 3.1/3.2 lattice law on the plug-in estimator: for arbitrary
    /// strictly positive tables, every proper subset's ε is at most twice
    /// the full intersection's — and, for exact marginalization, at most
    /// the full ε itself (the sharpened convexity bound).
    #[test]
    fn every_subset_respects_the_2eps_bound(
        cells in proptest::collection::vec(1u32..200, 8),
    ) {
        let data: Vec<f64> = cells.into_iter().map(f64::from).collect();
        let audit = subset_audit(&counts_from(data), 0.0).unwrap();
        prop_assert!(audit.verify_bound(1e-9).is_empty());
        prop_assert!(audit.verify_sharpened_bound(1e-9).is_empty());
        if let Some(t) = audit.bound_tightness() {
            prop_assert!(t <= 2.0 + 1e-9, "tightness {t} exceeds the theorem");
        }
    }

    /// ε = 0 when every group row is identical: build the joint as an
    /// outer product `P(y)·P(s)` so all conditionals agree exactly — the
    /// perfectly fair pole of the lattice, for every subset.
    #[test]
    fn identical_group_rows_have_zero_epsilon(
        y_weights in proptest::collection::vec(1u32..50, 2),
        g_weights in proptest::collection::vec(1u32..50, 4),
    ) {
        let mut data = Vec::with_capacity(8);
        for &y in &y_weights {
            for &g in &g_weights {
                data.push(f64::from(y) * f64::from(g));
            }
        }
        let audit = subset_audit(&counts_from(data), 0.0).unwrap();
        for s in &audit.subsets {
            prop_assert!(
                s.result.epsilon.abs() < 1e-12,
                "subset {:?}: eps {} should vanish on a product table",
                s.attributes,
                s.result.epsilon
            );
        }
    }

    /// ε is invariant under permuting category labels: relabeling outcomes
    /// (reversing the outcome axis) and relabeling groups (reversing an
    /// attribute axis) permutes cells without changing any probability
    /// ratio, so every subset's ε is preserved exactly. Monotonicity under
    /// relabeling follows a fortiori: no permutation can increase ε.
    #[test]
    fn epsilon_is_invariant_under_label_permutation(
        cells in proptest::collection::vec(1u32..120, 8),
    ) {
        let data: Vec<f64> = cells.into_iter().map(f64::from).collect();
        let base = subset_audit(&counts_from(data.clone()), 0.0).unwrap();

        // Swap the outcome labels: data layout [y][a][b] → swap the two
        // y-planes of 4 cells each.
        let mut y_swapped = data.clone();
        y_swapped.rotate_left(4);
        let y_audit = subset_audit(&counts_from(y_swapped), 0.0).unwrap();

        // Swap attribute a's labels: swap cells within each y-plane.
        let mut a_swapped = data.clone();
        for plane in 0..2 {
            for j in 0..2 {
                a_swapped.swap(plane * 4 + j, plane * 4 + 2 + j);
            }
        }
        let a_audit = subset_audit(&counts_from(a_swapped), 0.0).unwrap();

        for (label, permuted) in [("outcome", &y_audit), ("attribute", &a_audit)] {
            for (s, p) in base.subsets.iter().zip(&permuted.subsets) {
                prop_assert!(
                    (s.result.epsilon - p.result.epsilon).abs() < 1e-12,
                    "{label} relabeling changed eps for {:?}: {} vs {}",
                    s.attributes,
                    s.result.epsilon,
                    p.result.epsilon
                );
            }
        }
    }
}
