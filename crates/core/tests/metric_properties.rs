//! Randomized metric laws: properties every registry metric (or a stated
//! subset) must satisfy on arbitrary strictly positive 2×2×2 tables.
//!
//! - **Label-permutation invariance** — relabeling the outcome axis or
//!   either attribute axis permutes cells without changing any
//!   conditional, so every metric's statistic is preserved exactly.
//! - **Ratio dominates difference** — per outcome,
//!   `max_p − min_p ≤ (max_p − min_p)/max_p` since `max_p ≤ 1`, so
//!   `wc-diff ≤ wc-ratio` on every table.
//! - **Product tables are fair** — on `P(y)·P(a)·P(b)` all group
//!   conditionals coincide, so ε-DF, both worst-case statistics, and
//!   per-stratum DEO all vanish (the ratio↔difference consistency pole).
//! - **α-IF interpolates** — `alpha-if(0)` reproduces `wc-ratio`
//!   exactly, and the statistic is monotone in α (the leveling-down term
//!   `1 − min_p` dominates the ratio shortfall).
//! - **2ε subset bound** — where the Theorem 3.2 argument is admitted
//!   (ε-DF), every single-attribute marginal obeys `ε_sub ≤ 2ε_full`.
//!
//! Case budget: `PROPTEST_CASES` (CI pins 64).

use df_core::builder::Empirical;
use df_core::metric::metric_from_tag;
use df_core::JointCounts;
use df_prob::contingency::{Axis, ContingencyTable};
use proptest::prelude::*;

/// Every registry metric, instantiated for the y×a×b schema below.
const TAGS: [&str; 5] = [
    "eps-df",
    "wc-ratio",
    "wc-diff",
    "alpha-if(alpha=0.5)",
    "deo(label=b)",
];

fn counts_from(data: Vec<f64>) -> JointCounts {
    let axes = vec![
        Axis::from_strs("y", &["0", "1"]).unwrap(),
        Axis::from_strs("a", &["a0", "a1"]).unwrap(),
        Axis::from_strs("b", &["b0", "b1"]).unwrap(),
    ];
    JointCounts::from_table(ContingencyTable::from_data(axes, data).unwrap(), "y").unwrap()
}

fn statistic(tag: &str, data: Vec<f64>) -> f64 {
    metric_from_tag(tag)
        .unwrap()
        .evaluate_counts(&counts_from(data), &Empirical)
        .unwrap()
        .epsilon
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Relabeling any axis (layout `[y][a][b]`: rotate the y-planes, swap
    /// the a-halves, swap adjacent b-pairs) preserves every metric.
    #[test]
    fn every_metric_is_invariant_under_label_permutation(
        cells in proptest::collection::vec(1u32..120, 8),
    ) {
        let data: Vec<f64> = cells.into_iter().map(f64::from).collect();

        let mut y_swapped = data.clone();
        y_swapped.rotate_left(4);
        let mut a_swapped = data.clone();
        for plane in 0..2 {
            for j in 0..2 {
                a_swapped.swap(plane * 4 + j, plane * 4 + 2 + j);
            }
        }
        let mut b_swapped = data.clone();
        for pair in 0..4 {
            b_swapped.swap(pair * 2, pair * 2 + 1);
        }

        for tag in TAGS {
            let base = statistic(tag, data.clone());
            for (axis, permuted) in [
                ("y", y_swapped.clone()),
                ("a", a_swapped.clone()),
                ("b", b_swapped.clone()),
            ] {
                let relabeled = statistic(tag, permuted);
                prop_assert!(
                    (base - relabeled).abs() < 1e-12,
                    "{tag}: relabeling {axis} changed the statistic: {base} vs {relabeled}"
                );
            }
        }
    }

    /// `wc-diff ≤ wc-ratio` everywhere: dividing the per-outcome gap by
    /// `max_p ≤ 1` can only grow it.
    #[test]
    fn difference_never_exceeds_ratio(
        cells in proptest::collection::vec(1u32..120, 8),
    ) {
        let data: Vec<f64> = cells.into_iter().map(f64::from).collect();
        let diff = statistic("wc-diff", data.clone());
        let ratio = statistic("wc-ratio", data);
        prop_assert!(
            diff <= ratio + 1e-12,
            "wc-diff {diff} exceeds wc-ratio {ratio}"
        );
    }

    /// On outer-product tables every group conditional coincides, so the
    /// ratio and difference views agree at their shared zero — along with
    /// ε-DF and per-stratum DEO. (`alpha-if(alpha>0)` is exempt: its
    /// leveling-down term `1 − min_p` measures absolute attainment, not
    /// disparity, and stays positive on fair tables by design.)
    #[test]
    fn disparity_metrics_vanish_on_product_tables(
        y_weights in proptest::collection::vec(1u32..50, 2),
        g_weights in proptest::collection::vec(1u32..50, 4),
    ) {
        let mut data = Vec::with_capacity(8);
        for &y in &y_weights {
            for &g in &g_weights {
                data.push(f64::from(y) * f64::from(g));
            }
        }
        for tag in ["eps-df", "wc-ratio", "wc-diff", "alpha-if(alpha=0)", "deo(label=b)"] {
            let s = statistic(tag, data.clone());
            prop_assert!(
                s.abs() < 1e-12,
                "{tag}: statistic {s} should vanish on a product table"
            );
        }
    }

    /// `alpha-if(0)` IS `wc-ratio` (bit-for-bit: the α = 0 blend keeps
    /// only the ratio-shortfall term), and the statistic grows with α.
    #[test]
    fn alpha_interpolation_starts_at_ratio_and_is_monotone(
        cells in proptest::collection::vec(1u32..120, 8),
    ) {
        let data: Vec<f64> = cells.into_iter().map(f64::from).collect();
        let ratio = statistic("wc-ratio", data.clone());
        let at_zero = statistic("alpha-if(alpha=0)", data.clone());
        prop_assert!(
            at_zero.to_bits() == ratio.to_bits(),
            "alpha-if(0) must reproduce wc-ratio exactly: {at_zero} vs {ratio}"
        );
        let mut last = at_zero;
        for alpha in ["0.25", "0.5", "0.75", "1"] {
            let next = statistic(&format!("alpha-if(alpha={alpha})"), data.clone());
            prop_assert!(
                next + 1e-12 >= last,
                "alpha-if is not monotone in alpha at {alpha}: {next} < {last}"
            );
            last = next;
        }
    }

    /// Theorem 3.2 where it is admitted: under ε-DF every single-attribute
    /// marginal's ε is at most twice the full intersection's.
    #[test]
    fn eps_df_marginals_respect_the_2eps_bound(
        cells in proptest::collection::vec(1u32..200, 8),
    ) {
        let data: Vec<f64> = cells.into_iter().map(f64::from).collect();
        let jc = counts_from(data);
        let metric = metric_from_tag("eps-df").unwrap();
        let full = metric.evaluate_counts(&jc, &Empirical).unwrap().epsilon;
        for attrs in [&["a"][..], &["b"][..]] {
            let sub = metric
                .evaluate_marginal(&jc, attrs, &Empirical)
                .unwrap()
                .epsilon;
            prop_assert!(
                sub <= 2.0 * full + 1e-9,
                "subset {attrs:?}: {sub} exceeds 2×{full}"
            );
        }
    }
}
