//! Baseline fairness definitions the paper compares against (§7).
//!
//! - **Demographic parity** (Dwork et al.): `P(y|sᵢ) = P(y|sⱼ)`; relaxed to a
//!   total-variation distance [`demographic_parity_distance`].
//! - **Disparate impact** (the "80 % rule"): the minimum ratio of positive
//!   rates across group pairs [`disparate_impact_ratio`].
//! - **Equalized odds** (Hardt et al.): equal error rates per group;
//!   [`equalized_odds_gap`] over per-group confusion counts.
//! - **Statistical-parity subgroup fairness** (Kearns et al.): parity over a
//!   collection of subgroups weighted by their size, which the paper credits
//!   with preventing "fairness gerrymandering";
//!   [`subgroup_fairness_violation`] audits every conjunctive subgroup
//!   definable from the protected attributes.

use crate::edf::JointCounts;
use crate::epsilon::GroupOutcomes;
use crate::error::{DfError, Result};
use df_prob::numerics::exactly_zero;
use serde::{Deserialize, Serialize};

/// Worst total-variation distance between two populated groups' outcome
/// distributions: `max_{i,j} ½ Σ_y |P(y|sᵢ) − P(y|sⱼ)|`.
///
/// Zero iff demographic parity holds exactly.
pub fn demographic_parity_distance(table: &GroupOutcomes) -> f64 {
    let populated = table.populated_groups();
    let mut worst = 0.0f64;
    for (a, &i) in populated.iter().enumerate() {
        for &j in &populated[a + 1..] {
            let tv: f64 = (0..table.num_outcomes())
                .map(|y| (table.prob(i, y) - table.prob(j, y)).abs())
                .sum::<f64>()
                / 2.0;
            if tv > worst {
                worst = tv;
            }
        }
    }
    worst
}

/// The disparate-impact ratio for a designated positive outcome: the
/// minimum over populated pairs of `P(positive|sᵢ) / P(positive|sⱼ)`.
///
/// The legal "80 % rule" flags values below 0.8. Returns 1.0 when fewer than
/// two groups are populated, 0.0 when some group has zero positive rate
/// while another's is positive.
pub fn disparate_impact_ratio(table: &GroupOutcomes, positive_outcome: usize) -> Result<f64> {
    if positive_outcome >= table.num_outcomes() {
        return Err(DfError::Invalid(format!(
            "outcome index {positive_outcome} out of range"
        )));
    }
    let populated = table.populated_groups();
    if populated.len() < 2 {
        return Ok(1.0);
    }
    let rates: Vec<f64> = populated
        .iter()
        .map(|&g| table.prob(g, positive_outcome))
        .collect();
    let max = rates.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let min = rates.iter().copied().fold(f64::INFINITY, f64::min);
    if exactly_zero(max) {
        // Nobody ever receives the positive outcome: vacuously equal.
        return Ok(1.0);
    }
    Ok(min / max)
}

/// Per-group binary confusion counts for equalized-odds auditing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Default)]
pub struct GroupConfusion {
    /// True positives.
    pub tp: f64,
    /// False positives.
    pub fp: f64,
    /// True negatives.
    pub tn: f64,
    /// False negatives.
    pub fn_: f64,
}

impl GroupConfusion {
    /// True-positive rate `tp / (tp + fn)`, `None` when the group has no
    /// positive instances.
    pub fn tpr(&self) -> Option<f64> {
        let pos = self.tp + self.fn_;
        (pos > 0.0).then(|| self.tp / pos)
    }

    /// False-positive rate `fp / (fp + tn)`, `None` when the group has no
    /// negative instances.
    pub fn fpr(&self) -> Option<f64> {
        let neg = self.fp + self.tn;
        (neg > 0.0).then(|| self.fp / neg)
    }
}

/// The equalized-odds violation: the worst pairwise gap in TPR and in FPR.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct EqualizedOddsGap {
    /// Max |TPRᵢ − TPRⱼ| over group pairs with defined TPR.
    pub tpr_gap: f64,
    /// Max |FPRᵢ − FPRⱼ| over group pairs with defined FPR.
    pub fpr_gap: f64,
}

impl EqualizedOddsGap {
    /// The larger of the two gaps.
    pub fn max_gap(&self) -> f64 {
        self.tpr_gap.max(self.fpr_gap)
    }
}

/// Computes the equalized-odds gaps over per-group confusion counts.
pub fn equalized_odds_gap(groups: &[GroupConfusion]) -> EqualizedOddsGap {
    let gap = |rates: Vec<Option<f64>>| -> f64 {
        let defined: Vec<f64> = rates.into_iter().flatten().collect();
        if defined.len() < 2 {
            return 0.0;
        }
        let max = defined.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let min = defined.iter().copied().fold(f64::INFINITY, f64::min);
        max - min
    };
    EqualizedOddsGap {
        tpr_gap: gap(groups.iter().map(GroupConfusion::tpr).collect()),
        fpr_gap: gap(groups.iter().map(GroupConfusion::fpr).collect()),
    }
}

/// One conjunctive subgroup's statistical-parity audit record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SubgroupViolation {
    /// Description of the subgroup, e.g. `"gender=F, race=Black"`.
    pub subgroup: String,
    /// Fraction of the population in the subgroup.
    pub mass: f64,
    /// `P(positive | subgroup) − P(positive)`.
    pub rate_gap: f64,
    /// Kearns-style weighted violation `mass · |rate_gap|`.
    pub weighted: f64,
}

/// Statistical-parity subgroup fairness (Kearns et al.): audits every
/// conjunctive subgroup definable by fixing a subset of the protected
/// attributes (including the full intersections), returning the worst
/// size-weighted parity violation `P(g) · |P(ŷ=pos|g) − P(ŷ=pos)|`.
pub fn subgroup_fairness_violation(
    counts: &JointCounts,
    positive_label: &str,
) -> Result<Vec<SubgroupViolation>> {
    let pos = counts
        .outcome_labels()
        .iter()
        .position(|l| l == positive_label)
        .ok_or_else(|| DfError::Invalid(format!("unknown outcome `{positive_label}`")))?;
    let total = counts.total();
    if total <= 0.0 {
        return Err(DfError::Invalid("empty dataset".into()));
    }
    // Base rate over everyone.
    let outcome_marginal = counts
        .table()
        .marginalize(&[counts.table().axes()[0].name()])?;
    let base_rate = outcome_marginal.get(&[pos]) / total;

    let names: Vec<String> = counts
        .attribute_names()
        .into_iter()
        .map(str::to_string)
        .collect();
    let p = names.len();
    let mut out = Vec::new();
    for mask in 1u32..(1 << p) {
        let attrs: Vec<&str> = (0..p)
            .filter(|i| mask & (1 << i) != 0)
            .map(|i| names[i].as_str())
            .collect();
        let sub = counts.marginal_to(&attrs)?;
        let go = sub.group_outcomes(0.0)?;
        for g in 0..go.num_groups() {
            let mass = go.weights()[g] / total;
            if exactly_zero(mass) {
                continue;
            }
            let rate_gap = go.prob(g, pos) - base_rate;
            out.push(SubgroupViolation {
                subgroup: go.group_labels()[g].clone(),
                mass,
                rate_gap,
                weighted: mass * rate_gap.abs(),
            });
        }
    }
    out.sort_by(|a, b| b.weighted.partial_cmp(&a.weighted).expect("finite"));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_prob::contingency::{Axis, ContingencyTable};
    use df_prob::numerics::approx_eq;

    fn two_group_table(p_yes_a: f64, p_yes_b: f64) -> GroupOutcomes {
        GroupOutcomes::with_uniform_weights(
            vec!["no".into(), "yes".into()],
            vec!["a".into(), "b".into()],
            vec![1.0 - p_yes_a, p_yes_a, 1.0 - p_yes_b, p_yes_b],
        )
        .unwrap()
    }

    #[test]
    fn dp_distance_binary_case() {
        let t = two_group_table(0.6, 0.4);
        assert!(approx_eq(demographic_parity_distance(&t), 0.2, 1e-12, 0.0));
        let fair = two_group_table(0.5, 0.5);
        assert_eq!(demographic_parity_distance(&fair), 0.0);
    }

    #[test]
    fn dp_distance_vs_epsilon_divergence() {
        // Demographic parity distance can be tiny while ε is huge: rare
        // outcomes with large *ratio* disparities — the paper's motivation
        // for measuring ratios.
        let t = two_group_table(1e-6, 1e-2);
        let tv = demographic_parity_distance(&t);
        let eps = t.epsilon().epsilon;
        assert!(tv < 0.011);
        assert!(eps > 9.0, "ratio measure flags what TV misses: {eps}");
    }

    #[test]
    fn disparate_impact_80_rule() {
        let t = two_group_table(0.5, 0.39);
        let r = disparate_impact_ratio(&t, 1).unwrap();
        assert!(approx_eq(r, 0.78, 1e-12, 0.0));
        assert!(r < 0.8, "fails the 80% rule");
        assert!(disparate_impact_ratio(&t, 5).is_err());
    }

    #[test]
    fn disparate_impact_degenerate_cases() {
        let zero = two_group_table(0.0, 0.0);
        assert_eq!(disparate_impact_ratio(&zero, 1).unwrap(), 1.0);
        let one_sided = two_group_table(0.0, 0.3);
        assert_eq!(disparate_impact_ratio(&one_sided, 1).unwrap(), 0.0);
    }

    #[test]
    fn equalized_odds_gaps() {
        let groups = [
            GroupConfusion {
                tp: 80.0,
                fn_: 20.0,
                fp: 10.0,
                tn: 90.0,
            },
            GroupConfusion {
                tp: 60.0,
                fn_: 40.0,
                fp: 30.0,
                tn: 70.0,
            },
        ];
        let gap = equalized_odds_gap(&groups);
        assert!(approx_eq(gap.tpr_gap, 0.2, 1e-12, 0.0));
        assert!(approx_eq(gap.fpr_gap, 0.2, 1e-12, 0.0));
        assert!(approx_eq(gap.max_gap(), 0.2, 1e-12, 0.0));
    }

    #[test]
    fn equalized_odds_handles_undefined_rates() {
        let groups = [
            GroupConfusion {
                tp: 10.0,
                fn_: 0.0,
                fp: 0.0,
                tn: 0.0,
            }, // no negatives → FPR undefined
            GroupConfusion {
                tp: 5.0,
                fn_: 5.0,
                fp: 1.0,
                tn: 9.0,
            },
        ];
        let gap = equalized_odds_gap(&groups);
        assert!(approx_eq(gap.tpr_gap, 0.5, 1e-12, 0.0));
        assert_eq!(gap.fpr_gap, 0.0, "single defined FPR → no gap");
    }

    #[test]
    fn subgroup_audit_finds_gerrymandered_subgroup() {
        // Marginals are perfectly fair, but the intersection is maximally
        // gerrymandered: (a,x) and (b,y) always "yes"; (a,y), (b,x) never.
        let axes = vec![
            Axis::from_strs("y", &["no", "yes"]).unwrap(),
            Axis::from_strs("g1", &["a", "b"]).unwrap(),
            Axis::from_strs("g2", &["x", "y"]).unwrap(),
        ];
        #[rustfmt::skip]
        let data = vec![
            // y=no : (a,x) (a,y) (b,x) (b,y)
            0.0, 50.0, 50.0, 0.0,
            // y=yes
            50.0, 0.0, 0.0, 50.0,
        ];
        let jc =
            JointCounts::from_table(ContingencyTable::from_data(axes, data).unwrap(), "y").unwrap();
        let violations = subgroup_fairness_violation(&jc, "yes").unwrap();
        // Marginal subgroups (g1=a etc.) have zero gap...
        let marginal = violations.iter().find(|v| v.subgroup == "g1=a").unwrap();
        assert!(approx_eq(marginal.rate_gap, 0.0, 1e-12, 1e-12));
        // ...but the worst conjunction has |gap| = 0.5.
        assert!(approx_eq(violations[0].weighted, 0.25 * 0.5, 1e-12, 0.0));
        assert!(violations[0].subgroup.contains(", "));
        // And differential fairness flags it too (infinite ε).
        assert!(!jc.edf().unwrap().is_finite());
    }

    #[test]
    fn subgroup_audit_unknown_outcome() {
        let axes = vec![
            Axis::from_strs("y", &["no", "yes"]).unwrap(),
            Axis::from_strs("g", &["a", "b"]).unwrap(),
        ];
        let jc = JointCounts::from_table(
            ContingencyTable::from_data(axes, vec![1.0, 1.0, 1.0, 1.0]).unwrap(),
            "y",
        )
        .unwrap();
        assert!(subgroup_fairness_violation(&jc, "maybe").is_err());
    }
}
