//! Plain-text and markdown table rendering for audit reports.
//!
//! The experiment binaries print paper-style tables; this module keeps the
//! column alignment logic in one place.

use df_prob::numerics::exactly_zero;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// A wire/display format for rendered reports, selected by value rather
/// than by renderer method name so serving layers can negotiate it from an
/// `Accept` header or a `?format=` query parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ResponseFormat {
    /// `application/json` — the serde representation of the report.
    Json,
    /// `text/csv` — RFC 4180 comma-separated values.
    Csv,
    /// `text/markdown` — GitHub-flavoured markdown tables.
    Markdown,
    /// `text/plain` — aligned ASCII tables for terminals and logs.
    Text,
}

impl ResponseFormat {
    /// All formats, in negotiation-preference order (JSON first).
    pub const ALL: [ResponseFormat; 4] = [
        ResponseFormat::Json,
        ResponseFormat::Csv,
        ResponseFormat::Markdown,
        ResponseFormat::Text,
    ];

    /// Parses a short format name as used in `?format=` query parameters.
    /// Accepts common aliases (`md`, `txt`); case-insensitive.
    pub fn from_name(name: &str) -> Option<Self> {
        match name.trim().to_ascii_lowercase().as_str() {
            "json" => Some(ResponseFormat::Json),
            "csv" => Some(ResponseFormat::Csv),
            "markdown" | "md" => Some(ResponseFormat::Markdown),
            "text" | "txt" | "plain" => Some(ResponseFormat::Text),
            _ => None,
        }
    }

    /// Parses a MIME type (without parameters) as found in `Accept`.
    pub fn from_mime(mime: &str) -> Option<Self> {
        match mime.trim().to_ascii_lowercase().as_str() {
            "application/json" | "text/json" => Some(ResponseFormat::Json),
            "text/csv" | "application/csv" => Some(ResponseFormat::Csv),
            "text/markdown" => Some(ResponseFormat::Markdown),
            "text/plain" => Some(ResponseFormat::Text),
            _ => None,
        }
    }

    /// The canonical MIME type for `Content-Type` headers.
    pub fn mime(self) -> &'static str {
        match self {
            ResponseFormat::Json => "application/json",
            ResponseFormat::Csv => "text/csv",
            ResponseFormat::Markdown => "text/markdown",
            ResponseFormat::Text => "text/plain; charset=utf-8",
        }
    }

    /// The canonical short name (round-trips through [`Self::from_name`]).
    pub fn name(self) -> &'static str {
        match self {
            ResponseFormat::Json => "json",
            ResponseFormat::Csv => "csv",
            ResponseFormat::Markdown => "markdown",
            ResponseFormat::Text => "text",
        }
    }
}

/// Escapes one CSV field per RFC 4180: fields containing commas, quotes,
/// or newlines are quoted, with embedded quotes doubled.
pub fn csv_field(cell: &str) -> String {
    if cell.contains([',', '"', '\n', '\r']) {
        let mut out = String::with_capacity(cell.len() + 2);
        out.push('"');
        for ch in cell.chars() {
            if ch == '"' {
                out.push('"');
            }
            out.push(ch);
        }
        out.push('"');
        out
    } else {
        cell.to_string()
    }
}

/// Column alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Align {
    /// Left-aligned (labels).
    Left,
    /// Right-aligned (numbers).
    Right,
}

/// A simple text-table builder with per-column alignment.
#[derive(Debug, Clone)]
pub struct TextTable {
    headers: Vec<String>,
    aligns: Vec<Align>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given headers; all columns default to
    /// left alignment until [`Self::align`] is called.
    pub fn new(headers: &[&str]) -> Self {
        Self {
            headers: headers.iter().map(|h| h.to_string()).collect(),
            aligns: vec![Align::Left; headers.len()],
            rows: Vec::new(),
        }
    }

    /// Sets per-column alignment (length must match the header count;
    /// extra/missing entries are ignored/defaulted).
    pub fn align(mut self, aligns: &[Align]) -> Self {
        for (slot, &a) in self.aligns.iter_mut().zip(aligns) {
            *slot = a;
        }
        self
    }

    /// Appends a row; short rows are padded with empty cells, long rows are
    /// truncated to the header width.
    pub fn row(&mut self, cells: &[String]) {
        let mut row: Vec<String> = cells.iter().take(self.headers.len()).cloned().collect();
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
    }

    /// Convenience for `&str` cells.
    pub fn row_strs(&mut self, cells: &[&str]) {
        self.row(&cells.iter().map(|c| c.to_string()).collect::<Vec<_>>());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn widths(&self) -> Vec<usize> {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        widths
    }

    /// Renders with unicode-free ASCII separators, suitable for terminals
    /// and log files.
    pub fn render(&self) -> String {
        let widths = self.widths();
        let mut out = String::new();
        let write_row = |cells: &[String], out: &mut String| {
            for (i, (cell, &w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                match self.aligns[i] {
                    Align::Left => {
                        let _ = write!(out, "{cell:<w$}");
                    }
                    Align::Right => {
                        let _ = write!(out, "{cell:>w$}");
                    }
                }
            }
            out.push('\n');
        };
        write_row(&self.headers, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            write_row(row, &mut out);
        }
        out
    }

    /// Renders as RFC 4180 CSV (header row first, `\n` line endings).
    pub fn render_csv(&self) -> String {
        let mut out = String::new();
        let csv_line = |cells: &[String], out: &mut String| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&csv_field(cell));
            }
            out.push('\n');
        };
        csv_line(&self.headers, &mut out);
        for row in &self.rows {
            csv_line(row, &mut out);
        }
        out
    }

    /// Renders as a GitHub-flavoured markdown table.
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        let cell_line = |cells: &[String]| {
            let mut line = String::from("|");
            for cell in cells {
                let _ = write!(line, " {cell} |");
            }
            line.push('\n');
            line
        };
        out.push_str(&cell_line(&self.headers));
        out.push('|');
        for a in &self.aligns {
            out.push_str(match a {
                Align::Left => " :--- |",
                Align::Right => " ---: |",
            });
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&cell_line(row));
        }
        out
    }
}

/// Formats an ε value for display, keeping infinities readable.
pub fn fmt_epsilon(eps: f64) -> String {
    if eps.is_infinite() {
        "inf".to_string()
    } else {
        format!("{eps:.3}")
    }
}

/// Formats a record count/weight without losing exactness: integral totals
/// render as integers (`700`, not `700.0` or a rounded float), fractional
/// weights keep their decimals.
pub fn fmt_count(total: f64) -> String {
    if exactly_zero(total.fract()) && total.abs() < 9.01e15 {
        format!("{total:.0}")
    } else {
        format!("{total}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TextTable {
        let mut t = TextTable::new(&["subset", "eps"]).align(&[Align::Left, Align::Right]);
        t.row_strs(&["gender", "1.03"]);
        t.row_strs(&["race, gender", "1.76"]);
        t
    }

    #[test]
    fn render_aligns_columns() {
        let s = sample().render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("subset"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Right-aligned numbers end at the same column.
        let end2 = lines[2].len();
        let end3 = lines[3].len();
        assert_eq!(end2, end3);
        assert!(lines[2].ends_with("1.03"));
        assert!(lines[3].ends_with("1.76"));
    }

    #[test]
    fn render_markdown_shape() {
        let md = sample().render_markdown();
        let lines: Vec<&str> = md.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("| subset |"));
        assert!(lines[1].contains(":---"));
        assert!(lines[1].contains("---:"));
    }

    #[test]
    fn rows_are_padded_and_truncated() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row_strs(&["only"]);
        t.row_strs(&["x", "y", "z"]);
        assert_eq!(t.len(), 2);
        let s = t.render();
        assert!(!s.contains('z'));
    }

    #[test]
    fn fmt_epsilon_handles_infinity() {
        assert_eq!(fmt_epsilon(f64::INFINITY), "inf");
        assert_eq!(fmt_epsilon(1.5114), "1.511"); // rounds to 3 decimals
    }

    #[test]
    fn render_csv_escapes_fields() {
        let mut t = TextTable::new(&["subset", "eps"]);
        t.row_strs(&["race, gender", "1.76"]);
        t.row_strs(&["say \"hi\"", "0.10"]);
        let csv = t.render_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "subset,eps");
        assert_eq!(lines[1], "\"race, gender\",1.76");
        assert_eq!(lines[2], "\"say \"\"hi\"\"\",0.10");
    }

    #[test]
    fn response_format_round_trips() {
        for fmt in ResponseFormat::ALL {
            assert_eq!(ResponseFormat::from_name(fmt.name()), Some(fmt));
            let mime = fmt.mime().split(';').next().unwrap();
            assert_eq!(ResponseFormat::from_mime(mime), Some(fmt));
        }
        assert_eq!(
            ResponseFormat::from_name("MD"),
            Some(ResponseFormat::Markdown)
        );
        assert_eq!(ResponseFormat::from_name("proto"), None);
        assert_eq!(ResponseFormat::from_mime("image/png"), None);
    }
}
