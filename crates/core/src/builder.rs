//! The fluent audit builder: one composable entry point for everything the
//! paper computes.
//!
//! [`Audit`] replaces the rigid `FairnessAudit::run` + free-function
//! plumbing with a single chain:
//!
//! ```
//! use df_core::builder::{Audit, Baselines, Smoothed};
//! use df_core::JointCounts;
//! use df_prob::contingency::{Axis, ContingencyTable};
//!
//! // The paper's Table 1 joint counts.
//! let axes = vec![
//!     Axis::from_strs("outcome", &["admit", "decline"]).unwrap(),
//!     Axis::from_strs("gender", &["A", "B"]).unwrap(),
//!     Axis::from_strs("race", &["1", "2"]).unwrap(),
//! ];
//! let data = vec![81.0, 192.0, 234.0, 55.0, 6.0, 71.0, 36.0, 25.0];
//! let counts = JointCounts::from_table(
//!     ContingencyTable::from_data(axes, data).unwrap(), "outcome").unwrap();
//!
//! let report = Audit::of(&counts)
//!     .estimator(Smoothed { alpha: 1.0 })
//!     .baselines(Baselines::all().positive("admit"))
//!     .run()
//!     .unwrap();
//! assert_eq!(report.n_records, Some(700));
//! assert!(report.epsilon.epsilon > 1.0);
//! ```
//!
//! The key abstraction is [`EpsilonEstimator`]: Eq. 6 ([`Empirical`]),
//! Eq. 7 ([`Smoothed`]), and the supremum over a posterior Θ class
//! ([`PosteriorSup`], Definition 3.1 taken seriously in the spirit of
//! Foulds et al.'s Bayesian treatment) become interchangeable strategies
//! instead of parallel code paths. Every configured estimator is evaluated
//! on every subset of the protected attributes dictated by the
//! [`SubsetPolicy`] — the worst-case subset reporting of Theorems 3.1/3.2 —
//! and the results land in one serializable [`AuditReport`].

use crate::amplification::BiasAmplification;
use crate::baselines::{
    demographic_parity_distance, disparate_impact_ratio, subgroup_fairness_violation,
    SubgroupViolation,
};
use crate::bootstrap::{bootstrap_epsilon_sharded, BootstrapEpsilon};
use crate::edf::JointCounts;
use crate::epsilon::{EpsilonResult, GroupOutcomes};
use crate::equalized::EqualizedOddsCounts;
use crate::error::{DfError, Result};
use crate::mechanism::{estimate_group_outcomes, Mechanism};
use crate::metric::{EpsilonDf, Metric};
use crate::privacy::PrivacyRegime;
use crate::report::{fmt_count, fmt_epsilon, Align, ResponseFormat, TextTable};
use crate::subsets::SubsetEpsilon;
use crate::theta::posterior_theta_from_table;
use df_prob::numerics::exactly_zero;
use df_prob::partial::Tally;
use df_prob::rng::Pcg32;
use serde::{Deserialize, Serialize};

// ---------------------------------------------------------------------------
// Estimators.
// ---------------------------------------------------------------------------

/// A strategy for turning a *raw* group-outcome table (MLE probabilities
/// with group-total weights, as produced by
/// [`JointCounts::group_outcomes`]`(0.0)` or a mechanism tally) into an ε
/// certificate.
///
/// The trait is object-safe so audits can hold a heterogeneous list of
/// strategies; implementations recover per-group counts from the table via
/// [`GroupOutcomes::implied_counts`] when they need them (smoothing,
/// posterior sampling). `Send + Sync` is required so the bootstrap stage
/// can evaluate the headline estimator from worker threads
/// (see [`Audit::bootstrap_threads`]).
pub trait EpsilonEstimator: Send + Sync {
    /// Short display name used in report columns (e.g. `eps-DF(a=1)`).
    fn name(&self) -> String;

    /// The point probability table this estimator induces — used for the
    /// baseline metrics (demographic parity, disparate impact) so they are
    /// measured on the same distribution as ε.
    fn estimate_table(&self, raw: &GroupOutcomes) -> Result<GroupOutcomes>;

    /// The ε certificate for the raw table.
    fn estimate(&self, raw: &GroupOutcomes) -> Result<EpsilonResult> {
        Ok(self.estimate_table(raw)?.epsilon())
    }

    /// Clones the strategy behind the trait object — what lets one
    /// monitor configuration be replicated across fleet shards (every
    /// shard must certify ε with the *same* estimator, or merging their
    /// snapshots would compare incomparable numbers).
    fn clone_box(&self) -> Box<dyn EpsilonEstimator>;
}

impl Clone for Box<dyn EpsilonEstimator> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// Eq. 6: the plug-in (maximum-likelihood) estimator — ε of the raw table.
#[derive(Debug, Clone, Copy, Default)]
pub struct Empirical;

impl EpsilonEstimator for Empirical {
    fn name(&self) -> String {
        "eps-EDF".to_string()
    }

    fn estimate_table(&self, raw: &GroupOutcomes) -> Result<GroupOutcomes> {
        Ok(raw.clone())
    }

    fn clone_box(&self) -> Box<dyn EpsilonEstimator> {
        Box::new(*self)
    }
}

/// Eq. 7: the Dirichlet-multinomial posterior predictive
/// `(N_y + α) / (N + |Y|α)` per group.
#[derive(Debug, Clone, Copy)]
pub struct Smoothed {
    /// Symmetric prior concentration per outcome (the paper uses α = 1).
    pub alpha: f64,
}

impl EpsilonEstimator for Smoothed {
    fn name(&self) -> String {
        format!("eps-DF(a={})", self.alpha)
    }

    fn estimate_table(&self, raw: &GroupOutcomes) -> Result<GroupOutcomes> {
        raw.smoothed(self.alpha)
    }

    fn clone_box(&self) -> Box<dyn EpsilonEstimator> {
        Box::new(*self)
    }
}

/// The supremum of ε over a posterior Θ class (Definition 3.1's
/// "for all θ ∈ Θ"), with Θ instantiated as `samples` Dirichlet(α)
/// posterior draws of each populated group's outcome distribution — the
/// Bayesian instantiation the paper sketches in §3 footnote 2.
///
/// Deterministic: the draws are seeded by `seed` (per estimated table), so
/// the same audit configuration always yields the same certificate.
#[derive(Debug, Clone, Copy)]
pub struct PosteriorSup {
    /// Symmetric Dirichlet prior concentration.
    pub alpha: f64,
    /// Number of posterior draws forming Θ.
    pub samples: usize,
    /// RNG seed for the draws.
    pub seed: u64,
}

impl EpsilonEstimator for PosteriorSup {
    fn name(&self) -> String {
        format!("eps-sup(a={},m={})", self.alpha, self.samples)
    }

    fn estimate_table(&self, raw: &GroupOutcomes) -> Result<GroupOutcomes> {
        // The posterior-predictive table is the posterior mean — the point
        // summary consistent with the Θ class below.
        raw.smoothed(self.alpha)
    }

    fn estimate(&self, raw: &GroupOutcomes) -> Result<EpsilonResult> {
        let mut rng = Pcg32::new(self.seed);
        let theta = posterior_theta_from_table(raw, self.alpha, self.samples, &mut rng)?;
        theta.epsilon()
    }

    fn clone_box(&self) -> Box<dyn EpsilonEstimator> {
        Box::new(*self)
    }
}

// ---------------------------------------------------------------------------
// Configuration stages.
// ---------------------------------------------------------------------------

/// Which subsets of the protected attributes to audit (Theorems 3.1/3.2's
/// intersectionality property).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SubsetPolicy {
    /// Every nonempty subset — `2^p − 1` tables, the paper's Table 2 layout.
    /// Enables the Theorem 3.2 bound check.
    All,
    /// Subsets of at most the given size, plus the full intersection.
    UpTo {
        /// Maximum subset cardinality to audit (besides the full set).
        size: usize,
    },
    /// Only the full intersection.
    None,
}

/// Which comparison baselines (§7 of the paper) to compute.
#[derive(Debug, Clone, Default)]
pub struct Baselines {
    demographic_parity: bool,
    disparate_impact: bool,
    subgroups: bool,
    positive: Option<String>,
}

impl Baselines {
    /// No baselines.
    pub fn none() -> Self {
        Self::default()
    }

    /// Every baseline; the ones needing a positive outcome (disparate
    /// impact, Kearns-style subgroup parity) additionally require
    /// [`Baselines::positive`].
    pub fn all() -> Self {
        Self {
            demographic_parity: true,
            disparate_impact: true,
            subgroups: true,
            positive: None,
        }
    }

    /// Just the demographic-parity (total-variation) distance.
    pub fn demographic_parity() -> Self {
        Self {
            demographic_parity: true,
            ..Self::default()
        }
    }

    /// Names the outcome treated as positive/advantaged.
    pub fn positive(mut self, label: impl Into<String>) -> Self {
        self.positive = Some(label.into());
        self
    }

    /// Toggles the demographic-parity distance.
    pub fn with_demographic_parity(mut self, on: bool) -> Self {
        self.demographic_parity = on;
        self
    }

    /// Toggles the disparate-impact ratio.
    pub fn with_disparate_impact(mut self, on: bool) -> Self {
        self.disparate_impact = on;
        self
    }

    /// Toggles the Kearns-style subgroup parity audit (needs joint counts
    /// and a positive outcome; the most expensive baseline).
    pub fn with_subgroups(mut self, on: bool) -> Self {
        self.subgroups = on;
        self
    }
}

// ---------------------------------------------------------------------------
// The builder.
// ---------------------------------------------------------------------------

enum Source<'a> {
    /// Borrowed joint counts: the full subset lattice is available.
    Counts(&'a JointCounts),
    /// Owned joint counts (e.g. assembled from a data frame).
    OwnedCounts(JointCounts),
    /// A flat raw tally table (e.g. a mechanism estimate): no attribute
    /// factorization, so subset auditing and bootstrap are unavailable.
    Table(GroupOutcomes),
}

/// Fluent audit builder; see the [module docs](self) for an example.
///
/// Entry points: [`Audit::of`] (joint counts), [`Audit::of_table`] (a raw
/// group-outcome table), [`Audit::of_mechanism`] (tally a mechanism over
/// labeled instances). The facade crate adds `Audit::of_frame` for
/// data-frame sources. Chain configuration stages, then call
/// [`Audit::run`].
pub struct Audit<'a> {
    source: Source<'a>,
    estimators: Vec<Box<dyn EpsilonEstimator>>,
    metric: Option<Box<dyn Metric>>,
    subsets: Option<SubsetPolicy>,
    bootstrap: Option<(usize, u64)>,
    bootstrap_mass: f64,
    bootstrap_threads: usize,
    baselines: Baselines,
    equalized: Option<(EqualizedOddsCounts, f64)>,
    reference_epsilon: Option<f64>,
}

/// Scans a counts table for NaN/infinite/negative cells, which would
/// otherwise propagate NaN silently into ε. (`ContingencyTable::from_data`
/// validates, but `add` is unchecked for tally speed, so externally
/// assembled counts can be corrupt.)
fn validate_counts(counts: &JointCounts) -> Result<()> {
    match counts
        .table()
        .data()
        .iter()
        .position(|v| !v.is_finite() || *v < 0.0)
    {
        Some(cell) => Err(DfError::CorruptCounts {
            cell,
            value: counts.table().data()[cell],
        }),
        None => Ok(()),
    }
}

impl<'a> Audit<'a> {
    fn with_source(source: Source<'a>) -> Self {
        Self {
            source,
            estimators: Vec::new(),
            metric: None,
            subsets: None,
            bootstrap: None,
            bootstrap_mass: 0.95,
            bootstrap_threads: 1,
            baselines: Baselines::none(),
            equalized: None,
            reference_epsilon: None,
        }
    }

    /// Audits joint counts of `(outcome, protected attributes…)`.
    pub fn of(counts: &'a JointCounts) -> Self {
        Self::with_source(Source::Counts(counts))
    }

    /// Audits owned joint counts (used by frame-level and streaming entry
    /// points). Rejects tables containing NaN, infinite, or negative cells
    /// with [`DfError::CorruptCounts`] — ε over such a table would be NaN.
    pub fn of_counts(counts: JointCounts) -> Result<Audit<'static>> {
        validate_counts(&counts)?;
        Ok(Audit::with_source(Source::OwnedCounts(counts)))
    }

    /// Audits a stream of record chunks, tallied by `threads` parallel
    /// shards (see [`crate::stream::sharded_joint_counts`] for the engine
    /// and determinism guarantees).
    ///
    /// * `axes` — outcome axis plus one axis per protected attribute, in
    ///   the order chunk records are laid out.
    /// * `outcome_axis` — which of `axes` holds the outcome.
    /// * `chunks` — an iterator of fallible [`Tally`] chunks (df-data's
    ///   `FrameChunks`/`CsvChunks`, or any custom source).
    ///
    /// The resulting audit is indistinguishable from one built on
    /// [`Audit::of_counts`] with a single-pass tally: counts merge as a
    /// commutative monoid, so the report is byte-identical for every
    /// shard count.
    ///
    /// ```
    /// use df_core::builder::{Audit, Smoothed};
    /// use df_prob::contingency::Axis;
    /// use df_prob::partial::{PartialCounts, Tally};
    ///
    /// struct Rows(Vec<[usize; 2]>);
    /// impl Tally for Rows {
    ///     fn tally_into(&self, shard: &mut PartialCounts) -> df_prob::Result<()> {
    ///         for idx in &self.0 {
    ///             shard.record(idx);
    ///         }
    ///         Ok(())
    ///     }
    /// }
    ///
    /// let axes = vec![
    ///     Axis::from_strs("y", &["no", "yes"]).unwrap(),
    ///     Axis::from_strs("g", &["a", "b"]).unwrap(),
    /// ];
    /// let chunks: Vec<df_core::Result<Rows>> = vec![
    ///     Ok(Rows(vec![[0, 0], [1, 0], [1, 1]])),
    ///     Ok(Rows(vec![[0, 1], [1, 1]])),
    /// ];
    /// let report = Audit::of_stream("y", axes, chunks, 2)
    ///     .unwrap()
    ///     .estimator(Smoothed { alpha: 1.0 })
    ///     .run()
    ///     .unwrap();
    /// assert_eq!(report.n_records, Some(5));
    /// ```
    pub fn of_stream<C, E, I>(
        outcome_axis: &str,
        axes: Vec<df_prob::contingency::Axis>,
        chunks: I,
        threads: usize,
    ) -> Result<Audit<'static>>
    where
        C: Tally + Send,
        E: Send,
        DfError: From<E>,
        I: IntoIterator<Item = std::result::Result<C, E>>,
        I::IntoIter: Send,
    {
        Audit::of_counts(crate::stream::sharded_joint_counts(
            axes,
            outcome_axis,
            chunks,
            threads,
        )?)
    }

    /// Starts an **online monitor** over the given schema instead of a
    /// one-shot audit: the returned [`crate::monitor::MonitorBuilder`]
    /// shares this builder's estimator and subset-policy stages, then
    /// `build()`s a [`crate::monitor::FairnessMonitor`] maintaining ε over
    /// a sliding window of the stream — the last W records, or the last T
    /// wall-clock seconds at bucket granularity
    /// (`.window_seconds(T).bucket_seconds(b)`) — plus an optional
    /// exponentially-decayed horizon, hysteresis alerting, and
    /// CUSUM/Page–Hinkley change-point detection
    /// (`.changepoint(Cusum::new(..))`). See [`crate::monitor`].
    ///
    /// * `outcome_axis` — which of `axes` holds the outcome.
    /// * `axes` — the full schema, in the order chunks tally records
    ///   (e.g. from `FrameChunks::axes`).
    pub fn monitor(
        outcome_axis: &str,
        axes: Vec<df_prob::contingency::Axis>,
    ) -> crate::monitor::MonitorBuilder {
        crate::monitor::MonitorBuilder::new(outcome_axis, axes)
    }

    /// Audits a raw group-outcome table directly. Weights are interpreted
    /// as group tallies by the smoothing/posterior estimators.
    pub fn of_table(table: GroupOutcomes) -> Audit<'static> {
        Audit::with_source(Source::Table(table))
    }

    /// Tallies a mechanism over `(group index, instance)` pairs — the
    /// Rao–Blackwellized estimate of `P(M(x) = y | s)` — and audits the
    /// result.
    pub fn of_mechanism<X, M, I>(
        mechanism: &M,
        group_labels: Vec<String>,
        instances: I,
    ) -> Result<Audit<'static>>
    where
        M: Mechanism<X>,
        I: IntoIterator<Item = (usize, X)>,
    {
        let est = estimate_group_outcomes(mechanism, group_labels, instances, 0.0)?;
        Ok(Audit::with_source(Source::Table(est.group_outcomes)))
    }

    /// Adds an ε-estimation strategy; chain multiple calls to compare
    /// strategies side by side. The **last** one added is the headline
    /// estimator (its full-intersection ε becomes [`AuditReport::epsilon`]).
    /// Without any call, the default is [`Empirical`] then
    /// [`Smoothed`]`{ alpha: 1.0 }`.
    pub fn estimator(mut self, estimator: impl EpsilonEstimator + 'static) -> Self {
        self.estimators.push(Box::new(estimator));
        self
    }

    /// Adds an already-boxed estimator (for dynamically assembled audits).
    pub fn boxed_estimator(mut self, estimator: Box<dyn EpsilonEstimator>) -> Self {
        self.estimators.push(estimator);
        self
    }

    /// Sets the fairness metric every configured estimator is evaluated
    /// under (see [`crate::metric`]). Defaults to [`EpsilonDf`], which
    /// reproduces the pre-metric behavior byte for byte.
    pub fn metric(mut self, metric: impl Metric + 'static) -> Self {
        self.metric = Some(Box::new(metric));
        self
    }

    /// Sets an already-boxed metric (for dynamically assembled audits,
    /// e.g. from a [`crate::metric::metric_from_tag`] lookup).
    pub fn boxed_metric(mut self, metric: Box<dyn Metric>) -> Self {
        self.metric = Some(metric);
        self
    }

    /// Sets the subset-audit policy. Defaults to [`SubsetPolicy::All`] for
    /// counts sources and [`SubsetPolicy::None`] for flat tables (which
    /// have no attribute factorization to marginalize — requesting anything
    /// else there is an error at [`Audit::run`]).
    pub fn subsets(mut self, policy: SubsetPolicy) -> Self {
        self.subsets = Some(policy);
        self
    }

    /// Enables a multinomial bootstrap of the headline estimator's ε:
    /// `replicates` resamples at a 95 % percentile interval, seeded
    /// deterministically. Counts sources only.
    pub fn bootstrap(mut self, replicates: usize, seed: u64) -> Self {
        self.bootstrap = Some((replicates, seed));
        self
    }

    /// Adjusts the bootstrap interval mass (default 0.95).
    pub fn bootstrap_mass(mut self, mass: f64) -> Self {
        self.bootstrap_mass = mass;
        self
    }

    /// Runs the bootstrap replicates on `threads` worker threads
    /// (default 1). Per-replicate RNG streams are forked deterministically
    /// from the bootstrap seed, so every thread count produces the
    /// bit-identical [`BootstrapEpsilon`] — parallelism only changes
    /// wall-clock time.
    pub fn bootstrap_threads(mut self, threads: usize) -> Self {
        self.bootstrap_threads = threads;
        self
    }

    /// Configures the §7 comparison baselines.
    pub fn baselines(mut self, baselines: Baselines) -> Self {
        self.baselines = baselines;
        self
    }

    /// Attaches a differential-equalized-odds audit (the §7.1 error-rate
    /// extension) computed from per-true-label prediction tallies at
    /// smoothing `alpha`.
    pub fn equalized_odds(mut self, counts: EqualizedOddsCounts, alpha: f64) -> Self {
        self.equalized = Some((counts, alpha));
        self
    }

    /// Sets a reference ε for bias amplification (§4.1) — e.g. the dataset
    /// ε when auditing a classifier trained on it.
    pub fn reference_epsilon(mut self, epsilon: f64) -> Self {
        self.reference_epsilon = Some(epsilon);
        self
    }

    /// Runs every configured stage and assembles the report.
    pub fn run(self) -> Result<AuditReport> {
        let Audit {
            source,
            estimators: configured_estimators,
            metric,
            subsets: subset_policy,
            bootstrap: bootstrap_cfg,
            bootstrap_mass,
            bootstrap_threads,
            baselines,
            equalized,
            reference_epsilon,
        } = self;
        let counts: Option<&JointCounts> = match &source {
            Source::Counts(c) => Some(c),
            Source::OwnedCounts(c) => Some(c),
            Source::Table(_) => None,
        };
        // Owned sources were validated at construction; borrowed counts may
        // have been mutated since, so re-check before computing ε.
        if let Some(c) = counts {
            validate_counts(c)?;
        }
        let raw_full = match (&source, counts) {
            (_, Some(c)) => c.group_outcomes(0.0)?,
            (Source::Table(t), None) => t.clone(),
            _ => unreachable!("counts is Some exactly for counts sources"),
        };
        let estimators: Vec<Box<dyn EpsilonEstimator>> = if configured_estimators.is_empty() {
            vec![Box::new(Empirical), Box::new(Smoothed { alpha: 1.0 })]
        } else {
            configured_estimators
        };
        let metric: Box<dyn Metric> = metric.unwrap_or_else(|| Box::new(EpsilonDf));

        // Subset lattice (size-then-declaration order; full set last).
        let policy = match (subset_policy, counts.is_some()) {
            (Some(p), true) => p,
            (None, true) => SubsetPolicy::All,
            (Some(SubsetPolicy::None) | None, false) => SubsetPolicy::None,
            (Some(_), false) => {
                return Err(DfError::Invalid(
                    "subset auditing needs a joint-counts source; flat tables have no \
                     attribute factorization to marginalize"
                        .into(),
                ));
            }
        };
        let attribute_names: Vec<String> = counts
            .map(|c| c.attribute_names().iter().map(|s| s.to_string()).collect())
            .unwrap_or_default();
        let mut subset_attrs: Vec<Vec<String>> = Vec::new();
        if counts.is_some() {
            let p = attribute_names.len();
            let limit = match policy {
                SubsetPolicy::All => p,
                SubsetPolicy::UpTo { size } => size.min(p),
                SubsetPolicy::None => 0,
            };
            let mut masks: Vec<u32> = (1..(1u32 << p))
                .filter(|m| {
                    let ones = m.count_ones() as usize;
                    ones <= limit || ones == p
                })
                .collect();
            masks.sort_by_key(|m| (m.count_ones(), *m));
            for mask in masks {
                subset_attrs.push(
                    (0..p)
                        .filter(|i| mask & (1 << i) != 0)
                        .map(|i| attribute_names[i].clone())
                        .collect(),
                );
            }
            debug_assert!(subset_attrs.last().is_none_or(|s| s.len() == p));
        }
        // Raw tables per subset (marginalized once, shared by every
        // estimator). The last entry is always the full intersection.
        let mut raw_subsets: Vec<GroupOutcomes> = Vec::with_capacity(subset_attrs.len());
        if let Some(c) = counts {
            for attrs in &subset_attrs {
                let names: Vec<&str> = attrs.iter().map(String::as_str).collect();
                if names.len() == attribute_names.len() {
                    raw_subsets.push(raw_full.clone());
                } else {
                    raw_subsets.push(c.marginal_to(&names)?.group_outcomes(0.0)?);
                }
            }
        }

        let mut estimator_reports = Vec::with_capacity(estimators.len());
        for est in &estimators {
            let result = match counts {
                Some(c) if metric.requires_counts() => metric.evaluate_counts(c, &**est)?,
                _ => metric.evaluate(&raw_full, &**est)?,
            };
            let mut subsets = Vec::with_capacity(subset_attrs.len());
            for (attrs, raw) in subset_attrs.iter().zip(&raw_subsets) {
                let sub_result = if attrs.len() == attribute_names.len() {
                    result.clone()
                } else if metric.requires_counts() {
                    let names: Vec<&str> = attrs.iter().map(String::as_str).collect();
                    let c = counts.expect("subset lattice implies a counts source");
                    metric.evaluate_marginal(c, &names, &**est)?
                } else {
                    metric.evaluate(raw, &**est)?
                };
                subsets.push(SubsetEpsilon {
                    attributes: attrs.clone(),
                    result: sub_result,
                });
            }
            estimator_reports.push(EstimatorReport {
                name: est.name(),
                result,
                subsets,
            });
        }

        let headline_est = estimators.last().expect("at least one estimator");
        let headline = estimator_reports.last().expect("nonempty").clone();
        let epsilon = headline.result.clone();
        let regime = PrivacyRegime::of(epsilon.epsilon);

        // Theorem 3.2 bound check on the *empirical* per-subset values
        // (exact marginalization ⇒ must be empty; violations indicate
        // upstream data corruption). Performed whenever the audited lattice
        // is complete — `All`, or `UpTo` with a size covering every subset.
        // The 2ε bound is a theorem about ε specifically; under any other
        // metric the check is not defined and stays `None`.
        let lattice_complete = !attribute_names.is_empty()
            && subset_attrs.len() == (1usize << attribute_names.len()) - 1;
        let bound_violations = if lattice_complete && metric.tag() == "eps-df" {
            // Reuse the Empirical estimator's results when configured;
            // otherwise compute the plug-in ε per subset once.
            let empirical: Vec<f64> = match estimator_reports.iter().find(|e| e.name == "eps-EDF") {
                Some(e) => e.subsets.iter().map(|s| s.result.epsilon).collect(),
                None => raw_subsets
                    .iter()
                    .map(|raw| raw.epsilon().epsilon)
                    .collect(),
            };
            let full_eps = *empirical.last().expect("full set");
            let bound = 2.0 * full_eps + 1e-9;
            Some(
                subset_attrs[..subset_attrs.len() - 1]
                    .iter()
                    .zip(&empirical)
                    .filter(|(_, eps)| **eps > bound)
                    .map(|(attrs, _)| attrs.clone())
                    .collect::<Vec<_>>(),
            )
        } else {
            None
        };

        // Baselines on the headline estimator's point table, so parity and
        // ε describe the same distribution.
        let baseline_table = if baselines.demographic_parity || baselines.disparate_impact {
            Some(headline_est.estimate_table(&raw_full)?)
        } else {
            None
        };
        let demographic_parity = baseline_table
            .as_ref()
            .filter(|_| baselines.demographic_parity)
            .map(demographic_parity_distance);
        let positive_index = |t: &GroupOutcomes, label: &str| -> Result<usize> {
            t.outcome_labels()
                .iter()
                .position(|l| l == label)
                .ok_or_else(|| DfError::Invalid(format!("unknown outcome `{label}`")))
        };
        let disparate_impact = match (&baseline_table, &baselines.positive) {
            (Some(t), Some(label)) if baselines.disparate_impact => {
                Some(disparate_impact_ratio(t, positive_index(t, label)?)?)
            }
            _ => None,
        };
        let subgroups = match (counts, &baselines.positive) {
            (Some(c), Some(label)) if baselines.subgroups => {
                Some(subgroup_fairness_violation(c, label)?)
            }
            _ => None,
        };

        let equalized_odds = match &equalized {
            Some((eo, alpha)) => Some(EqualizedOddsReport {
                alpha: *alpha,
                per_label: eo.per_label_epsilon(*alpha)?,
                overall: eo.epsilon(*alpha)?,
            }),
            None => None,
        };

        let amplification = reference_epsilon.map(|r| BiasAmplification::new(epsilon.epsilon, r));

        let bootstrap = match (bootstrap_cfg, counts) {
            (Some((replicates, seed)), Some(c)) => {
                let mut rng = Pcg32::new(seed);
                Some(bootstrap_epsilon_sharded(
                    c,
                    replicates,
                    bootstrap_mass,
                    &mut rng,
                    bootstrap_threads,
                    &|jc| Ok(metric.evaluate_counts(jc, &**headline_est)?.epsilon),
                )?)
            }
            (Some(_), None) => {
                return Err(DfError::Invalid(
                    "bootstrap needs a joint-counts source to resample".into(),
                ));
            }
            (None, _) => None,
        };

        let total_weight = raw_full.weights().iter().sum::<f64>();
        let n_records = (exactly_zero(total_weight.fract()) && total_weight <= u64::MAX as f64)
            .then_some(total_weight as u64);

        Ok(AuditReport {
            total_weight,
            n_records,
            attributes: attribute_names,
            outcomes: raw_full.outcome_labels().to_vec(),
            estimators: estimator_reports,
            metric: metric.tag(),
            epsilon,
            headline: headline.name,
            regime,
            bound_violations,
            demographic_parity,
            disparate_impact,
            subgroups,
            equalized_odds,
            amplification,
            bootstrap,
        })
    }
}

// ---------------------------------------------------------------------------
// The report.
// ---------------------------------------------------------------------------

/// One estimator's results: the full-intersection ε and the per-subset
/// table (empty when subset auditing is disabled; otherwise ordered by
/// subset size with the full intersection last).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EstimatorReport {
    /// Display name of the estimator.
    pub name: String,
    /// ε of the full intersection.
    pub result: EpsilonResult,
    /// Per-subset ε values under this estimator.
    pub subsets: Vec<SubsetEpsilon>,
}

impl EstimatorReport {
    /// Looks up a subset by attribute names (order-insensitive).
    pub fn get(&self, attrs: &[&str]) -> Option<&SubsetEpsilon> {
        self.subsets.iter().find(|s| s.matches(attrs))
    }
}

/// The differential-equalized-odds stage of a report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EqualizedOddsReport {
    /// Smoothing used for the conditional tables.
    pub alpha: f64,
    /// Conditional ε per true label.
    pub per_label: Vec<(String, EpsilonResult)>,
    /// The DEO ε: the worst conditional ε.
    pub overall: EpsilonResult,
}

/// The unified audit result: everything the configured stages computed, in
/// one JSON-serializable value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AuditReport {
    /// Total record weight audited (fractional for weighted tallies).
    pub total_weight: f64,
    /// Exact record count when the total weight is integral.
    pub n_records: Option<u64>,
    /// Protected attribute names (empty for flat-table sources).
    pub attributes: Vec<String>,
    /// Outcome labels.
    pub outcomes: Vec<String>,
    /// Per-estimator results, in configuration order.
    pub estimators: Vec<EstimatorReport>,
    /// Canonical tag of the fairness metric every value was computed
    /// under (`eps-df` unless [`Audit::metric`] was called).
    pub metric: String,
    /// The headline ε: the last estimator's full-intersection result.
    pub epsilon: EpsilonResult,
    /// Name of the headline estimator.
    pub headline: String,
    /// Privacy-regime interpretation of the headline ε (§3.3).
    pub regime: PrivacyRegime,
    /// Subsets violating the Theorem 3.2 `2ε` bound (always empty for
    /// correctly marginalized counts). `None` when the audited lattice was
    /// incomplete (a flat-table source, [`SubsetPolicy::None`], or an
    /// `UpTo` size excluding some subsets), so the check could not run.
    pub bound_violations: Option<Vec<Vec<String>>>,
    /// Worst total-variation distance between populated groups.
    pub demographic_parity: Option<f64>,
    /// Disparate-impact ratio for the configured positive outcome.
    pub disparate_impact: Option<f64>,
    /// Kearns-style subgroup parity violations, worst first.
    pub subgroups: Option<Vec<SubgroupViolation>>,
    /// Differential equalized odds (§7.1 extension).
    pub equalized_odds: Option<EqualizedOddsReport>,
    /// Bias amplification vs. the configured reference ε.
    pub amplification: Option<BiasAmplification>,
    /// Bootstrap CI for the headline ε.
    pub bootstrap: Option<BootstrapEpsilon>,
}

impl AuditReport {
    /// The per-subset comparison table in the layout of the paper's
    /// Table 2: one row per audited subset, one ε column per estimator.
    /// Counts are rendered exactly (integers stay integers).
    pub fn render_subset_table(&self) -> String {
        self.subset_table().render()
    }

    /// Markdown rendering of [`AuditReport::render_subset_table`].
    pub fn render_subset_table_markdown(&self) -> String {
        self.subset_table().render_markdown()
    }

    fn subset_table(&self) -> TextTable {
        let mut headers: Vec<String> = vec!["protected attributes".to_string()];
        headers.extend(self.estimators.iter().map(|e| e.name.clone()));
        let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        let mut aligns = vec![Align::Left];
        aligns.extend(std::iter::repeat_n(Align::Right, self.estimators.len()));
        let mut t = TextTable::new(&header_refs).align(&aligns);
        let n_rows = self.estimators.first().map_or(0, |e| e.subsets.len());
        if n_rows == 0 {
            // No subset lattice: a single full-intersection row.
            let mut row = vec![if self.attributes.is_empty() {
                "(all groups)".to_string()
            } else {
                self.attributes.join(", ")
            }];
            row.extend(
                self.estimators
                    .iter()
                    .map(|e| fmt_epsilon(e.result.epsilon)),
            );
            t.row(&row);
            return t;
        }
        for i in 0..n_rows {
            let mut row = vec![self.estimators[0].subsets[i].attributes.join(", ")];
            row.extend(
                self.estimators
                    .iter()
                    .map(|e| fmt_epsilon(e.subsets[i].result.epsilon)),
            );
            t.row(&row);
        }
        t
    }

    /// A one-paragraph plain-text summary: record count (exact), headline
    /// ε with regime and ratio bound, witness, and any attached stages.
    pub fn render_summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "records audited: {}",
            match self.n_records {
                Some(n) => n.to_string(),
                None => fmt_count(self.total_weight),
            }
        );
        if self.metric != "eps-df" {
            let _ = writeln!(out, "metric: {}", self.metric);
        }
        let _ = writeln!(
            out,
            "headline {} = {} ({:?}; outcome-ratio bound e^eps = {:.2}x)",
            self.headline,
            fmt_epsilon(self.epsilon.epsilon),
            self.regime,
            self.epsilon.probability_ratio_bound()
        );
        if let Some(w) = &self.epsilon.witness {
            let _ = writeln!(
                out,
                "worst pair: `{}` gets `{}` at rate {:.4}, `{}` at rate {:.4}",
                w.group_hi, w.outcome, w.prob_hi, w.group_lo, w.prob_lo
            );
        }
        if let Some(v) = &self.bound_violations {
            let _ = writeln!(
                out,
                "Theorem 3.2 bound: {}",
                if v.is_empty() {
                    "holds for every subset".to_string()
                } else {
                    format!("VIOLATED by {} subsets", v.len())
                }
            );
        }
        if let Some(dp) = self.demographic_parity {
            let _ = writeln!(out, "demographic-parity distance: {dp:.4}");
        }
        if let Some(di) = self.disparate_impact {
            let _ = writeln!(
                out,
                "disparate-impact ratio: {di:.4} (80% rule {})",
                if di >= 0.8 { "passes" } else { "fails" }
            );
        }
        if let Some(eo) = &self.equalized_odds {
            let _ = writeln!(
                out,
                "differential equalized odds (a={}): eps = {}",
                eo.alpha,
                fmt_epsilon(eo.overall.epsilon)
            );
        }
        if let Some(amp) = &self.amplification {
            let _ = writeln!(
                out,
                "bias amplification vs reference {:.4}: delta = {:+.4} (utility factor {:.2}x)",
                amp.epsilon_reference,
                amp.delta(),
                amp.utility_disparity_factor()
            );
        }
        if let Some(b) = &self.bootstrap {
            let _ = writeln!(
                out,
                "bootstrap ({} replicates): {:.0}% CI [{}, {}], {} infinite",
                b.replicates.len(),
                b.mass * 100.0,
                fmt_epsilon(b.interval.0),
                fmt_epsilon(b.interval.1),
                b.infinite_replicates
            );
        }
        out
    }

    /// The report for one estimator by display name.
    pub fn estimator(&self, name: &str) -> Option<&EstimatorReport> {
        self.estimators.iter().find(|e| e.name == name)
    }

    /// Renders the report in the requested [`ResponseFormat`]: the full
    /// serde document for JSON, the per-subset ε table for CSV, and the
    /// summary paragraph plus the subset table for text/markdown. This is
    /// the single render entry point serving layers should negotiate into.
    pub fn render(&self, format: ResponseFormat) -> Result<String> {
        match format {
            ResponseFormat::Json => {
                serde_json::to_string(self).map_err(|e| DfError::Invalid(e.to_string()))
            }
            ResponseFormat::Csv => Ok(self.subset_table().render_csv()),
            ResponseFormat::Markdown => Ok(format!(
                "{}\n{}",
                self.render_summary(),
                self.render_subset_table_markdown()
            )),
            ResponseFormat::Text => Ok(format!(
                "{}\n{}",
                self.render_summary(),
                self.render_subset_table()
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mechanism::FnMechanism;
    use df_prob::contingency::{Axis, ContingencyTable};
    use df_prob::numerics::approx_eq;

    fn table1() -> JointCounts {
        let axes = vec![
            Axis::from_strs("outcome", &["admit", "decline"]).unwrap(),
            Axis::from_strs("gender", &["A", "B"]).unwrap(),
            Axis::from_strs("race", &["1", "2"]).unwrap(),
        ];
        let data = vec![81.0, 192.0, 234.0, 55.0, 6.0, 71.0, 36.0, 25.0];
        JointCounts::from_table(ContingencyTable::from_data(axes, data).unwrap(), "outcome")
            .unwrap()
    }

    #[test]
    fn default_estimators_reproduce_paper_table1() {
        let report = Audit::of(&table1()).run().unwrap();
        assert_eq!(report.n_records, Some(700));
        assert_eq!(report.total_weight, 700.0);
        assert_eq!(report.attributes, vec!["gender", "race"]);
        // Empirical full intersection: the paper's 1.511.
        let emp = report.estimator("eps-EDF").unwrap();
        assert!(approx_eq(emp.result.epsilon, 1.511, 1e-3, 0.0));
        assert!(approx_eq(
            emp.get(&["gender"]).unwrap().result.epsilon,
            0.2329,
            1e-3,
            0.0
        ));
        assert!(approx_eq(
            emp.get(&["race"]).unwrap().result.epsilon,
            0.8667,
            1e-3,
            0.0
        ));
        // Headline defaults to smoothed at alpha = 1.
        assert_eq!(report.headline, "eps-DF(a=1)");
        assert_eq!(report.regime, PrivacyRegime::Moderate);
        assert_eq!(report.bound_violations, Some(vec![]));
    }

    #[test]
    fn smoothed_estimator_matches_edf_smoothed_path() {
        let counts = table1();
        let report = Audit::of(&counts)
            .estimator(Smoothed { alpha: 1.0 })
            .run()
            .unwrap();
        let direct = counts.edf_smoothed(1.0).unwrap();
        assert!(approx_eq(
            report.epsilon.epsilon,
            direct.epsilon,
            1e-12,
            1e-12
        ));
        // Only one estimator configured → one column.
        assert_eq!(report.estimators.len(), 1);
        assert_eq!(report.estimators[0].subsets.len(), 3);
    }

    #[test]
    fn posterior_sup_dominates_point_estimate_and_is_deterministic() {
        let counts = table1();
        let run = |seed| {
            Audit::of(&counts)
                .estimator(PosteriorSup {
                    alpha: 1.0,
                    samples: 100,
                    seed,
                })
                .subsets(SubsetPolicy::None)
                .run()
                .unwrap()
                .epsilon
                .epsilon
        };
        let point = counts.edf().unwrap().epsilon;
        let sup = run(11);
        assert!(sup > point, "sup {sup} should dominate point {point}");
        assert_eq!(run(11), sup, "same seed, same certificate");
        assert_ne!(run(12), sup, "different seed, different draws");
    }

    #[test]
    fn subset_policy_controls_the_lattice() {
        let counts = table1();
        let none = Audit::of(&counts)
            .subsets(SubsetPolicy::None)
            .run()
            .unwrap();
        // Only the full intersection is audited; no bound check possible.
        let lens: Vec<usize> = none.estimators[0]
            .subsets
            .iter()
            .map(|s| s.attributes.len())
            .collect();
        assert_eq!(lens, vec![2]);
        assert!(none.bound_violations.is_none());

        let up_to = Audit::of(&counts)
            .subsets(SubsetPolicy::UpTo { size: 1 })
            .run()
            .unwrap();
        let subsets: Vec<usize> = up_to.estimators[0]
            .subsets
            .iter()
            .map(|s| s.attributes.len())
            .collect();
        // Singletons plus the full intersection, full set last. With two
        // attributes that happens to be the complete lattice, so the
        // Theorem 3.2 check runs even under `UpTo`.
        assert_eq!(subsets, vec![1, 1, 2]);
        assert_eq!(up_to.bound_violations, Some(vec![]));
    }

    #[test]
    fn baselines_and_amplification_flow_through() {
        let report = Audit::of(&table1())
            .baselines(Baselines::all().positive("admit"))
            .reference_epsilon(1.0)
            .run()
            .unwrap();
        assert!(report.demographic_parity.unwrap() > 0.0);
        let di = report.disparate_impact.unwrap();
        assert!(di > 0.0 && di < 1.0);
        let subgroups = report.subgroups.unwrap();
        assert!(!subgroups.is_empty());
        assert!(report.amplification.unwrap().amplifies());
    }

    #[test]
    fn unknown_positive_outcome_errors() {
        let err = Audit::of(&table1())
            .baselines(Baselines::all().positive("approve"))
            .run();
        assert!(err.is_err());
    }

    #[test]
    fn bootstrap_uses_the_headline_estimator() {
        let report = Audit::of(&table1())
            .estimator(Smoothed { alpha: 1.0 })
            .subsets(SubsetPolicy::None)
            .bootstrap(50, 9)
            .run()
            .unwrap();
        let boot = report.bootstrap.unwrap();
        assert_eq!(boot.replicates.len(), 50);
        assert!(approx_eq(boot.point, report.epsilon.epsilon, 1e-12, 1e-12));
        assert!(boot.interval.0 <= boot.interval.1);
    }

    #[test]
    fn mechanism_source_audits_without_subsets() {
        let mech = FnMechanism::new(vec!["no".into(), "yes".into()], |score: &f64| {
            usize::from(*score >= 0.5)
        });
        let instances = vec![(0usize, 0.9), (0, 0.8), (0, 0.1), (1, 0.2), (1, 0.1)];
        let report = Audit::of_mechanism(&mech, vec!["a".into(), "b".into()], instances)
            .unwrap()
            .estimator(Smoothed { alpha: 1.0 })
            .run()
            .unwrap();
        assert_eq!(report.n_records, Some(5));
        assert!(report.attributes.is_empty());
        assert!(report.epsilon.is_finite());
        // Asking for a subset lattice on a flat table is an error.
        let mech = FnMechanism::new(vec!["no".into(), "yes".into()], |_: &f64| 0);
        let err = Audit::of_mechanism(&mech, vec!["a".into(), "b".into()], vec![(0usize, 1.0)])
            .unwrap()
            .subsets(SubsetPolicy::All)
            .run();
        assert!(err.is_err());
        // Bootstrap needs counts too.
        let mech = FnMechanism::new(vec!["no".into(), "yes".into()], |_: &f64| 0);
        let err = Audit::of_mechanism(&mech, vec!["a".into(), "b".into()], vec![(0usize, 1.0)])
            .unwrap()
            .bootstrap(50, 1)
            .run();
        assert!(err.is_err());
    }

    #[test]
    fn equalized_odds_stage_reports_conditionals() {
        let eo = EqualizedOddsCounts::from_records(
            vec!["neg".into(), "pos".into()],
            vec!["p0".into(), "p1".into()],
            vec!["a".into(), "b".into()],
            vec![
                (0usize, 0usize, 0usize),
                (0, 0, 1),
                (0, 1, 1),
                (1, 1, 0),
                (1, 1, 1),
                (1, 0, 0),
            ],
        )
        .unwrap();
        let report = Audit::of(&table1())
            .subsets(SubsetPolicy::None)
            .equalized_odds(eo, 1.0)
            .run()
            .unwrap();
        let deo = report.equalized_odds.unwrap();
        assert_eq!(deo.per_label.len(), 2);
        assert!(deo.overall.epsilon >= deo.per_label[0].1.epsilon.min(deo.per_label[1].1.epsilon));
    }

    #[test]
    fn render_subset_table_has_estimator_columns_and_exact_counts() {
        let report = Audit::of(&table1()).run().unwrap();
        let text = report.render_subset_table();
        assert!(text.contains("eps-EDF"));
        assert!(text.contains("eps-DF(a=1)"));
        assert!(text.contains("gender, race"));
        assert!(text.contains("1.511"));
        // 3 subsets + header + separator.
        assert_eq!(text.lines().count(), 5);
        let md = report.render_subset_table_markdown();
        assert!(md.contains("| protected attributes |"));
        let summary = report.render_summary();
        assert!(summary.contains("records audited: 700"), "{summary}");
        assert!(!summary.contains("700.0"), "count display must be exact");
    }

    #[test]
    fn of_counts_rejects_corrupt_cells_with_typed_error() {
        // `ContingencyTable::add` is unchecked for tally speed, so NaN and
        // negative weights can corrupt externally assembled counts; the
        // builder must refuse them instead of certifying ε = NaN.
        let corrupt = |weight: f64| {
            let axes = vec![
                Axis::from_strs("y", &["0", "1"]).unwrap(),
                Axis::from_strs("g", &["a", "b"]).unwrap(),
            ];
            let mut t = ContingencyTable::zeros(axes).unwrap();
            t.increment(&[0, 0]);
            t.increment(&[1, 1]);
            t.add(&[1, 0], weight);
            JointCounts::from_table(t, "y").unwrap()
        };
        let err = Audit::of_counts(corrupt(f64::NAN)).err().unwrap();
        assert!(
            matches!(err, DfError::CorruptCounts { cell: 2, value } if value.is_nan()),
            "{err:?}"
        );
        let err = Audit::of_counts(corrupt(-3.0)).err().unwrap();
        assert!(
            matches!(
                err,
                DfError::CorruptCounts {
                    cell: 2,
                    value: -3.0
                }
            ),
            "{err:?}"
        );
        let err = Audit::of_counts(corrupt(f64::INFINITY)).err().unwrap();
        assert!(matches!(err, DfError::CorruptCounts { .. }), "{err:?}");
        // The borrowed-counts path catches the same corruption at run().
        let counts = corrupt(f64::NAN);
        let err = Audit::of(&counts).run().unwrap_err();
        assert!(matches!(err, DfError::CorruptCounts { .. }), "{err:?}");
        // Healthy counts still flow through.
        assert!(Audit::of_counts(corrupt(1.0)).is_ok());
    }

    #[test]
    fn of_stream_matches_of_counts_byte_for_byte() {
        struct Rows(Vec<[usize; 3]>);
        impl df_prob::partial::Tally for Rows {
            fn tally_into(
                &self,
                shard: &mut df_prob::partial::PartialCounts,
            ) -> df_prob::Result<()> {
                for idx in &self.0 {
                    shard.record(idx);
                }
                Ok(())
            }
        }
        // Table 1 as a record stream.
        let counts = table1();
        let mut rows: Vec<[usize; 3]> = Vec::new();
        for (idx, v) in counts.table().iter_cells() {
            for _ in 0..v as usize {
                rows.push([idx[0], idx[1], idx[2]]);
            }
        }
        let axes = counts.table().axes().to_vec();
        for threads in [1, 2, 4] {
            let chunks: Vec<Result<Rows>> = rows.chunks(97).map(|c| Ok(Rows(c.to_vec()))).collect();
            let streamed = Audit::of_stream("outcome", axes.clone(), chunks, threads)
                .unwrap()
                .bootstrap(25, 7)
                .run()
                .unwrap();
            let batch = Audit::of(&counts).bootstrap(25, 7).run().unwrap();
            assert_eq!(streamed, batch, "threads={threads}");
        }
    }

    #[test]
    fn parallel_bootstrap_is_deterministic_across_thread_counts() {
        let counts = table1();
        let serial = Audit::of(&counts)
            .bootstrap(40, 11)
            .run()
            .unwrap()
            .bootstrap
            .unwrap();
        for threads in [2, 4] {
            let par = Audit::of(&counts)
                .bootstrap(40, 11)
                .bootstrap_threads(threads)
                .run()
                .unwrap()
                .bootstrap
                .unwrap();
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = Audit::of(&table1())
            .baselines(Baselines::all().positive("admit"))
            .bootstrap(25, 3)
            .reference_epsilon(1.0)
            .run()
            .unwrap();
        let json = serde_json::to_string(&report).unwrap();
        let back: AuditReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn fractional_weights_have_no_integer_record_count() {
        let axes = vec![
            Axis::from_strs("y", &["0", "1"]).unwrap(),
            Axis::from_strs("g", &["a", "b"]).unwrap(),
        ];
        let data = vec![1.5, 2.0, 2.5, 3.0];
        let counts =
            JointCounts::from_table(ContingencyTable::from_data(axes, data).unwrap(), "y").unwrap();
        let report = Audit::of(&counts).run().unwrap();
        assert_eq!(report.total_weight, 9.0);
        // 9.0 is integral, so it still gets an exact count…
        assert_eq!(report.n_records, Some(9));
        let data = vec![1.25, 2.0, 2.5, 3.0];
        let counts = JointCounts::from_table(
            ContingencyTable::from_data(
                vec![
                    Axis::from_strs("y", &["0", "1"]).unwrap(),
                    Axis::from_strs("g", &["a", "b"]).unwrap(),
                ],
                data,
            )
            .unwrap(),
            "y",
        )
        .unwrap();
        let report = Audit::of(&counts).run().unwrap();
        // …while a genuinely fractional total does not.
        assert_eq!(report.n_records, None);
        assert_eq!(report.total_weight, 8.75);
    }
}
