//! Error type for the differential-fairness core.

use std::fmt;

/// Errors produced by df-core.
#[derive(Debug, Clone, PartialEq)]
pub enum DfError {
    /// A propagated error from the probability substrate.
    Prob(df_prob::ProbError),
    /// A named attribute was not part of the protected space.
    UnknownAttribute(String),
    /// An operation needed at least the given number of groups/outcomes.
    NotEnoughCategories {
        /// What was being counted.
        what: &'static str,
        /// Minimum required.
        needed: usize,
        /// Actually present.
        present: usize,
    },
    /// A counts table held a NaN, infinite, or negative cell — ε over such
    /// a table would silently propagate NaN instead of certifying anything.
    CorruptCounts {
        /// Flat (row-major) index of the first offending cell.
        cell: usize,
        /// The offending value.
        value: f64,
    },
    /// A bounded wait (e.g. a fleet consistent-cut round) did not finish
    /// before its deadline. The operation may still complete in the
    /// background; retrying later is safe.
    Timeout {
        /// What was being waited on.
        what: &'static str,
        /// The budget that elapsed, in milliseconds.
        waited_ms: u64,
    },
    /// An invalid argument with a description.
    Invalid(String),
}

impl fmt::Display for DfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DfError::Prob(e) => write!(f, "probability substrate: {e}"),
            DfError::UnknownAttribute(name) => {
                write!(f, "unknown protected attribute `{name}`")
            }
            DfError::NotEnoughCategories {
                what,
                needed,
                present,
            } => write!(f, "need at least {needed} {what}, got {present}"),
            DfError::CorruptCounts { cell, value } => write!(
                f,
                "counts table holds invalid value {value} at flat cell {cell}; \
                 counts must be finite and non-negative"
            ),
            DfError::Timeout { what, waited_ms } => {
                write!(f, "{what} did not complete within {waited_ms} ms")
            }
            DfError::Invalid(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for DfError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DfError::Prob(e) => Some(e),
            _ => None,
        }
    }
}

impl From<df_prob::ProbError> for DfError {
    fn from(e: df_prob::ProbError) -> Self {
        DfError::Prob(e)
    }
}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, DfError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        let e = DfError::UnknownAttribute("race".into());
        assert!(e.to_string().contains("race"));
        let e = DfError::NotEnoughCategories {
            what: "groups",
            needed: 2,
            present: 1,
        };
        assert!(e.to_string().contains("2"));
        let e: DfError = df_prob::ProbError::EmptyTable("x").into();
        assert!(e.to_string().contains("probability substrate"));
        let e = DfError::CorruptCounts {
            cell: 3,
            value: f64::NAN,
        };
        assert!(e.to_string().contains("cell 3"));
        let e = DfError::Timeout {
            what: "fleet snapshot",
            waited_ms: 250,
        };
        assert!(e.to_string().contains("250 ms"));
    }
}
