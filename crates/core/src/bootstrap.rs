//! Bootstrap confidence intervals for empirical differential fairness.
//!
//! EDF is a plug-in functional of the joint counts, and its max-of-ratios
//! form makes it upward-biased and noisy on rare intersections (see the
//! `ablation_sample_size` experiment). This module quantifies that
//! uncertainty frequentistly, complementing the Bayesian route of
//! [`crate::theta`]: resample records (multinomial bootstrap over the cells)
//! and report percentile intervals for ε̂.

use crate::edf::JointCounts;
use crate::error::{DfError, Result};
use df_prob::contingency::ContingencyTable;
use df_prob::numerics::exactly_zero;
use df_prob::rng::Pcg32;
use serde::{Deserialize, Serialize};

/// Result of a bootstrap run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BootstrapEpsilon {
    /// The point estimate on the original counts.
    pub point: f64,
    /// Bootstrap replicate ε values (finite and infinite alike).
    pub replicates: Vec<f64>,
    /// Number of replicates that came out infinite (rare-cell dropout).
    pub infinite_replicates: usize,
    /// Requested interval mass.
    pub mass: f64,
    /// Percentile interval over the **full** replicate multiset, with `+∞`
    /// ranked last: when infinite replicates reach into the upper tail the
    /// upper bound is honestly `inf` instead of silently falling back to
    /// the largest finite replicate (which biased the CI low exactly on
    /// the sparse tables where the CI matters most).
    pub interval: (f64, f64),
}

impl BootstrapEpsilon {
    /// Bootstrap standard error over the finite replicates, or `None` when
    /// fewer than two finite replicates exist — the spread of an (almost)
    /// always-infinite estimator is not a number callers should format
    /// into reports.
    pub fn std_error(&self) -> Option<f64> {
        let finite: Vec<f64> = self
            .replicates
            .iter()
            .copied()
            .filter(|e| e.is_finite())
            .collect();
        if finite.len() < 2 {
            return None;
        }
        let mean = finite.iter().sum::<f64>() / finite.len() as f64;
        Some(
            (finite.iter().map(|e| (e - mean).powi(2)).sum::<f64>() / (finite.len() - 1) as f64)
                .sqrt(),
        )
    }
}

/// Type-7 percentile of an ascending-sorted sample that may end in a run
/// of `+∞` entries. Matches [`df_prob::summary::quantile`] on all-finite
/// input; when either interpolation endpoint is infinite the result is
/// `+∞` (no `∞ − ∞` arithmetic), so infinities rank strictly last.
fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    let h = (sorted.len() - 1) as f64 * q;
    let lo = sorted[h.floor() as usize];
    let hi = sorted[h.ceil() as usize];
    let frac = h - h.floor();
    if exactly_zero(frac) || lo == hi {
        lo
    } else if hi.is_infinite() {
        hi
    } else {
        lo + frac * (hi - lo)
    }
}

/// Multinomial bootstrap of ε̂ from joint counts.
///
/// Each replicate redraws `N = total` records from the empirical cell
/// distribution and recomputes ε with the given smoothing α. `mass` is the
/// central interval probability (e.g. 0.95).
pub fn bootstrap_epsilon(
    counts: &JointCounts,
    alpha: f64,
    replicates: usize,
    mass: f64,
    rng: &mut Pcg32,
) -> Result<BootstrapEpsilon> {
    bootstrap_epsilon_with(counts, replicates, mass, rng, &|jc| {
        Ok(jc.edf_smoothed(alpha)?.epsilon)
    })
}

/// Multinomial bootstrap of ε̂ under a caller-supplied estimator: each
/// replicate resamples the joint counts and re-runs `estimate`. This is the
/// engine behind [`bootstrap_epsilon`] (estimate = Eq. 7 at a fixed α) and
/// the [`crate::builder`] bootstrap stage (estimate = whatever
/// `EpsilonEstimator` the audit is configured with).
///
/// Each replicate runs on its own [`Pcg32`] stream forked deterministically
/// from `rng`, so the replicate list depends only on the seed — not on the
/// execution schedule. [`bootstrap_epsilon_sharded`] exploits that to run
/// replicates across worker threads with bit-identical results.
pub fn bootstrap_epsilon_with(
    counts: &JointCounts,
    replicates: usize,
    mass: f64,
    rng: &mut Pcg32,
    estimate: &(dyn Fn(&JointCounts) -> Result<f64> + Sync),
) -> Result<BootstrapEpsilon> {
    bootstrap_epsilon_sharded(counts, replicates, mass, rng, 1, estimate)
}

/// One multinomial resample of `n` records over the cell CDF, scored by
/// `estimate`.
fn one_replicate(
    table: &ContingencyTable,
    cdf: &[f64],
    n: usize,
    rng: &mut Pcg32,
    estimate: &(dyn Fn(&JointCounts) -> Result<f64> + Sync),
) -> Result<f64> {
    let mut resampled = vec![0.0f64; cdf.len()];
    for _ in 0..n {
        let u = rng.next_f64();
        // Binary search the CDF.
        let mut lo = 0usize;
        let mut hi = cdf.len() - 1;
        while lo < hi {
            let mid = (lo + hi) / 2;
            if cdf[mid] < u {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        resampled[lo] += 1.0;
    }
    let rep_table = ContingencyTable::from_data(table.axes().to_vec(), resampled)?;
    let rep = JointCounts::from_table(rep_table, table.axes()[0].name())?;
    estimate(&rep)
}

/// [`bootstrap_epsilon_with`], with the replicates fanned out to `threads`
/// worker threads.
///
/// Per-replicate RNG streams are pre-forked from `rng` in replicate order,
/// so the result is **bit-identical** for every thread count (including 1,
/// the serial path) — parallelism changes wall-clock time, never the
/// certificate.
pub fn bootstrap_epsilon_sharded(
    counts: &JointCounts,
    replicates: usize,
    mass: f64,
    rng: &mut Pcg32,
    threads: usize,
    estimate: &(dyn Fn(&JointCounts) -> Result<f64> + Sync),
) -> Result<BootstrapEpsilon> {
    if replicates < 10 {
        return Err(DfError::Invalid(
            "need at least 10 bootstrap replicates".into(),
        ));
    }
    if !(0.0..1.0).contains(&mass) || mass <= 0.0 {
        return Err(DfError::Invalid(format!(
            "interval mass must lie in (0, 1), got {mass}"
        )));
    }
    if threads == 0 {
        return Err(DfError::Invalid(
            "need at least one bootstrap thread".into(),
        ));
    }
    let table = counts.table();
    let total = table.total();
    if total <= 0.0 {
        return Err(DfError::Invalid("empty counts".into()));
    }
    let n = total.round() as usize;
    let cells = table.data();
    // Cumulative distribution over cells for inverse-CDF sampling.
    let mut cdf = Vec::with_capacity(cells.len());
    let mut acc = 0.0;
    for &c in cells {
        acc += c / total;
        cdf.push(acc);
    }

    let point = estimate(counts)?;

    // Fork one independent stream per replicate *in replicate order*: the
    // draws are then a pure function of the seed, whatever the schedule.
    let child_rngs: Vec<Pcg32> = (0..replicates).map(|_| rng.fork()).collect();
    let results: Vec<Result<f64>> = if threads == 1 {
        child_rngs
            .into_iter()
            .map(|mut child| one_replicate(table, &cdf, n, &mut child, estimate))
            .collect()
    } else {
        let per_worker = replicates.div_ceil(threads);
        let mut out: Vec<Vec<Result<f64>>> = std::thread::scope(|scope| {
            let cdf = &cdf;
            let handles: Vec<_> = child_rngs
                .chunks(per_worker)
                .map(|batch| {
                    let batch = batch.to_vec();
                    scope.spawn(move || {
                        batch
                            .into_iter()
                            .map(|mut child| one_replicate(table, cdf, n, &mut child, estimate))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("bootstrap worker panicked"))
                .collect()
        });
        out.drain(..).flatten().collect()
    };

    let mut eps_values = Vec::with_capacity(replicates);
    let mut infinite = 0usize;
    for r in results {
        let e = r?;
        if e.is_finite() {
            eps_values.push(e);
        } else {
            infinite += 1;
            eps_values.push(f64::INFINITY);
        }
    }

    // Rank the FULL replicate multiset with +∞ ordered last (no NaN can
    // occur: non-finite estimates were canonicalized to +∞ above). The old
    // behavior — dropping infinite replicates before taking percentiles —
    // reported a finite upper bound even when a nontrivial fraction of
    // replicates diverged, understating the uncertainty precisely on the
    // sparse tables where it matters.
    let mut sorted = eps_values.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("replicates are never NaN"));
    let tail = (1.0 - mass) / 2.0;
    let interval = (
        percentile_sorted(&sorted, tail),
        percentile_sorted(&sorted, 1.0 - tail),
    );
    Ok(BootstrapEpsilon {
        point,
        replicates: eps_values,
        infinite_replicates: infinite,
        mass,
        interval,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_prob::contingency::Axis;

    fn counts(scale: f64) -> JointCounts {
        let axes = vec![
            Axis::from_strs("y", &["0", "1"]).unwrap(),
            Axis::from_strs("g", &["a", "b"]).unwrap(),
        ];
        let data = vec![40.0 * scale, 60.0 * scale, 60.0 * scale, 40.0 * scale];
        JointCounts::from_table(ContingencyTable::from_data(axes, data).unwrap(), "y").unwrap()
    }

    #[test]
    fn interval_brackets_truth_and_narrows_with_n() {
        let truth = (0.6_f64 / 0.4).ln();
        let mut rng = Pcg32::new(5);
        let small = bootstrap_epsilon(&counts(1.0), 0.0, 200, 0.9, &mut rng).unwrap();
        let large = bootstrap_epsilon(&counts(100.0), 0.0, 200, 0.9, &mut rng).unwrap();
        assert!(small.interval.0 <= truth && truth <= small.interval.1);
        assert!(large.interval.0 <= truth && truth <= large.interval.1);
        let width_small = small.interval.1 - small.interval.0;
        let width_large = large.interval.1 - large.interval.0;
        assert!(
            width_large < width_small / 3.0,
            "large-N interval {width_large} should be much narrower than {width_small}"
        );
    }

    #[test]
    fn std_error_shrinks_with_n() {
        let mut rng = Pcg32::new(6);
        let small = bootstrap_epsilon(&counts(1.0), 1.0, 200, 0.9, &mut rng).unwrap();
        let large = bootstrap_epsilon(&counts(100.0), 1.0, 200, 0.9, &mut rng).unwrap();
        assert!(large.std_error().unwrap() < small.std_error().unwrap());
    }

    #[test]
    fn std_error_is_none_without_two_finite_replicates() {
        let degenerate = BootstrapEpsilon {
            point: f64::INFINITY,
            replicates: vec![f64::INFINITY; 9].into_iter().chain([1.0]).collect(),
            infinite_replicates: 9,
            mass: 0.9,
            interval: (1.0, f64::INFINITY),
        };
        assert_eq!(degenerate.std_error(), None);
    }

    #[test]
    fn infinite_upper_tail_forces_infinite_upper_bound() {
        // A 1-count cell in a 10-record table drops out of ≈ 35% of
        // multinomial resamples, so far more than the upper 5% of replicate
        // ranks are +∞ — the honest 90% percentile upper bound is inf.
        let axes = vec![
            Axis::from_strs("y", &["0", "1"]).unwrap(),
            Axis::from_strs("g", &["a", "b"]).unwrap(),
        ];
        let data = vec![5.0, 1.0, 2.0, 2.0];
        let jc =
            JointCounts::from_table(ContingencyTable::from_data(axes, data).unwrap(), "y").unwrap();
        let mut rng = Pcg32::new(13);
        let b = bootstrap_epsilon(&jc, 0.0, 200, 0.9, &mut rng).unwrap();
        assert!(b.infinite_replicates > 10, "{}", b.infinite_replicates);
        assert!(
            b.interval.1.is_infinite(),
            "upper bound must be inf, got {}",
            b.interval.1
        );
        assert!(b.interval.0.is_finite(), "lower bound {}", b.interval.0);
        assert_eq!(
            b.replicates.iter().filter(|e| e.is_infinite()).count(),
            b.infinite_replicates
        );
        // The infinite bound survives a JSON round-trip intact.
        let json = serde_json::to_string(&b).unwrap();
        let back: BootstrapEpsilon = serde_json::from_str(&json).unwrap();
        assert_eq!(back, b);
        assert!(back.interval.1.is_infinite());
    }

    #[test]
    fn finite_replicates_keep_the_previous_interval() {
        // On a fully populated table the full-multiset ranking degenerates
        // to the old finite-only percentile — the fix changes nothing when
        // no replicate diverges.
        let mut rng = Pcg32::new(5);
        let b = bootstrap_epsilon(&counts(10.0), 0.0, 200, 0.9, &mut rng).unwrap();
        assert_eq!(b.infinite_replicates, 0);
        let finite: Vec<f64> = b.replicates.clone();
        let expect = (
            df_prob::summary::quantile(&finite, 0.05).unwrap(),
            df_prob::summary::quantile(&finite, 0.95).unwrap(),
        );
        assert_eq!(b.interval, expect);
    }

    #[test]
    fn infinite_replicates_are_counted() {
        // A rare cell (1 count) often drops out of resamples → Eq. 6
        // replicates go infinite; smoothing fixes it.
        let axes = vec![
            Axis::from_strs("y", &["0", "1"]).unwrap(),
            Axis::from_strs("g", &["a", "b"]).unwrap(),
        ];
        let data = vec![30.0, 1.0, 15.0, 15.0];
        let jc =
            JointCounts::from_table(ContingencyTable::from_data(axes, data).unwrap(), "y").unwrap();
        let mut rng = Pcg32::new(7);
        let raw = bootstrap_epsilon(&jc, 0.0, 200, 0.9, &mut rng).unwrap();
        assert!(raw.infinite_replicates > 0);
        let smoothed = bootstrap_epsilon(&jc, 1.0, 200, 0.9, &mut rng).unwrap();
        assert_eq!(smoothed.infinite_replicates, 0);
    }

    #[test]
    fn validates_arguments() {
        let mut rng = Pcg32::new(8);
        assert!(bootstrap_epsilon(&counts(1.0), 0.0, 5, 0.9, &mut rng).is_err());
        assert!(bootstrap_epsilon(&counts(1.0), 0.0, 100, 1.5, &mut rng).is_err());
        assert!(bootstrap_epsilon(&counts(1.0), 0.0, 100, 0.0, &mut rng).is_err());
    }

    #[test]
    fn sharded_bootstrap_is_bit_identical_to_serial() {
        let jc = counts(1.0);
        let estimate = |jc: &JointCounts| Ok(jc.edf_smoothed(1.0)?.epsilon);
        let serial = {
            let mut rng = Pcg32::new(42);
            bootstrap_epsilon_sharded(&jc, 64, 0.9, &mut rng, 1, &estimate).unwrap()
        };
        for threads in [2, 3, 4, 7] {
            let mut rng = Pcg32::new(42);
            let par =
                bootstrap_epsilon_sharded(&jc, 64, 0.9, &mut rng, threads, &estimate).unwrap();
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn sharded_bootstrap_validates_threads() {
        let jc = counts(1.0);
        let mut rng = Pcg32::new(1);
        let estimate = |jc: &JointCounts| Ok(jc.edf_smoothed(1.0)?.epsilon);
        assert!(bootstrap_epsilon_sharded(&jc, 64, 0.9, &mut rng, 0, &estimate).is_err());
    }

    #[test]
    fn replicate_count_is_exact() {
        let mut rng = Pcg32::new(9);
        let b = bootstrap_epsilon(&counts(1.0), 1.0, 50, 0.8, &mut rng).unwrap();
        assert_eq!(b.replicates.len(), 50);
        assert_eq!(b.mass, 0.8);
        assert!(b.point.is_finite());
    }
}
