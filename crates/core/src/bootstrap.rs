//! Bootstrap confidence intervals for empirical differential fairness.
//!
//! EDF is a plug-in functional of the joint counts, and its max-of-ratios
//! form makes it upward-biased and noisy on rare intersections (see the
//! `ablation_sample_size` experiment). This module quantifies that
//! uncertainty frequentistly, complementing the Bayesian route of
//! [`crate::theta`]: resample records (multinomial bootstrap over the cells)
//! and report percentile intervals for ε̂.

use crate::edf::JointCounts;
use crate::error::{DfError, Result};
use df_prob::contingency::ContingencyTable;
use df_prob::rng::Pcg32;
use df_prob::summary::quantile;
use serde::{Deserialize, Serialize};

/// Result of a bootstrap run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BootstrapEpsilon {
    /// The point estimate on the original counts.
    pub point: f64,
    /// Bootstrap replicate ε values (finite and infinite alike).
    pub replicates: Vec<f64>,
    /// Number of replicates that came out infinite (rare-cell dropout).
    pub infinite_replicates: usize,
    /// Requested interval mass.
    pub mass: f64,
    /// Percentile interval over the finite replicates.
    pub interval: (f64, f64),
}

impl BootstrapEpsilon {
    /// Bootstrap standard error over the finite replicates.
    pub fn std_error(&self) -> f64 {
        let finite: Vec<f64> = self
            .replicates
            .iter()
            .copied()
            .filter(|e| e.is_finite())
            .collect();
        if finite.len() < 2 {
            return f64::NAN;
        }
        let mean = finite.iter().sum::<f64>() / finite.len() as f64;
        (finite.iter().map(|e| (e - mean).powi(2)).sum::<f64>() / (finite.len() - 1) as f64).sqrt()
    }
}

/// Multinomial bootstrap of ε̂ from joint counts.
///
/// Each replicate redraws `N = total` records from the empirical cell
/// distribution and recomputes ε with the given smoothing α. `mass` is the
/// central interval probability (e.g. 0.95).
pub fn bootstrap_epsilon(
    counts: &JointCounts,
    alpha: f64,
    replicates: usize,
    mass: f64,
    rng: &mut Pcg32,
) -> Result<BootstrapEpsilon> {
    bootstrap_epsilon_with(counts, replicates, mass, rng, &|jc| {
        Ok(jc.edf_smoothed(alpha)?.epsilon)
    })
}

/// Multinomial bootstrap of ε̂ under a caller-supplied estimator: each
/// replicate resamples the joint counts and re-runs `estimate`. This is the
/// engine behind [`bootstrap_epsilon`] (estimate = Eq. 7 at a fixed α) and
/// the [`crate::builder`] bootstrap stage (estimate = whatever
/// `EpsilonEstimator` the audit is configured with).
///
/// Each replicate runs on its own [`Pcg32`] stream forked deterministically
/// from `rng`, so the replicate list depends only on the seed — not on the
/// execution schedule. [`bootstrap_epsilon_sharded`] exploits that to run
/// replicates across worker threads with bit-identical results.
pub fn bootstrap_epsilon_with(
    counts: &JointCounts,
    replicates: usize,
    mass: f64,
    rng: &mut Pcg32,
    estimate: &(dyn Fn(&JointCounts) -> Result<f64> + Sync),
) -> Result<BootstrapEpsilon> {
    bootstrap_epsilon_sharded(counts, replicates, mass, rng, 1, estimate)
}

/// One multinomial resample of `n` records over the cell CDF, scored by
/// `estimate`.
fn one_replicate(
    table: &ContingencyTable,
    cdf: &[f64],
    n: usize,
    rng: &mut Pcg32,
    estimate: &(dyn Fn(&JointCounts) -> Result<f64> + Sync),
) -> Result<f64> {
    let mut resampled = vec![0.0f64; cdf.len()];
    for _ in 0..n {
        let u = rng.next_f64();
        // Binary search the CDF.
        let mut lo = 0usize;
        let mut hi = cdf.len() - 1;
        while lo < hi {
            let mid = (lo + hi) / 2;
            if cdf[mid] < u {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        resampled[lo] += 1.0;
    }
    let rep_table = ContingencyTable::from_data(table.axes().to_vec(), resampled)?;
    let rep = JointCounts::from_table(rep_table, table.axes()[0].name())?;
    estimate(&rep)
}

/// [`bootstrap_epsilon_with`], with the replicates fanned out to `threads`
/// worker threads.
///
/// Per-replicate RNG streams are pre-forked from `rng` in replicate order,
/// so the result is **bit-identical** for every thread count (including 1,
/// the serial path) — parallelism changes wall-clock time, never the
/// certificate.
pub fn bootstrap_epsilon_sharded(
    counts: &JointCounts,
    replicates: usize,
    mass: f64,
    rng: &mut Pcg32,
    threads: usize,
    estimate: &(dyn Fn(&JointCounts) -> Result<f64> + Sync),
) -> Result<BootstrapEpsilon> {
    if replicates < 10 {
        return Err(DfError::Invalid(
            "need at least 10 bootstrap replicates".into(),
        ));
    }
    if !(0.0..1.0).contains(&mass) || mass <= 0.0 {
        return Err(DfError::Invalid(format!(
            "interval mass must lie in (0, 1), got {mass}"
        )));
    }
    if threads == 0 {
        return Err(DfError::Invalid(
            "need at least one bootstrap thread".into(),
        ));
    }
    let table = counts.table();
    let total = table.total();
    if total <= 0.0 {
        return Err(DfError::Invalid("empty counts".into()));
    }
    let n = total.round() as usize;
    let cells = table.data();
    // Cumulative distribution over cells for inverse-CDF sampling.
    let mut cdf = Vec::with_capacity(cells.len());
    let mut acc = 0.0;
    for &c in cells {
        acc += c / total;
        cdf.push(acc);
    }

    let point = estimate(counts)?;

    // Fork one independent stream per replicate *in replicate order*: the
    // draws are then a pure function of the seed, whatever the schedule.
    let child_rngs: Vec<Pcg32> = (0..replicates).map(|_| rng.fork()).collect();
    let results: Vec<Result<f64>> = if threads == 1 {
        child_rngs
            .into_iter()
            .map(|mut child| one_replicate(table, &cdf, n, &mut child, estimate))
            .collect()
    } else {
        let per_worker = replicates.div_ceil(threads);
        let mut out: Vec<Vec<Result<f64>>> = std::thread::scope(|scope| {
            let cdf = &cdf;
            let handles: Vec<_> = child_rngs
                .chunks(per_worker)
                .map(|batch| {
                    let batch = batch.to_vec();
                    scope.spawn(move || {
                        batch
                            .into_iter()
                            .map(|mut child| one_replicate(table, cdf, n, &mut child, estimate))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("bootstrap worker panicked"))
                .collect()
        });
        out.drain(..).flatten().collect()
    };

    let mut eps_values = Vec::with_capacity(replicates);
    let mut infinite = 0usize;
    for r in results {
        let e = r?;
        if e.is_finite() {
            eps_values.push(e);
        } else {
            infinite += 1;
            eps_values.push(f64::INFINITY);
        }
    }

    let finite: Vec<f64> = eps_values
        .iter()
        .copied()
        .filter(|e| e.is_finite())
        .collect();
    if finite.len() < 2 {
        return Err(DfError::Invalid(
            "all bootstrap replicates were infinite; use smoothing (alpha > 0)".into(),
        ));
    }
    let tail = (1.0 - mass) / 2.0;
    let interval = (
        quantile(&finite, tail).map_err(DfError::from)?,
        quantile(&finite, 1.0 - tail).map_err(DfError::from)?,
    );
    Ok(BootstrapEpsilon {
        point,
        replicates: eps_values,
        infinite_replicates: infinite,
        mass,
        interval,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_prob::contingency::Axis;

    fn counts(scale: f64) -> JointCounts {
        let axes = vec![
            Axis::from_strs("y", &["0", "1"]).unwrap(),
            Axis::from_strs("g", &["a", "b"]).unwrap(),
        ];
        let data = vec![40.0 * scale, 60.0 * scale, 60.0 * scale, 40.0 * scale];
        JointCounts::from_table(ContingencyTable::from_data(axes, data).unwrap(), "y").unwrap()
    }

    #[test]
    fn interval_brackets_truth_and_narrows_with_n() {
        let truth = (0.6_f64 / 0.4).ln();
        let mut rng = Pcg32::new(5);
        let small = bootstrap_epsilon(&counts(1.0), 0.0, 200, 0.9, &mut rng).unwrap();
        let large = bootstrap_epsilon(&counts(100.0), 0.0, 200, 0.9, &mut rng).unwrap();
        assert!(small.interval.0 <= truth && truth <= small.interval.1);
        assert!(large.interval.0 <= truth && truth <= large.interval.1);
        let width_small = small.interval.1 - small.interval.0;
        let width_large = large.interval.1 - large.interval.0;
        assert!(
            width_large < width_small / 3.0,
            "large-N interval {width_large} should be much narrower than {width_small}"
        );
    }

    #[test]
    fn std_error_shrinks_with_n() {
        let mut rng = Pcg32::new(6);
        let small = bootstrap_epsilon(&counts(1.0), 1.0, 200, 0.9, &mut rng).unwrap();
        let large = bootstrap_epsilon(&counts(100.0), 1.0, 200, 0.9, &mut rng).unwrap();
        assert!(large.std_error() < small.std_error());
    }

    #[test]
    fn infinite_replicates_are_counted() {
        // A rare cell (1 count) often drops out of resamples → Eq. 6
        // replicates go infinite; smoothing fixes it.
        let axes = vec![
            Axis::from_strs("y", &["0", "1"]).unwrap(),
            Axis::from_strs("g", &["a", "b"]).unwrap(),
        ];
        let data = vec![30.0, 1.0, 15.0, 15.0];
        let jc =
            JointCounts::from_table(ContingencyTable::from_data(axes, data).unwrap(), "y").unwrap();
        let mut rng = Pcg32::new(7);
        let raw = bootstrap_epsilon(&jc, 0.0, 200, 0.9, &mut rng).unwrap();
        assert!(raw.infinite_replicates > 0);
        let smoothed = bootstrap_epsilon(&jc, 1.0, 200, 0.9, &mut rng).unwrap();
        assert_eq!(smoothed.infinite_replicates, 0);
    }

    #[test]
    fn validates_arguments() {
        let mut rng = Pcg32::new(8);
        assert!(bootstrap_epsilon(&counts(1.0), 0.0, 5, 0.9, &mut rng).is_err());
        assert!(bootstrap_epsilon(&counts(1.0), 0.0, 100, 1.5, &mut rng).is_err());
        assert!(bootstrap_epsilon(&counts(1.0), 0.0, 100, 0.0, &mut rng).is_err());
    }

    #[test]
    fn sharded_bootstrap_is_bit_identical_to_serial() {
        let jc = counts(1.0);
        let estimate = |jc: &JointCounts| Ok(jc.edf_smoothed(1.0)?.epsilon);
        let serial = {
            let mut rng = Pcg32::new(42);
            bootstrap_epsilon_sharded(&jc, 64, 0.9, &mut rng, 1, &estimate).unwrap()
        };
        for threads in [2, 3, 4, 7] {
            let mut rng = Pcg32::new(42);
            let par =
                bootstrap_epsilon_sharded(&jc, 64, 0.9, &mut rng, threads, &estimate).unwrap();
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn sharded_bootstrap_validates_threads() {
        let jc = counts(1.0);
        let mut rng = Pcg32::new(1);
        let estimate = |jc: &JointCounts| Ok(jc.edf_smoothed(1.0)?.epsilon);
        assert!(bootstrap_epsilon_sharded(&jc, 64, 0.9, &mut rng, 0, &estimate).is_err());
    }

    #[test]
    fn replicate_count_is_exact() {
        let mut rng = Pcg32::new(9);
        let b = bootstrap_epsilon(&counts(1.0), 1.0, 50, 0.8, &mut rng).unwrap();
        assert_eq!(b.replicates.len(), 50);
        assert_eq!(b.mass, 0.8);
        assert!(b.point.is_finite());
    }
}
