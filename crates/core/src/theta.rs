//! Distribution classes Θ and the supremum ε over them.
//!
//! Definition 3.1 quantifies over a class Θ of plausible data distributions.
//! The paper suggests (§3, footnote 2) instantiating Θ as a point estimate,
//! a set of burned-in MCMC samples, or a posterior credible set. This module
//! provides:
//!
//! - [`ThetaClass::Point`]: a single table — the EDF special case
//!   (Definition 3.2).
//! - [`ThetaClass::Samples`]: a finite set of tables (e.g. Dirichlet
//!   posterior draws); ε is the supremum over members.
//! - [`posterior_theta`]: builds posterior samples of the group-conditional
//!   outcome probabilities from joint counts via the conjugate Dirichlet
//!   model.

use crate::edf::JointCounts;
use crate::epsilon::{EpsilonResult, GroupOutcomes};
use crate::error::{DfError, Result};
use df_prob::mcmc::DirichletPosterior;
use df_prob::rng::Pcg32;
use df_prob::summary::credible_interval;

/// A class of plausible distributions over the data.
#[derive(Debug, Clone)]
pub enum ThetaClass {
    /// A single point estimate `Θ = {θ̂}`.
    Point(GroupOutcomes),
    /// A finite set of plausible distributions (posterior samples).
    Samples(Vec<GroupOutcomes>),
}

impl ThetaClass {
    /// Number of member distributions.
    pub fn len(&self) -> usize {
        match self {
            ThetaClass::Point(_) => 1,
            ThetaClass::Samples(s) => s.len(),
        }
    }

    /// True when the class has no members (only possible for an empty
    /// sample set).
    pub fn is_empty(&self) -> bool {
        matches!(self, ThetaClass::Samples(s) if s.is_empty())
    }

    /// The differential fairness over the class: the supremum of ε over all
    /// members (Definition 3.1 requires the bound *for all* θ ∈ Θ).
    pub fn epsilon(&self) -> Result<EpsilonResult> {
        match self {
            ThetaClass::Point(t) => Ok(t.epsilon()),
            ThetaClass::Samples(ts) => {
                if ts.is_empty() {
                    return Err(DfError::Invalid("empty Θ sample set".into()));
                }
                let mut best: Option<EpsilonResult> = None;
                for t in ts {
                    let e = t.epsilon();
                    match &best {
                        Some(b) if b.epsilon >= e.epsilon => {}
                        _ => best = Some(e),
                    }
                }
                Ok(best.expect("non-empty sample set"))
            }
        }
    }

    /// Per-member ε values (useful for credible intervals).
    pub fn epsilon_samples(&self) -> Vec<f64> {
        match self {
            ThetaClass::Point(t) => vec![t.epsilon().epsilon],
            ThetaClass::Samples(ts) => ts.iter().map(|t| t.epsilon().epsilon).collect(),
        }
    }

    /// Equal-tailed credible interval over the per-member ε values.
    pub fn epsilon_credible_interval(&self, mass: f64) -> Result<(f64, f64)> {
        let samples = self.epsilon_samples();
        credible_interval(&samples, mass).map_err(DfError::from)
    }
}

/// Builds a Θ class of `n_samples` posterior draws from joint counts, using
/// independent Dirichlet(α) posteriors over each populated group's outcome
/// distribution.
///
/// Unpopulated groups keep zero weight in every sample and therefore remain
/// excluded from ε, mirroring the empirical treatment.
pub fn posterior_theta(
    counts: &JointCounts,
    alpha: f64,
    n_samples: usize,
    rng: &mut Pcg32,
) -> Result<ThetaClass> {
    // The point estimate gives us labels/weights; raw counts come from the
    // unsmoothed group outcomes scaled by weights.
    posterior_theta_from_table(&counts.group_outcomes(0.0)?, alpha, n_samples, rng)
}

/// Builds a Θ class of posterior draws directly from a raw (unsmoothed)
/// group-outcome table, recovering per-group counts as `prob × weight` —
/// the table-level twin of [`posterior_theta`] used by the
/// [`crate::builder`] estimators, which must work on subset tables and
/// mechanism tallies alike.
pub fn posterior_theta_from_table(
    base: &GroupOutcomes,
    alpha: f64,
    n_samples: usize,
    rng: &mut Pcg32,
) -> Result<ThetaClass> {
    if n_samples == 0 {
        return Err(DfError::Invalid("n_samples must be positive".into()));
    }
    let n_groups = base.num_groups();
    let n_outcomes = base.num_outcomes();

    // Recover per-group counts: prob * weight.
    let group_counts: Vec<Vec<f64>> = (0..n_groups).map(|g| base.implied_counts(g)).collect();

    let posteriors: Vec<Option<DirichletPosterior>> = group_counts
        .iter()
        .enumerate()
        .map(|(g, c)| {
            if base.weights()[g] > 0.0 {
                DirichletPosterior::from_counts(c, alpha).map(Some)
            } else {
                Ok(None)
            }
        })
        .collect::<std::result::Result<_, _>>()?;

    let mut samples = Vec::with_capacity(n_samples);
    for _ in 0..n_samples {
        let mut probs = vec![0.0; n_groups * n_outcomes];
        for (g, post) in posteriors.iter().enumerate() {
            if let Some(post) = post {
                let draw = post.sample_thetas(rng, 1).pop().expect("one sample");
                probs[g * n_outcomes..(g + 1) * n_outcomes].copy_from_slice(&draw);
            } else {
                // Keep a valid (but irrelevant) uniform row for empty groups.
                for y in 0..n_outcomes {
                    probs[g * n_outcomes + y] = 1.0 / n_outcomes as f64;
                }
            }
        }
        samples.push(GroupOutcomes::new(
            base.outcome_labels().to_vec(),
            base.group_labels().to_vec(),
            probs,
            base.weights().to_vec(),
        )?);
    }
    Ok(ThetaClass::Samples(samples))
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_prob::contingency::{Axis, ContingencyTable};

    fn counts_2x2(n: f64) -> JointCounts {
        // P(yes|a) = 0.6, P(yes|b) = 0.4, scaled by n.
        let axes = vec![
            Axis::from_strs("y", &["no", "yes"]).unwrap(),
            Axis::from_strs("g", &["a", "b"]).unwrap(),
        ];
        let data = vec![0.4 * n, 0.6 * n, 0.6 * n, 0.4 * n];
        JointCounts::from_table(ContingencyTable::from_data(axes, data).unwrap(), "y").unwrap()
    }

    #[test]
    fn point_theta_equals_edf() {
        let jc = counts_2x2(100.0);
        let point = ThetaClass::Point(jc.group_outcomes(0.0).unwrap());
        assert_eq!(point.len(), 1);
        assert_eq!(point.epsilon().unwrap().epsilon, jc.edf().unwrap().epsilon);
    }

    #[test]
    fn sup_over_samples_is_at_least_point_estimate_mean_behaviour() {
        let jc = counts_2x2(200.0);
        let mut rng = Pcg32::new(7);
        let theta = posterior_theta(&jc, 1.0, 200, &mut rng).unwrap();
        assert_eq!(theta.len(), 200);
        let sup = theta.epsilon().unwrap().epsilon;
        let point = jc.edf().unwrap().epsilon;
        // The supremum over posterior draws exceeds the point estimate with
        // overwhelming probability.
        assert!(sup > point, "sup={sup} point={point}");
    }

    #[test]
    fn posterior_concentrates_with_data() {
        let mut rng = Pcg32::new(8);
        let small = posterior_theta(&counts_2x2(20.0), 1.0, 300, &mut rng).unwrap();
        let large = posterior_theta(&counts_2x2(20_000.0), 1.0, 300, &mut rng).unwrap();
        let (lo_s, hi_s) = small.epsilon_credible_interval(0.9).unwrap();
        let (lo_l, hi_l) = large.epsilon_credible_interval(0.9).unwrap();
        assert!(
            hi_l - lo_l < hi_s - lo_s,
            "large-data interval [{lo_l}, {hi_l}] should be narrower than [{lo_s}, {hi_s}]"
        );
        // With 20k records the interval brackets the true ε = ln(0.6/0.4).
        let truth = (0.6_f64 / 0.4).ln();
        assert!(lo_l < truth && truth < hi_l, "[{lo_l}, {hi_l}] vs {truth}");
    }

    #[test]
    fn empty_groups_stay_excluded_in_theta() {
        let axes = vec![
            Axis::from_strs("y", &["no", "yes"]).unwrap(),
            Axis::from_strs("g", &["a", "b", "empty"]).unwrap(),
        ];
        let data = vec![10.0, 10.0, 0.0, 10.0, 10.0, 0.0];
        let jc =
            JointCounts::from_table(ContingencyTable::from_data(axes, data).unwrap(), "y").unwrap();
        let mut rng = Pcg32::new(9);
        let theta = posterior_theta(&jc, 1.0, 50, &mut rng).unwrap();
        // Fair data → ε stays modest; the empty group must not blow it up.
        let eps = theta.epsilon().unwrap().epsilon;
        assert!(eps.is_finite());
        assert!(eps < 1.5, "eps={eps}");
    }

    #[test]
    fn invalid_arguments() {
        let jc = counts_2x2(10.0);
        let mut rng = Pcg32::new(1);
        assert!(posterior_theta(&jc, 1.0, 0, &mut rng).is_err());
        assert!(ThetaClass::Samples(vec![]).epsilon().is_err());
    }
}
