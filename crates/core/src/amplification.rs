//! Bias amplification (§4.1 of the paper).
//!
//! Non-negative differences `ε₂ − ε₁` between two mechanisms (over the same
//! `A` and Θ, with tightly computed ε) measure the additional fairness cost
//! of using mechanism 2 instead of mechanism 1. When ε₁ is the DF of a
//! labeled dataset and ε₂ the DF of a classifier trained on it, the
//! difference quantifies *bias amplification* in the sense of Zhao et al.

use serde::{Deserialize, Serialize};

/// The comparison of a mechanism's ε against a reference (typically the
/// training or test data's intrinsic ε).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BiasAmplification {
    /// ε of the mechanism under study (e.g. a trained classifier).
    pub epsilon_mechanism: f64,
    /// ε of the reference (e.g. the dataset itself).
    pub epsilon_reference: f64,
}

impl BiasAmplification {
    /// Creates the comparison.
    pub fn new(epsilon_mechanism: f64, epsilon_reference: f64) -> Self {
        Self {
            epsilon_mechanism,
            epsilon_reference,
        }
    }

    /// The amplification `ε₂ − ε₁`; positive means the mechanism is *less*
    /// fair than the reference, negative means it attenuates the bias.
    pub fn delta(&self) -> f64 {
        self.epsilon_mechanism - self.epsilon_reference
    }

    /// True when the mechanism amplifies the reference bias.
    pub fn amplifies(&self) -> bool {
        self.delta() > 0.0
    }

    /// The multiplicative increase in the worst-case expected-utility
    /// disparity: `e^{ε₂ − ε₁}` (≈ `1 + (ε₂ − ε₁)` for small differences, as
    /// noted in §4.1).
    pub fn utility_disparity_factor(&self) -> f64 {
        self.delta().exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_prob::numerics::approx_eq;

    #[test]
    fn delta_and_direction() {
        let amp = BiasAmplification::new(2.65, 2.06);
        assert!(approx_eq(amp.delta(), 0.59, 1e-12, 0.0));
        assert!(amp.amplifies());

        let rev = BiasAmplification::new(1.95, 2.06);
        assert!(approx_eq(rev.delta(), -0.11, 1e-12, 1e-12));
        assert!(!rev.amplifies(), "reverse discrimination attenuates bias");
    }

    #[test]
    fn utility_factor_small_delta_approximation() {
        // §4.1: e^{ε₂-ε₁} ≈ 1 + (ε₂-ε₁) for small deltas.
        let amp = BiasAmplification::new(1.05, 1.0);
        let f = amp.utility_disparity_factor();
        assert!(approx_eq(f, 1.0 + 0.05, 2e-3, 0.0), "{f}");
    }

    #[test]
    fn zero_delta_is_factor_one() {
        let amp = BiasAmplification::new(1.3, 1.3);
        assert_eq!(amp.delta(), 0.0);
        assert_eq!(amp.utility_disparity_factor(), 1.0);
        assert!(!amp.amplifies());
    }
}
