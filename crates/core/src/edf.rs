//! Empirical differential fairness from joint counts.
//!
//! [`JointCounts`] holds the joint tally `N[y, s₁, …, s_p]` of outcomes and
//! protected attributes. From it:
//!
//! - [`JointCounts::edf`] computes Eq. 6 of the paper:
//!   `e^-ε ≤ (N_{y,sᵢ}/N_{sᵢ}) · (N_{sⱼ}/N_{y,sⱼ}) ≤ e^ε`,
//! - [`JointCounts::edf_smoothed`] computes Eq. 7, the Dirichlet-multinomial
//!   posterior predictive `(N_{y,s} + α) / (N_s + |Y|α)`,
//! - [`JointCounts::marginal_to`] projects onto a subset `D` of the
//!   attributes; because counts marginalize additively, the resulting
//!   conditionals are exactly the `P(y|D) = Σ_E P(y|E,D) P(E|D)` of the
//!   Theorem 3.2 proof.

use crate::epsilon::{EpsilonResult, GroupOutcomes};
use crate::error::{DfError, Result};
use df_prob::contingency::{Axis, ContingencyTable};
use df_prob::estimate::{categorical_mle, dirichlet_posterior_predictive};
use df_prob::numerics::exactly_zero;

/// Joint counts of `(outcome, protected attributes…)`, canonicalized so the
/// outcome axis is first.
#[derive(Debug, Clone, PartialEq)]
pub struct JointCounts {
    table: ContingencyTable,
}

impl JointCounts {
    /// Wraps a contingency table, naming which axis holds the outcome. The
    /// table must have at least one protected-attribute axis and two
    /// outcome categories.
    pub fn from_table(table: ContingencyTable, outcome_axis: &str) -> Result<Self> {
        let pos = table.axis_position(outcome_axis)?;
        if table.ndim() < 2 {
            return Err(DfError::NotEnoughCategories {
                what: "protected attribute axes",
                needed: 1,
                present: table.ndim() - 1,
            });
        }
        if table.axes()[pos].len() < 2 {
            return Err(DfError::NotEnoughCategories {
                what: "outcomes",
                needed: 2,
                present: table.axes()[pos].len(),
            });
        }
        // Canonicalize: outcome first, attributes in their existing order.
        let mut keep: Vec<&str> = vec![outcome_axis];
        keep.extend(
            table
                .axes()
                .iter()
                .filter(|a| a.name() != outcome_axis)
                .map(|a| a.name()),
        );
        let table = table.marginalize(&keep)?;
        Ok(Self { table })
    }

    /// Builds joint counts directly from labeled records:
    /// each record is `(outcome_label, [attribute labels…])`.
    pub fn from_records<'a, I>(
        outcome_axis: Axis,
        attribute_axes: Vec<Axis>,
        records: I,
    ) -> Result<Self>
    where
        I: IntoIterator<Item = (&'a str, Vec<&'a str>)>,
    {
        let mut axes = vec![outcome_axis];
        axes.extend(attribute_axes);
        let mut table = ContingencyTable::zeros(axes).map_err(DfError::from)?;
        for (y, attrs) in records {
            let mut labels = Vec::with_capacity(attrs.len() + 1);
            labels.push(y);
            labels.extend(attrs);
            table.increment_by_labels(&labels)?;
        }
        Self::from_table_canonical(table)
    }

    fn from_table_canonical(table: ContingencyTable) -> Result<Self> {
        let name = table.axes()[0].name().to_string();
        Self::from_table(table, &name)
    }

    /// The underlying table (outcome axis first).
    pub fn table(&self) -> &ContingencyTable {
        &self.table
    }

    /// Outcome axis labels.
    pub fn outcome_labels(&self) -> &[String] {
        self.table.axes()[0].labels()
    }

    /// Protected-attribute axis names, in order.
    pub fn attribute_names(&self) -> Vec<&str> {
        self.table.axes()[1..].iter().map(|a| a.name()).collect()
    }

    /// Total number of records tallied.
    pub fn total(&self) -> f64 {
        self.table.total()
    }

    /// Projects onto a subset of the protected attributes (summing out the
    /// rest). Errors if `attrs` is empty or names an unknown attribute.
    pub fn marginal_to(&self, attrs: &[&str]) -> Result<JointCounts> {
        if attrs.is_empty() {
            return Err(DfError::Invalid(
                "subset of protected attributes must be nonempty".into(),
            ));
        }
        let outcome = self.table.axes()[0].name().to_string();
        if attrs.iter().any(|a| *a == outcome) {
            return Err(DfError::Invalid(format!(
                "`{outcome}` is the outcome axis, not a protected attribute"
            )));
        }
        let mut keep: Vec<&str> = vec![&outcome];
        keep.extend(attrs);
        let table = self.table.marginalize(&keep)?;
        Ok(JointCounts { table })
    }

    /// Group-conditional outcome probabilities, with Dirichlet smoothing
    /// `alpha ≥ 0` (0 = MLE / Eq. 6; α > 0 = Eq. 7).
    ///
    /// Group weights are the group totals `N_s`, so unobserved intersections
    /// are excluded from ε exactly as Definition 3.1 prescribes.
    pub fn group_outcomes(&self, alpha: f64) -> Result<GroupOutcomes> {
        let n_outcomes = self.table.axes()[0].len();
        let attr_axes = &self.table.axes()[1..];
        let n_groups: usize = attr_axes.iter().map(Axis::len).product();

        let mut probs = vec![0.0; n_groups * n_outcomes];
        let mut weights = vec![0.0; n_groups];
        let mut counts = vec![0.0; n_outcomes];
        let mut idx = vec![0usize; self.table.ndim()];

        // Group flat index: mixed-radix over the attribute axes (outcome
        // axis excluded), matching ProtectedSpace::flatten order.
        for g in 0..n_groups {
            let mut rem = g;
            for (k, axis) in attr_axes.iter().enumerate().rev() {
                idx[k + 1] = rem % axis.len();
                rem /= axis.len();
            }
            for (y, c) in counts.iter_mut().enumerate() {
                idx[0] = y;
                *c = self.table.get(&idx);
            }
            let total: f64 = counts.iter().sum();
            weights[g] = total;
            let est = if exactly_zero(alpha) {
                categorical_mle(&counts)
            } else {
                dirichlet_posterior_predictive(&counts, alpha)?
            };
            if let Some(p) = est {
                probs[g * n_outcomes..(g + 1) * n_outcomes].copy_from_slice(&p);
                if alpha > 0.0 && exactly_zero(total) {
                    // Smoothing defines a distribution even for empty groups,
                    // but an unobserved group is still excluded from ε (its
                    // empirical P(s) is zero).
                    weights[g] = 0.0;
                }
            }
        }

        let group_labels: Vec<String> = (0..n_groups)
            .map(|g| {
                let mut rem = g;
                let mut parts = vec![String::new(); attr_axes.len()];
                for (k, axis) in attr_axes.iter().enumerate().rev() {
                    let v = rem % axis.len();
                    rem /= axis.len();
                    parts[k] = format!("{}={}", axis.name(), axis.labels()[v]);
                }
                parts.join(", ")
            })
            .collect();

        GroupOutcomes::new(self.outcome_labels().to_vec(), group_labels, probs, weights)
    }

    /// Empirical differential fairness (Eq. 6): ε of the MLE conditionals.
    pub fn edf(&self) -> Result<EpsilonResult> {
        Ok(self.group_outcomes(0.0)?.epsilon())
    }

    /// Smoothed differential fairness (Eq. 7) with symmetric Dirichlet
    /// concentration `alpha` per outcome.
    pub fn edf_smoothed(&self, alpha: f64) -> Result<EpsilonResult> {
        Ok(self.group_outcomes(alpha)?.epsilon())
    }

    /// EDF of a subset of the protected attributes (marginalizing the rest),
    /// with optional smoothing.
    pub fn edf_subset(&self, attrs: &[&str], alpha: f64) -> Result<EpsilonResult> {
        self.marginal_to(attrs)?.edf_smoothed(alpha)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_prob::numerics::approx_eq;

    /// The paper's Table 1 (Simpson's paradox admissions data).
    /// Axes: outcome {admit, decline} × gender {A, B} × race {1, 2}.
    fn table1() -> JointCounts {
        let axes = vec![
            Axis::from_strs("outcome", &["admit", "decline"]).unwrap(),
            Axis::from_strs("gender", &["A", "B"]).unwrap(),
            Axis::from_strs("race", &["1", "2"]).unwrap(),
        ];
        // counts[y][g][r]: admits then declines.
        let data = vec![
            81.0, 192.0, // admit, gender A, race 1 & 2
            234.0, 55.0, // admit, gender B, race 1 & 2
            6.0, 71.0, // decline, A
            36.0, 25.0, // decline, B
        ];
        let table = ContingencyTable::from_data(axes, data).unwrap();
        JointCounts::from_table(table, "outcome").unwrap()
    }

    #[test]
    fn construction_validates() {
        let axes = vec![
            Axis::from_strs("outcome", &["a"]).unwrap(),
            Axis::from_strs("g", &["x", "y"]).unwrap(),
        ];
        let t = ContingencyTable::zeros(axes).unwrap();
        assert!(
            JointCounts::from_table(t, "outcome").is_err(),
            "needs 2 outcomes"
        );

        let axes = vec![Axis::from_strs("outcome", &["a", "b"]).unwrap()];
        let t = ContingencyTable::zeros(axes).unwrap();
        assert!(
            JointCounts::from_table(t, "outcome").is_err(),
            "needs attrs"
        );
    }

    #[test]
    fn outcome_axis_is_canonicalized_first() {
        let axes = vec![
            Axis::from_strs("g", &["x", "y"]).unwrap(),
            Axis::from_strs("y", &["no", "yes"]).unwrap(),
        ];
        let mut t = ContingencyTable::zeros(axes).unwrap();
        t.increment_by_labels(&["x", "yes"]).unwrap();
        let jc = JointCounts::from_table(t, "y").unwrap();
        assert_eq!(jc.table().axes()[0].name(), "y");
        assert_eq!(jc.outcome_labels(), &["no".to_string(), "yes".to_string()]);
        assert_eq!(jc.attribute_names(), vec!["g"]);
        assert_eq!(jc.total(), 1.0);
    }

    #[test]
    fn from_records_tallies() {
        let jc = JointCounts::from_records(
            Axis::from_strs("y", &["no", "yes"]).unwrap(),
            vec![Axis::from_strs("g", &["a", "b"]).unwrap()],
            vec![
                ("yes", vec!["a"]),
                ("yes", vec!["a"]),
                ("no", vec!["b"]),
                ("yes", vec!["b"]),
            ],
        )
        .unwrap();
        assert_eq!(jc.total(), 4.0);
        let go = jc.group_outcomes(0.0).unwrap();
        assert!(approx_eq(go.prob(0, 1), 1.0, 1e-14, 0.0)); // P(yes|a)
        assert!(approx_eq(go.prob(1, 1), 0.5, 1e-14, 0.0)); // P(yes|b)
    }

    #[test]
    fn table1_intersectional_edf_matches_paper() {
        // Paper §5.1: ε = 1.511 for A = Gender × Race.
        let eps = table1().edf().unwrap();
        assert!(approx_eq(eps.epsilon, 1.511, 1e-3, 0.0), "{}", eps.epsilon);
        // Witness is the "decline" outcome: B/race2 (0.3125) vs A/race1 (0.0690).
        let w = eps.witness.unwrap();
        assert_eq!(w.outcome, "decline");
    }

    #[test]
    fn table1_gender_marginal_matches_paper() {
        // Paper: ε = 0.2329 for A = Gender.
        let eps = table1().edf_subset(&["gender"], 0.0).unwrap();
        assert!(approx_eq(eps.epsilon, 0.2329, 1e-3, 0.0), "{}", eps.epsilon);
    }

    #[test]
    fn table1_race_marginal_matches_paper() {
        // Paper: ε = 0.8667 for A = Race.
        let eps = table1().edf_subset(&["race"], 0.0).unwrap();
        assert!(approx_eq(eps.epsilon, 0.8667, 1e-3, 0.0), "{}", eps.epsilon);
    }

    #[test]
    fn table1_theorem_bound_holds() {
        // Theorem 3.1: marginals are at most 2ε = 3.022.
        let jc = table1();
        let full = jc.edf().unwrap().epsilon;
        for attrs in [&["gender"][..], &["race"][..]] {
            let sub = jc.edf_subset(attrs, 0.0).unwrap().epsilon;
            assert!(
                sub <= 2.0 * full + 1e-12,
                "{attrs:?}: {sub} vs {}",
                2.0 * full
            );
        }
    }

    #[test]
    fn marginal_probabilities_are_weighted_not_averaged() {
        // P(admit | gender A) must be 273/350 = 0.78, i.e. count-weighted
        // across races (not the unweighted mean of 0.931 and 0.730).
        let jc = table1().marginal_to(&["gender"]).unwrap();
        let go = jc.group_outcomes(0.0).unwrap();
        assert!(approx_eq(go.prob(0, 0), 273.0 / 350.0, 1e-12, 0.0));
        assert!(approx_eq(go.prob(1, 0), 289.0 / 350.0, 1e-12, 0.0));
    }

    #[test]
    fn marginal_to_validates() {
        let jc = table1();
        assert!(jc.marginal_to(&[]).is_err());
        assert!(jc.marginal_to(&["outcome"]).is_err());
        assert!(jc.marginal_to(&["nope"]).is_err());
    }

    #[test]
    fn smoothing_matches_eq7_closed_form() {
        // Single attribute, two groups; α = 1.
        let jc = JointCounts::from_records(
            Axis::from_strs("y", &["no", "yes"]).unwrap(),
            vec![Axis::from_strs("g", &["a", "b"]).unwrap()],
            vec![
                ("yes", vec!["a"]),
                ("yes", vec!["a"]),
                ("yes", vec!["a"]),
                ("no", vec!["b"]),
            ],
        )
        .unwrap();
        let go = jc.group_outcomes(1.0).unwrap();
        // Group a: counts (no=0, yes=3) → (1/5, 4/5); group b: (2/3, 1/3).
        assert!(approx_eq(go.prob(0, 0), 0.2, 1e-14, 0.0));
        assert!(approx_eq(go.prob(0, 1), 0.8, 1e-14, 0.0));
        assert!(approx_eq(go.prob(1, 0), 2.0 / 3.0, 1e-14, 0.0));
        let eps = jc.edf_smoothed(1.0).unwrap();
        let expect = ((2.0 / 3.0) / 0.2_f64).ln();
        assert!(approx_eq(eps.epsilon, expect, 1e-12, 0.0));
    }

    #[test]
    fn smoothing_rescues_infinite_epsilon() {
        let jc = JointCounts::from_records(
            Axis::from_strs("y", &["no", "yes"]).unwrap(),
            vec![Axis::from_strs("g", &["a", "b"]).unwrap()],
            vec![("yes", vec!["a"]), ("no", vec!["b"])],
        )
        .unwrap();
        assert!(!jc.edf().unwrap().is_finite());
        assert!(jc.edf_smoothed(1.0).unwrap().is_finite());
    }

    #[test]
    fn unobserved_intersections_are_excluded_not_infinite() {
        // Group "c" never appears: Eq. 6 must skip it rather than divide by 0.
        let jc = JointCounts::from_records(
            Axis::from_strs("y", &["no", "yes"]).unwrap(),
            vec![Axis::from_strs("g", &["a", "b", "c"]).unwrap()],
            vec![
                ("yes", vec!["a"]),
                ("no", vec!["a"]),
                ("yes", vec!["b"]),
                ("no", vec!["b"]),
            ],
        )
        .unwrap();
        let eps = jc.edf().unwrap();
        assert_eq!(eps.epsilon, 0.0);
        // Smoothing must not resurrect the empty group either.
        let eps = jc.edf_smoothed(1.0).unwrap();
        assert_eq!(eps.epsilon, 0.0);
    }

    #[test]
    fn group_label_order_is_mixed_radix() {
        let jc = table1();
        let go = jc.group_outcomes(0.0).unwrap();
        assert_eq!(go.group_labels()[0], "gender=A, race=1");
        assert_eq!(go.group_labels()[1], "gender=A, race=2");
        assert_eq!(go.group_labels()[2], "gender=B, race=1");
        assert_eq!(go.group_labels()[3], "gender=B, race=2");
    }
}
