//! Mechanisms and estimation of their group-conditional outcome
//! probabilities.
//!
//! A mechanism `M(x)` assigns an outcome (possibly stochastically) to an
//! instance. To measure its differential fairness we need
//! `P(M(x) = y | s, θ)` for each intersection `s`, marginalizing `x ~ θ`.
//! [`estimate_group_outcomes`] does this empirically over a dataset:
//! randomized mechanisms report their full outcome distribution per instance
//! (Rao–Blackwellized tally), deterministic classifiers a point mass.

use crate::epsilon::GroupOutcomes;
use crate::error::{DfError, Result};
use df_prob::numerics::exactly_zero;
use serde::Serialize;

/// A (possibly randomized) mechanism over instances of type `X` with a fixed
/// finite outcome set.
pub trait Mechanism<X: ?Sized> {
    /// Outcome labels, fixed for the mechanism's lifetime.
    fn outcomes(&self) -> Vec<String>;

    /// The conditional outcome distribution `P(M(x) = · | x)`.
    /// Deterministic mechanisms return a one-hot vector.
    fn outcome_distribution(&self, x: &X) -> Vec<f64>;
}

/// A deterministic mechanism defined by a plain function returning an
/// outcome index.
pub struct FnMechanism<X, F: Fn(&X) -> usize> {
    outcomes: Vec<String>,
    f: F,
    _marker: std::marker::PhantomData<fn(&X)>,
}

impl<X, F: Fn(&X) -> usize> FnMechanism<X, F> {
    /// Wraps `f`; its return value indexes into `outcomes`.
    pub fn new(outcomes: Vec<String>, f: F) -> Self {
        Self {
            outcomes,
            f,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<X, F: Fn(&X) -> usize> Mechanism<X> for FnMechanism<X, F> {
    fn outcomes(&self) -> Vec<String> {
        self.outcomes.clone()
    }

    fn outcome_distribution(&self, x: &X) -> Vec<f64> {
        let mut dist = vec![0.0; self.outcomes.len()];
        let k = (self.f)(x);
        assert!(
            k < dist.len(),
            "mechanism returned out-of-range outcome {k}"
        );
        dist[k] = 1.0;
        dist
    }
}

/// Group-conditional probability estimate for a mechanism over a dataset.
#[derive(Debug, Clone, Serialize)]
pub struct MechanismEstimate {
    /// The estimated `P(M(x)=y | s)` table with empirical group weights.
    pub group_outcomes: GroupOutcomes,
    /// Number of instances tallied.
    pub n: usize,
}

/// Tallies `P(M(x) = y | s)` over `(group_index, instance)` pairs.
///
/// `group_labels` names the intersections; `group_of` yields each instance's
/// intersection index. Smoothing `alpha ≥ 0` applies the Eq. 7 posterior
/// predictive to the (expected) outcome tallies.
pub fn estimate_group_outcomes<X, M, I>(
    mechanism: &M,
    group_labels: Vec<String>,
    instances: I,
    alpha: f64,
) -> Result<MechanismEstimate>
where
    M: Mechanism<X>,
    I: IntoIterator<Item = (usize, X)>,
{
    let outcomes = mechanism.outcomes();
    let n_outcomes = outcomes.len();
    let n_groups = group_labels.len();
    if n_outcomes < 2 {
        return Err(DfError::NotEnoughCategories {
            what: "outcomes",
            needed: 2,
            present: n_outcomes,
        });
    }
    let mut tallies = vec![0.0f64; n_groups * n_outcomes];
    let mut n = 0usize;
    for (g, x) in instances {
        if g >= n_groups {
            return Err(DfError::Invalid(format!(
                "group index {g} out of range ({n_groups} groups)"
            )));
        }
        let dist = mechanism.outcome_distribution(&x);
        if dist.len() != n_outcomes {
            return Err(DfError::Invalid(format!(
                "mechanism returned {} outcome probabilities, expected {n_outcomes}",
                dist.len()
            )));
        }
        for (y, &p) in dist.iter().enumerate() {
            tallies[g * n_outcomes + y] += p;
        }
        n += 1;
    }

    let mut probs = vec![0.0; n_groups * n_outcomes];
    let mut weights = vec![0.0; n_groups];
    for g in 0..n_groups {
        let row = &tallies[g * n_outcomes..(g + 1) * n_outcomes];
        let total: f64 = row.iter().sum();
        weights[g] = total;
        let est = if exactly_zero(alpha) {
            df_prob::estimate::categorical_mle(row)
        } else {
            df_prob::estimate::dirichlet_posterior_predictive(row, alpha)?
        };
        if let Some(p) = est {
            if total > 0.0 {
                probs[g * n_outcomes..(g + 1) * n_outcomes].copy_from_slice(&p);
            }
        }
    }
    Ok(MechanismEstimate {
        group_outcomes: GroupOutcomes::new(outcomes, group_labels, probs, weights)?,
        n,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_prob::numerics::approx_eq;

    #[test]
    fn deterministic_threshold_mechanism() {
        // Score ≥ 10.5 → "yes" (the paper's Figure 2 mechanism shape).
        let mech = FnMechanism::new(vec!["no".into(), "yes".into()], |score: &f64| {
            usize::from(*score >= 10.5)
        });
        let data = vec![
            (0usize, 9.0),
            (0, 10.0),
            (0, 11.0),
            (1, 12.0),
            (1, 13.0),
            (1, 9.5),
        ];
        let est =
            estimate_group_outcomes(&mech, vec!["g1".into(), "g2".into()], data, 0.0).unwrap();
        assert_eq!(est.n, 6);
        let go = &est.group_outcomes;
        assert!(approx_eq(go.prob(0, 1), 1.0 / 3.0, 1e-14, 0.0));
        assert!(approx_eq(go.prob(1, 1), 2.0 / 3.0, 1e-14, 0.0));
        assert_eq!(go.weights(), &[3.0, 3.0]);
    }

    struct Randomized;
    impl Mechanism<u8> for Randomized {
        fn outcomes(&self) -> Vec<String> {
            vec!["no".into(), "yes".into()]
        }
        fn outcome_distribution(&self, x: &u8) -> Vec<f64> {
            // Group-dependent coin: exactly the Rao–Blackwellized path.
            match x {
                0 => vec![0.75, 0.25],
                _ => vec![0.25, 0.75],
            }
        }
    }

    #[test]
    fn randomized_mechanism_tallies_expected_probabilities() {
        let data = vec![(0usize, 0u8), (0, 0), (1, 1), (1, 1)];
        let est =
            estimate_group_outcomes(&Randomized, vec!["a".into(), "b".into()], data, 0.0).unwrap();
        let go = &est.group_outcomes;
        assert!(approx_eq(go.prob(0, 1), 0.25, 1e-14, 0.0));
        assert!(approx_eq(go.prob(1, 1), 0.75, 1e-14, 0.0));
        let eps = go.epsilon();
        assert!(approx_eq(eps.epsilon, 3.0_f64.ln(), 1e-12, 0.0));
    }

    #[test]
    fn unseen_group_gets_zero_weight() {
        let mech = FnMechanism::new(vec!["no".into(), "yes".into()], |_: &i32| 0);
        let est = estimate_group_outcomes(
            &mech,
            vec!["a".into(), "b".into(), "never".into()],
            vec![(0, 1), (1, 2)],
            0.0,
        )
        .unwrap();
        assert_eq!(est.group_outcomes.weights()[2], 0.0);
        assert_eq!(est.group_outcomes.populated_groups(), vec![0, 1]);
    }

    #[test]
    fn out_of_range_group_is_an_error() {
        let mech = FnMechanism::new(vec!["no".into(), "yes".into()], |_: &i32| 0);
        assert!(estimate_group_outcomes(&mech, vec!["a".into()], vec![(3, 1)], 0.0).is_err());
    }

    #[test]
    fn smoothing_applies_to_tallies() {
        let mech = FnMechanism::new(vec!["no".into(), "yes".into()], |x: &i32| {
            usize::from(*x > 0)
        });
        // Group a: 2 "yes"; group b: 2 "no" → unsmoothed ε infinite.
        let est0 = estimate_group_outcomes(
            &mech,
            vec!["a".into(), "b".into()],
            vec![(0usize, 1), (0, 2), (1, -1), (1, -2)],
            0.0,
        )
        .unwrap();
        assert!(!est0.group_outcomes.epsilon().is_finite());
        let est1 = estimate_group_outcomes(
            &mech,
            vec!["a".into(), "b".into()],
            vec![(0usize, 1), (0, 2), (1, -1), (1, -2)],
            1.0,
        )
        .unwrap();
        let eps = est1.group_outcomes.epsilon();
        assert!(eps.is_finite());
        // Eq. 7: (2+1)/(2+2) vs (0+1)/(2+2) → ln 3.
        assert!(approx_eq(eps.epsilon, 3.0_f64.ln(), 1e-12, 0.0));
    }
}
