//! Differential fairness of labeled datasets (Definitions 4.1 and 4.2).
//!
//! The paper extends DF from algorithms to data: deconstruct
//! `P(x, y) = P(x) P(y|x)`, treat the labeling process itself as the
//! mechanism `M(x) = y ~ P(y|x)`, and take `Θ = {P(x)}`. For discrete
//! outcomes the empirical version (Definition 4.2) reduces to ratios of
//! counts `N_{y,s} / N_s` — i.e. exactly [`JointCounts::edf`] — and the
//! model-based version (Definition 4.1) with a Dirichlet-multinomial model
//! reduces to Eq. 7. This module packages those readings with
//! dataset-oriented naming and adds the model-based posterior variant.

use crate::edf::JointCounts;
use crate::epsilon::EpsilonResult;
use crate::error::Result;
use crate::theta::{posterior_theta, ThetaClass};
use df_prob::rng::Pcg32;
use serde::Serialize;

/// How the dataset's label distribution is modeled.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub enum DataModel {
    /// Definition 4.2: the empirical distribution (Eq. 6).
    Empirical,
    /// Definition 4.1 with a Dirichlet-multinomial posterior predictive
    /// (Eq. 7) at the given concentration α.
    DirichletMultinomial {
        /// Symmetric prior concentration per outcome.
        alpha: f64,
    },
}

/// ε-DF of a labeled dataset under the selected model.
pub fn dataset_epsilon(counts: &JointCounts, model: DataModel) -> Result<EpsilonResult> {
    match model {
        DataModel::Empirical => counts.edf(),
        DataModel::DirichletMultinomial { alpha } => counts.edf_smoothed(alpha),
    }
}

/// Definition 4.1 with full posterior uncertainty: Θ is a set of posterior
/// draws of the group-conditional label distributions, and ε is the
/// supremum over Θ. Returns the Θ class so callers can also extract
/// credible intervals.
pub fn dataset_posterior_epsilon(
    counts: &JointCounts,
    alpha: f64,
    n_samples: usize,
    rng: &mut Pcg32,
) -> Result<(EpsilonResult, ThetaClass)> {
    let theta = posterior_theta(counts, alpha, n_samples, rng)?;
    let eps = theta.epsilon()?;
    Ok((eps, theta))
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_prob::contingency::{Axis, ContingencyTable};
    use df_prob::numerics::approx_eq;

    fn table1() -> JointCounts {
        let axes = vec![
            Axis::from_strs("outcome", &["admit", "decline"]).unwrap(),
            Axis::from_strs("gender", &["A", "B"]).unwrap(),
            Axis::from_strs("race", &["1", "2"]).unwrap(),
        ];
        let data = vec![81.0, 192.0, 234.0, 55.0, 6.0, 71.0, 36.0, 25.0];
        JointCounts::from_table(ContingencyTable::from_data(axes, data).unwrap(), "outcome")
            .unwrap()
    }

    #[test]
    fn empirical_model_is_eq6() {
        let eps = dataset_epsilon(&table1(), DataModel::Empirical).unwrap();
        assert!(approx_eq(eps.epsilon, 1.511, 1e-3, 0.0));
    }

    #[test]
    fn dirichlet_model_is_eq7() {
        let a = dataset_epsilon(&table1(), DataModel::DirichletMultinomial { alpha: 1.0 }).unwrap();
        let b = table1().edf_smoothed(1.0).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn posterior_epsilon_brackets_point_estimate() {
        let mut rng = Pcg32::new(99);
        let (sup, theta) = dataset_posterior_epsilon(&table1(), 1.0, 100, &mut rng).unwrap();
        let point = dataset_epsilon(&table1(), DataModel::Empirical)
            .unwrap()
            .epsilon;
        assert!(
            sup.epsilon >= point * 0.9,
            "sup={} point={point}",
            sup.epsilon
        );
        let (lo, hi) = theta.epsilon_credible_interval(0.9).unwrap();
        assert!(lo <= hi);
        assert!(sup.epsilon >= hi, "sup must dominate the interval");
    }
}
