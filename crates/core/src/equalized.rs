//! Differential equalized odds — the error-rate analogue of DF.
//!
//! §7.1 of the paper notes that "it is straightforward to extend
//! differential fairness to a definition analogous to equalized odds while
//! porting an analogous privacy guarantee of Equation 4, although we leave
//! the exploration of this for future work." This module is that extension:
//!
//! A mechanism is **ε-differentially equal-odds (DEO)** when, conditioned on
//! each true label `y*`, the distribution of its predictions satisfies the
//! DF ratio bound across protected intersections:
//!
//! ```text
//! e^-ε ≤ P(M(x) = ŷ | y* , sᵢ) / P(M(x) = ŷ | y*, sⱼ) ≤ e^ε
//! ```
//!
//! for all predictions ŷ, true labels y*, and populated pairs (sᵢ, sⱼ).
//! Setting `y* = deserving` only recovers a differential *equality of
//! opportunity*. The privacy reading carries over verbatim: given the
//! prediction *and* the true label, an adversary's posterior odds over the
//! protected intersection move by at most `e^ε`.

use crate::edf::JointCounts;
use crate::epsilon::{EpsilonResult, GroupOutcomes};
use crate::error::{DfError, Result};

/// Joint tally of `(true label, prediction, intersections…)`.
///
/// Constructed from per-record observations; computes the conditional DF of
/// predictions given each true label.
#[derive(Debug, Clone)]
pub struct EqualizedOddsCounts {
    /// One [`JointCounts`] of `(prediction, attrs…)` per true-label value.
    per_label: Vec<(String, JointCounts)>,
}

impl EqualizedOddsCounts {
    /// Builds the conditional tallies from records of
    /// `(true_label_index, prediction_index, group_index)`.
    ///
    /// `labels` and `predictions` name the outcome vocabularies;
    /// `group_labels` names the intersections (as produced by
    /// `DataFrame::group_indices`).
    pub fn from_records(
        labels: Vec<String>,
        predictions: Vec<String>,
        group_labels: Vec<String>,
        records: impl IntoIterator<Item = (usize, usize, usize)>,
    ) -> Result<Self> {
        use df_prob::contingency::{Axis, ContingencyTable};
        if labels.len() < 2 || predictions.len() < 2 {
            return Err(DfError::NotEnoughCategories {
                what: "labels/predictions",
                needed: 2,
                present: labels.len().min(predictions.len()),
            });
        }
        let n_groups = group_labels.len();
        let mut tables: Vec<ContingencyTable> = labels
            .iter()
            .map(|_| {
                ContingencyTable::zeros(vec![
                    Axis::new("prediction", predictions.clone())?,
                    Axis::new("group", group_labels.clone())?,
                ])
            })
            .collect::<std::result::Result<_, _>>()?;
        for (y, p, g) in records {
            if y >= labels.len() || p >= predictions.len() || g >= n_groups {
                return Err(DfError::Invalid(format!(
                    "record index out of range: (y={y}, p={p}, g={g})"
                )));
            }
            tables[y].increment(&[p, g]);
        }
        let per_label = labels
            .into_iter()
            .zip(tables)
            .map(|(label, t)| Ok((label, JointCounts::from_table(t, "prediction")?)))
            .collect::<Result<_>>()?;
        Ok(Self { per_label })
    }

    /// The per-true-label conditional ε values (with smoothing `alpha`).
    pub fn per_label_epsilon(&self, alpha: f64) -> Result<Vec<(String, EpsilonResult)>> {
        self.per_label
            .iter()
            .map(|(label, counts)| Ok((label.clone(), counts.edf_smoothed(alpha)?)))
            .collect()
    }

    /// The differential-equalized-odds ε: the worst conditional ε over true
    /// labels.
    pub fn epsilon(&self, alpha: f64) -> Result<EpsilonResult> {
        let mut worst: Option<EpsilonResult> = None;
        for (_, eps) in self.per_label_epsilon(alpha)? {
            match &worst {
                Some(w) if w.epsilon >= eps.epsilon => {}
                _ => worst = Some(eps),
            }
        }
        worst.ok_or_else(|| DfError::Invalid("no true-label strata".into()))
    }

    /// The conditional group-outcome table for one true label (for witness
    /// inspection and custom analyses).
    pub fn conditional_table(&self, label: &str, alpha: f64) -> Result<GroupOutcomes> {
        let (_, counts) = self
            .per_label
            .iter()
            .find(|(l, _)| l == label)
            .ok_or_else(|| DfError::Invalid(format!("unknown true label `{label}`")))?;
        counts.group_outcomes(alpha)
    }
}

/// Convenience: differential equality of *opportunity* — the conditional ε
/// restricted to the deserving label only (Hardt et al.'s relaxation,
/// ported to ratio form).
pub fn opportunity_epsilon(
    counts: &EqualizedOddsCounts,
    deserving_label: &str,
    alpha: f64,
) -> Result<EpsilonResult> {
    for (label, eps) in counts.per_label_epsilon(alpha)? {
        if label == deserving_label {
            return Ok(eps);
        }
    }
    Err(DfError::Invalid(format!(
        "unknown deserving label `{deserving_label}`"
    )))
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_prob::numerics::approx_eq;

    fn names(xs: &[&str]) -> Vec<String> {
        xs.iter().map(|s| s.to_string()).collect()
    }

    /// Build records realizing specified per-(label, group) TPR/FPR-style
    /// rates with `n` records per stratum.
    fn records_with_rates(
        rates: &[[f64; 2]], // [group][label] = P(pred=1 | label, group)
        n: usize,
    ) -> Vec<(usize, usize, usize)> {
        let mut out = Vec::new();
        for (g, row) in rates.iter().enumerate() {
            for (y, &rate) in row.iter().enumerate() {
                let positives = (rate * n as f64).round() as usize;
                for i in 0..n {
                    out.push((y, usize::from(i < positives), g));
                }
            }
        }
        out
    }

    #[test]
    fn perfectly_equal_rates_give_zero_epsilon() {
        let recs = records_with_rates(&[[0.1, 0.8], [0.1, 0.8]], 100);
        let eo = EqualizedOddsCounts::from_records(
            names(&["neg", "pos"]),
            names(&["pred0", "pred1"]),
            names(&["a", "b"]),
            recs,
        )
        .unwrap();
        let eps = eo.epsilon(0.0).unwrap();
        assert!(approx_eq(eps.epsilon, 0.0, 1e-12, 1e-12));
    }

    #[test]
    fn tpr_gap_is_detected_conditionally() {
        // Same overall positive rates can hide unequal error rates; DEO
        // conditions on the true label so the gap surfaces.
        // Group a: TPR 0.9, FPR 0.1. Group b: TPR 0.6, FPR 0.4.
        let recs = records_with_rates(&[[0.1, 0.9], [0.4, 0.6]], 1000);
        let eo = EqualizedOddsCounts::from_records(
            names(&["neg", "pos"]),
            names(&["pred0", "pred1"]),
            names(&["a", "b"]),
            recs,
        )
        .unwrap();
        let per = eo.per_label_epsilon(0.0).unwrap();
        // Conditional on neg: FPR ratio ln(0.4/0.1); conditional on pos:
        // worst of ln(0.9/0.6) and ln(0.4/0.1) on the miss side.
        let neg = &per[0].1;
        assert!(approx_eq(neg.epsilon, (0.4_f64 / 0.1).ln(), 1e-9, 1e-9));
        let overall = eo.epsilon(0.0).unwrap();
        assert!(overall.epsilon >= neg.epsilon - 1e-12);
    }

    #[test]
    fn opportunity_is_the_deserving_stratum() {
        let recs = records_with_rates(&[[0.1, 0.9], [0.1, 0.45]], 1000);
        let eo = EqualizedOddsCounts::from_records(
            names(&["neg", "pos"]),
            names(&["pred0", "pred1"]),
            names(&["a", "b"]),
            recs,
        )
        .unwrap();
        let opp = opportunity_epsilon(&eo, "pos", 0.0).unwrap();
        assert!(
            approx_eq(
                opp.epsilon,
                2.0_f64.ln().max((0.55_f64 / 0.1).ln().min(9.9)),
                1e-9,
                1e-2
            ) || opp.epsilon > 0.0
        );
        // Precisely: P(pred1|pos,a)=0.9 vs 0.45 → ln 2 on the hit side,
        // P(pred0|pos,·) = 0.1 vs 0.55 → ln 5.5 on the miss side.
        assert!(approx_eq(opp.epsilon, (0.55_f64 / 0.1).ln(), 1e-9, 1e-9));
        assert!(opportunity_epsilon(&eo, "zzz", 0.0).is_err());
    }

    #[test]
    fn conditional_table_lookup() {
        let recs = records_with_rates(&[[0.2, 0.7], [0.3, 0.7]], 10);
        let eo = EqualizedOddsCounts::from_records(
            names(&["neg", "pos"]),
            names(&["pred0", "pred1"]),
            names(&["a", "b"]),
            recs,
        )
        .unwrap();
        let t = eo.conditional_table("pos", 0.0).unwrap();
        assert_eq!(t.num_groups(), 2);
        assert!(approx_eq(t.prob(0, 1), 0.7, 1e-12, 0.0));
        assert!(eo.conditional_table("nope", 0.0).is_err());
    }

    #[test]
    fn validates_inputs() {
        assert!(EqualizedOddsCounts::from_records(
            names(&["only"]),
            names(&["p0", "p1"]),
            names(&["a"]),
            vec![],
        )
        .is_err());
        assert!(EqualizedOddsCounts::from_records(
            names(&["neg", "pos"]),
            names(&["p0", "p1"]),
            names(&["a"]),
            vec![(0, 0, 5)],
        )
        .is_err());
    }

    #[test]
    fn smoothing_rescues_empty_strata_cells() {
        // Group b never receives pred1 under label neg → Eq. 6 infinite.
        let recs = vec![
            (0usize, 1usize, 0usize),
            (0, 0, 0),
            (0, 0, 1),
            (0, 0, 1),
            (1, 1, 0),
            (1, 1, 1),
        ];
        let eo = EqualizedOddsCounts::from_records(
            names(&["neg", "pos"]),
            names(&["pred0", "pred1"]),
            names(&["a", "b"]),
            recs,
        )
        .unwrap();
        assert!(!eo.epsilon(0.0).unwrap().is_finite());
        assert!(eo.epsilon(1.0).unwrap().is_finite());
    }
}
