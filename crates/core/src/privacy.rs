//! The Bayesian privacy interpretation of differential fairness.
//!
//! Eq. 4 of the paper: an ε-DF mechanism guarantees that an adversary's
//! posterior odds between any two protected intersections move by at most a
//! factor `e^ε` relative to their prior odds:
//!
//! ```text
//! e^-ε · P(sᵢ|θ)/P(sⱼ|θ)  ≤  P(sᵢ|y,θ)/P(sⱼ|y,θ)  ≤  e^ε · P(sᵢ|θ)/P(sⱼ|θ).
//! ```
//!
//! Eq. 5: for any non-negative utility over outcomes, expected utilities of
//! any two groups differ by at most a factor `e^ε`.
//!
//! §3.3 calibrates ε against differential privacy: randomized response is
//! `ln 3`-DP, and ε < 1 is conventionally the "high privacy" regime.

use crate::epsilon::GroupOutcomes;
use crate::error::{DfError, Result};
use df_prob::numerics::{exactly_zero, log_ratio};
use serde::{Deserialize, Serialize};

/// ε of the classical randomized-response survey mechanism: `ln 3`.
pub const RANDOMIZED_RESPONSE_EPSILON: f64 = 1.098_612_288_668_109_8;

/// Qualitative reading of an ε value, following the conventions the paper
/// quotes from the differential-privacy literature (§3.3): guarantees are
/// strong below ε ≈ 1 and "almost meaningless" by ε ≈ 20.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PrivacyRegime {
    /// ε ≤ 1: the high-privacy / strong-fairness regime.
    High,
    /// 1 < ε ≤ ln 20 ≈ 3: moderate; outcome disparities up to 20×.
    Moderate,
    /// ln 20 < ε ≤ 10: weak; disparities of several orders of magnitude.
    Weak,
    /// ε > 10: effectively no guarantee.
    Meaningless,
}

impl PrivacyRegime {
    /// Classifies an ε value.
    pub fn of(epsilon: f64) -> PrivacyRegime {
        if epsilon <= 1.0 {
            PrivacyRegime::High
        } else if epsilon <= 20.0_f64.ln() {
            PrivacyRegime::Moderate
        } else if epsilon <= 10.0 {
            PrivacyRegime::Weak
        } else {
            PrivacyRegime::Meaningless
        }
    }
}

/// The worst-case posterior-odds shift realized by a mechanism: the maximum
/// over outcomes `y` and populated group pairs `(i, j)` of
/// `| ln [ P(sᵢ|y) / P(sⱼ|y) ] − ln [ P(sᵢ) / P(sⱼ) ] |`.
///
/// By Bayes' rule this equals `| ln P(y|sᵢ) − ln P(y|sⱼ) |`, so the returned
/// value coincides with the tightest ε — Eq. 4 is exactly tight. Computing
/// it through the posterior route provides an independent check (used in
/// tests) and a vendor-facing explanation of what an adversary learns.
pub fn max_posterior_odds_shift(table: &GroupOutcomes) -> Result<f64> {
    let populated = table.populated_groups();
    if populated.len() < 2 {
        return Ok(0.0);
    }
    let total_weight: f64 = populated.iter().map(|&g| table.weights()[g]).sum();
    if total_weight <= 0.0 {
        return Err(DfError::Invalid("no populated groups".into()));
    }
    let mut worst = 0.0f64;
    for y in 0..table.num_outcomes() {
        // P(y) = Σ_s P(y|s) P(s); P(s|y) ∝ P(y|s) P(s).
        for &i in &populated {
            for &j in &populated {
                if i == j {
                    continue;
                }
                let prior_odds = log_ratio(table.weights()[i], table.weights()[j]);
                let joint_i = table.prob(i, y) * table.weights()[i];
                let joint_j = table.prob(j, y) * table.weights()[j];
                // Skip outcome columns with no mass in either group: the
                // posterior is undefined there (the outcome never occurs).
                if exactly_zero(joint_i) && exactly_zero(joint_j) {
                    continue;
                }
                let posterior_odds = log_ratio(joint_i, joint_j);
                let shift = (posterior_odds - prior_odds).abs();
                if shift > worst {
                    worst = shift;
                }
            }
        }
    }
    Ok(worst)
}

/// Verifies the Eq. 5 utility bound: for the given utility over outcomes,
/// checks that every populated pair's expected-utility ratio is within
/// `e^ε`. Returns the maximal realized ratio.
pub fn max_utility_disparity(table: &GroupOutcomes, utility: &[f64]) -> Result<f64> {
    if utility.iter().any(|&u| !u.is_finite() || u < 0.0) {
        return Err(DfError::Invalid(
            "Eq. 5 requires a non-negative utility function".into(),
        ));
    }
    let us = table.expected_utilities(utility)?;
    let populated = table.populated_groups();
    let mut worst = 1.0f64;
    for &i in &populated {
        for &j in &populated {
            if i == j {
                continue;
            }
            let ratio = if us[j] > 0.0 {
                us[i] / us[j]
            } else if us[i] > 0.0 {
                f64::INFINITY
            } else {
                1.0
            };
            if ratio > worst {
                worst = ratio;
            }
        }
    }
    Ok(worst)
}

/// The randomized-response mechanism of §3.3: answer truthfully on heads,
/// otherwise answer by a second coin flip. Returns the group-outcome table
/// induced when "group" is the true sensitive bit — its ε is exactly `ln 3`.
pub fn randomized_response_table() -> GroupOutcomes {
    // P(report yes | truth yes) = 3/4, P(report yes | truth no) = 1/4.
    GroupOutcomes::with_uniform_weights(
        vec!["report_no".into(), "report_yes".into()],
        vec!["truth_no".into(), "truth_yes".into()],
        vec![0.75, 0.25, 0.25, 0.75],
    )
    .expect("static table is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_prob::numerics::approx_eq;

    fn figure2() -> GroupOutcomes {
        GroupOutcomes::with_uniform_weights(
            vec!["no".into(), "yes".into()],
            vec!["group1".into(), "group2".into()],
            vec![0.6915, 0.3085, 0.0668, 0.9332],
        )
        .unwrap()
    }

    #[test]
    fn posterior_shift_equals_epsilon() {
        // Eq. 4 is tight: the worst posterior-odds shift equals ε.
        let t = figure2();
        let eps = t.epsilon().epsilon;
        let shift = max_posterior_odds_shift(&t).unwrap();
        assert!(approx_eq(shift, eps, 1e-12, 1e-12), "{shift} vs {eps}");
    }

    #[test]
    fn posterior_shift_with_nonuniform_prior_still_equals_epsilon() {
        let t = GroupOutcomes::new(
            vec!["no".into(), "yes".into()],
            vec!["a".into(), "b".into()],
            vec![0.7, 0.3, 0.4, 0.6],
            vec![10.0, 90.0],
        )
        .unwrap();
        let shift = max_posterior_odds_shift(&t).unwrap();
        assert!(approx_eq(shift, t.epsilon().epsilon, 1e-12, 1e-12));
    }

    #[test]
    fn utility_disparity_bounded_by_exp_epsilon() {
        let t = figure2();
        let eps = t.epsilon();
        for utility in [&[0.0, 1.0][..], &[1.0, 0.0][..], &[0.3, 2.0][..]] {
            let disparity = max_utility_disparity(&t, utility).unwrap();
            assert!(
                disparity <= eps.probability_ratio_bound() + 1e-9,
                "utility {utility:?}: {disparity} > e^ε"
            );
        }
    }

    #[test]
    fn utility_must_be_nonnegative() {
        let t = figure2();
        assert!(max_utility_disparity(&t, &[-1.0, 1.0]).is_err());
    }

    #[test]
    fn loan_example_three_times_utility() {
        // §3.3: a ln(3)-DF approval process can award one group 3× the
        // expected utility of another.
        let t = GroupOutcomes::with_uniform_weights(
            vec!["deny".into(), "approve".into()],
            vec!["wm".into(), "ww".into()],
            vec![0.4, 0.6, 0.8, 0.2],
        )
        .unwrap();
        let eps = t.epsilon().epsilon;
        assert!(approx_eq(eps, 3.0_f64.ln(), 1e-12, 0.0));
        let disparity = max_utility_disparity(&t, &[0.0, 1.0]).unwrap();
        assert!(approx_eq(disparity, 3.0, 1e-12, 0.0));
    }

    #[test]
    fn randomized_response_is_ln3() {
        let t = randomized_response_table();
        let eps = t.epsilon().epsilon;
        assert!(approx_eq(eps, RANDOMIZED_RESPONSE_EPSILON, 1e-12, 0.0));
        assert!(approx_eq(eps, 3.0_f64.ln(), 1e-12, 0.0));
    }

    #[test]
    fn regime_classification() {
        assert_eq!(PrivacyRegime::of(0.5), PrivacyRegime::High);
        assert_eq!(PrivacyRegime::of(1.0), PrivacyRegime::High);
        assert_eq!(
            PrivacyRegime::of(RANDOMIZED_RESPONSE_EPSILON),
            PrivacyRegime::Moderate
        );
        assert_eq!(PrivacyRegime::of(2.337), PrivacyRegime::Moderate);
        assert_eq!(PrivacyRegime::of(5.0), PrivacyRegime::Weak);
        assert_eq!(PrivacyRegime::of(20.0), PrivacyRegime::Meaningless);
    }

    #[test]
    fn single_group_has_zero_shift() {
        let t = GroupOutcomes::new(
            vec!["no".into(), "yes".into()],
            vec!["a".into(), "b".into()],
            vec![0.5, 0.5, 0.1, 0.9],
            vec![1.0, 0.0],
        )
        .unwrap();
        assert_eq!(max_posterior_odds_shift(&t).unwrap(), 0.0);
    }
}
