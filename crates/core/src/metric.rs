//! The generic fairness-metric layer: every counts-functional
//! intersectional criterion on one set of machinery.
//!
//! The paper's ε-differential fairness is one point in a family of
//! metrics that are all functionals of the same group×outcome table:
//! given `P(y | s)` for every populated intersection `s`, each metric
//! summarizes the worst disparity in its own scale. Because everything
//! downstream of the tally — audits, sliding-window monitors, fleet
//! snapshots, change-point detectors, the HTTP service — only ever sees
//! counts, the whole family rides that machinery for free once the
//! statistic itself is abstracted.
//!
//! [`Metric`] is that abstraction. It composes with (rather than
//! replaces) [`EpsilonEstimator`]: the estimator decides how raw counts
//! become a probability table (MLE, Dirichlet smoothing, posterior
//! supremum), the metric decides what disparity functional to apply to
//! it. Four concrete metrics ship:
//!
//! | tag | definition | range |
//! |---|---|---|
//! | `eps-df` | `max_y max_{i,j} \|ln P(y\|sᵢ) − ln P(y\|sⱼ)\|` (Foulds & Pan, Definition 3.1) | `[0, ∞]` |
//! | `wc-ratio` | `max_y (1 − min_s P(y\|s) / max_s P(y\|s))` (Ghosh et al. 2021, arXiv:2101.01673) | `[0, 1]` |
//! | `wc-diff` | `max_y (max_s P(y\|s) − min_s P(y\|s))` (Ghosh et al. 2021) | `[0, 1]` |
//! | `alpha-if(alpha=A)` | `max_y [A·(1 − min_s P(y\|s)) + (1−A)·(1 − min_s P / max_s P)]` (Maheshwari et al. 2023, arXiv:2305.12495) | `[0, 1]` |
//! | `deo(label=L)` | worst per-true-label ε over the strata of axis `L` (differential equalized odds, §7.1) | `[0, ∞]` |
//!
//! Every metric returns an [`EpsilonResult`]: the statistic plus the
//! witnessing `(outcome, group_hi, group_lo)` triple, so reports,
//! snapshots, and the wire codec are shared unchanged. [`EpsilonDf`] is
//! the default everywhere and delegates to the estimator byte-for-byte,
//! so a configuration that never names a metric is indistinguishable
//! from the pre-metric code paths.
//!
//! Metric identity travels as the canonical [`Metric::tag`] string —
//! through snapshot schemas (and therefore the DFLT fingerprint),
//! server query strings, and rendered reports — and is resolved back
//! with [`metric_from_tag`]. An unknown tag is a typed
//! [`DfError::Invalid`], never a silent ε fallback: merging or decoding
//! a snapshot certified under a metric this build does not know must
//! fail loudly.
//!
//! Useful laws (pinned by `crates/core/tests/metric_properties.rs`):
//! all metrics are invariant under outcome/group relabeling; `wc-diff ≤
//! wc-ratio` pointwise; `eps-df`, `wc-ratio`, and `wc-diff` vanish on
//! product (independent) tables while `alpha-if` generally does not —
//! its welfare term `1 − min_s P(y|s)` also penalizes *leveling down*
//! (equalizing groups by making everyone worse off), the failure mode
//! [`LevelingDown`] diagnoses per group.

use crate::builder::EpsilonEstimator;
use crate::edf::JointCounts;
use crate::epsilon::{EpsilonResult, EpsilonWitness, GroupOutcomes};
use crate::error::{DfError, Result};
use serde::{Deserialize, Serialize};

/// A disparity functional over a group×outcome probability table.
///
/// Object-safe, like [`EpsilonEstimator`], so monitors and servers can
/// hold the configured metric behind a box; `Send + Sync` because fleet
/// shards and bootstrap workers evaluate it concurrently. The estimator
/// argument keeps the two axes of configuration orthogonal: one metric
/// can be certified under any estimation strategy.
pub trait Metric: Send + Sync {
    /// Human-readable display name (e.g. `worst-case ratio`).
    fn name(&self) -> String;

    /// The canonical machine tag (e.g. `wc-ratio`), used in snapshot
    /// schemas, query strings, and [`metric_from_tag`]. Must round-trip:
    /// `metric_from_tag(m.tag())` yields an equivalent metric.
    fn tag(&self) -> String;

    /// Evaluates the metric on a *raw* table (MLE probabilities with
    /// group-total weights), applying the estimator first. This is the
    /// monitor's per-push hot path.
    fn evaluate(
        &self,
        raw: &GroupOutcomes,
        estimator: &dyn EpsilonEstimator,
    ) -> Result<EpsilonResult>;

    /// Evaluates the metric on joint counts. The default derives the raw
    /// table and defers to [`Metric::evaluate`]; metrics that need the
    /// attribute factorization itself (per-label conditioning) override
    /// this.
    fn evaluate_counts(
        &self,
        counts: &JointCounts,
        estimator: &dyn EpsilonEstimator,
    ) -> Result<EpsilonResult> {
        self.evaluate(&counts.group_outcomes(0.0)?, estimator)
    }

    /// Evaluates the metric on the marginal of `counts` onto `attrs`
    /// (the per-subset entry point of the Theorem 3.1 lattice).
    fn evaluate_marginal(
        &self,
        counts: &JointCounts,
        attrs: &[&str],
        estimator: &dyn EpsilonEstimator,
    ) -> Result<EpsilonResult> {
        self.evaluate_counts(&counts.marginal_to(attrs)?, estimator)
    }

    /// Whether the metric needs the joint-counts factorization (true for
    /// per-label conditioning) rather than a flat group×outcome table.
    /// Callers holding counts should route through
    /// [`Metric::evaluate_counts`] when this returns true.
    fn requires_counts(&self) -> bool {
        false
    }

    /// Clones the metric behind the trait object (fleet shards must all
    /// certify with the *same* metric, or merged snapshots would compare
    /// incomparable numbers).
    fn clone_box(&self) -> Box<dyn Metric>;
}

impl Clone for Box<dyn Metric> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// Resolves a canonical metric tag back to the metric it names.
///
/// Accepted: `eps-df`, `wc-ratio`, `wc-diff`, `alpha-if` (α = 0.5),
/// `alpha-if(alpha=A)`, and `deo(label=L)`. Anything else is a typed
/// [`DfError::Invalid`] — decoding a snapshot or serving a query string
/// with an unknown metric must fail loudly, never silently fall back to
/// ε-DF.
pub fn metric_from_tag(tag: &str) -> Result<Box<dyn Metric>> {
    match tag {
        "eps-df" => return Ok(Box::new(EpsilonDf)),
        "wc-ratio" => return Ok(Box::new(WorstCaseRatio)),
        "wc-diff" => return Ok(Box::new(WorstCaseDiff)),
        "alpha-if" => return Ok(Box::new(AlphaIntersectional::new(0.5)?)),
        _ => {}
    }
    if let Some(alpha) = tag
        .strip_prefix("alpha-if(alpha=")
        .and_then(|r| r.strip_suffix(')'))
    {
        let alpha: f64 = alpha
            .parse()
            .map_err(|_| DfError::Invalid(format!("metric `{tag}`: `{alpha}` is not a number")))?;
        return Ok(Box::new(AlphaIntersectional::new(alpha)?));
    }
    if let Some(label) = tag
        .strip_prefix("deo(label=")
        .and_then(|r| r.strip_suffix(')'))
    {
        if label.is_empty() {
            return Err(DfError::Invalid(
                "metric `deo` needs a true-label axis name: deo(label=L)".into(),
            ));
        }
        return Ok(Box::new(DifferentialEqualizedOdds::new(label)));
    }
    Err(DfError::Invalid(format!(
        "unknown metric `{tag}`; known metrics: eps-df, wc-ratio, wc-diff, \
         alpha-if(alpha=A), deo(label=L)"
    )))
}

// ---------------------------------------------------------------------------
// The shared per-outcome min/max scan.
// ---------------------------------------------------------------------------

/// Per-outcome extremes over populated groups — the quantities every
/// metric in the family is a function of.
struct OutcomeExtremes {
    outcome: usize,
    max_p: f64,
    min_p: f64,
    g_hi: usize,
    g_lo: usize,
}

/// Scans the table once per outcome, mirroring
/// [`GroupOutcomes::epsilon`]'s extreme-tracking loop (including its
/// tie-breaks, so witnesses agree across metrics). `None` when fewer
/// than two groups are populated — every metric is then vacuously zero.
fn outcome_extremes(table: &GroupOutcomes) -> Option<Vec<OutcomeExtremes>> {
    let populated = table.populated_groups();
    if populated.len() < 2 {
        return None;
    }
    let mut out = Vec::with_capacity(table.num_outcomes());
    for y in 0..table.num_outcomes() {
        let mut max_p = f64::NEG_INFINITY;
        let mut min_p = f64::INFINITY;
        let (mut g_hi, mut g_lo) = (populated[0], populated[0]);
        for &g in &populated {
            let p = table.prob(g, y);
            if p > max_p {
                max_p = p;
                g_hi = g;
            }
            if p < min_p {
                min_p = p;
                g_lo = g;
            }
        }
        out.push(OutcomeExtremes {
            outcome: y,
            max_p,
            min_p,
            g_hi,
            g_lo,
        });
    }
    Some(out)
}

/// Folds per-outcome statistics into the worst one, with the same
/// tie-break as [`GroupOutcomes::epsilon`]: the first outcome attaining
/// the maximum wins, and a witness is always attached when two groups
/// are populated (even at statistic 0).
fn worst_outcome(
    table: &GroupOutcomes,
    extremes: &[OutcomeExtremes],
    statistic: impl Fn(&OutcomeExtremes) -> f64,
) -> EpsilonResult {
    let mut best = EpsilonResult {
        epsilon: 0.0,
        witness: None,
    };
    for e in extremes {
        let stat = statistic(e);
        if stat > best.epsilon || best.witness.is_none() && stat >= best.epsilon {
            best = EpsilonResult {
                epsilon: stat,
                witness: Some(EpsilonWitness {
                    outcome: table.outcome_labels()[e.outcome].clone(),
                    group_hi: table.group_labels()[e.g_hi].clone(),
                    group_lo: table.group_labels()[e.g_lo].clone(),
                    prob_hi: e.max_p,
                    prob_lo: e.min_p,
                }),
            };
        }
    }
    best
}

/// The vacuous result when fewer than two groups are populated.
fn vacuous() -> EpsilonResult {
    EpsilonResult {
        epsilon: 0.0,
        witness: None,
    }
}

/// `1 − min/max`, with the all-zero outcome column treated as fair (the
/// same convention as `log_ratio(0, 0) == 0` in the ε kernel).
fn ratio_shortfall(e: &OutcomeExtremes) -> f64 {
    if e.max_p > 0.0 {
        1.0 - e.min_p / e.max_p
    } else {
        0.0
    }
}

// ---------------------------------------------------------------------------
// Concrete metrics.
// ---------------------------------------------------------------------------

/// ε-differential fairness (the paper's Definition 3.1) — the default
/// metric, delegating to the estimator byte-for-byte, so configurations
/// that never name a metric behave exactly as before the metric layer
/// existed.
#[derive(Debug, Clone, Copy, Default)]
pub struct EpsilonDf;

impl Metric for EpsilonDf {
    fn name(&self) -> String {
        "eps-DF".to_string()
    }

    fn tag(&self) -> String {
        "eps-df".to_string()
    }

    fn evaluate(
        &self,
        raw: &GroupOutcomes,
        estimator: &dyn EpsilonEstimator,
    ) -> Result<EpsilonResult> {
        estimator.estimate(raw)
    }

    fn clone_box(&self) -> Box<dyn Metric> {
        Box::new(*self)
    }
}

/// Worst-case min/max *ratio* disparity (Ghosh et al. 2021):
/// `max_y (1 − min_s P(y|s) / max_s P(y|s))`, in `[0, 1]`. Zero iff
/// every populated group receives every outcome at the same rate; 1 when
/// some group is entirely shut out of an outcome another group receives
/// (the bounded analogue of ε = ∞).
#[derive(Debug, Clone, Copy, Default)]
pub struct WorstCaseRatio;

impl Metric for WorstCaseRatio {
    fn name(&self) -> String {
        "worst-case ratio".to_string()
    }

    fn tag(&self) -> String {
        "wc-ratio".to_string()
    }

    fn evaluate(
        &self,
        raw: &GroupOutcomes,
        estimator: &dyn EpsilonEstimator,
    ) -> Result<EpsilonResult> {
        let table = estimator.estimate_table(raw)?;
        match outcome_extremes(&table) {
            Some(ext) => Ok(worst_outcome(&table, &ext, ratio_shortfall)),
            None => Ok(vacuous()),
        }
    }

    fn clone_box(&self) -> Box<dyn Metric> {
        Box::new(*self)
    }
}

/// Worst-case min/max *difference* disparity (Ghosh et al. 2021):
/// `max_y (max_s P(y|s) − min_s P(y|s))`, in `[0, 1]`. Always at most
/// [`WorstCaseRatio`] on the same table (`max − min ≤ max(1 − min/max)`
/// since `max ≤ 1`).
#[derive(Debug, Clone, Copy, Default)]
pub struct WorstCaseDiff;

impl Metric for WorstCaseDiff {
    fn name(&self) -> String {
        "worst-case difference".to_string()
    }

    fn tag(&self) -> String {
        "wc-diff".to_string()
    }

    fn evaluate(
        &self,
        raw: &GroupOutcomes,
        estimator: &dyn EpsilonEstimator,
    ) -> Result<EpsilonResult> {
        let table = estimator.estimate_table(raw)?;
        match outcome_extremes(&table) {
            Some(ext) => Ok(worst_outcome(&table, &ext, |e| e.max_p - e.min_p)),
            None => Ok(vacuous()),
        }
    }

    fn clone_box(&self) -> Box<dyn Metric> {
        Box::new(*self)
    }
}

/// α-intersectional fairness (Maheshwari et al. 2023): per outcome,
/// `α · (1 − min_s P(y|s)) + (1 − α) · (1 − min_s P / max_s P)`,
/// maximized over outcomes.
///
/// The first term is a *welfare floor* — how badly off the worst group
/// is in absolute terms — and the second is the relative disparity of
/// [`WorstCaseRatio`]. At α = 0 this *is* `wc-ratio`; at α = 1 it is
/// purely welfarist. The welfare term is what makes the metric reject
/// *leveling down*: equalizing groups by shutting everyone out of a good
/// outcome lowers the relative disparity but raises `1 − min_s P`, so a
/// "fair" product table generally does not score zero. Use
/// [`AlphaIntersectional::leveling_down`] to see the per-group floors
/// behind the score.
#[derive(Debug, Clone, Copy)]
pub struct AlphaIntersectional {
    alpha: f64,
}

impl AlphaIntersectional {
    /// Builds the metric, validating `0 ≤ alpha ≤ 1`.
    pub fn new(alpha: f64) -> Result<Self> {
        if !(0.0..=1.0).contains(&alpha) || !alpha.is_finite() {
            return Err(DfError::Invalid(format!(
                "alpha-if interpolation weight must lie in [0, 1], got {alpha}"
            )));
        }
        Ok(Self { alpha })
    }

    /// The interpolation weight between the welfare and ratio terms.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The per-group welfare floors behind the score: estimator-applied
    /// `min_y P(y|s)` for every populated group. Comparing the
    /// diagnostics of two audits with [`LevelingDown::regressions`]
    /// flags groups made worse off even as the headline improved.
    pub fn leveling_down(
        &self,
        raw: &GroupOutcomes,
        estimator: &dyn EpsilonEstimator,
    ) -> Result<LevelingDown> {
        Ok(LevelingDown::of(&estimator.estimate_table(raw)?))
    }
}

impl Metric for AlphaIntersectional {
    fn name(&self) -> String {
        format!("alpha-IF(alpha={})", self.alpha)
    }

    fn tag(&self) -> String {
        format!("alpha-if(alpha={})", self.alpha)
    }

    fn evaluate(
        &self,
        raw: &GroupOutcomes,
        estimator: &dyn EpsilonEstimator,
    ) -> Result<EpsilonResult> {
        let table = estimator.estimate_table(raw)?;
        match outcome_extremes(&table) {
            Some(ext) => Ok(worst_outcome(&table, &ext, |e| {
                self.alpha * (1.0 - e.min_p) + (1.0 - self.alpha) * ratio_shortfall(e)
            })),
            None => Ok(vacuous()),
        }
    }

    fn clone_box(&self) -> Box<dyn Metric> {
        Box::new(*self)
    }
}

/// Per-group welfare floors `min_y P(y|s)` over populated groups — the
/// leveling-down diagnostic of Maheshwari et al. 2023.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LevelingDown {
    /// `(group label, floor)` for every populated group, in table order.
    pub floors: Vec<(String, f64)>,
}

impl LevelingDown {
    /// Reads the floors off an (estimator-applied) probability table.
    pub fn of(table: &GroupOutcomes) -> LevelingDown {
        let floors = table
            .populated_groups()
            .into_iter()
            .map(|g| {
                let floor = (0..table.num_outcomes())
                    .map(|y| table.prob(g, y))
                    .fold(f64::INFINITY, f64::min);
                (table.group_labels()[g].clone(), floor)
            })
            .collect();
        LevelingDown { floors }
    }

    /// Groups whose floor *fell* between `self` (before) and `later`
    /// (after) — the groups a seemingly improving headline leveled down.
    /// Groups absent from either side are skipped.
    pub fn regressions(&self, later: &LevelingDown) -> Vec<String> {
        later
            .floors
            .iter()
            .filter_map(|(group, after)| {
                self.floors
                    .iter()
                    .find(|(g, _)| g == group)
                    .filter(|(_, before)| *after < *before - 1e-12)
                    .map(|_| group.clone())
            })
            .collect()
    }
}

/// Differential equalized odds: ε computed *within* each stratum of a
/// designated true-label axis, reporting the worst stratum (the §7.1
/// error-rate extension, generalized to run on any joint-counts source
/// that carries the true label as an axis).
///
/// Requires the counts factorization ([`Metric::requires_counts`] is
/// true): conditioning on the label axis is meaningless on a flat
/// group×outcome table, and evaluating one there is a typed error. The
/// schema must carry at least one protected axis besides the label.
#[derive(Debug, Clone)]
pub struct DifferentialEqualizedOdds {
    label_axis: String,
}

impl DifferentialEqualizedOdds {
    /// Builds the metric for the given true-label axis name.
    pub fn new(label_axis: impl Into<String>) -> Self {
        Self {
            label_axis: label_axis.into(),
        }
    }

    /// The true-label axis this metric conditions on.
    pub fn label_axis(&self) -> &str {
        &self.label_axis
    }
}

impl Metric for DifferentialEqualizedOdds {
    fn name(&self) -> String {
        format!("DEO(label={})", self.label_axis)
    }

    fn tag(&self) -> String {
        format!("deo(label={})", self.label_axis)
    }

    fn evaluate(
        &self,
        _raw: &GroupOutcomes,
        _estimator: &dyn EpsilonEstimator,
    ) -> Result<EpsilonResult> {
        Err(DfError::Invalid(format!(
            "deo(label={}) needs a joint-counts source carrying the \
             true-label axis; a flat group-outcome table cannot be \
             conditioned",
            self.label_axis
        )))
    }

    fn evaluate_counts(
        &self,
        counts: &JointCounts,
        estimator: &dyn EpsilonEstimator,
    ) -> Result<EpsilonResult> {
        let table = counts.table();
        let outcome = table.axes()[0].name().to_string();
        let axis = table.axes()[1..]
            .iter()
            .find(|a| a.name() == self.label_axis)
            .ok_or_else(|| {
                DfError::Invalid(format!(
                    "deo needs a `{}` true-label axis among the protected \
                     attributes",
                    self.label_axis
                ))
            })?
            .clone();
        if table.ndim() < 3 {
            return Err(DfError::Invalid(format!(
                "deo(label={}) needs at least one protected axis besides \
                 the true-label axis",
                self.label_axis
            )));
        }
        // Worst stratum, first-maximum tie-break — same convention as the
        // per-outcome fold, so the result is deterministic in label order.
        let mut worst = vacuous();
        for label in axis.labels() {
            let stratum = table.condition(&self.label_axis, label)?;
            let jc = JointCounts::from_table(stratum, &outcome)?;
            let result = estimator.estimate(&jc.group_outcomes(0.0)?)?;
            if result.epsilon > worst.epsilon
                || worst.witness.is_none() && result.epsilon >= worst.epsilon
            {
                worst = result;
            }
        }
        Ok(worst)
    }

    fn evaluate_marginal(
        &self,
        counts: &JointCounts,
        attrs: &[&str],
        estimator: &dyn EpsilonEstimator,
    ) -> Result<EpsilonResult> {
        // The true-label axis must survive the marginalization for
        // conditioning to mean anything.
        let mut keep: Vec<&str> = attrs.to_vec();
        if !keep.iter().any(|a| *a == self.label_axis) {
            keep.push(&self.label_axis);
        }
        if keep.len() < 2 {
            // Only the label axis itself: conditioning leaves no protected
            // axes, so every stratum has a single group — vacuously fair.
            return Ok(vacuous());
        }
        self.evaluate_counts(&counts.marginal_to(&keep)?, estimator)
    }

    fn requires_counts(&self) -> bool {
        true
    }

    fn clone_box(&self) -> Box<dyn Metric> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{Empirical, Smoothed};
    use df_prob::contingency::{Axis, ContingencyTable};
    use df_prob::numerics::approx_eq;

    fn labels(xs: &[&str]) -> Vec<String> {
        xs.iter().map(|s| s.to_string()).collect()
    }

    /// The paper's Figure 2 table: P(no|g1)=0.6915, P(no|g2)=0.0668.
    fn figure2() -> GroupOutcomes {
        GroupOutcomes::with_uniform_weights(
            labels(&["no", "yes"]),
            labels(&["group1", "group2"]),
            vec![0.6915, 0.3085, 0.0668, 0.9332],
        )
        .unwrap()
    }

    fn table1() -> JointCounts {
        let axes = vec![
            Axis::from_strs("outcome", &["admit", "decline"]).unwrap(),
            Axis::from_strs("gender", &["A", "B"]).unwrap(),
            Axis::from_strs("race", &["1", "2"]).unwrap(),
        ];
        let data = vec![81.0, 192.0, 234.0, 55.0, 6.0, 71.0, 36.0, 25.0];
        JointCounts::from_table(ContingencyTable::from_data(axes, data).unwrap(), "outcome")
            .unwrap()
    }

    #[test]
    fn eps_df_delegates_to_the_estimator_exactly() {
        let raw = table1().group_outcomes(0.0).unwrap();
        for est in [
            Box::new(Empirical) as Box<dyn EpsilonEstimator>,
            Box::new(Smoothed { alpha: 1.0 }),
        ] {
            let via_metric = EpsilonDf.evaluate(&raw, &*est).unwrap();
            let direct = est.estimate(&raw).unwrap();
            assert_eq!(via_metric, direct);
        }
    }

    #[test]
    fn worst_case_ratio_matches_hand_computation() {
        // Worst outcome is "no": 1 − 0.0668/0.6915 = 0.90340.
        let r = WorstCaseRatio.evaluate(&figure2(), &Empirical).unwrap();
        assert!(approx_eq(r.epsilon, 1.0 - 0.0668 / 0.6915, 1e-12, 0.0));
        let w = r.witness.unwrap();
        assert_eq!(w.outcome, "no");
        assert_eq!(w.group_hi, "group1");
        assert_eq!(w.group_lo, "group2");
    }

    #[test]
    fn worst_case_diff_matches_hand_computation() {
        // Both outcomes have the same absolute gap |0.6915 − 0.0668|.
        let r = WorstCaseDiff.evaluate(&figure2(), &Empirical).unwrap();
        assert!(approx_eq(r.epsilon, 0.6915 - 0.0668, 1e-12, 0.0));
    }

    #[test]
    fn diff_never_exceeds_ratio() {
        for table in [figure2(), table1().group_outcomes(0.0).unwrap()] {
            let ratio = WorstCaseRatio.evaluate(&table, &Empirical).unwrap();
            let diff = WorstCaseDiff.evaluate(&table, &Empirical).unwrap();
            assert!(diff.epsilon <= ratio.epsilon + 1e-12);
        }
    }

    #[test]
    fn shut_out_group_is_ratio_one_not_infinity() {
        let t = GroupOutcomes::with_uniform_weights(
            labels(&["no", "yes"]),
            labels(&["a", "b"]),
            vec![1.0, 0.0, 0.5, 0.5],
        )
        .unwrap();
        assert!(t.epsilon().epsilon.is_infinite());
        let r = WorstCaseRatio.evaluate(&t, &Empirical).unwrap();
        assert_eq!(r.epsilon, 1.0);
    }

    #[test]
    fn fewer_than_two_populated_groups_is_vacuous_for_every_metric() {
        let t = GroupOutcomes::new(
            labels(&["no", "yes"]),
            labels(&["a", "b"]),
            vec![0.5, 0.5, 0.9, 0.1],
            vec![1.0, 0.0],
        )
        .unwrap();
        for metric in ["eps-df", "wc-ratio", "wc-diff", "alpha-if(alpha=0.5)"] {
            let m = metric_from_tag(metric).unwrap();
            let r = m.evaluate(&t, &Empirical).unwrap();
            assert_eq!(r.epsilon, 0.0, "{metric}");
            assert!(r.witness.is_none(), "{metric}");
        }
    }

    #[test]
    fn alpha_zero_is_exactly_worst_case_ratio() {
        let raw = table1().group_outcomes(0.0).unwrap();
        let a0 = AlphaIntersectional::new(0.0).unwrap();
        assert_eq!(
            a0.evaluate(&raw, &Empirical).unwrap(),
            WorstCaseRatio.evaluate(&raw, &Empirical).unwrap()
        );
    }

    #[test]
    fn alpha_if_penalizes_leveling_down() {
        // Fair but bad-for-all: everyone gets "good" at 5%. Relative
        // disparity is zero, yet the welfare term keeps the score high.
        let leveled = GroupOutcomes::with_uniform_weights(
            labels(&["bad", "good"]),
            labels(&["a", "b"]),
            vec![0.95, 0.05, 0.95, 0.05],
        )
        .unwrap();
        let half = AlphaIntersectional::new(0.5).unwrap();
        let ratio = WorstCaseRatio.evaluate(&leveled, &Empirical).unwrap();
        assert_eq!(ratio.epsilon, 0.0);
        let a = half.evaluate(&leveled, &Empirical).unwrap();
        assert!(approx_eq(a.epsilon, 0.5 * (1.0 - 0.05), 1e-12, 0.0));
        assert!(AlphaIntersectional::new(1.5).is_err());
        assert!(AlphaIntersectional::new(f64::NAN).is_err());
    }

    #[test]
    fn leveling_down_diagnostics_flag_falling_floors() {
        let before = GroupOutcomes::with_uniform_weights(
            labels(&["bad", "good"]),
            labels(&["a", "b"]),
            vec![0.6, 0.4, 0.2, 0.8],
        )
        .unwrap();
        // "b" is pulled down to meet "a": relative disparity improves,
        // b's floor falls from 0.2 to 0.1.
        let after = GroupOutcomes::with_uniform_weights(
            labels(&["bad", "good"]),
            labels(&["a", "b"]),
            vec![0.6, 0.4, 0.9, 0.1],
        )
        .unwrap();
        let half = AlphaIntersectional::new(0.5).unwrap();
        let d0 = half.leveling_down(&before, &Empirical).unwrap();
        let d1 = half.leveling_down(&after, &Empirical).unwrap();
        assert_eq!(d0.regressions(&d1), vec!["b".to_string()]);
        assert!(d0.regressions(&d0).is_empty());
    }

    #[test]
    fn deo_takes_the_worst_stratum() {
        // Axes: outcome × g × label. Stratum label=t0 is fair; label=t1
        // is skewed — DEO must report t1's ε.
        let axes = vec![
            Axis::from_strs("outcome", &["no", "yes"]).unwrap(),
            Axis::from_strs("g", &["a", "b"]).unwrap(),
            Axis::from_strs("label", &["t0", "t1"]).unwrap(),
        ];
        let data = vec![
            10.0, 10.0, // no, a, t0/t1
            10.0, 30.0, // no, b
            10.0, 30.0, // yes, a
            10.0, 10.0, // yes, b
        ];
        let counts =
            JointCounts::from_table(ContingencyTable::from_data(axes, data).unwrap(), "outcome")
                .unwrap();
        let deo = DifferentialEqualizedOdds::new("label");
        assert!(deo.requires_counts());
        let worst = deo.evaluate_counts(&counts, &Empirical).unwrap();
        // Stratum t1: P(no|a)=0.25 vs P(no|b)=0.75 → ε = ln 3.
        assert!(approx_eq(worst.epsilon, 3.0_f64.ln(), 1e-12, 0.0));
        // The flat-table entry point is a typed error, not a fallback.
        let raw = counts.group_outcomes(0.0).unwrap();
        assert!(matches!(
            deo.evaluate(&raw, &Empirical),
            Err(DfError::Invalid(_))
        ));
        // An unknown label axis is a typed error too.
        let bad = DifferentialEqualizedOdds::new("nope");
        assert!(bad.evaluate_counts(&counts, &Empirical).is_err());
    }

    #[test]
    fn deo_marginal_retains_the_label_axis() {
        let axes = vec![
            Axis::from_strs("outcome", &["no", "yes"]).unwrap(),
            Axis::from_strs("g", &["a", "b"]).unwrap(),
            Axis::from_strs("r", &["u", "v"]).unwrap(),
            Axis::from_strs("label", &["t0", "t1"]).unwrap(),
        ];
        let mut t = ContingencyTable::zeros(axes).unwrap();
        for (i, cell) in [
            [0, 0, 0, 0],
            [1, 0, 1, 1],
            [0, 1, 0, 1],
            [1, 1, 1, 0],
            [1, 0, 0, 1],
            [0, 1, 1, 0],
        ]
        .iter()
        .enumerate()
        {
            t.add(cell, 2.0 + i as f64);
        }
        let counts = JointCounts::from_table(t, "outcome").unwrap();
        let deo = DifferentialEqualizedOdds::new("label");
        // Marginal to ["g"] must quietly keep "label" for conditioning…
        let via_marginal = deo.evaluate_marginal(&counts, &["g"], &Empirical).unwrap();
        let explicit = deo
            .evaluate_counts(&counts.marginal_to(&["g", "label"]).unwrap(), &Empirical)
            .unwrap();
        assert_eq!(via_marginal, explicit);
        // …and the label-only subset is vacuous, not an error.
        let only_label = deo
            .evaluate_marginal(&counts, &["label"], &Empirical)
            .unwrap();
        assert_eq!(only_label.epsilon, 0.0);
        assert!(only_label.witness.is_none());
    }

    #[test]
    fn tags_round_trip_through_the_registry() {
        let metrics: Vec<Box<dyn Metric>> = vec![
            Box::new(EpsilonDf),
            Box::new(WorstCaseRatio),
            Box::new(WorstCaseDiff),
            Box::new(AlphaIntersectional::new(0.25).unwrap()),
            Box::new(DifferentialEqualizedOdds::new("label")),
        ];
        for m in metrics {
            let back = metric_from_tag(&m.tag()).unwrap();
            assert_eq!(back.tag(), m.tag());
            assert_eq!(back.name(), m.name());
            assert_eq!(back.requires_counts(), m.requires_counts());
            // Clone through the box keeps the tag.
            assert_eq!(m.clone_box().tag(), m.tag());
        }
        // The parameterless alpha-if spelling defaults to 0.5.
        assert_eq!(
            metric_from_tag("alpha-if").unwrap().tag(),
            "alpha-if(alpha=0.5)"
        );
    }

    #[test]
    fn unknown_tags_are_typed_errors_never_eps_fallback() {
        for tag in [
            "martian",
            "",
            "eps",
            "alpha-if(alpha=two)",
            "alpha-if(alpha=7)",
            "deo(label=)",
            "deo(label",
        ] {
            match metric_from_tag(tag) {
                Err(DfError::Invalid(_)) => {}
                Err(err) => panic!("{tag}: wrong error kind: {err}"),
                Ok(m) => panic!("{tag}: resolved to `{}`", m.tag()),
            }
        }
    }

    #[test]
    fn metrics_evaluate_identically_through_counts_and_raw_paths() {
        let counts = table1();
        let raw = counts.group_outcomes(0.0).unwrap();
        for tag in ["eps-df", "wc-ratio", "wc-diff", "alpha-if(alpha=0.5)"] {
            let m = metric_from_tag(tag).unwrap();
            assert!(!m.requires_counts(), "{tag}");
            assert_eq!(
                m.evaluate(&raw, &Smoothed { alpha: 1.0 }).unwrap(),
                m.evaluate_counts(&counts, &Smoothed { alpha: 1.0 })
                    .unwrap(),
                "{tag}"
            );
        }
    }
}
