//! One-call fairness audits — the legacy interface.
//!
//! **Deprecated**: [`FairnessAudit::run`] survives as a thin shim over the
//! composable [`crate::builder::Audit`] so downstream code migrates
//! gradually. New code should use the builder, which makes the ε-estimation
//! strategy, the subset policy, bootstrap uncertainty, and the baselines
//! independently configurable:
//!
//! ```
//! # use df_core::builder::{Audit, Smoothed, Baselines};
//! # use df_core::JointCounts;
//! # use df_prob::contingency::{Axis, ContingencyTable};
//! # let axes = vec![
//! #     Axis::from_strs("outcome", &["admit", "decline"]).unwrap(),
//! #     Axis::from_strs("gender", &["A", "B"]).unwrap(),
//! # ];
//! # let counts = JointCounts::from_table(
//! #     ContingencyTable::from_data(axes, vec![8.0, 5.0, 2.0, 5.0]).unwrap(),
//! #     "outcome").unwrap();
//! let report = Audit::of(&counts)
//!     .estimator(Smoothed { alpha: 1.0 })
//!     .baselines(Baselines::all().positive("admit"))
//!     .run()
//!     .unwrap();
//! ```

use crate::amplification::BiasAmplification;
use crate::builder::{Audit, Baselines, Empirical, Smoothed};
use crate::edf::JointCounts;
use crate::epsilon::EpsilonResult;
use crate::error::Result;
use crate::privacy::PrivacyRegime;
use crate::report::{fmt_epsilon, Align, TextTable};
use crate::subsets::SubsetAudit;
use serde::Serialize;

/// Configuration for a fairness audit.
#[derive(Debug, Clone, Serialize)]
pub struct AuditConfig {
    /// Dirichlet smoothing α for the smoothed columns (Eq. 7). The raw
    /// (Eq. 6) values are always reported too.
    pub alpha: f64,
    /// Outcome label treated as "positive"/advantaged for the baseline
    /// metrics (disparate impact). `None` skips those metrics.
    pub positive_outcome: Option<String>,
    /// Reference ε for bias amplification (e.g. the dataset ε when auditing
    /// a classifier). `None` skips the amplification row.
    pub reference_epsilon: Option<f64>,
}

impl Default for AuditConfig {
    fn default() -> Self {
        Self {
            alpha: 1.0,
            positive_outcome: None,
            reference_epsilon: None,
        }
    }
}

/// The complete audit result.
#[derive(Debug, Clone, Serialize)]
pub struct FairnessAudit {
    /// Number of records audited.
    pub n_records: f64,
    /// Per-subset ε via Eq. 6 (no smoothing).
    pub empirical: SubsetAudit,
    /// Per-subset ε via Eq. 7 at the configured α.
    pub smoothed: SubsetAudit,
    /// ε of the full intersection (smoothed), the headline number.
    pub epsilon: EpsilonResult,
    /// Privacy-regime interpretation of the headline ε.
    pub regime: PrivacyRegime,
    /// Worst-case demographic-parity (total variation) distance.
    pub demographic_parity: f64,
    /// Disparate-impact ratio for the configured positive outcome.
    pub disparate_impact: Option<f64>,
    /// Bias amplification vs. the configured reference.
    pub amplification: Option<BiasAmplification>,
    /// Subsets violating the 2ε Theorem 3.2 bound (always empty for
    /// correctly marginalized counts; populated entries indicate upstream
    /// data corruption).
    pub bound_violations: Vec<Vec<String>>,
}

impl FairnessAudit {
    /// Runs the audit over joint counts.
    ///
    /// Thin compatibility shim over the composable builder; see the
    /// [module docs](self) for the migration.
    #[deprecated(
        since = "0.2.0",
        note = "use df_core::builder::Audit, e.g. \
                `Audit::of(&counts).estimator(Smoothed { alpha }).run()`"
    )]
    pub fn run(counts: &JointCounts, config: &AuditConfig) -> Result<FairnessAudit> {
        let mut baselines = Baselines::all().with_subgroups(false);
        if let Some(label) = &config.positive_outcome {
            baselines = baselines.positive(label.clone());
        }
        let mut audit = Audit::of(counts)
            .estimator(Empirical)
            .estimator(Smoothed {
                alpha: config.alpha,
            })
            .baselines(baselines);
        if let Some(reference) = config.reference_epsilon {
            audit = audit.reference_epsilon(reference);
        }
        let report = audit.run()?;

        let [empirical_report, smoothed_report]: &[_; 2] = report
            .estimators
            .as_slice()
            .try_into()
            .expect("shim configures exactly two estimators");
        Ok(FairnessAudit {
            n_records: report.total_weight,
            empirical: SubsetAudit {
                alpha: 0.0,
                subsets: empirical_report.subsets.clone(),
            },
            smoothed: SubsetAudit {
                alpha: config.alpha,
                subsets: smoothed_report.subsets.clone(),
            },
            epsilon: report.epsilon,
            regime: report.regime,
            demographic_parity: report
                .demographic_parity
                .expect("shim always enables demographic parity"),
            disparate_impact: report.disparate_impact,
            amplification: report.amplification,
            bound_violations: report.bound_violations.unwrap_or_default(),
        })
    }

    /// Renders the per-subset table in the layout of the paper's Table 2.
    pub fn render_subset_table(&self) -> String {
        let mut t = TextTable::new(&["protected attributes", "eps-EDF", "eps-DF(alpha)"]).align(&[
            Align::Left,
            Align::Right,
            Align::Right,
        ]);
        for (raw, smooth) in self.empirical.subsets.iter().zip(&self.smoothed.subsets) {
            t.row(&[
                raw.attributes.join(", "),
                fmt_epsilon(raw.result.epsilon),
                fmt_epsilon(smooth.result.epsilon),
            ]);
        }
        t.render()
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use df_prob::contingency::{Axis, ContingencyTable};
    use df_prob::numerics::approx_eq;

    fn table1() -> JointCounts {
        let axes = vec![
            Axis::from_strs("outcome", &["admit", "decline"]).unwrap(),
            Axis::from_strs("gender", &["A", "B"]).unwrap(),
            Axis::from_strs("race", &["1", "2"]).unwrap(),
        ];
        let data = vec![81.0, 192.0, 234.0, 55.0, 6.0, 71.0, 36.0, 25.0];
        JointCounts::from_table(ContingencyTable::from_data(axes, data).unwrap(), "outcome")
            .unwrap()
    }

    #[test]
    fn audit_reproduces_paper_numbers() {
        let audit = FairnessAudit::run(
            &table1(),
            &AuditConfig {
                alpha: 1.0,
                positive_outcome: Some("admit".into()),
                reference_epsilon: Some(1.0),
            },
        )
        .unwrap();
        assert_eq!(audit.n_records, 700.0);
        let raw = audit.empirical.get(&["gender", "race"]).unwrap();
        assert!(approx_eq(raw.result.epsilon, 1.511, 1e-3, 0.0));
        assert_eq!(audit.regime, PrivacyRegime::Moderate);
        assert!(audit.bound_violations.is_empty());
        let amp = audit.amplification.unwrap();
        assert!(amp.amplifies());
        let di = audit.disparate_impact.unwrap();
        assert!(di > 0.0 && di < 1.0);
    }

    #[test]
    fn render_has_all_subsets() {
        let audit = FairnessAudit::run(&table1(), &AuditConfig::default()).unwrap();
        let s = audit.render_subset_table();
        assert!(s.contains("gender, race"));
        assert!(s.contains("1.511"));
        // 3 subsets + header + separator.
        assert_eq!(s.lines().count(), 5);
    }

    #[test]
    fn audit_serializes_to_json() {
        let audit = FairnessAudit::run(&table1(), &AuditConfig::default()).unwrap();
        let json = serde_json::to_string(&audit).unwrap();
        assert!(json.contains("\"epsilon\""));
        assert!(json.contains("gender"));
    }

    #[test]
    fn unknown_positive_outcome_is_an_error() {
        let cfg = AuditConfig {
            positive_outcome: Some("approve".into()),
            ..AuditConfig::default()
        };
        assert!(FairnessAudit::run(&table1(), &cfg).is_err());
    }
}
