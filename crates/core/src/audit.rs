//! One-call fairness audits.
//!
//! [`FairnessAudit`] bundles everything the paper's case study computes for a
//! dataset (and optionally a mechanism evaluated on it): per-subset ε with
//! and without smoothing, the Theorem 3.2 bound check, baseline metrics, the
//! privacy-regime interpretation, and bias amplification against a reference.
//! The result serializes to JSON so experiment tables can be regenerated.

use crate::amplification::BiasAmplification;
use crate::baselines::{demographic_parity_distance, disparate_impact_ratio};
use crate::edf::JointCounts;
use crate::epsilon::EpsilonResult;
use crate::error::Result;
use crate::privacy::PrivacyRegime;
use crate::report::{fmt_epsilon, Align, TextTable};
use crate::subsets::{subset_audit, SubsetAudit};
use serde::Serialize;

/// Configuration for a fairness audit.
#[derive(Debug, Clone, Serialize)]
pub struct AuditConfig {
    /// Dirichlet smoothing α for the smoothed columns (Eq. 7). The raw
    /// (Eq. 6) values are always reported too.
    pub alpha: f64,
    /// Outcome label treated as "positive"/advantaged for the baseline
    /// metrics (disparate impact). `None` skips those metrics.
    pub positive_outcome: Option<String>,
    /// Reference ε for bias amplification (e.g. the dataset ε when auditing
    /// a classifier). `None` skips the amplification row.
    pub reference_epsilon: Option<f64>,
}

impl Default for AuditConfig {
    fn default() -> Self {
        Self {
            alpha: 1.0,
            positive_outcome: None,
            reference_epsilon: None,
        }
    }
}

/// The complete audit result.
#[derive(Debug, Clone, Serialize)]
pub struct FairnessAudit {
    /// Number of records audited.
    pub n_records: f64,
    /// Per-subset ε via Eq. 6 (no smoothing).
    pub empirical: SubsetAudit,
    /// Per-subset ε via Eq. 7 at the configured α.
    pub smoothed: SubsetAudit,
    /// ε of the full intersection (smoothed), the headline number.
    pub epsilon: EpsilonResult,
    /// Privacy-regime interpretation of the headline ε.
    pub regime: PrivacyRegime,
    /// Worst-case demographic-parity (total variation) distance.
    pub demographic_parity: f64,
    /// Disparate-impact ratio for the configured positive outcome.
    pub disparate_impact: Option<f64>,
    /// Bias amplification vs. the configured reference.
    pub amplification: Option<BiasAmplification>,
    /// Subsets violating the 2ε Theorem 3.2 bound (always empty for
    /// correctly marginalized counts; populated entries indicate upstream
    /// data corruption).
    pub bound_violations: Vec<Vec<String>>,
}

impl FairnessAudit {
    /// Runs the audit over joint counts.
    pub fn run(counts: &JointCounts, config: &AuditConfig) -> Result<FairnessAudit> {
        let empirical = subset_audit(counts, 0.0)?;
        let smoothed = subset_audit(counts, config.alpha)?;
        let epsilon = smoothed.full_intersection().result.clone();
        let go = counts.group_outcomes(config.alpha)?;
        let demographic_parity = demographic_parity_distance(&go);
        let disparate_impact = match &config.positive_outcome {
            Some(label) => {
                let pos = counts
                    .outcome_labels()
                    .iter()
                    .position(|l| l == label)
                    .ok_or_else(|| {
                        crate::error::DfError::Invalid(format!("unknown outcome `{label}`"))
                    })?;
                Some(disparate_impact_ratio(&go, pos)?)
            }
            None => None,
        };
        let amplification = config
            .reference_epsilon
            .map(|r| BiasAmplification::new(epsilon.epsilon, r));
        let bound_violations = empirical
            .verify_bound(1e-9)
            .into_iter()
            .map(|s| s.attributes.clone())
            .collect();
        let regime = PrivacyRegime::of(epsilon.epsilon);
        Ok(FairnessAudit {
            n_records: counts.total(),
            empirical,
            smoothed,
            epsilon,
            regime,
            demographic_parity,
            disparate_impact,
            amplification,
            bound_violations,
        })
    }

    /// Renders the per-subset table in the layout of the paper's Table 2.
    pub fn render_subset_table(&self) -> String {
        let mut t = TextTable::new(&["protected attributes", "eps-EDF", "eps-DF(alpha)"]).align(&[
            Align::Left,
            Align::Right,
            Align::Right,
        ]);
        for (raw, smooth) in self.empirical.subsets.iter().zip(&self.smoothed.subsets) {
            t.row(&[
                raw.attributes.join(", "),
                fmt_epsilon(raw.result.epsilon),
                fmt_epsilon(smooth.result.epsilon),
            ]);
        }
        t.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_prob::contingency::{Axis, ContingencyTable};
    use df_prob::numerics::approx_eq;

    fn table1() -> JointCounts {
        let axes = vec![
            Axis::from_strs("outcome", &["admit", "decline"]).unwrap(),
            Axis::from_strs("gender", &["A", "B"]).unwrap(),
            Axis::from_strs("race", &["1", "2"]).unwrap(),
        ];
        let data = vec![81.0, 192.0, 234.0, 55.0, 6.0, 71.0, 36.0, 25.0];
        JointCounts::from_table(ContingencyTable::from_data(axes, data).unwrap(), "outcome")
            .unwrap()
    }

    #[test]
    fn audit_reproduces_paper_numbers() {
        let audit = FairnessAudit::run(
            &table1(),
            &AuditConfig {
                alpha: 1.0,
                positive_outcome: Some("admit".into()),
                reference_epsilon: Some(1.0),
            },
        )
        .unwrap();
        assert_eq!(audit.n_records, 700.0);
        let raw = audit.empirical.get(&["gender", "race"]).unwrap();
        assert!(approx_eq(raw.result.epsilon, 1.511, 1e-3, 0.0));
        assert_eq!(audit.regime, PrivacyRegime::Moderate);
        assert!(audit.bound_violations.is_empty());
        let amp = audit.amplification.unwrap();
        assert!(amp.amplifies());
        let di = audit.disparate_impact.unwrap();
        assert!(di > 0.0 && di < 1.0);
    }

    #[test]
    fn render_has_all_subsets() {
        let audit = FairnessAudit::run(&table1(), &AuditConfig::default()).unwrap();
        let s = audit.render_subset_table();
        assert!(s.contains("gender, race"));
        assert!(s.contains("1.511"));
        // 3 subsets + header + separator.
        assert_eq!(s.lines().count(), 5);
    }

    #[test]
    fn audit_serializes_to_json() {
        let audit = FairnessAudit::run(&table1(), &AuditConfig::default()).unwrap();
        let json = serde_json::to_string(&audit).unwrap();
        assert!(json.contains("\"epsilon\""));
        assert!(json.contains("gender"));
    }

    #[test]
    fn unknown_positive_outcome_is_an_error() {
        let cfg = AuditConfig {
            positive_outcome: Some("approve".into()),
            ..AuditConfig::default()
        };
        assert!(FairnessAudit::run(&table1(), &cfg).is_err());
    }
}
