//! The intersectionality property: per-subset ε and the Theorem 3.1/3.2
//! guarantee.
//!
//! Theorem 3.2 of the paper: if `M` is ε-DF in `(A, Θ)` with
//! `A = S₁ × … × S_p`, then `M` is 2ε-DF in `(D, Θ)` for **every** nonempty
//! proper subset `D` of the attributes. [`subset_audit`] computes the exact ε
//! for each subset from joint counts; [`SubsetAudit::verify_bound`] checks
//! the theorem's bound empirically.
//!
//! **A sharper bound.** For conditionals marginalized exactly from the same
//! joint — which is what [`subset_audit`] computes — the factor 2 can be
//! improved to 1: `P(y|D) = Σ_E P(y|E,D) P(E|D)` is a convex combination of
//! full-intersection conditionals, and for a fixed outcome all of those lie
//! within a multiplicative band of width `e^ε`, so every marginal ratio is
//! bounded by `e^ε` directly. [`SubsetAudit::verify_sharpened_bound`] checks
//! this stronger property (it can only fail when the subset conditionals are
//! estimated from *different* data than the full intersection's, e.g. under
//! disagreeing smoothing or separate Θ posteriors — then only the paper's 2ε
//! is guaranteed). The `ablation_bound` binary in df-bench explores both
//! bounds empirically.

use crate::edf::JointCounts;
use crate::epsilon::EpsilonResult;
use crate::error::Result;
use serde::{Deserialize, Serialize};

/// ε of one subset of the protected attributes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SubsetEpsilon {
    /// Attribute names in the subset, in declaration order.
    pub attributes: Vec<String>,
    /// The measured ε for this subset.
    pub result: EpsilonResult,
}

impl SubsetEpsilon {
    /// True when this entry covers exactly the named attributes
    /// (order-insensitive) — the lookup predicate shared by
    /// [`SubsetAudit::get`] and the builder's `EstimatorReport::get`.
    pub fn matches(&self, attrs: &[&str]) -> bool {
        self.attributes.len() == attrs.len()
            && attrs.iter().all(|a| self.attributes.iter().any(|b| b == a))
    }
}

/// Per-subset ε for every nonempty subset of the protected attributes.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SubsetAudit {
    /// Smoothing parameter α used (0 = Eq. 6, > 0 = Eq. 7).
    pub alpha: f64,
    /// Results, ordered by subset size then declaration order; the last
    /// entry is the full intersection `A`.
    pub subsets: Vec<SubsetEpsilon>,
}

impl SubsetAudit {
    /// ε of the full intersection `A`.
    pub fn full_intersection(&self) -> &SubsetEpsilon {
        self.subsets
            .last()
            .expect("audit always contains the full set")
    }

    /// Looks up a subset by attribute names (order-insensitive).
    pub fn get(&self, attrs: &[&str]) -> Option<&SubsetEpsilon> {
        self.subsets.iter().find(|s| s.matches(attrs))
    }

    /// Checks Theorem 3.2: every proper subset's ε is at most `2ε_full`
    /// (up to `tol` of floating slack). Returns the violating subsets, empty
    /// when the theorem's guarantee holds — as it must for correctly
    /// marginalized counts.
    pub fn verify_bound(&self, tol: f64) -> Vec<&SubsetEpsilon> {
        let full = self.full_intersection().result.epsilon;
        let bound = 2.0 * full;
        self.subsets[..self.subsets.len() - 1]
            .iter()
            .filter(|s| s.result.epsilon > bound + tol)
            .collect()
    }

    /// Checks the sharpened factor-1 bound (see the module docs): every
    /// proper subset's ε is at most `ε_full + tol`. Holds for exactly
    /// marginalized counts; returns violators otherwise.
    pub fn verify_sharpened_bound(&self, tol: f64) -> Vec<&SubsetEpsilon> {
        let full = self.full_intersection().result.epsilon;
        self.subsets[..self.subsets.len() - 1]
            .iter()
            .filter(|s| s.result.epsilon > full + tol)
            .collect()
    }

    /// The worst-case ratio `ε_subset / ε_full` over proper subsets — a
    /// tightness measure for the factor-2 bound (≤ 2 always; = 2 only when
    /// the bound is tight). Returns `None` when ε_full is 0 or infinite.
    pub fn bound_tightness(&self) -> Option<f64> {
        let full = self.full_intersection().result.epsilon;
        if full <= 0.0 || !full.is_finite() {
            return None;
        }
        self.subsets[..self.subsets.len() - 1]
            .iter()
            .map(|s| s.result.epsilon / full)
            .fold(None, |acc, r| Some(acc.map_or(r, |a: f64| a.max(r))))
    }
}

/// Computes ε for every nonempty subset of the protected attributes in
/// `counts`, with Dirichlet smoothing `alpha` (0 disables smoothing).
///
/// Cost is `O(2^p)` marginalizations; each marginalization touches every
/// cell of the joint table once.
pub fn subset_audit(counts: &JointCounts, alpha: f64) -> Result<SubsetAudit> {
    let names: Vec<String> = counts
        .attribute_names()
        .into_iter()
        .map(str::to_string)
        .collect();
    let p = names.len();
    let mut masks: Vec<u32> = (1..(1u32 << p)).collect();
    masks.sort_by_key(|m| (m.count_ones(), *m));

    let mut subsets = Vec::with_capacity(masks.len());
    for mask in masks {
        let attrs: Vec<&str> = (0..p)
            .filter(|i| mask & (1 << i) != 0)
            .map(|i| names[i].as_str())
            .collect();
        let result = counts.edf_subset(&attrs, alpha)?;
        subsets.push(SubsetEpsilon {
            attributes: attrs.iter().map(|s| s.to_string()).collect(),
            result,
        });
    }
    Ok(SubsetAudit { alpha, subsets })
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_prob::contingency::{Axis, ContingencyTable};
    use df_prob::numerics::approx_eq;
    use df_prob::rng::Pcg32;

    fn table1() -> JointCounts {
        let axes = vec![
            Axis::from_strs("outcome", &["admit", "decline"]).unwrap(),
            Axis::from_strs("gender", &["A", "B"]).unwrap(),
            Axis::from_strs("race", &["1", "2"]).unwrap(),
        ];
        let data = vec![81.0, 192.0, 234.0, 55.0, 6.0, 71.0, 36.0, 25.0];
        JointCounts::from_table(ContingencyTable::from_data(axes, data).unwrap(), "outcome")
            .unwrap()
    }

    #[test]
    fn audit_covers_all_subsets_in_order() {
        let audit = subset_audit(&table1(), 0.0).unwrap();
        let got: Vec<Vec<String>> = audit.subsets.iter().map(|s| s.attributes.clone()).collect();
        assert_eq!(
            got,
            vec![
                vec!["gender".to_string()],
                vec!["race".to_string()],
                vec!["gender".to_string(), "race".to_string()],
            ]
        );
        assert_eq!(audit.full_intersection().attributes.len(), 2);
    }

    #[test]
    fn audit_reproduces_paper_values() {
        let audit = subset_audit(&table1(), 0.0).unwrap();
        let eps = |attrs: &[&str]| audit.get(attrs).unwrap().result.epsilon;
        assert!(approx_eq(eps(&["gender"]), 0.2329, 1e-3, 0.0));
        assert!(approx_eq(eps(&["race"]), 0.8667, 1e-3, 0.0));
        assert!(approx_eq(eps(&["gender", "race"]), 1.511, 1e-3, 0.0));
    }

    #[test]
    fn get_is_order_insensitive() {
        let audit = subset_audit(&table1(), 0.0).unwrap();
        assert_eq!(
            audit.get(&["race", "gender"]).unwrap().result.epsilon,
            audit.get(&["gender", "race"]).unwrap().result.epsilon
        );
        assert!(audit.get(&["zip"]).is_none());
    }

    #[test]
    fn theorem_bound_holds_on_table1() {
        let audit = subset_audit(&table1(), 0.0).unwrap();
        assert!(audit.verify_bound(1e-12).is_empty());
        let t = audit.bound_tightness().unwrap();
        assert!(t <= 2.0 + 1e-12);
        // Table 1's marginals are far below the bound: 0.8667 / 1.511 ≈ 0.57.
        assert!(approx_eq(t, 0.8667 / 1.511, 1e-2, 0.0));
    }

    /// Randomized check of Theorem 3.2: for random joint counts over
    /// 3 attributes, every subset ε must be ≤ 2 ε_full.
    #[test]
    fn theorem_bound_holds_on_random_tables() {
        let mut rng = Pcg32::new(2024);
        for trial in 0..50 {
            let axes = vec![
                Axis::from_strs("y", &["0", "1"]).unwrap(),
                Axis::from_strs("a", &["a0", "a1"]).unwrap(),
                Axis::from_strs("b", &["b0", "b1", "b2"]).unwrap(),
                Axis::from_strs("c", &["c0", "c1"]).unwrap(),
            ];
            let cells = 2 * 2 * 3 * 2;
            // Strictly positive counts so every ε is finite.
            let data: Vec<f64> = (0..cells)
                .map(|_| 1.0 + (rng.next_f64() * 500.0).floor())
                .collect();
            let jc = JointCounts::from_table(ContingencyTable::from_data(axes, data).unwrap(), "y")
                .unwrap();
            let audit = subset_audit(&jc, 0.0).unwrap();
            assert_eq!(audit.subsets.len(), 7);
            let violations = audit.verify_bound(1e-9);
            assert!(
                violations.is_empty(),
                "trial {trial}: subsets {:?} exceed 2ε bound",
                violations
                    .iter()
                    .map(|v| (&v.attributes, v.result.epsilon))
                    .collect::<Vec<_>>()
            );
            // The sharpened convexity bound must hold too for exact
            // marginalization.
            assert!(
                audit.verify_sharpened_bound(1e-9).is_empty(),
                "trial {trial}: sharpened bound violated"
            );
        }
    }

    #[test]
    fn tightness_none_for_degenerate_cases() {
        // Perfectly fair table → ε_full = 0 → tightness undefined.
        let axes = vec![
            Axis::from_strs("y", &["0", "1"]).unwrap(),
            Axis::from_strs("a", &["a0", "a1"]).unwrap(),
        ];
        let data = vec![10.0, 10.0, 10.0, 10.0];
        let jc =
            JointCounts::from_table(ContingencyTable::from_data(axes, data).unwrap(), "y").unwrap();
        let audit = subset_audit(&jc, 0.0).unwrap();
        // Single attribute: only one subset (the full set); tightness over
        // proper subsets is vacuous.
        assert!(audit.bound_tightness().is_none());
    }

    #[test]
    fn smoothed_audit_uses_alpha() {
        let audit0 = subset_audit(&table1(), 0.0).unwrap();
        let audit1 = subset_audit(&table1(), 1.0).unwrap();
        assert_eq!(audit1.alpha, 1.0);
        // Smoothing pulls probabilities toward uniform → ε can only shrink
        // here (all counts positive and large, effect small but nonzero).
        assert!(
            audit1.full_intersection().result.epsilon < audit0.full_intersection().result.epsilon
        );
    }
}
