//! The ε kernel: differential fairness of a group×outcome probability table.
//!
//! Given `P(M(x) = y | s)` for every intersection `s` with positive
//! probability, the tightest ε for which Definition 3.1 holds is
//!
//! ```text
//! ε* = max_y  max_{sᵢ, sⱼ : P(sᵢ), P(sⱼ) > 0}  | ln P(y|sᵢ) − ln P(y|sⱼ) |
//! ```
//!
//! which is computed here in O(|groups| · |outcomes|) by tracking, per
//! outcome, the extreme log-probabilities rather than scanning all pairs.

use crate::error::{DfError, Result};
use df_prob::numerics::{exactly_zero, log_ratio};
use serde::{Deserialize, Serialize};

/// Where the maximal log-ratio was attained: the witness pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpsilonWitness {
    /// Outcome label achieving the maximum.
    pub outcome: String,
    /// Group with the higher probability of that outcome.
    pub group_hi: String,
    /// Group with the lower probability of that outcome.
    pub group_lo: String,
    /// Probability of the outcome in `group_hi`.
    pub prob_hi: f64,
    /// Probability of the outcome in `group_lo`.
    pub prob_lo: f64,
}

/// Result of an ε computation.
///
/// `epsilon` is `0.0` for perfectly equal outcome distributions, finite and
/// positive in general, and `f64::INFINITY` when some group has zero
/// probability of an outcome another group can receive (the ratio in
/// Definition 3.1 is then unbounded).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpsilonResult {
    /// The tightest ε satisfying Definition 3.1.
    pub epsilon: f64,
    /// The pair/outcome attaining it (absent when fewer than two groups are
    /// populated, in which case the definition holds vacuously with ε = 0).
    pub witness: Option<EpsilonWitness>,
}

impl EpsilonResult {
    /// True when ε is finite (no unbounded ratio).
    pub fn is_finite(&self) -> bool {
        self.epsilon.is_finite()
    }

    /// True when the mechanism is `target`-differentially fair,
    /// i.e. ε ≤ target.
    pub fn satisfies(&self, target: f64) -> bool {
        self.epsilon <= target
    }

    /// The multiplicative outcome-probability disparity `e^ε` — also the
    /// expected-utility disparity bound of Eq. 5.
    pub fn probability_ratio_bound(&self) -> f64 {
        self.epsilon.exp()
    }
}

/// Group-conditional outcome probabilities `P(y | s)` with group weights
/// `P(s)`.
///
/// Rows are groups, columns are outcomes; rows with zero weight are excluded
/// from ε per the `P(s|θ) > 0` side condition of Definition 3.1.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct GroupOutcomes {
    outcome_labels: Vec<String>,
    group_labels: Vec<String>,
    /// Row-major `groups × outcomes` probabilities.
    probs: Vec<f64>,
    /// Group marginal probabilities (or counts — only positivity matters for
    /// ε; magnitudes are used by the privacy and baseline modules).
    weights: Vec<f64>,
}

impl GroupOutcomes {
    /// Builds the table, validating shapes and that each populated group's
    /// outcome distribution is a probability vector (within 1e-6).
    pub fn new(
        outcome_labels: Vec<String>,
        group_labels: Vec<String>,
        probs: Vec<f64>,
        weights: Vec<f64>,
    ) -> Result<Self> {
        let n_outcomes = outcome_labels.len();
        let n_groups = group_labels.len();
        if n_outcomes < 2 {
            return Err(DfError::NotEnoughCategories {
                what: "outcomes",
                needed: 2,
                present: n_outcomes,
            });
        }
        if n_groups == 0 {
            return Err(DfError::NotEnoughCategories {
                what: "groups",
                needed: 1,
                present: 0,
            });
        }
        if probs.len() != n_groups * n_outcomes {
            return Err(DfError::Invalid(format!(
                "probability matrix has {} entries, expected {}",
                probs.len(),
                n_groups * n_outcomes
            )));
        }
        if weights.len() != n_groups {
            return Err(DfError::Invalid(format!(
                "weights has {} entries, expected {}",
                weights.len(),
                n_groups
            )));
        }
        if probs.iter().any(|p| !p.is_finite() || *p < 0.0) {
            return Err(DfError::Invalid(
                "probabilities must be finite and non-negative".into(),
            ));
        }
        if weights.iter().any(|w| !w.is_finite() || *w < 0.0) {
            return Err(DfError::Invalid(
                "group weights must be finite and non-negative".into(),
            ));
        }
        for g in 0..n_groups {
            if weights[g] > 0.0 {
                let row_sum: f64 = probs[g * n_outcomes..(g + 1) * n_outcomes].iter().sum();
                if (row_sum - 1.0).abs() > 1e-6 {
                    return Err(DfError::Invalid(format!(
                        "group `{}` outcome probabilities sum to {row_sum}, not 1",
                        group_labels[g]
                    )));
                }
            }
        }
        Ok(Self {
            outcome_labels,
            group_labels,
            probs,
            weights,
        })
    }

    /// Builds a table where every group is populated with equal weight —
    /// the common case for worked examples where `P(s)` is unspecified.
    pub fn with_uniform_weights(
        outcome_labels: Vec<String>,
        group_labels: Vec<String>,
        probs: Vec<f64>,
    ) -> Result<Self> {
        let n = group_labels.len();
        Self::new(outcome_labels, group_labels, probs, vec![1.0; n])
    }

    /// Outcome labels.
    pub fn outcome_labels(&self) -> &[String] {
        &self.outcome_labels
    }

    /// Group labels.
    pub fn group_labels(&self) -> &[String] {
        &self.group_labels
    }

    /// Number of groups.
    pub fn num_groups(&self) -> usize {
        self.group_labels.len()
    }

    /// Number of outcomes.
    pub fn num_outcomes(&self) -> usize {
        self.outcome_labels.len()
    }

    /// `P(y = outcome | s = group)`.
    #[inline]
    pub fn prob(&self, group: usize, outcome: usize) -> f64 {
        self.probs[group * self.outcome_labels.len() + outcome]
    }

    /// Group weights `P(s)` (unnormalized).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Indices of groups with positive weight.
    pub fn populated_groups(&self) -> Vec<usize> {
        (0..self.num_groups())
            .filter(|&g| self.weights[g] > 0.0)
            .collect()
    }

    /// The tightest ε of Definition 3.1 for this table.
    ///
    /// Per outcome, only the extreme probabilities among populated groups
    /// matter, so the scan is linear. Zero-probability handling follows the
    /// paper: if two populated groups both assign zero to an outcome the
    /// pair is vacuously bounded; if exactly one does, ε = ∞.
    pub fn epsilon(&self) -> EpsilonResult {
        let populated = self.populated_groups();
        if populated.len() < 2 {
            return EpsilonResult {
                epsilon: 0.0,
                witness: None,
            };
        }
        let mut best = EpsilonResult {
            epsilon: 0.0,
            witness: None,
        };
        for y in 0..self.num_outcomes() {
            // Track min/max probability over populated groups; a zero among
            // positive probabilities blows the ratio up to ∞.
            let mut max_p = f64::NEG_INFINITY;
            let mut min_p = f64::INFINITY;
            let (mut g_hi, mut g_lo) = (populated[0], populated[0]);
            for &g in &populated {
                let p = self.prob(g, y);
                if p > max_p {
                    max_p = p;
                    g_hi = g;
                }
                if p < min_p {
                    min_p = p;
                    g_lo = g;
                }
            }
            let gap = log_ratio(max_p, min_p);
            // `log_ratio(0, 0) == 0` covers the all-zero outcome column.
            if gap > best.epsilon || best.witness.is_none() && gap >= best.epsilon {
                best = EpsilonResult {
                    epsilon: gap,
                    witness: Some(EpsilonWitness {
                        outcome: self.outcome_labels[y].clone(),
                        group_hi: self.group_labels[g_hi].clone(),
                        group_lo: self.group_labels[g_lo].clone(),
                        prob_hi: max_p,
                        prob_lo: min_p,
                    }),
                };
            }
        }
        best
    }

    /// All pairwise log-ratios for one outcome — the quantities tabulated in
    /// the paper's Figure 2 ("Log Ratios of Probabilities"). Entry `(i, j)`
    /// is `ln(P(y|gᵢ) / P(y|gⱼ))` over populated groups only.
    pub fn log_ratio_table(&self, outcome: usize) -> Result<Vec<(usize, usize, f64)>> {
        if outcome >= self.num_outcomes() {
            return Err(DfError::Invalid(format!(
                "outcome index {outcome} out of range"
            )));
        }
        let populated = self.populated_groups();
        let mut out = Vec::with_capacity(populated.len() * populated.len().saturating_sub(1));
        for &i in &populated {
            for &j in &populated {
                if i != j {
                    out.push((
                        i,
                        j,
                        log_ratio(self.prob(i, outcome), self.prob(j, outcome)),
                    ));
                }
            }
        }
        Ok(out)
    }

    /// The per-group outcome *counts* implied by this table, recovered as
    /// `prob × weight`. Exact when the table came from raw tallies (where
    /// `weight` is the group total and `prob` the MLE); meaningless for
    /// already-smoothed tables.
    pub fn implied_counts(&self, group: usize) -> Vec<f64> {
        (0..self.num_outcomes())
            .map(|y| self.prob(group, y) * self.weights[group])
            .collect()
    }

    /// The Eq. 7 Dirichlet-smoothed version of this table: per populated
    /// group, the posterior predictive `(N_y + α) / (N + |Y|α)` over the
    /// implied counts. `alpha = 0` returns a clone (Eq. 6). Zero-weight
    /// groups keep zero weight, so unobserved intersections stay excluded
    /// from ε exactly as [`Self::epsilon`] prescribes.
    pub fn smoothed(&self, alpha: f64) -> Result<GroupOutcomes> {
        if alpha < 0.0 || !alpha.is_finite() {
            return Err(DfError::Invalid(format!(
                "smoothing alpha must be finite and non-negative, got {alpha}"
            )));
        }
        if exactly_zero(alpha) {
            return Ok(self.clone());
        }
        let n_outcomes = self.num_outcomes();
        let k = n_outcomes as f64;
        let mut probs = vec![0.0; self.num_groups() * n_outcomes];
        // Inlined `dirichlet_posterior_predictive` over the implied counts
        // (same arithmetic: compensated-sum total, `(c + α)/(N + Kα)` per
        // cell), reusing one scratch buffer — this sits on the monitor's
        // per-push hot path, where a Vec allocation per group is the
        // dominant cost.
        let mut counts = vec![0.0; n_outcomes];
        for g in 0..self.num_groups() {
            for (y, c) in counts.iter_mut().enumerate() {
                *c = self.prob(g, y) * self.weights[g];
            }
            let total = df_prob::numerics::stable_sum(&counts);
            let denom = total + k * alpha;
            for (y, &c) in counts.iter().enumerate() {
                probs[g * n_outcomes + y] = (c + alpha) / denom;
            }
        }
        GroupOutcomes::new(
            self.outcome_labels.clone(),
            self.group_labels.clone(),
            probs,
            self.weights.clone(),
        )
    }

    /// Expected utility `E[u(y) | s]` per group for a caller-supplied utility
    /// over outcomes (Eq. 5 of the paper).
    pub fn expected_utilities(&self, utility: &[f64]) -> Result<Vec<f64>> {
        if utility.len() != self.num_outcomes() {
            return Err(DfError::Invalid(format!(
                "utility has {} entries, expected {}",
                utility.len(),
                self.num_outcomes()
            )));
        }
        Ok((0..self.num_groups())
            .map(|g| {
                (0..self.num_outcomes())
                    .map(|y| self.prob(g, y) * utility[y])
                    .sum()
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_prob::numerics::approx_eq;

    fn labels(xs: &[&str]) -> Vec<String> {
        xs.iter().map(|s| s.to_string()).collect()
    }

    /// The paper's Figure 2 worked example.
    fn figure2_table() -> GroupOutcomes {
        GroupOutcomes::with_uniform_weights(
            labels(&["no", "yes"]),
            labels(&["group1", "group2"]),
            vec![0.6915, 0.3085, 0.0668, 0.9332],
        )
        .unwrap()
    }

    #[test]
    fn validation_catches_shape_errors() {
        assert!(
            GroupOutcomes::with_uniform_weights(labels(&["y"]), labels(&["g"]), vec![1.0]).is_err()
        );
        assert!(GroupOutcomes::with_uniform_weights(
            labels(&["a", "b"]),
            labels(&["g"]),
            vec![0.5]
        )
        .is_err());
        assert!(GroupOutcomes::new(
            labels(&["a", "b"]),
            labels(&["g"]),
            vec![0.5, 0.5],
            vec![1.0, 1.0]
        )
        .is_err());
        // Row not summing to 1.
        assert!(GroupOutcomes::with_uniform_weights(
            labels(&["a", "b"]),
            labels(&["g"]),
            vec![0.5, 0.6]
        )
        .is_err());
    }

    #[test]
    fn figure2_epsilon_matches_paper() {
        // The paper reports ε = 2.337, attained on outcome "no".
        let eps = figure2_table().epsilon();
        assert!(approx_eq(eps.epsilon, 2.337, 2e-3, 0.0), "{}", eps.epsilon);
        let w = eps.witness.unwrap();
        assert_eq!(w.outcome, "no");
        assert_eq!(w.group_hi, "group1");
        assert_eq!(w.group_lo, "group2");
    }

    #[test]
    fn figure2_log_ratio_table_matches_paper() {
        // Paper: log ratios 2.337 / -2.337 (no) and -1.107 / 1.107 (yes).
        let t = figure2_table();
        let no = t.log_ratio_table(0).unwrap();
        assert!(no
            .iter()
            .any(|&(i, j, r)| i == 0 && j == 1 && approx_eq(r, 2.337, 2e-3, 0.0)));
        let yes = t.log_ratio_table(1).unwrap();
        assert!(yes
            .iter()
            .any(|&(i, j, r)| i == 0 && j == 1 && approx_eq(r, -1.107, 2e-3, 0.0)));
        assert!(t.log_ratio_table(5).is_err());
    }

    #[test]
    fn equal_distributions_have_zero_epsilon() {
        let t = GroupOutcomes::with_uniform_weights(
            labels(&["no", "yes"]),
            labels(&["a", "b", "c"]),
            vec![0.3, 0.7, 0.3, 0.7, 0.3, 0.7],
        )
        .unwrap();
        let eps = t.epsilon();
        assert_eq!(eps.epsilon, 0.0);
        assert!(eps.satisfies(0.0));
    }

    #[test]
    fn zero_probability_in_one_group_gives_infinite_epsilon() {
        let t = GroupOutcomes::with_uniform_weights(
            labels(&["no", "yes"]),
            labels(&["a", "b"]),
            vec![1.0, 0.0, 0.5, 0.5],
        )
        .unwrap();
        let eps = t.epsilon();
        assert_eq!(eps.epsilon, f64::INFINITY);
        assert!(!eps.is_finite());
        let w = eps.witness.unwrap();
        assert_eq!(w.outcome, "yes");
        assert_eq!(w.prob_lo, 0.0);
    }

    #[test]
    fn shared_zero_outcome_is_vacuous() {
        // Both groups assign zero to outcome "c": no constraint from it.
        let t = GroupOutcomes::with_uniform_weights(
            labels(&["a", "b", "c"]),
            labels(&["g1", "g2"]),
            vec![0.4, 0.6, 0.0, 0.5, 0.5, 0.0],
        )
        .unwrap();
        let eps = t.epsilon();
        assert!(eps.is_finite());
        assert!(approx_eq(
            eps.epsilon,
            (0.6_f64 / 0.5).ln().max((0.5_f64 / 0.4).ln()),
            1e-12,
            0.0
        ));
    }

    #[test]
    fn zero_weight_groups_are_excluded() {
        // Group "ghost" would make ε infinite, but has weight 0 (P(s)=0) so
        // Definition 3.1 excludes it.
        let t = GroupOutcomes::new(
            labels(&["no", "yes"]),
            labels(&["a", "b", "ghost"]),
            vec![0.5, 0.5, 0.4, 0.6, 1.0, 0.0],
            vec![10.0, 10.0, 0.0],
        )
        .unwrap();
        let eps = t.epsilon();
        assert!(eps.is_finite());
        assert!(approx_eq(
            eps.epsilon,
            (0.6_f64 / 0.5).ln().max((0.5_f64 / 0.4).ln()),
            1e-12,
            0.0
        ));
    }

    #[test]
    fn single_populated_group_is_vacuously_fair() {
        let t = GroupOutcomes::new(
            labels(&["no", "yes"]),
            labels(&["a", "b"]),
            vec![0.5, 0.5, 0.9, 0.1],
            vec![1.0, 0.0],
        )
        .unwrap();
        let eps = t.epsilon();
        assert_eq!(eps.epsilon, 0.0);
        assert!(eps.witness.is_none());
    }

    #[test]
    fn epsilon_is_symmetric_in_group_order() {
        let a = GroupOutcomes::with_uniform_weights(
            labels(&["no", "yes"]),
            labels(&["g1", "g2"]),
            vec![0.7, 0.3, 0.2, 0.8],
        )
        .unwrap();
        let b = GroupOutcomes::with_uniform_weights(
            labels(&["no", "yes"]),
            labels(&["g2", "g1"]),
            vec![0.2, 0.8, 0.7, 0.3],
        )
        .unwrap();
        assert!(approx_eq(
            a.epsilon().epsilon,
            b.epsilon().epsilon,
            1e-14,
            0.0
        ));
    }

    #[test]
    fn ratio_bound_is_exp_epsilon() {
        let eps = figure2_table().epsilon();
        // Paper: e^ε ≈ 10.35.
        assert!(approx_eq(eps.probability_ratio_bound(), 10.35, 2e-2, 0.0));
    }

    #[test]
    fn expected_utilities_eq5() {
        // Loan utility: u(yes) = 1, u(no) = 0. Disparity must be ≤ e^ε.
        let t = figure2_table();
        let u = t.expected_utilities(&[0.0, 1.0]).unwrap();
        assert!(approx_eq(u[0], 0.3085, 1e-12, 0.0));
        assert!(approx_eq(u[1], 0.9332, 1e-12, 0.0));
        let eps = t.epsilon();
        assert!(u[1] / u[0] <= eps.probability_ratio_bound() + 1e-12);
        assert!(t.expected_utilities(&[1.0]).is_err());
    }
}
