//! The sharded streaming engine: joint counts from chunked record sources.
//!
//! The ε kernel only ever needs the joint counts `N[y, s₁, …, s_p]`
//! (Eq. 6/7, Definition 3.1), and counts form a commutative monoid under
//! cell-wise addition (`df_prob::partial`). That makes the audit hot path
//! embarrassingly parallel: partition the records into chunks, hand the
//! chunks to `N` worker threads each owning a private
//! [`PartialCounts`] shard, and merge the shards at the end. Merge order is
//! irrelevant and integer counts are exact in `f64`, so **any** shard count
//! produces the bit-identical table — and therefore the byte-identical
//! [`crate::builder::AuditReport`] — as the single-threaded batch path.
//!
//! [`sharded_joint_counts`] is the engine; [`crate::builder::Audit::of_stream`]
//! is the fluent entry point layered on top. Chunk *types* live next to
//! their record representations (df-data provides frame and CSV chunks);
//! this module only requires [`Tally`]` + Send`.

use crate::edf::JointCounts;
use crate::error::{DfError, Result};
use df_prob::contingency::{Axis, ContingencyTable};
use df_prob::partial::{PartialCounts, Tally};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// Tallies a stream of record chunks into joint counts, fanning the chunks
/// out to `threads` worker shards.
///
/// * `axes` — the full table schema: the outcome axis plus one axis per
///   protected attribute, in storage order. Chunks must tally records in
///   this axis order.
/// * `outcome_axis` — the name of the outcome axis within `axes`.
/// * `chunks` — any iterator of fallible chunks. Chunk errors abort the
///   tally and propagate (workers drain promptly once an error is seen).
/// * `threads` — shard count; `1` runs inline with no thread overhead.
///
/// Work distribution is dynamic (workers pull chunks from the shared
/// iterator as they finish), so stragglers don't idle the pool; the result
/// is nevertheless deterministic because the merged table is
/// order-invariant.
pub fn sharded_joint_counts<C, E, I>(
    axes: Vec<Axis>,
    outcome_axis: &str,
    chunks: I,
    threads: usize,
) -> Result<JointCounts>
where
    C: Tally + Send,
    E: Send,
    DfError: From<E>,
    I: IntoIterator<Item = std::result::Result<C, E>>,
    I::IntoIter: Send,
{
    if threads == 0 {
        return Err(DfError::Invalid("need at least one shard thread".into()));
    }
    let table = if threads == 1 {
        // Inline fast path: one shard, no synchronization.
        let mut shard = PartialCounts::zeros(axes)?;
        for chunk in chunks {
            chunk.map_err(DfError::from)?.tally_into(&mut shard)?;
        }
        shard.into_table()
    } else {
        let source = Mutex::new(chunks.into_iter());
        // Raised on the first error so the other workers stop pulling
        // chunks instead of tallying the rest of the stream for nothing.
        let failed = AtomicBool::new(false);
        let shards: Vec<Result<PartialCounts>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(|| -> Result<PartialCounts> {
                        let mut shard = PartialCounts::zeros(axes.clone())?;
                        loop {
                            if failed.load(Ordering::Relaxed) {
                                return Ok(shard);
                            }
                            // Hold the lock only while pulling the next
                            // chunk; tallying runs unlocked.
                            let next = source.lock().expect("chunk source poisoned").next();
                            match next {
                                None => return Ok(shard),
                                Some(Err(e)) => {
                                    failed.store(true, Ordering::Relaxed);
                                    return Err(DfError::from(e));
                                }
                                Some(Ok(chunk)) => {
                                    if let Err(e) = chunk.tally_into(&mut shard) {
                                        failed.store(true, Ordering::Relaxed);
                                        return Err(e.into());
                                    }
                                }
                            }
                        }
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard worker panicked"))
                .collect()
        });
        let mut merged: Option<PartialCounts> = None;
        let mut first_err: Option<DfError> = None;
        for shard in shards {
            match (shard, &mut merged) {
                (Ok(s), None) => merged = Some(s),
                (Ok(s), Some(m)) => m.merge(&s)?,
                (Err(e), _) => {
                    first_err.get_or_insert(e);
                }
            };
        }
        if let Some(e) = first_err {
            return Err(e);
        }
        ContingencyTable::from_partials(merged.map(|m| vec![m]).unwrap_or_default())?
    };
    JointCounts::from_table(table, outcome_axis)
}

#[cfg(test)]
mod tests {
    use super::*;
    use df_prob::ProbError;

    /// A test chunk: a list of (outcome, group) index pairs.
    struct PairChunk(Vec<(usize, usize)>);

    impl Tally for PairChunk {
        fn tally_into(&self, shard: &mut PartialCounts) -> df_prob::Result<()> {
            for &(y, g) in &self.0 {
                shard.record(&[y, g]);
            }
            Ok(())
        }
    }

    fn axes() -> Vec<Axis> {
        vec![
            Axis::from_strs("y", &["no", "yes"]).unwrap(),
            Axis::from_strs("g", &["a", "b"]).unwrap(),
        ]
    }

    fn chunks_of(pairs: &[(usize, usize)], chunk_size: usize) -> Vec<Result<PairChunk>> {
        pairs
            .chunks(chunk_size)
            .map(|c| Ok(PairChunk(c.to_vec())))
            .collect()
    }

    fn sample_pairs() -> Vec<(usize, usize)> {
        let mut rng = df_prob::rng::Pcg32::new(99);
        (0..503)
            .map(|_| (rng.next_below(2) as usize, rng.next_below(2) as usize))
            .collect()
    }

    #[test]
    fn shard_count_does_not_change_the_table() {
        let pairs = sample_pairs();
        let reference = sharded_joint_counts(axes(), "y", chunks_of(&pairs, 17), 1).unwrap();
        for threads in [2, 3, 4, 8] {
            for chunk_size in [1, 7, 64, 1000] {
                let jc = sharded_joint_counts(axes(), "y", chunks_of(&pairs, chunk_size), threads)
                    .unwrap();
                assert_eq!(jc, reference, "threads={threads} chunk={chunk_size}");
            }
        }
        assert_eq!(reference.total(), 503.0);
    }

    #[test]
    fn chunk_errors_propagate() {
        let mut chunks: Vec<std::result::Result<PairChunk, ProbError>> =
            vec![Ok(PairChunk(vec![(0, 0)]))];
        chunks.push(Err(ProbError::EmptyTable("simulated")));
        chunks.push(Ok(PairChunk(vec![(1, 1)])));
        for threads in [1, 4] {
            let err = sharded_joint_counts(axes(), "y", chunks.clone(), threads);
            assert!(err.is_err(), "threads={threads}");
        }
    }

    #[test]
    fn tally_errors_propagate() {
        struct BadChunk;
        impl Tally for BadChunk {
            fn tally_into(&self, _: &mut PartialCounts) -> df_prob::Result<()> {
                Err(ProbError::EmptyTable("bad chunk"))
            }
        }
        let chunks: Vec<Result<BadChunk>> = vec![Ok(BadChunk)];
        assert!(sharded_joint_counts(axes(), "y", chunks, 2).is_err());
    }

    #[test]
    fn empty_stream_yields_zero_counts() {
        let chunks: Vec<Result<PairChunk>> = Vec::new();
        let jc = sharded_joint_counts(axes(), "y", chunks, 4).unwrap();
        assert_eq!(jc.total(), 0.0);
    }

    #[test]
    fn validates_configuration() {
        let chunks: Vec<Result<PairChunk>> = Vec::new();
        assert!(sharded_joint_counts(axes(), "y", chunks, 0).is_err());
        let chunks: Vec<Result<PairChunk>> = Vec::new();
        assert!(sharded_joint_counts(axes(), "nope", chunks, 1).is_err());
    }

    impl Clone for PairChunk {
        fn clone(&self) -> Self {
            PairChunk(self.0.clone())
        }
    }
}
