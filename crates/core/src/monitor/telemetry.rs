//! Clock-free monitor telemetry: what a [`super::FairnessMonitor`]
//! counts about itself.
//!
//! `df-core` is forbidden from reading wall clocks (df-lint's
//! `no-wall-clock` rule), so this bundle contains only two kinds of
//! signal:
//!
//! - **event counters** the monitor bumps itself — alerts and
//!   change-point alarms fired, window buckets evicted. These are pure
//!   functions of the ingested stream, so replaying a recorded stream
//!   reproduces them exactly.
//! - **caller-measured durations** — [`MonitorTelemetry::push_seconds`]
//!   is observed by whoever *drives* the monitor and owns a clock (the
//!   fleet shard worker times `push_at` through its audited liveness
//!   seam; a standalone embedder times it however it likes). The
//!   monitor itself never samples time.
//!
//! Handles are `Arc`-backed clones: the fleet front-end injects **one
//! shared bundle** into every shard monitor
//! ([`super::MonitorBuilder::telemetry`]), so per-shard events aggregate
//! into fleet-wide totals without any merge step, and a server scrape
//! reads live values straight off the atomics.

use df_obs::{Counter, Histogram};

/// Shared telemetry handles for one monitor (or one fleet of monitors —
/// clones share cells).
#[derive(Clone, Debug)]
pub struct MonitorTelemetry {
    /// Alerts appended to the alert log (`AlertRule` threshold
    /// breaches, after hysteresis).
    pub alerts_fired: Counter,
    /// Change-point alarms raised across all detectors.
    pub alarms_fired: Counter,
    /// Window buckets evicted through the exact subtract path (both
    /// record-count and wall-clock rings).
    pub evicted_buckets: Counter,
    /// Durations of `push`/`push_at` calls, in seconds, observed by the
    /// caller that owns a clock.
    pub push_seconds: Histogram,
}

impl Default for MonitorTelemetry {
    fn default() -> Self {
        Self {
            alerts_fired: Counter::new(),
            alarms_fired: Counter::new(),
            evicted_buckets: Counter::new(),
            push_seconds: Histogram::default_latency(),
        }
    }
}

impl MonitorTelemetry {
    /// A fresh bundle (all counters zero, empty histogram).
    pub fn new() -> Self {
        Self::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_cells() {
        let a = MonitorTelemetry::new();
        let b = a.clone();
        a.alerts_fired.inc();
        b.alerts_fired.add(2);
        assert_eq!(a.alerts_fired.get(), 3);
        b.push_seconds.observe(0.001);
        assert_eq!(a.push_seconds.count(), 1);
    }
}
