//! The record-count bucket ring and the cached per-push ε engine.

use crate::epsilon::GroupOutcomes;
use crate::error::Result;
use df_prob::contingency::{Axis, ContingencyTable};
use df_prob::numerics::stable_sum;
use std::collections::VecDeque;

/// Precomputed schema state for the per-push hot path: evaluating ε on
/// every window update must not re-canonicalize the table or re-format
/// group labels (both allocate strings), so the flat cell index of every
/// `(group, outcome)` pair and all display labels are resolved once at
/// build time. [`WindowEngine::raw_outcomes`] then reads counts straight
/// out of the schema-order table — producing a [`GroupOutcomes`] that is
/// **value-identical** to
/// `JointCounts::from_table(table, outcome).group_outcomes(0.0)` (same
/// arithmetic, same label strings; asserted by a unit test), at a
/// fraction of the cost.
pub(super) struct WindowEngine {
    outcome_labels: Vec<String>,
    group_labels: Vec<String>,
    /// `flat[g · |Y| + y]` = flat index of `(group g, outcome y)` in the
    /// schema-order table.
    flat: Vec<usize>,
    n_outcomes: usize,
}

impl WindowEngine {
    pub(super) fn new(axes: &[Axis], outcome_axis: &str) -> Result<Self> {
        let template = ContingencyTable::zeros(axes.to_vec())?;
        let pos = template.axis_position(outcome_axis)?;
        let n_outcomes = axes[pos].len();
        // Attribute axes in canonical order: schema order, outcome removed
        // — exactly the order `JointCounts::from_table` preserves.
        let attr_positions: Vec<usize> = (0..axes.len()).filter(|&i| i != pos).collect();
        let n_groups: usize = attr_positions.iter().map(|&i| axes[i].len()).product();
        let mut flat = Vec::with_capacity(n_groups * n_outcomes);
        let mut group_labels = Vec::with_capacity(n_groups);
        let mut idx = vec![0usize; axes.len()];
        for g in 0..n_groups {
            // Mixed-radix decode, last attribute fastest (the kernel's
            // intersection indexing).
            let mut rem = g;
            let mut parts = vec![String::new(); attr_positions.len()];
            for (k, &p) in attr_positions.iter().enumerate().rev() {
                let v = rem % axes[p].len();
                rem /= axes[p].len();
                idx[p] = v;
                parts[k] = format!("{}={}", axes[p].name(), axes[p].labels()[v]);
            }
            group_labels.push(parts.join(", "));
            for y in 0..n_outcomes {
                idx[pos] = y;
                flat.push(template.flat_index(&idx));
            }
        }
        Ok(Self {
            outcome_labels: axes[pos].labels().to_vec(),
            group_labels,
            flat,
            n_outcomes,
        })
    }

    /// The raw (MLE, α = 0) group-outcome table of a schema-order counts
    /// table — the input every
    /// [`crate::builder::EpsilonEstimator`] consumes. The MLE is
    /// inlined (same arithmetic as `df_prob::estimate::categorical_mle`:
    /// compensated-sum total, per-cell division) to avoid one Vec
    /// allocation per group on the per-push hot path.
    pub(super) fn raw_outcomes(&self, table: &ContingencyTable) -> Result<GroupOutcomes> {
        let data = table.data();
        let n_groups = self.group_labels.len();
        let mut probs = vec![0.0; n_groups * self.n_outcomes];
        let mut weights = vec![0.0; n_groups];
        let mut counts = vec![0.0; self.n_outcomes];
        for (g, weight) in weights.iter_mut().enumerate() {
            let base = g * self.n_outcomes;
            for (y, c) in counts.iter_mut().enumerate() {
                *c = data[self.flat[base + y]];
            }
            *weight = counts.iter().sum();
            let total = stable_sum(&counts);
            if total > 0.0 {
                for (y, &c) in counts.iter().enumerate() {
                    probs[base + y] = c / total;
                }
            }
        }
        GroupOutcomes::new(
            self.outcome_labels.clone(),
            self.group_labels.clone(),
            probs,
            weights,
        )
    }
}

/// The record-count bucket ring: sealed buckets oldest-first (raw cell
/// data; axes live once on the running window table), a running window
/// sum, and eviction of whole oldest buckets — via the exact
/// `subtract` path — while the ring holds more than `capacity` records.
pub(super) struct CountRing {
    /// Running sum of the ring — the window's joint counts.
    window: ContingencyTable,
    ring: VecDeque<(Vec<f64>, usize)>,
    capacity: usize,
    rows: usize,
    /// Cumulative count of buckets evicted over the ring's lifetime
    /// (telemetry; never decremented).
    evicted: u64,
}

impl CountRing {
    pub(super) fn new(axes: Vec<Axis>, capacity: usize) -> Result<Self> {
        Ok(Self {
            window: ContingencyTable::zeros(axes)?,
            ring: VecDeque::new(),
            capacity,
            rows: 0,
            evicted: 0,
        })
    }

    pub(super) fn evicted_buckets(&self) -> u64 {
        self.evicted
    }

    pub(super) fn capacity(&self) -> usize {
        self.capacity
    }

    pub(super) fn rows(&self) -> usize {
        self.rows
    }

    pub(super) fn table(&self) -> &ContingencyTable {
        &self.window
    }

    /// Appends one sealed bucket and evicts expired buckets, exactly.
    pub(super) fn ingest(&mut self, bucket: &ContingencyTable, rows: usize) -> Result<()> {
        self.window.merge_from(bucket)?;
        self.rows += rows;
        self.ring.push_back((bucket.data().to_vec(), rows));
        while self.rows > self.capacity {
            let (expired, expired_rows) =
                self.ring.pop_front().expect("over-full ring is nonempty");
            self.window.subtract_data(&expired)?;
            self.rows -= expired_rows;
            self.evicted += 1;
        }
        Ok(())
    }
}
