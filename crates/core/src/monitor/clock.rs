//! Wall-clock bucketed windowing: `window = last T seconds` at
//! `bucket_seconds` granularity, on the same exact merge/subtract counts
//! ring as the record-count window.
//!
//! Timestamps are **caller-supplied** (seconds; epoch or any monotonic
//! clock) — core never reads `Instant::now()`, so a wall-clock monitor is
//! fully replayable: feeding the same `(chunk, timestamp)` sequence
//! reproduces every ε and every alarm byte for byte.
//!
//! Time is partitioned into fixed buckets `[k·b, (k+1)·b)`; a timestamp
//! `t` lands in bucket `⌊t / b⌋`. With `now` = the largest timestamp seen
//! and `n = ⌈T / b⌉`, the window holds exactly the buckets with index
//! `> ⌊now / b⌋ − n` — "the last T seconds" resolved at bucket
//! granularity. Arrivals may be out of order: a chunk whose bucket is
//! still inside the window merges into that bucket wherever it sits in
//! the ring; only a timestamp older than the whole window is refused
//! (absorbing it would silently violate the window contract). Advancing
//! time evicts buckets through the exact `subtract` path, so the windowed
//! counts stay byte-identical to a fresh tally of the in-window records —
//! including all the way down to the empty window when time advances with
//! no arrivals.

use crate::error::{DfError, Result};
use df_prob::contingency::{Axis, ContingencyTable};
use std::collections::VecDeque;

/// Largest accepted timestamp, in seconds. Generous for epoch seconds
/// (~31 million years) while keeping `⌊t / b⌋` safely inside `i64` for
/// every legal bucket width: the builder floors `bucket_seconds` at
/// 1 ms, so `t / b ≤ 1e15 / 1e-3 = 1e18 < i64::MAX` and the float→int
/// cast can never saturate.
pub(super) const MAX_TIMESTAMP_SECONDS: f64 = 1e15;

pub(super) fn validate_timestamp(ts: f64) -> Result<()> {
    if !ts.is_finite() || !(0.0..=MAX_TIMESTAMP_SECONDS).contains(&ts) {
        return Err(DfError::Invalid(format!(
            "monitor timestamps must be finite seconds in [0, {MAX_TIMESTAMP_SECONDS:e}], got {ts}"
        )));
    }
    Ok(())
}

/// One sealed time bucket: its index `⌊t / b⌋`, raw cell data, row count.
struct TimeBucket {
    index: i64,
    cells: Vec<f64>,
    rows: usize,
}

/// The time-indexed bucket ring; see the module docs.
pub(super) struct TimeRing {
    /// Running sum of the ring — the window's joint counts.
    window: ContingencyTable,
    /// In-window buckets, ascending index; empty buckets are not stored.
    ring: VecDeque<TimeBucket>,
    bucket_seconds: f64,
    /// Window span in buckets: `⌈window_seconds / bucket_seconds⌉`.
    n_buckets: i64,
    /// Largest timestamp seen so far.
    now: Option<f64>,
    rows: usize,
    /// Cumulative count of buckets evicted over the ring's lifetime
    /// (telemetry; never decremented).
    evicted: u64,
}

impl TimeRing {
    pub(super) fn new(axes: Vec<Axis>, window_seconds: f64, bucket_seconds: f64) -> Result<Self> {
        let n_buckets = (window_seconds / bucket_seconds).ceil();
        Ok(Self {
            window: ContingencyTable::zeros(axes)?,
            ring: VecDeque::new(),
            bucket_seconds,
            n_buckets: n_buckets as i64,
            now: None,
            rows: 0,
            evicted: 0,
        })
    }

    pub(super) fn evicted_buckets(&self) -> u64 {
        self.evicted
    }

    pub(super) fn bucket_of(&self, ts: f64) -> i64 {
        (ts / self.bucket_seconds).floor() as i64
    }

    pub(super) fn now(&self) -> Option<f64> {
        self.now
    }

    pub(super) fn rows(&self) -> usize {
        self.rows
    }

    pub(super) fn table(&self) -> &ContingencyTable {
        &self.window
    }

    /// The newest bucket index already expired: in-window buckets are
    /// exactly those with `index > horizon`.
    fn horizon(&self) -> Option<i64> {
        self.now
            .map(|t| self.bucket_of(t).saturating_sub(self.n_buckets))
    }

    /// Merges one chunk into the bucket its timestamp lands in (appending
    /// a fresh bucket, or folding into an existing in-window one for
    /// out-of-order arrivals), then advances `now` and evicts.
    pub(super) fn ingest_at(
        &mut self,
        bucket: &ContingencyTable,
        rows: usize,
        ts: f64,
    ) -> Result<()> {
        validate_timestamp(ts)?;
        let index = self.bucket_of(ts);
        if let Some(horizon) = self.horizon() {
            if index <= horizon {
                return Err(DfError::Invalid(format!(
                    "timestamp {ts} lands in bucket {index}, which already left the \
                     window (in-window buckets start at {})",
                    horizon + 1
                )));
            }
        }
        self.window.merge_from(bucket)?;
        self.rows += rows;
        let pos = self.ring.partition_point(|b| b.index < index);
        match self.ring.get_mut(pos) {
            Some(b) if b.index == index => {
                for (cell, v) in b.cells.iter_mut().zip(bucket.data()) {
                    *cell += v;
                }
                b.rows += rows;
            }
            _ => self.ring.insert(
                pos,
                TimeBucket {
                    index,
                    cells: bucket.data().to_vec(),
                    rows,
                },
            ),
        }
        self.advance_to(ts)
    }

    /// Advances the clock to `ts` (no-op when `ts` is not ahead of `now`
    /// — `now` is the max over everything seen) and evicts every bucket
    /// that fell out of the window, through the exact subtract path.
    pub(super) fn advance_to(&mut self, ts: f64) -> Result<()> {
        validate_timestamp(ts)?;
        if self.now.is_none_or(|now| ts > now) {
            self.now = Some(ts);
        }
        let Some(horizon) = self.horizon() else {
            return Ok(());
        };
        while self.ring.front().is_some_and(|b| b.index <= horizon) {
            let expired = self.ring.pop_front().expect("front checked above");
            self.window.subtract_data(&expired.cells)?;
            self.rows -= expired.rows;
            self.evicted += 1;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn axes() -> Vec<Axis> {
        vec![
            Axis::from_strs("y", &["no", "yes"]).unwrap(),
            Axis::from_strs("g", &["a", "b"]).unwrap(),
        ]
    }

    fn bucket(cells: [f64; 4]) -> ContingencyTable {
        ContingencyTable::from_data(axes(), cells.to_vec()).unwrap()
    }

    #[test]
    fn buckets_merge_out_of_order_and_evict_in_order() {
        // T = 10 s, b = 2 s → 5 buckets in the window.
        let mut ring = TimeRing::new(axes(), 10.0, 2.0).unwrap();
        ring.ingest_at(&bucket([1.0, 0.0, 0.0, 0.0]), 1, 4.0)
            .unwrap();
        ring.ingest_at(&bucket([0.0, 1.0, 0.0, 0.0]), 1, 9.0)
            .unwrap();
        // Out of order, but bucket ⌊5/2⌋ = 2 is still in-window: merges.
        ring.ingest_at(&bucket([0.0, 0.0, 1.0, 0.0]), 1, 5.0)
            .unwrap();
        assert_eq!(ring.rows(), 3);
        assert_eq!(ring.table().data(), &[1.0, 1.0, 1.0, 0.0]);
        // Advance far enough to expire buckets 2 (ts 4, 5) but not 4 (ts 9):
        // now = 15 → horizon = ⌊15/2⌋ − 5 = 2.
        ring.advance_to(15.0).unwrap();
        assert_eq!(ring.rows(), 1);
        assert_eq!(ring.table().data(), &[0.0, 1.0, 0.0, 0.0]);
        // A timestamp in an evicted bucket is refused.
        let err = ring.ingest_at(&bucket([1.0, 0.0, 0.0, 0.0]), 1, 4.5);
        assert!(err.is_err());
        // Advancing with zero arrivals drains to the empty window.
        ring.advance_to(100.0).unwrap();
        assert_eq!(ring.rows(), 0);
        assert!(ring.table().data().iter().all(|&v| v == 0.0));
        // The clock never runs backwards.
        ring.advance_to(50.0).unwrap();
        assert_eq!(ring.now(), Some(100.0));
    }

    #[test]
    fn timestamps_are_validated() {
        let mut ring = TimeRing::new(axes(), 10.0, 2.0).unwrap();
        for bad in [f64::NAN, f64::INFINITY, -1.0, 2e15] {
            assert!(ring.advance_to(bad).is_err(), "accepted {bad}");
        }
    }
}
