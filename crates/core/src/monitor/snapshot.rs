//! Serializable, shard-mergeable monitor state.

use super::changepoint::ChangepointStatus;
use super::{Alert, ChangepointAlarm};
use crate::builder::EpsilonEstimator;
use crate::edf::JointCounts;
use crate::epsilon::EpsilonResult;
use crate::error::{DfError, Result};
use crate::subsets::SubsetEpsilon;
use df_prob::contingency::{Axis, ContingencyTable};
use serde::{Deserialize, Serialize};

/// A serializable contingency table: named axes plus row-major cell data.
/// The wire form of the monitor's window and horizon counts (df-prob's
/// [`ContingencyTable`] itself stays serde-free).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CountsSnapshot {
    /// `(axis name, ordered labels)` per axis, in storage order.
    pub axes: Vec<(String, Vec<String>)>,
    /// Row-major cell values.
    pub data: Vec<f64>,
}

impl CountsSnapshot {
    /// Captures a table.
    pub fn from_table(table: &ContingencyTable) -> Self {
        Self {
            axes: table
                .axes()
                .iter()
                .map(|a| (a.name().to_string(), a.labels().to_vec()))
                .collect(),
            data: table.data().to_vec(),
        }
    }

    /// Reconstructs the table (validating axes and cell values).
    pub fn to_table(&self) -> Result<ContingencyTable> {
        let axes = self
            .axes
            .iter()
            .map(|(name, labels)| Axis::new(name.clone(), labels.clone()))
            .collect::<df_prob::Result<Vec<_>>>()?;
        Ok(ContingencyTable::from_data(axes, self.data.clone())?)
    }

    /// Cell-wise adds another snapshot over identical axes.
    fn merge(&self, other: &CountsSnapshot) -> Result<CountsSnapshot> {
        if self.axes != other.axes {
            return Err(DfError::Invalid(
                "cannot merge monitor snapshots over different schemas".into(),
            ));
        }
        Ok(CountsSnapshot {
            axes: self.axes.clone(),
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| a + b)
                .collect(),
        })
    }
}

/// The monitor's full serializable state at one point in the stream:
/// window and horizon counts, the ε values derived from them, the
/// per-subset lattice (per the configured
/// [`crate::builder::SubsetPolicy`]), change-point detector states, and
/// the alert log so far.
///
/// Snapshots are **mergeable across shards**: a fleet of monitors (one per
/// serving replica) each ingests its own slice of traffic, and
/// [`MonitorSnapshot::merge`] combines their states cell-wise into the ε
/// of the union of the windows — the same additivity that powers
/// [`crate::stream::sharded_joint_counts`]. Because window cells are
/// integer tallies (and the remaining merged state is built from max,
/// sum, and canonically ordered concatenation), merging is commutative
/// and associative with the untouched monitor's snapshot as identity —
/// shard aggregation order can never change the fleet-wide ε or alarm
/// state (property-tested in `monitor_time_equivalence`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MonitorSnapshot {
    /// Name of the outcome axis.
    pub outcome_axis: String,
    /// Display name of the ε estimator in force.
    pub estimator: String,
    /// Total records ingested over the monitor's lifetime.
    pub records_seen: u64,
    /// Records currently inside the window.
    pub window_rows: u64,
    /// The window span T in seconds (wall-clock monitors only).
    pub window_seconds: Option<f64>,
    /// The bucket granularity in seconds (wall-clock monitors only).
    pub bucket_seconds: Option<f64>,
    /// Largest timestamp seen so far (wall-clock monitors only).
    pub now_seconds: Option<f64>,
    /// Joint counts of the window.
    pub window: CountsSnapshot,
    /// Exponentially-decayed joint counts (present iff decay configured).
    pub decayed: Option<CountsSnapshot>,
    /// The per-bucket retention factor λ, when decay is configured.
    pub decay: Option<f64>,
    /// ε of the window under the configured estimator.
    pub epsilon: EpsilonResult,
    /// ε of the decayed horizon (present iff decay configured).
    pub decayed_epsilon: Option<EpsilonResult>,
    /// Per-subset ε of the window, ordered by subset size with the full
    /// intersection last (empty under [`crate::builder::SubsetPolicy::None`]).
    pub subsets: Vec<SubsetEpsilon>,
    /// Every alert fired so far, in canonical order.
    pub alerts: Vec<Alert>,
    /// One entry per configured change-point detector, in configuration
    /// order.
    pub changepoints: Vec<ChangepointStatus>,
}

/// A canonical total order on alerts, so concatenating shard logs is
/// deterministic regardless of merge order (stream position first; the
/// remaining fields only break ties between distinct alerts at the same
/// position).
fn alert_key(a: &Alert) -> (u64, u64, u64, u64, usize, String) {
    (
        a.at_record,
        a.epsilon.to_bits(),
        a.at_seconds.map_or(0, f64::to_bits),
        a.rule.threshold.to_bits(),
        a.rule.consecutive,
        a.witness
            .as_ref()
            .map(|w| format!("{}/{}/{}", w.outcome, w.group_hi, w.group_lo))
            .unwrap_or_default(),
    )
}

/// The alarm twin of [`alert_key`].
fn alarm_key(a: &ChangepointAlarm) -> (u64, u64, u64, u64) {
    (
        a.at_record,
        a.statistic.to_bits(),
        a.signal.to_bits(),
        a.at_seconds.map_or(0, f64::to_bits),
    )
}

impl MonitorSnapshot {
    /// The drift signal: windowed ε minus horizon ε (positive = fairness
    /// degrading relative to the long-run distribution). `None` without a
    /// configured decay, or when either ε is infinite (`∞ − ∞` has no
    /// meaningful sign).
    pub fn trend(&self) -> Option<f64> {
        let horizon = self.decayed_epsilon.as_ref()?;
        (self.epsilon.epsilon.is_finite() && horizon.epsilon.is_finite())
            .then_some(self.epsilon.epsilon - horizon.epsilon)
    }

    /// Merges two shard snapshots into the combined monitor state,
    /// recomputing every ε with `estimator` over the cell-wise summed
    /// counts. The shards must share the schema, outcome axis, window
    /// configuration (decay, wall-clock span and granularity), subset
    /// lattice, and change-point detector list; alert and alarm logs
    /// concatenate in canonical `records_seen` order (each shard's
    /// entries witness its own traffic), detector statistics combine
    /// conservatively by max, and the merged clock is the latest shard
    /// clock.
    pub fn merge(
        &self,
        other: &MonitorSnapshot,
        estimator: &dyn EpsilonEstimator,
    ) -> Result<MonitorSnapshot> {
        if self.outcome_axis != other.outcome_axis {
            return Err(DfError::Invalid(format!(
                "snapshot outcome axes differ: `{}` vs `{}`",
                self.outcome_axis, other.outcome_axis
            )));
        }
        if self.decay != other.decay {
            return Err(DfError::Invalid(
                "cannot merge snapshots with different decay configurations".into(),
            ));
        }
        if self.window_seconds != other.window_seconds
            || self.bucket_seconds != other.bucket_seconds
        {
            return Err(DfError::Invalid(
                "cannot merge snapshots with different wall-clock window configurations".into(),
            ));
        }
        let window = self.window.merge(&other.window)?;
        let decayed = match (&self.decayed, &other.decayed) {
            (Some(a), Some(b)) => Some(a.merge(b)?),
            (None, None) => None,
            _ => unreachable!("decay equality checked above"),
        };
        let window_counts = JointCounts::from_table(window.to_table()?, &self.outcome_axis)?;
        let epsilon = estimator.estimate(&window_counts.group_outcomes(0.0)?)?;
        let decayed_epsilon = match &decayed {
            Some(d) => {
                let jc = JointCounts::from_table(d.to_table()?, &self.outcome_axis)?;
                Some(estimator.estimate(&jc.group_outcomes(0.0)?)?)
            }
            None => None,
        };
        let subset_attrs: Vec<Vec<String>> =
            self.subsets.iter().map(|s| s.attributes.clone()).collect();
        let other_attrs: Vec<Vec<String>> =
            other.subsets.iter().map(|s| s.attributes.clone()).collect();
        if subset_attrs != other_attrs {
            return Err(DfError::Invalid(
                "cannot merge snapshots with different subset lattices".into(),
            ));
        }
        let subsets = subset_epsilons(&window_counts, &subset_attrs, &epsilon, estimator)?;
        let mut alerts: Vec<Alert> = self.alerts.iter().chain(&other.alerts).cloned().collect();
        alerts.sort_by_key(alert_key);
        if self.changepoints.len() != other.changepoints.len()
            || self
                .changepoints
                .iter()
                .zip(&other.changepoints)
                .any(|(a, b)| a.spec != b.spec)
        {
            return Err(DfError::Invalid(
                "cannot merge snapshots with different change-point detectors".into(),
            ));
        }
        let changepoints = self
            .changepoints
            .iter()
            .zip(&other.changepoints)
            .map(|(a, b)| {
                let mut alarms: Vec<ChangepointAlarm> =
                    a.alarms.iter().chain(&b.alarms).cloned().collect();
                alarms.sort_by_key(alarm_key);
                ChangepointStatus {
                    spec: a.spec,
                    statistic: a.statistic.max(b.statistic),
                    alarms,
                }
            })
            .collect();
        let now_seconds = match (self.now_seconds, other.now_seconds) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
        Ok(MonitorSnapshot {
            outcome_axis: self.outcome_axis.clone(),
            estimator: estimator.name(),
            records_seen: self.records_seen + other.records_seen,
            window_rows: self.window_rows + other.window_rows,
            window_seconds: self.window_seconds,
            bucket_seconds: self.bucket_seconds,
            now_seconds,
            window,
            decayed,
            decay: self.decay,
            epsilon,
            decayed_epsilon,
            subsets,
            alerts,
            changepoints,
        })
    }
}

/// Per-subset ε under `estimator`, reusing the precomputed full-
/// intersection result for the last (full) entry — the exact layout of the
/// builder's `EstimatorReport::subsets`.
pub(super) fn subset_epsilons(
    counts: &JointCounts,
    subset_attrs: &[Vec<String>],
    full: &EpsilonResult,
    estimator: &dyn EpsilonEstimator,
) -> Result<Vec<SubsetEpsilon>> {
    let n_attrs = counts.attribute_names().len();
    let mut out = Vec::with_capacity(subset_attrs.len());
    for attrs in subset_attrs {
        let result = if attrs.len() == n_attrs {
            full.clone()
        } else {
            let names: Vec<&str> = attrs.iter().map(String::as_str).collect();
            estimator.estimate(&counts.marginal_to(&names)?.group_outcomes(0.0)?)?
        };
        out.push(SubsetEpsilon {
            attributes: attrs.clone(),
            result,
        });
    }
    Ok(out)
}
