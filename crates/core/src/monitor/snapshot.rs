//! Serializable, shard-mergeable monitor state.

use super::changepoint::ChangepointStatus;
use super::{Alert, ChangepointAlarm};
use crate::builder::EpsilonEstimator;
use crate::edf::JointCounts;
use crate::epsilon::EpsilonResult;
use crate::error::{DfError, Result};
use crate::metric::{metric_from_tag, Metric};
use crate::report::{fmt_count, fmt_epsilon, Align, ResponseFormat, TextTable};
use crate::subsets::SubsetEpsilon;
use df_prob::contingency::{Axis, ContingencyTable};
use serde::{Deserialize, Serialize};

/// A serializable contingency table: named axes plus row-major cell data.
/// The wire form of the monitor's window and horizon counts (df-prob's
/// [`ContingencyTable`] itself stays serde-free).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CountsSnapshot {
    /// `(axis name, ordered labels)` per axis, in storage order.
    pub axes: Vec<(String, Vec<String>)>,
    /// Row-major cell values.
    pub data: Vec<f64>,
}

impl CountsSnapshot {
    /// Captures a table.
    pub fn from_table(table: &ContingencyTable) -> Self {
        Self {
            axes: table
                .axes()
                .iter()
                .map(|a| (a.name().to_string(), a.labels().to_vec()))
                .collect(),
            data: table.data().to_vec(),
        }
    }

    /// Reconstructs the table, validating axes and cell values.
    ///
    /// Snapshots arrive over the wire (JSON dashboards, the binary fleet
    /// codec), so the cells are untrusted: a NaN, infinite, or negative
    /// cell is rejected with the same typed [`DfError::CorruptCounts`]
    /// that guards [`crate::builder::Audit::of_counts`] — ε over such a
    /// table would silently propagate NaN instead of certifying anything.
    pub fn to_table(&self) -> Result<ContingencyTable> {
        if let Some(cell) = self.data.iter().position(|v| !v.is_finite() || *v < 0.0) {
            return Err(DfError::CorruptCounts {
                cell,
                value: self.data[cell],
            });
        }
        let axes = self
            .axes
            .iter()
            .map(|(name, labels)| Axis::new(name.clone(), labels.clone()))
            .collect::<df_prob::Result<Vec<_>>>()?;
        Ok(ContingencyTable::from_data(axes, self.data.clone())?)
    }

    /// Cell-wise adds another snapshot into this one, in place. The two
    /// snapshots must agree on axes *and* cell count (wire data can lie
    /// about either independently; a silent `zip` truncation would drop
    /// mass). This is the accumulation step behind both
    /// [`MonitorSnapshot::merge`] and the fleet aggregation tree
    /// ([`crate::fleet::merge_many`]), which folds thousands of shard
    /// snapshots without re-cloning axes per pair.
    pub fn merge_from(&mut self, other: &CountsSnapshot) -> Result<()> {
        if self.axes != other.axes {
            return Err(DfError::Invalid(
                "cannot merge monitor snapshots over different schemas".into(),
            ));
        }
        if self.data.len() != other.data.len() {
            return Err(DfError::Invalid(format!(
                "snapshot cell counts differ ({} vs {}) despite identical axes; \
                 one side's data vector is corrupt",
                self.data.len(),
                other.data.len()
            )));
        }
        for (dst, src) in self.data.iter_mut().zip(&other.data) {
            // df-lint: allow(counts-via-monoid) -- this IS the wire-level monoid op: axes and lengths are validated above, and PartialCounts itself lives a crate away
            *dst += src;
        }
        Ok(())
    }
}

/// The monitor's full serializable state at one point in the stream:
/// window and horizon counts, the ε values derived from them, the
/// per-subset lattice (per the configured
/// [`crate::builder::SubsetPolicy`]), change-point detector states, and
/// the alert log so far.
///
/// Snapshots are **mergeable across shards**: a fleet of monitors (one per
/// serving replica) each ingests its own slice of traffic, and
/// [`MonitorSnapshot::merge`] combines their states cell-wise into the ε
/// of the union of the windows — the same additivity that powers
/// [`crate::stream::sharded_joint_counts`]. Because window cells are
/// integer tallies (and the remaining merged state is built from max,
/// sum, and canonically ordered concatenation), merging is commutative
/// and associative with the untouched monitor's snapshot as identity —
/// shard aggregation order can never change the fleet-wide ε or alarm
/// state (property-tested in `monitor_time_equivalence`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MonitorSnapshot {
    /// Name of the outcome axis.
    pub outcome_axis: String,
    /// Display name of the ε estimator in force.
    pub estimator: String,
    /// Canonical tag of the fairness metric every statistic in this
    /// snapshot was computed under (see [`crate::metric::metric_from_tag`]).
    /// Snapshots of different metrics never merge.
    pub metric: String,
    /// Total records ingested over the monitor's lifetime.
    pub records_seen: u64,
    /// Records currently inside the window.
    pub window_rows: u64,
    /// The window span T in seconds (wall-clock monitors only).
    pub window_seconds: Option<f64>,
    /// The bucket granularity in seconds (wall-clock monitors only).
    pub bucket_seconds: Option<f64>,
    /// Largest timestamp seen so far (wall-clock monitors only).
    pub now_seconds: Option<f64>,
    /// Joint counts of the window.
    pub window: CountsSnapshot,
    /// Exponentially-decayed joint counts (present iff decay configured).
    pub decayed: Option<CountsSnapshot>,
    /// The per-bucket retention factor λ, when decay is configured.
    pub decay: Option<f64>,
    /// ε of the window under the configured estimator.
    pub epsilon: EpsilonResult,
    /// ε of the decayed horizon (present iff decay configured).
    pub decayed_epsilon: Option<EpsilonResult>,
    /// Per-subset ε of the window, ordered by subset size with the full
    /// intersection last (empty under [`crate::builder::SubsetPolicy::None`]).
    pub subsets: Vec<SubsetEpsilon>,
    /// Every alert fired so far, in canonical order.
    pub alerts: Vec<Alert>,
    /// One entry per configured change-point detector, in configuration
    /// order.
    pub changepoints: Vec<ChangepointStatus>,
}

/// A canonical total order on alerts, so concatenating shard logs is
/// deterministic regardless of merge order — stream position first; the
/// remaining fields (every serialized field of the alert, witness
/// probabilities included) only break ties between distinct alerts at the
/// same position. Distinct alerts always compare unequal under this key,
/// which is what makes the fleet aggregation tree's one-shot sort
/// byte-identical to the pairwise fold's repeated sorts for *any* leaf
/// permutation.
fn alert_key(a: &Alert) -> (u64, u64, u64, u64, usize, String, u64, u64) {
    (
        a.at_record,
        a.epsilon.to_bits(),
        a.at_seconds.map_or(0, f64::to_bits),
        a.rule.threshold.to_bits(),
        a.rule.consecutive,
        a.witness
            .as_ref()
            .map(|w| format!("{}/{}/{}", w.outcome, w.group_hi, w.group_lo))
            .unwrap_or_default(),
        a.witness.as_ref().map_or(0, |w| w.prob_hi.to_bits()),
        a.witness.as_ref().map_or(0, |w| w.prob_lo.to_bits()),
    )
}

/// The alarm twin of [`alert_key`].
fn alarm_key(a: &ChangepointAlarm) -> (u64, u64, u64, u64) {
    (
        a.at_record,
        a.statistic.to_bits(),
        a.signal.to_bits(),
        a.at_seconds.map_or(0, f64::to_bits),
    )
}

impl MonitorSnapshot {
    /// The drift signal: windowed ε minus horizon ε (positive = fairness
    /// degrading relative to the long-run distribution). `None` without a
    /// configured decay, or when either ε is infinite (`∞ − ∞` has no
    /// meaningful sign).
    pub fn trend(&self) -> Option<f64> {
        let horizon = self.decayed_epsilon.as_ref()?;
        (self.epsilon.epsilon.is_finite() && horizon.epsilon.is_finite())
            .then_some(self.epsilon.epsilon - horizon.epsilon)
    }

    /// Merges two shard snapshots into the combined monitor state,
    /// recomputing every ε with `estimator` over the cell-wise summed
    /// counts. The shards must share the schema, outcome axis, window
    /// configuration (decay, wall-clock span and granularity), subset
    /// lattice, and change-point detector list; alert and alarm logs
    /// concatenate in canonical `records_seen` order (each shard's
    /// entries witness its own traffic), detector statistics combine
    /// conservatively by max, and the merged clock is the latest shard
    /// clock.
    ///
    /// Pairwise merging recomputes ε per pair; to fold a whole fleet's
    /// snapshots, [`crate::fleet::merge_many`] accumulates cells in place
    /// and recomputes ε once at the root, producing byte-identical output.
    pub fn merge(
        &self,
        other: &MonitorSnapshot,
        estimator: &dyn EpsilonEstimator,
    ) -> Result<MonitorSnapshot> {
        let mut out = self.clone();
        out.absorb_counts(other)?;
        out.canonicalize_and_recompute(estimator)?;
        Ok(out)
    }

    /// Checks that `other` is configuration-compatible for merging: same
    /// outcome axis, decay, wall-clock window, subset lattice, and
    /// change-point detector list. Public so ingestion layers (e.g. an
    /// audit server accepting wire snapshots from remote replicas) can
    /// reject an incompatible snapshot at the door with a typed error
    /// instead of failing later inside a merge.
    pub fn mergeable_with(&self, other: &MonitorSnapshot) -> Result<()> {
        if self.outcome_axis != other.outcome_axis {
            return Err(DfError::Invalid(format!(
                "snapshot outcome axes differ: `{}` vs `{}`",
                self.outcome_axis, other.outcome_axis
            )));
        }
        if self.metric != other.metric {
            return Err(DfError::Invalid(format!(
                "cannot merge snapshots computed under different metrics: \
                 `{}` vs `{}`",
                self.metric, other.metric
            )));
        }
        if self.decay != other.decay {
            return Err(DfError::Invalid(
                "cannot merge snapshots with different decay configurations".into(),
            ));
        }
        if self.window_seconds != other.window_seconds
            || self.bucket_seconds != other.bucket_seconds
        {
            return Err(DfError::Invalid(
                "cannot merge snapshots with different wall-clock window configurations".into(),
            ));
        }
        if self.subsets.len() != other.subsets.len()
            || self
                .subsets
                .iter()
                .zip(&other.subsets)
                .any(|(a, b)| a.attributes != b.attributes)
        {
            return Err(DfError::Invalid(
                "cannot merge snapshots with different subset lattices".into(),
            ));
        }
        if self.changepoints.len() != other.changepoints.len()
            || self
                .changepoints
                .iter()
                .zip(&other.changepoints)
                .any(|(a, b)| a.spec != b.spec)
        {
            return Err(DfError::Invalid(
                "cannot merge snapshots with different change-point detectors".into(),
            ));
        }
        Ok(())
    }

    /// Re-derives this snapshot's statistics under a different metric.
    /// The window and horizon counts are metric-agnostic, so any metric
    /// can be evaluated over them after the fact: the returned snapshot
    /// carries `tag` and has its headline statistic, decayed statistic,
    /// and subset lattice recomputed under it with `estimator`. An
    /// unknown tag is a typed error before anything is cloned. The
    /// alert and alarm logs are historical records of what fired under
    /// the original metric and are carried over unchanged.
    pub fn with_metric(
        &self,
        tag: &str,
        estimator: &dyn EpsilonEstimator,
    ) -> Result<MonitorSnapshot> {
        metric_from_tag(tag)?;
        let mut out = self.clone();
        out.metric = tag.to_string();
        out.canonicalize_and_recompute(estimator)?;
        Ok(out)
    }

    /// Accumulates `other`'s raw mergeable state into `self` in place:
    /// cell-wise count sums, record totals, max clock, max detector
    /// statistics, and concatenated (not yet canonically ordered) alert
    /// and alarm logs. Derived fields — ε, subset results, the estimator
    /// echo — are left stale; callers finish with
    /// [`MonitorSnapshot::canonicalize_and_recompute`]. Splitting the two
    /// is what lets an aggregation tree absorb thousands of shard
    /// snapshots paying one ε kernel pass total instead of one per pair.
    pub(crate) fn absorb_counts(&mut self, other: &MonitorSnapshot) -> Result<()> {
        self.mergeable_with(other)?;
        self.window.merge_from(&other.window)?;
        match (&mut self.decayed, &other.decayed) {
            (Some(a), Some(b)) => a.merge_from(b)?,
            (None, None) => {}
            _ => unreachable!("decay equality checked by mergeable_with"),
        }
        self.records_seen += other.records_seen;
        self.window_rows += other.window_rows;
        self.now_seconds = match (self.now_seconds, other.now_seconds) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
        self.alerts.extend(other.alerts.iter().cloned());
        for (dst, src) in self.changepoints.iter_mut().zip(&other.changepoints) {
            dst.statistic = dst.statistic.max(src.statistic);
            dst.alarms.extend(src.alarms.iter().cloned());
        }
        Ok(())
    }

    /// Restores the derived half of the snapshot after one or more
    /// [`MonitorSnapshot::absorb_counts`] calls: sorts the alert and alarm
    /// logs into canonical order and recomputes the headline statistic,
    /// the decayed statistic, and the per-subset lattice from the
    /// accumulated counts under `estimator` — routed through the metric
    /// named by the snapshot's own tag, so a merge of min/max-ratio
    /// shards recomputes a min/max ratio, never a silently substituted ε.
    pub(crate) fn canonicalize_and_recompute(
        &mut self,
        estimator: &dyn EpsilonEstimator,
    ) -> Result<()> {
        let metric = metric_from_tag(&self.metric)?;
        self.alerts.sort_by_key(alert_key);
        for status in &mut self.changepoints {
            status.alarms.sort_by_key(alarm_key);
        }
        let window_counts = JointCounts::from_table(self.window.to_table()?, &self.outcome_axis)?;
        self.epsilon = metric.evaluate_counts(&window_counts, estimator)?;
        self.decayed_epsilon = match &self.decayed {
            Some(d) => {
                let jc = JointCounts::from_table(d.to_table()?, &self.outcome_axis)?;
                Some(metric.evaluate_counts(&jc, estimator)?)
            }
            None => None,
        };
        let subset_attrs: Vec<Vec<String>> =
            self.subsets.iter().map(|s| s.attributes.clone()).collect();
        self.subsets = subset_epsilons(
            &window_counts,
            &subset_attrs,
            &self.epsilon,
            &*metric,
            estimator,
        )?;
        self.estimator = estimator.name();
        Ok(())
    }

    /// The window's joint counts as a labelled table: one row per cell in
    /// row-major order (last axis fastest), axis-label columns followed by
    /// the cell count. Shared by the CSV/text/markdown renderers.
    fn cells_table(&self) -> TextTable {
        let axis_names: Vec<&str> = self.window.axes.iter().map(|(n, _)| n.as_str()).collect();
        let mut headers = axis_names;
        headers.push("count");
        let mut aligns = vec![Align::Left; headers.len() - 1];
        aligns.push(Align::Right);
        let mut t = TextTable::new(&headers).align(&aligns);
        let dims: Vec<usize> = self.window.axes.iter().map(|(_, l)| l.len()).collect();
        for (idx, value) in self.window.data.iter().enumerate() {
            let mut row = Vec::with_capacity(dims.len() + 1);
            let mut rest = idx;
            // Row-major unravel: divide by the trailing strides.
            for (k, (_, labels)) in self.window.axes.iter().enumerate() {
                let stride: usize = dims[k + 1..].iter().product();
                row.push(labels[(rest / stride) % labels.len()].clone());
                rest %= stride.max(1);
            }
            row.push(fmt_count(*value));
            t.row(&row);
        }
        t
    }

    /// The scalar summary as `(metric, value)` pairs — the second CSV
    /// section and the text/markdown headline block.
    fn summary_rows(&self) -> Vec<(String, String)> {
        let mut rows = vec![
            ("estimator".to_string(), self.estimator.clone()),
            ("records_seen".to_string(), self.records_seen.to_string()),
        ];
        if self.metric != "eps-df" {
            rows.insert(1, ("metric".to_string(), self.metric.clone()));
        }
        rows.extend([
            ("window_rows".to_string(), self.window_rows.to_string()),
            ("epsilon".to_string(), fmt_epsilon(self.epsilon.epsilon)),
        ]);
        if let Some(d) = &self.decayed_epsilon {
            rows.push(("decayed_epsilon".to_string(), fmt_epsilon(d.epsilon)));
        }
        if let Some(t) = self.trend() {
            rows.push(("trend".to_string(), format!("{t:+.4}")));
        }
        if let Some(w) = self.window_seconds {
            rows.push(("window_seconds".to_string(), fmt_count(w)));
        }
        if let Some(now) = self.now_seconds {
            rows.push(("now_seconds".to_string(), fmt_count(now)));
        }
        for s in &self.subsets {
            rows.push((
                format!("epsilon[{}]", s.attributes.join("+")),
                fmt_epsilon(s.result.epsilon),
            ));
        }
        rows.push(("alerts".to_string(), self.alerts.len().to_string()));
        if let Some(last) = self.alerts.last() {
            rows.push((
                "last_alert".to_string(),
                format!(
                    "eps {} > {} at record {}",
                    fmt_epsilon(last.epsilon),
                    fmt_epsilon(last.rule.threshold),
                    last.at_record
                ),
            ));
        }
        let alarms: usize = self.changepoints.iter().map(|c| c.alarms.len()).sum();
        if !self.changepoints.is_empty() {
            rows.push(("changepoint_alarms".to_string(), alarms.to_string()));
        }
        if let Some(last) = self
            .changepoints
            .iter()
            .flat_map(|c| c.alarms.iter())
            .max_by_key(|a| a.at_record)
        {
            rows.push((
                "last_alarm".to_string(),
                format!(
                    "statistic {:.4} at record {}",
                    last.statistic, last.at_record
                ),
            ));
        }
        rows
    }

    /// Renders the snapshot in the requested [`ResponseFormat`]: the full
    /// serde document for JSON; for CSV, the labelled table of window
    /// cells followed by a blank line and a `metric,value` section with
    /// the ε values, trend, and alert/alarm tallies; for text/markdown,
    /// the same summary above the cells table.
    pub fn render(&self, format: ResponseFormat) -> Result<String> {
        match format {
            ResponseFormat::Json => {
                serde_json::to_string(self).map_err(|e| DfError::Invalid(e.to_string()))
            }
            ResponseFormat::Csv => {
                let mut metrics = TextTable::new(&["metric", "value"]);
                for (k, v) in self.summary_rows() {
                    metrics.row(&[k, v]);
                }
                Ok(format!(
                    "{}\n{}",
                    self.cells_table().render_csv(),
                    metrics.render_csv()
                ))
            }
            ResponseFormat::Markdown => {
                let mut out = String::new();
                for (k, v) in self.summary_rows() {
                    out.push_str(&format!("- **{k}**: {v}\n"));
                }
                out.push('\n');
                out.push_str(&self.cells_table().render_markdown());
                Ok(out)
            }
            ResponseFormat::Text => {
                let mut out = String::new();
                for (k, v) in self.summary_rows() {
                    out.push_str(&format!("{k}: {v}\n"));
                }
                out.push('\n');
                out.push_str(&self.cells_table().render());
                Ok(out)
            }
        }
    }
}

/// Per-subset statistic of `metric` under `estimator`, reusing the
/// precomputed full-intersection result for the last (full) entry — the
/// exact layout of the builder's `EstimatorReport::subsets`.
pub(crate) fn subset_epsilons(
    counts: &JointCounts,
    subset_attrs: &[Vec<String>],
    full: &EpsilonResult,
    metric: &dyn Metric,
    estimator: &dyn EpsilonEstimator,
) -> Result<Vec<SubsetEpsilon>> {
    let n_attrs = counts.attribute_names().len();
    let mut out = Vec::with_capacity(subset_attrs.len());
    for attrs in subset_attrs {
        let result = if attrs.len() == n_attrs {
            full.clone()
        } else {
            let names: Vec<&str> = attrs.iter().map(String::as_str).collect();
            metric.evaluate_marginal(counts, &names, estimator)?
        };
        out.push(SubsetEpsilon {
            attributes: attrs.clone(),
            result,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(data: Vec<f64>) -> CountsSnapshot {
        CountsSnapshot {
            axes: vec![
                ("y".to_string(), vec!["no".to_string(), "yes".to_string()]),
                ("g".to_string(), vec!["a".to_string(), "b".to_string()]),
            ],
            data,
        }
    }

    /// Regression: a wire snapshot is untrusted — `to_table` must reject
    /// non-finite and negative cells with the typed `CorruptCounts` error
    /// (mirroring `Audit::of_counts`), not hand them to the ε kernel.
    #[test]
    fn to_table_rejects_corrupt_wire_cells() {
        // A hand-corrupted JSON snapshot, exactly as it would arrive from
        // a hostile or buggy replica: a negative cell.
        let json = r#"{"axes":[["y",["no","yes"]],["g",["a","b"]]],"data":[1.0,-3.0,2.0,4.0]}"#;
        let from_wire: CountsSnapshot = serde_json::from_str(json).unwrap();
        match from_wire.to_table() {
            Err(DfError::CorruptCounts { cell, value }) => {
                assert_eq!(cell, 1);
                assert_eq!(value, -3.0);
            }
            other => panic!("expected CorruptCounts, got {other:?}"),
        }
        // Non-finite cells (not representable in JSON, but constructible
        // by any in-process caller) are refused the same way.
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let s = snap(vec![1.0, 2.0, bad, 0.0]);
            assert!(
                matches!(s.to_table(), Err(DfError::CorruptCounts { cell: 2, .. })),
                "accepted {bad}"
            );
        }
        // Healthy cells still reconstruct.
        assert_eq!(
            snap(vec![1.0, 2.0, 3.0, 4.0]).to_table().unwrap().total(),
            10.0
        );
    }

    #[test]
    fn render_covers_all_formats() {
        use crate::builder::{Audit, Smoothed};
        use df_prob::partial::{PartialCounts, Tally};

        struct Rows(Vec<[usize; 2]>);
        impl Tally for Rows {
            fn tally_into(&self, shard: &mut PartialCounts) -> df_prob::Result<()> {
                for idx in &self.0 {
                    shard.record(idx);
                }
                Ok(())
            }
        }
        let axes = vec![
            Axis::from_strs("y", &["no", "yes"]).unwrap(),
            Axis::from_strs("g", &["a", "b"]).unwrap(),
        ];
        let mut m = Audit::monitor("y", axes)
            .estimator(Smoothed { alpha: 1.0 })
            .window_seconds(60.0)
            .build()
            .unwrap();
        m.push_at(&Rows(vec![[0, 0], [1, 1], [1, 0], [0, 1]]), 1.0)
            .unwrap();
        let snap = m.snapshot().unwrap();
        let json = snap.render(ResponseFormat::Json).unwrap();
        assert!(json.contains("\"records_seen\":4"));
        let csv = snap.render(ResponseFormat::Csv).unwrap();
        assert!(csv.starts_with("y,g,count\n"), "got {csv}");
        assert!(csv.contains("metric,value"));
        assert!(csv.contains("epsilon,"));
        // Row-major order: last axis fastest, so (no, a) is the first cell.
        assert!(csv.contains("no,a,1"));
        let text = snap.render(ResponseFormat::Text).unwrap();
        assert!(text.contains("records_seen: 4"));
        let md = snap.render(ResponseFormat::Markdown).unwrap();
        assert!(md.contains("| y | g | count |"));
    }

    #[test]
    fn merge_from_adds_in_place_and_validates_shape() {
        let mut a = snap(vec![1.0, 2.0, 3.0, 4.0]);
        let b = snap(vec![10.0, 20.0, 30.0, 40.0]);
        a.merge_from(&b).unwrap();
        assert_eq!(a.data, vec![11.0, 22.0, 33.0, 44.0]);
        // Axis mismatch is refused.
        let mut other = snap(vec![0.0; 4]);
        other.axes[1].1.push("c".to_string());
        assert!(a.merge_from(&other).is_err());
        // A lying data vector (axes match, length doesn't) is refused
        // instead of silently zip-truncating.
        let short = CountsSnapshot {
            axes: a.axes.clone(),
            data: vec![1.0, 2.0],
        };
        let before = a.clone();
        assert!(a.merge_from(&short).is_err());
        assert_eq!(a, before);
    }
}
