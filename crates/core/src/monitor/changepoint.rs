//! Sequential change-point detection over the monitored fairness signal.
//!
//! The decayed-horizon trend of [`super::MonitorSnapshot::trend`] is a
//! *lagging* drift indicator: by the time the horizon ε has moved, the
//! window has been unfair for a while. Sequential rules react faster with
//! a *bounded false-positive rate*: they accumulate evidence that the
//! signal's mean has shifted above an in-control target and alarm only
//! when the cumulated evidence clears a threshold.
//!
//! Two classic rules are provided, both one-sided (fairness *degradation*
//! — the signal rising — is the alarm-worthy direction):
//!
//! - **CUSUM** (Page's cumulative sum):
//!   `g ← max(0, g + x − target − drift)`, alarm when `g > threshold`.
//!   `drift` (the slack `k`) absorbs in-control noise; `threshold` (`h`)
//!   trades detection delay against false alarms.
//! - **Page–Hinkley:** `m ← m + x − target − delta`, `M ← min(M, m)`,
//!   alarm when `m − M > lambda`. Equivalent sensitivity with a running-
//!   minimum formulation that tolerates a slowly wandering baseline.
//!
//! Both sample once per monitor step (one `push`/`push_at`/`advance_to`
//! call), over either the windowed ε under the configured estimator
//! ([`ChangeSignal::Epsilon`]) or the raw empirical worst-pair log-ratio
//! ([`ChangeSignal::RawLogRatio`] — unsmoothed, so it reacts faster on
//! sparse windows but can be infinite; non-finite samples are skipped,
//! since the threshold [`super::AlertRule`] already covers ε = ∞). After
//! an alarm the statistic resets and the rule keeps watching, so repeated
//! drifts raise repeated alarms.

use crate::error::{DfError, Result};
use serde::{Deserialize, Serialize};

/// Which per-step scalar a change-point detector watches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChangeSignal {
    /// The windowed ε under the monitor's configured estimator (the
    /// headline, smoothing included).
    Epsilon,
    /// The raw (MLE, α = 0) worst-pair log-ratio of the window — exactly
    /// the empirical ε. More sensitive on sparse windows, possibly ∞
    /// (non-finite samples are skipped).
    RawLogRatio,
}

/// Fluent CUSUM configuration; convert into a detector via
/// [`super::MonitorBuilder::changepoint`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cusum {
    /// In-control mean of the signal (μ₀).
    pub target: f64,
    /// Per-sample slack `k`: deviations below `target + drift` accumulate
    /// no evidence.
    pub drift: f64,
    /// Alarm threshold `h` on the cumulated statistic.
    pub threshold: f64,
    /// The watched signal (default [`ChangeSignal::Epsilon`]).
    pub signal: ChangeSignal,
}

impl Cusum {
    /// A one-sided CUSUM watching the windowed ε.
    pub fn new(target: f64, drift: f64, threshold: f64) -> Self {
        Self {
            target,
            drift,
            threshold,
            signal: ChangeSignal::Epsilon,
        }
    }

    /// Switches the watched signal.
    pub fn over(mut self, signal: ChangeSignal) -> Self {
        self.signal = signal;
        self
    }
}

/// Fluent Page–Hinkley configuration; convert into a detector via
/// [`super::MonitorBuilder::changepoint`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PageHinkley {
    /// In-control mean of the signal (μ₀).
    pub target: f64,
    /// Per-sample slack δ.
    pub delta: f64,
    /// Alarm threshold λ on `m − min(m)`.
    pub lambda: f64,
    /// The watched signal (default [`ChangeSignal::Epsilon`]).
    pub signal: ChangeSignal,
}

impl PageHinkley {
    /// A one-sided Page–Hinkley rule watching the windowed ε.
    pub fn new(target: f64, delta: f64, lambda: f64) -> Self {
        Self {
            target,
            delta,
            lambda,
            signal: ChangeSignal::Epsilon,
        }
    }

    /// Switches the watched signal.
    pub fn over(mut self, signal: ChangeSignal) -> Self {
        self.signal = signal;
        self
    }
}

/// A fully specified change-point detector — the serializable union of
/// [`Cusum`] and [`PageHinkley`] configurations carried by alarms and
/// snapshots.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ChangepointSpec {
    /// Page's cumulative-sum rule.
    Cusum {
        /// In-control mean of the signal (μ₀).
        target: f64,
        /// Per-sample slack `k`.
        drift: f64,
        /// Alarm threshold `h`.
        threshold: f64,
        /// The watched signal.
        signal: ChangeSignal,
    },
    /// The Page–Hinkley rule.
    PageHinkley {
        /// In-control mean of the signal (μ₀).
        target: f64,
        /// Per-sample slack δ.
        delta: f64,
        /// Alarm threshold λ.
        lambda: f64,
        /// The watched signal.
        signal: ChangeSignal,
    },
}

impl From<Cusum> for ChangepointSpec {
    fn from(c: Cusum) -> Self {
        ChangepointSpec::Cusum {
            target: c.target,
            drift: c.drift,
            threshold: c.threshold,
            signal: c.signal,
        }
    }
}

impl From<PageHinkley> for ChangepointSpec {
    fn from(p: PageHinkley) -> Self {
        ChangepointSpec::PageHinkley {
            target: p.target,
            delta: p.delta,
            lambda: p.lambda,
            signal: p.signal,
        }
    }
}

impl ChangepointSpec {
    /// The watched signal.
    pub fn signal(&self) -> ChangeSignal {
        match self {
            ChangepointSpec::Cusum { signal, .. } | ChangepointSpec::PageHinkley { signal, .. } => {
                *signal
            }
        }
    }

    /// Short display name of the rule family.
    pub fn name(&self) -> &'static str {
        match self {
            ChangepointSpec::Cusum { .. } => "cusum",
            ChangepointSpec::PageHinkley { .. } => "page-hinkley",
        }
    }

    pub(crate) fn validate(&self) -> Result<()> {
        let (target, slack, threshold) = match *self {
            ChangepointSpec::Cusum {
                target,
                drift,
                threshold,
                ..
            } => (target, drift, threshold),
            ChangepointSpec::PageHinkley {
                target,
                delta,
                lambda,
                ..
            } => (target, delta, lambda),
        };
        if !target.is_finite() || target < 0.0 {
            return Err(DfError::Invalid(format!(
                "change-point target must be a finite non-negative signal level, got {target}"
            )));
        }
        if !slack.is_finite() || slack < 0.0 {
            return Err(DfError::Invalid(format!(
                "change-point drift/delta slack must be finite and non-negative, got {slack}"
            )));
        }
        if !threshold.is_finite() || threshold <= 0.0 {
            return Err(DfError::Invalid(format!(
                "change-point threshold must be finite and positive, got {threshold}"
            )));
        }
        Ok(())
    }
}

/// One raised change-point alarm: which detector, where in the stream,
/// and the statistic/sample that crossed the threshold.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChangepointAlarm {
    /// The detector that alarmed.
    pub detector: ChangepointSpec,
    /// Total records ingested when the alarm was raised.
    pub at_record: u64,
    /// The monitor clock at the alarm (wall-clock windows only).
    pub at_seconds: Option<f64>,
    /// The detector statistic at the alarm (CUSUM `g`, Page–Hinkley
    /// `m − min(m)`).
    pub statistic: f64,
    /// The signal sample that completed the crossing.
    pub signal: f64,
}

/// One detector's serializable state inside a
/// [`super::MonitorSnapshot`]: its configuration, the current evidence
/// statistic, and every alarm it has raised.
///
/// Shard merging is conservative: specs must match position-wise, merged
/// `statistic` is the **max** across shards (the fleet is at least as
/// close to alarming as its worst shard; max is commutative, associative,
/// and has the fresh detector's 0 as identity — the statistic is never
/// negative), and alarm logs concatenate in canonical order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChangepointStatus {
    /// The detector configuration.
    pub spec: ChangepointSpec,
    /// Current evidence statistic (CUSUM `g`, Page–Hinkley `m − min(m)`;
    /// always ≥ 0, reset to 0 by each alarm).
    pub statistic: f64,
    /// Every alarm this detector has raised, in raising order.
    pub alarms: Vec<ChangepointAlarm>,
}

/// The runtime state of one configured detector.
pub(super) struct DetectorState {
    spec: ChangepointSpec,
    /// CUSUM `g`, or Page–Hinkley running sum `m`.
    sum: f64,
    /// Page–Hinkley running minimum of `m` (unused by CUSUM).
    min: f64,
    alarms: Vec<ChangepointAlarm>,
}

impl DetectorState {
    pub(super) fn new(spec: ChangepointSpec) -> Self {
        Self {
            spec,
            sum: 0.0,
            min: 0.0,
            alarms: Vec::new(),
        }
    }

    pub(super) fn spec(&self) -> &ChangepointSpec {
        &self.spec
    }

    /// The current evidence statistic (always ≥ 0).
    pub(super) fn gauge(&self) -> f64 {
        match self.spec {
            ChangepointSpec::Cusum { .. } => self.sum,
            ChangepointSpec::PageHinkley { .. } => self.sum - self.min,
        }
    }

    pub(super) fn alarms(&self) -> &[ChangepointAlarm] {
        &self.alarms
    }

    /// Feeds one sample; on an alarm, logs it (stamped with the stream
    /// position) and resets the statistic. Non-finite samples are
    /// skipped. Returns the alarm, if one was raised.
    pub(super) fn observe(
        &mut self,
        sample: f64,
        at_record: u64,
        at_seconds: Option<f64>,
    ) -> Option<ChangepointAlarm> {
        if !sample.is_finite() {
            return None;
        }
        let crossed = match self.spec {
            ChangepointSpec::Cusum {
                target,
                drift,
                threshold,
                ..
            } => {
                self.sum = (self.sum + sample - target - drift).max(0.0);
                (self.sum > threshold).then_some(self.sum)
            }
            ChangepointSpec::PageHinkley {
                target,
                delta,
                lambda,
                ..
            } => {
                self.sum += sample - target - delta;
                self.min = self.min.min(self.sum);
                let gauge = self.sum - self.min;
                (gauge > lambda).then_some(gauge)
            }
        };
        let statistic = crossed?;
        self.sum = 0.0;
        self.min = 0.0;
        let alarm = ChangepointAlarm {
            detector: self.spec,
            at_record,
            at_seconds,
            statistic,
            signal: sample,
        };
        self.alarms.push(alarm.clone());
        Some(alarm)
    }

    /// Reconstructs the snapshot-side view.
    pub(super) fn status(&self) -> ChangepointStatus {
        ChangepointStatus {
            spec: self.spec,
            statistic: self.gauge(),
            alarms: self.alarms.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cusum_accumulates_slack_adjusted_evidence_and_resets() {
        let mut d = DetectorState::new(Cusum::new(0.1, 0.05, 0.5).into());
        // In-control samples at the target accumulate nothing.
        for _ in 0..100 {
            assert!(d.observe(0.1, 0, None).is_none());
        }
        assert_eq!(d.gauge(), 0.0);
        // A shift to 0.35 accumulates 0.35 − 0.1 − 0.05 = 0.2 of evidence
        // per sample → alarm on the 3rd sample (0.2, 0.4, 0.6 > 0.5).
        assert!(d.observe(0.35, 1, None).is_none());
        assert!(d.observe(0.35, 2, None).is_none());
        let alarm = d.observe(0.35, 3, None).expect("third sample crosses");
        assert_eq!(alarm.at_record, 3);
        assert!((alarm.statistic - 0.6).abs() < 1e-12);
        assert_eq!(alarm.signal, 0.35);
        // The statistic reset; the rule keeps watching.
        assert_eq!(d.gauge(), 0.0);
        assert_eq!(d.alarms().len(), 1);
        // Non-finite samples are skipped outright.
        assert!(d.observe(f64::INFINITY, 4, None).is_none());
        assert_eq!(d.gauge(), 0.0);
    }

    #[test]
    fn page_hinkley_tracks_the_running_minimum() {
        let mut d = DetectorState::new(PageHinkley::new(0.2, 0.0, 0.3).into());
        // Samples below target push m down; the min follows, so the gauge
        // stays 0 — a falling signal never alarms a one-sided rule.
        for _ in 0..10 {
            assert!(d.observe(0.0, 0, None).is_none());
        }
        assert_eq!(d.gauge(), 0.0);
        // A rise of +0.2 over target needs two samples to clear λ = 0.3.
        assert!(d.observe(0.4, 1, None).is_none());
        let alarm = d
            .observe(0.4, 2, Some(12.5))
            .expect("second sample crosses");
        assert!((alarm.statistic - 0.4).abs() < 1e-12);
        assert_eq!(alarm.at_seconds, Some(12.5));
        assert_eq!(d.gauge(), 0.0);
    }

    #[test]
    fn specs_validate_parameters() {
        assert!(ChangepointSpec::from(Cusum::new(0.1, 0.05, 0.5))
            .validate()
            .is_ok());
        assert!(ChangepointSpec::from(Cusum::new(f64::NAN, 0.05, 0.5))
            .validate()
            .is_err());
        assert!(ChangepointSpec::from(Cusum::new(-0.1, 0.05, 0.5))
            .validate()
            .is_err());
        assert!(ChangepointSpec::from(Cusum::new(0.1, -0.05, 0.5))
            .validate()
            .is_err());
        assert!(ChangepointSpec::from(Cusum::new(0.1, 0.05, 0.0))
            .validate()
            .is_err());
        assert!(
            ChangepointSpec::from(PageHinkley::new(0.1, 0.0, f64::INFINITY))
                .validate()
                .is_err()
        );
    }

    #[test]
    fn spec_round_trips_through_json() {
        let spec: ChangepointSpec = Cusum::new(0.1, 0.05, 0.5)
            .over(ChangeSignal::RawLogRatio)
            .into();
        let json = serde_json::to_string(&spec).unwrap();
        let back: ChangepointSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spec);
        assert_eq!(spec.signal(), ChangeSignal::RawLogRatio);
        assert_eq!(spec.name(), "cusum");
    }
}
