//! Online sliding-window fairness monitoring.
//!
//! A one-shot audit certifies ε for a dataset frozen in time; a *deployed*
//! classifier drifts — the joint distribution of `(outcome, s₁, …, s_p)`
//! shifts under it, and yesterday's certificate goes stale. Because the
//! ε-DF kernel only ever consumes joint counts, and counts form a
//! *cancellative* commutative monoid ([`PartialCounts::merge`] /
//! [`PartialCounts::subtract`]), a continuously-updated windowed ε is one
//! subtraction away from the streaming engine of [`crate::stream`]:
//!
//! - **Sliding window.** Incoming record chunks become buckets in a ring;
//!   a running [`PartialCounts`] holds the window sum. Appending a bucket
//!   is `merge`, expiring one is `subtract` — both exact on integer
//!   tallies — so the windowed ε is *byte-identical* to a batch
//!   [`crate::builder::Audit`] of the very same records, at every step
//!   (asserted by the `monitor_equivalence` property suite). Windows come
//!   in two flavours:
//!   - **by record count** ([`MonitorBuilder::window`]): the last W
//!     records, fed via [`FairnessMonitor::push`];
//!   - **by wall-clock time** ([`MonitorBuilder::window_seconds`] +
//!     [`MonitorBuilder::bucket_seconds`]): the last T seconds at bucket
//!     granularity, fed via [`FairnessMonitor::push_at`] with
//!     caller-supplied timestamps (core never reads `Instant::now()`, so
//!     wall-clock monitoring stays replayable and testable), advanced —
//!     and drained — by [`FairnessMonitor::advance_to`] even when no
//!     records arrive (see the `monitor_time_equivalence` suite).
//! - **Decayed horizon.** An optional exponentially-decayed table tracks
//!   the long-run distribution; comparing windowed ε against the decayed ε
//!   separates a transient spike from a secular trend.
//! - **Alerts with hysteresis.** [`AlertRule::epsilon_above`] fires after
//!   K *consecutive* breaching windows (no flapping on noise) and attaches
//!   the worst-pair witness; it re-arms only after ε falls back under the
//!   threshold.
//! - **Change-point detection.** The hysteresis rule reacts to levels;
//!   [`Cusum`] and [`PageHinkley`] detectors
//!   ([`MonitorBuilder::changepoint`]) accumulate evidence of a *mean
//!   shift* in the windowed ε (or the raw worst-pair log-ratio) and alarm
//!   with bounded false-positive rate — the fast drift signal the decayed
//!   trend cannot be (see [`changepoint`](self) docs and the
//!   `monitor_changepoint` golden suite).
//! - **Distribution.** [`MonitorSnapshot`] carries the raw window and
//!   horizon counts plus detector states, so snapshots from sharded
//!   monitors (one per serving replica) merge cell-wise into the
//!   fleet-wide monitor state, exactly like the partial counts of the
//!   sharded audit engine — commutatively and associatively, so
//!   aggregation-tree order never matters.
//!
//! Entry point: [`crate::builder::Audit::monitor`], which shares the
//! builder's estimator and subset-policy stages.
//!
//! ```
//! use df_core::builder::{Audit, Smoothed};
//! use df_core::monitor::{AlertRule, Cusum};
//! use df_prob::contingency::Axis;
//! use df_prob::partial::{PartialCounts, Tally};
//!
//! struct Rows(Vec<[usize; 2]>);
//! impl Tally for Rows {
//!     fn tally_into(&self, shard: &mut PartialCounts) -> df_prob::Result<()> {
//!         for idx in &self.0 {
//!             shard.record(idx);
//!         }
//!         Ok(())
//!     }
//! }
//!
//! let axes = vec![
//!     Axis::from_strs("y", &["no", "yes"]).unwrap(),
//!     Axis::from_strs("g", &["a", "b"]).unwrap(),
//! ];
//! // A record-count window with a hysteresis alert…
//! let mut monitor = Audit::monitor("y", axes.clone())
//!     .estimator(Smoothed { alpha: 1.0 })
//!     .window(4)
//!     .alert(AlertRule::epsilon_above(0.2).for_consecutive(2))
//!     .build()
//!     .unwrap();
//! let step = monitor
//!     .push(&Rows(vec![[0, 0], [1, 0], [0, 1], [1, 1]]))
//!     .unwrap();
//! assert_eq!(step.window_rows, 4);
//! assert!(step.epsilon.epsilon.is_finite());
//!
//! // …and a wall-clock window (last 60 s, 5 s buckets) with CUSUM.
//! let mut clocked = Audit::monitor("y", axes)
//!     .window_seconds(60.0)
//!     .bucket_seconds(5.0)
//!     .changepoint(Cusum::new(0.2, 0.05, 0.5))
//!     .build()
//!     .unwrap();
//! clocked
//!     .push_at(&Rows(vec![[0, 0], [1, 1]]), 12.0)
//!     .unwrap();
//! assert_eq!(clocked.window_rows(), 2);
//! // Advancing past 12.0 + 60 s with zero arrivals drains the window.
//! let idle = clocked.advance_to(100.0).unwrap();
//! assert_eq!(idle.window_rows, 0);
//! ```

mod changepoint;
mod clock;
mod ring;
mod snapshot;
mod telemetry;

pub use changepoint::{
    ChangeSignal, ChangepointAlarm, ChangepointSpec, ChangepointStatus, Cusum, PageHinkley,
};
pub use snapshot::{CountsSnapshot, MonitorSnapshot};
pub use telemetry::MonitorTelemetry;

use crate::builder::{EpsilonEstimator, Smoothed, SubsetPolicy};
use crate::edf::JointCounts;
use crate::epsilon::{EpsilonResult, EpsilonWitness};
use crate::error::{DfError, Result};
use crate::metric::{EpsilonDf, Metric};
use changepoint::DetectorState;
use clock::TimeRing;
use df_prob::contingency::{Axis, ContingencyTable};
use df_prob::numerics::exactly_zero;
use df_prob::partial::{PartialCounts, Tally};
use ring::{CountRing, WindowEngine};
use serde::{Deserialize, Serialize};
use snapshot::subset_epsilons;

// ---------------------------------------------------------------------------
// Alert rules.
// ---------------------------------------------------------------------------

/// A threshold rule over the windowed ε, with hysteresis: the rule fires
/// once ε has exceeded `threshold` for `consecutive` windows in a row, and
/// does not fire again until ε first falls back below the threshold
/// (re-arming the rule).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AlertRule {
    /// ε level above which the rule starts counting.
    pub threshold: f64,
    /// Number of consecutive breaching windows required to fire (≥ 1).
    pub consecutive: usize,
}

impl AlertRule {
    /// A rule firing as soon as ε exceeds `threshold` (K = 1); chain
    /// [`AlertRule::for_consecutive`] to require a sustained breach.
    pub fn epsilon_above(threshold: f64) -> Self {
        Self {
            threshold,
            consecutive: 1,
        }
    }

    /// Requires `k` consecutive breaching windows before firing (values
    /// below 1 are treated as 1).
    pub fn for_consecutive(mut self, k: usize) -> Self {
        self.consecutive = k.max(1);
        self
    }
}

/// One fired alert: which rule, where in the stream, and the worst-pair
/// witness of the breaching window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Alert {
    /// The rule that fired.
    pub rule: AlertRule,
    /// Total records ingested when the rule fired.
    pub at_record: u64,
    /// The monitor clock when the rule fired (wall-clock windows only).
    pub at_seconds: Option<f64>,
    /// The windowed ε that completed the consecutive run.
    pub epsilon: f64,
    /// The worst group pair/outcome of the breaching window.
    pub witness: Option<EpsilonWitness>,
}

/// Per-rule hysteresis state.
#[derive(Debug, Clone, Default)]
struct RuleState {
    /// Current run length of breaching windows.
    streak: usize,
    /// True between firing and the next sub-threshold window.
    active: bool,
}

// ---------------------------------------------------------------------------
// The step result.
// ---------------------------------------------------------------------------

/// The lightweight per-push result: the stream position, the freshly
/// updated windowed (and horizon) ε, and any alerts or change-point
/// alarms raised by this window. The full mergeable state — counts,
/// subsets, detector statistics, alert log — comes from
/// [`FairnessMonitor::snapshot`], which is heavier (it clones the tables)
/// and intended for checkpointing and cross-shard merging rather than the
/// per-chunk hot path.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct MonitorStep {
    /// Total records ingested so far.
    pub records_seen: u64,
    /// Records currently inside the window.
    pub window_rows: u64,
    /// Largest timestamp seen so far (wall-clock windows only).
    pub now_seconds: Option<f64>,
    /// ε of the window under the configured estimator.
    pub epsilon: EpsilonResult,
    /// ε of the decayed horizon (present iff decay configured).
    pub decayed_epsilon: Option<EpsilonResult>,
    /// Alerts fired at this step (usually empty).
    pub fired: Vec<Alert>,
    /// Change-point alarms raised at this step (usually empty).
    pub alarms: Vec<ChangepointAlarm>,
}

// ---------------------------------------------------------------------------
// The builder.
// ---------------------------------------------------------------------------

/// Fluent configuration for a [`FairnessMonitor`]; created by
/// [`crate::builder::Audit::monitor`] and sharing the audit builder's
/// estimator/subset-policy stages. `Clone` (via
/// [`EpsilonEstimator::clone_box`]) is what lets the fleet front-end
/// replicate one configuration into N identical shard monitors.
#[derive(Clone)]
pub struct MonitorBuilder {
    outcome_axis: String,
    axes: Vec<Axis>,
    estimator: Option<Box<dyn EpsilonEstimator>>,
    metric: Option<Box<dyn Metric>>,
    subsets: SubsetPolicy,
    window_records: Option<usize>,
    window_seconds: Option<f64>,
    bucket_seconds: Option<f64>,
    decay: Option<f64>,
    rules: Vec<AlertRule>,
    changepoints: Vec<ChangepointSpec>,
    telemetry: Option<MonitorTelemetry>,
}

impl MonitorBuilder {
    /// See [`crate::builder::Audit::monitor`].
    pub(crate) fn new(outcome_axis: &str, axes: Vec<Axis>) -> Self {
        Self {
            outcome_axis: outcome_axis.to_string(),
            axes,
            estimator: None,
            metric: None,
            subsets: SubsetPolicy::None,
            window_records: None,
            window_seconds: None,
            bucket_seconds: None,
            decay: None,
            rules: Vec::new(),
            changepoints: Vec::new(),
            telemetry: None,
        }
    }

    /// Whether this configuration windows by wall-clock time.
    pub(crate) fn is_wall_clock(&self) -> bool {
        self.window_seconds.is_some()
    }

    /// The telemetry bundle injected via [`MonitorBuilder::telemetry`],
    /// if any — the fleet front-end honours it as the fleet-wide bundle.
    pub(crate) fn injected_telemetry(&self) -> Option<&MonitorTelemetry> {
        self.telemetry.as_ref()
    }

    /// The estimator used when none is configured: [`Smoothed`]
    /// `{ alpha: 1.0 }`, the audit builder's headline default. One
    /// definition shared by [`MonitorBuilder::build`] and the fleet
    /// aggregator, so shard monitors and the snapshot merge can never
    /// silently fall back to different strategies.
    fn default_estimator() -> Box<dyn EpsilonEstimator> {
        Box::new(Smoothed { alpha: 1.0 })
    }

    /// The configured estimator (or the builder's default), cloned out —
    /// the fleet aggregator needs its own copy to merge shard snapshots.
    pub(crate) fn shared_estimator(&self) -> Box<dyn EpsilonEstimator> {
        self.estimator
            .clone()
            .unwrap_or_else(Self::default_estimator)
    }

    /// The metric used when none is configured: ε-DF, the paper's
    /// headline definition and the byte-identical historical behaviour.
    /// The fleet aggregator never needs a copy: merged snapshots carry
    /// the metric tag and recompute through [`crate::metric::metric_from_tag`].
    fn default_metric() -> Box<dyn Metric> {
        Box::new(EpsilonDf)
    }

    /// Sets the ε-estimation strategy (default: [`Smoothed`]` { alpha: 1.0 }`,
    /// the audit builder's headline default).
    pub fn estimator(mut self, estimator: impl EpsilonEstimator + 'static) -> Self {
        self.estimator = Some(Box::new(estimator));
        self
    }

    /// Sets an already-boxed estimator.
    pub fn boxed_estimator(mut self, estimator: Box<dyn EpsilonEstimator>) -> Self {
        self.estimator = Some(estimator);
        self
    }

    /// Sets the fairness metric the monitor tracks (default:
    /// [`EpsilonDf`], the paper's ε-DF). Every windowed statistic, subset
    /// entry, alert, and change-point sample is computed under it.
    pub fn metric(mut self, metric: impl Metric + 'static) -> Self {
        self.metric = Some(Box::new(metric));
        self
    }

    /// Sets an already-boxed metric (see [`MonitorBuilder::metric`]).
    pub fn boxed_metric(mut self, metric: Box<dyn Metric>) -> Self {
        self.metric = Some(metric);
        self
    }

    /// Which attribute subsets [`FairnessMonitor::snapshot`] audits
    /// (default [`SubsetPolicy::None`]: the full intersection only — the
    /// per-push hot path never pays for the lattice).
    pub fn subsets(mut self, policy: SubsetPolicy) -> Self {
        self.subsets = policy;
        self
    }

    /// Window size W in records (default 10 000 when no wall-clock window
    /// is configured). The ring keeps the most recent chunks whose
    /// cumulative size is at most W, so feed uniform chunks of a size
    /// dividing W for an exact W-record window. Mutually exclusive with
    /// [`MonitorBuilder::window_seconds`].
    pub fn window(mut self, records: usize) -> Self {
        self.window_records = Some(records);
        self
    }

    /// Switches to a **wall-clock window**: the monitor keeps the last
    /// `seconds` of traffic (resolved at [`MonitorBuilder::bucket_seconds`]
    /// granularity) instead of the last W records, and is fed through
    /// [`FairnessMonitor::push_at`] / [`FairnessMonitor::advance_to`] with
    /// caller-supplied timestamps. Mutually exclusive with
    /// [`MonitorBuilder::window`].
    pub fn window_seconds(mut self, seconds: f64) -> Self {
        self.window_seconds = Some(seconds);
        self
    }

    /// Bucket granularity for the wall-clock window: timestamps are
    /// quantized to `⌊t / seconds⌋` buckets, and the window holds the last
    /// `⌈T / b⌉` buckets. Smaller buckets track the window edge more
    /// finely at the cost of a longer ring. Defaults to the full window
    /// span (a single bucket); requires
    /// [`MonitorBuilder::window_seconds`].
    pub fn bucket_seconds(mut self, seconds: f64) -> Self {
        self.bucket_seconds = Some(seconds);
        self
    }

    /// Enables the exponentially-decayed horizon: before each new bucket
    /// is absorbed, every horizon cell is scaled by `lambda ∈ (0, 1)`.
    /// The horizon half-life is `ln 2 / ln(1/λ)` buckets — e.g. λ = 0.99
    /// halves the influence of a bucket after ≈ 69 subsequent buckets.
    pub fn decay(mut self, lambda: f64) -> Self {
        self.decay = Some(lambda);
        self
    }

    /// Attaches an alert rule; chain multiple calls for multiple rules.
    pub fn alert(mut self, rule: AlertRule) -> Self {
        self.rules.push(rule);
        self
    }

    /// Attaches a change-point detector ([`Cusum`] or [`PageHinkley`]);
    /// chain multiple calls for multiple detectors.
    pub fn changepoint(mut self, detector: impl Into<ChangepointSpec>) -> Self {
        self.changepoints.push(detector.into());
        self
    }

    /// Injects a shared [`MonitorTelemetry`] bundle (handles are
    /// `Arc`-backed, so passing clones of one bundle to several monitors
    /// aggregates their events — this is how the fleet front-end sums
    /// alerts/alarms/evictions across shards without a merge step). A
    /// monitor built without one gets its own private bundle, reachable
    /// via [`FairnessMonitor::telemetry`]; the counters are pure stream
    /// functions either way, so nothing about ε, windows, or snapshots
    /// changes.
    pub fn telemetry(mut self, telemetry: MonitorTelemetry) -> Self {
        self.telemetry = Some(telemetry);
        self
    }

    /// Validates the configuration and builds the monitor.
    pub fn build(self) -> Result<FairnessMonitor> {
        if let Some(lambda) = self.decay {
            if !(lambda > 0.0 && lambda < 1.0) {
                return Err(DfError::Invalid(format!(
                    "decay lambda must lie in (0, 1), got {lambda}"
                )));
            }
        }
        for rule in &self.rules {
            if !rule.threshold.is_finite() || rule.threshold < 0.0 {
                return Err(DfError::Invalid(format!(
                    "alert threshold must be finite and non-negative, got {}",
                    rule.threshold
                )));
            }
        }
        for spec in &self.changepoints {
            spec.validate()?;
        }
        // Validate the schema once: the zero window must already be a legal
        // JointCounts (outcome axis present, ≥ 2 outcomes, ≥ 1 attribute).
        let zero = JointCounts::from_table(
            ContingencyTable::zeros(self.axes.clone())?,
            &self.outcome_axis,
        )?;
        let attribute_names: Vec<String> = zero
            .attribute_names()
            .iter()
            .map(|s| s.to_string())
            .collect();
        let p = attribute_names.len();
        let limit = match self.subsets {
            SubsetPolicy::All => p,
            SubsetPolicy::UpTo { size } => size.min(p),
            SubsetPolicy::None => 0,
        };
        let mut masks: Vec<u32> = (1..(1u32 << p))
            .filter(|m| {
                let ones = m.count_ones() as usize;
                ones <= limit || ones == p
            })
            .collect();
        masks.sort_by_key(|m| (m.count_ones(), *m));
        let subset_attrs: Vec<Vec<String>> = masks
            .into_iter()
            .map(|mask| {
                (0..p)
                    .filter(|i| mask & (1 << i) != 0)
                    .map(|i| attribute_names[i].clone())
                    .collect()
            })
            .collect();
        let window = match (self.window_records, self.window_seconds) {
            (Some(_), Some(_)) => {
                return Err(DfError::Invalid(
                    "configure either a record-count window or a wall-clock window, not both"
                        .into(),
                ));
            }
            (records, None) => {
                if self.bucket_seconds.is_some() {
                    return Err(DfError::Invalid(
                        "bucket_seconds requires a wall-clock window (set window_seconds)".into(),
                    ));
                }
                let capacity = records.unwrap_or(10_000);
                if capacity == 0 {
                    return Err(DfError::Invalid(
                        "window must hold at least 1 record".into(),
                    ));
                }
                WindowState::Count(CountRing::new(self.axes.clone(), capacity)?)
            }
            (None, Some(span)) => {
                if !span.is_finite() || span <= 0.0 {
                    return Err(DfError::Invalid(format!(
                        "window_seconds must be finite and positive, got {span}"
                    )));
                }
                let bucket = self.bucket_seconds.unwrap_or(span);
                if !bucket.is_finite() || bucket <= 0.0 || bucket > span {
                    return Err(DfError::Invalid(format!(
                        "bucket_seconds must be finite, positive, and at most the \
                         {span}-second window, got {bucket}"
                    )));
                }
                // Millisecond floor: `⌊t / b⌋` must stay inside i64 for
                // every legal timestamp (≤ 1e15 s), or the saturating
                // float→int cast would silently collapse distinct times
                // into one never-evicted bucket. 1e15 / 1e-3 = 1e18,
                // comfortably under i64::MAX ≈ 9.2e18.
                if bucket < 1e-3 {
                    return Err(DfError::Invalid(format!(
                        "bucket_seconds must be at least 1 ms, got {bucket}"
                    )));
                }
                if (span / bucket).ceil() > 1e9 {
                    return Err(DfError::Invalid(format!(
                        "window of {span} s at {bucket} s buckets needs more than 1e9 \
                         buckets; coarsen the granularity"
                    )));
                }
                WindowState::Time(TimeRing::new(self.axes.clone(), span, bucket)?)
            }
        };
        let states = vec![RuleState::default(); self.rules.len()];
        let detectors = self
            .changepoints
            .into_iter()
            .map(DetectorState::new)
            .collect();
        let engine = WindowEngine::new(&self.axes, &self.outcome_axis)?;
        let scratch = PartialCounts::zeros(self.axes.clone())?;
        let decayed = self
            .decay
            .map(|_| ContingencyTable::zeros(self.axes.clone()))
            .transpose()?;
        Ok(FairnessMonitor {
            engine,
            outcome_axis: self.outcome_axis,
            estimator: self.estimator.unwrap_or_else(Self::default_estimator),
            metric: self.metric.unwrap_or_else(Self::default_metric),
            subset_attrs,
            decay: self.decay,
            rules: self.rules,
            states,
            detectors,
            window_seconds: self.window_seconds,
            bucket_seconds: self
                .window_seconds
                .map(|span| self.bucket_seconds.unwrap_or(span)),
            window,
            scratch,
            decayed,
            records_seen: 0,
            alerts: Vec::new(),
            telemetry: self.telemetry.unwrap_or_default(),
            evictions_reported: 0,
        })
    }
}

// ---------------------------------------------------------------------------
// The monitor.
// ---------------------------------------------------------------------------

/// The window policy in force: last-W-records or last-T-seconds.
enum WindowState {
    Count(CountRing),
    Time(TimeRing),
}

impl WindowState {
    fn table(&self) -> &ContingencyTable {
        match self {
            WindowState::Count(ring) => ring.table(),
            WindowState::Time(ring) => ring.table(),
        }
    }

    fn rows(&self) -> usize {
        match self {
            WindowState::Count(ring) => ring.rows(),
            WindowState::Time(ring) => ring.rows(),
        }
    }

    fn now(&self) -> Option<f64> {
        match self {
            WindowState::Count(_) => None,
            WindowState::Time(ring) => ring.now(),
        }
    }

    /// Cumulative buckets evicted over the ring's lifetime.
    fn evicted_buckets(&self) -> u64 {
        match self {
            WindowState::Count(ring) => ring.evicted_buckets(),
            WindowState::Time(ring) => ring.evicted_buckets(),
        }
    }
}

/// The streaming fairness monitor; see the [module docs](self).
pub struct FairnessMonitor {
    engine: WindowEngine,
    outcome_axis: String,
    estimator: Box<dyn EpsilonEstimator>,
    metric: Box<dyn Metric>,
    subset_attrs: Vec<Vec<String>>,
    decay: Option<f64>,
    rules: Vec<AlertRule>,
    states: Vec<RuleState>,
    detectors: Vec<DetectorState>,
    /// Config echo for snapshots (wall-clock monitors only).
    window_seconds: Option<f64>,
    bucket_seconds: Option<f64>,
    window: WindowState,
    /// Reused per-push tally shard (cleared between chunks), so ingesting
    /// a bucket never re-allocates the schema.
    scratch: PartialCounts,
    /// Exponentially-decayed horizon counts (present iff decay set).
    decayed: Option<ContingencyTable>,
    records_seen: u64,
    alerts: Vec<Alert>,
    /// Telemetry handles (shared across a fleet's shards, or private).
    telemetry: MonitorTelemetry,
    /// Ring evictions already flushed into `telemetry.evicted_buckets` —
    /// the delta cursor that keeps the shared counter exact even though
    /// the rings only expose cumulative totals.
    evictions_reported: u64,
}

impl FairnessMonitor {
    /// Ingests one chunk as a new window bucket, evicts expired buckets,
    /// recomputes the windowed (and horizon) ε, and evaluates the alert
    /// rules and change-point detectors. Incremental cost is one chunk
    /// tally plus O(cells) — never a window re-scan (see the `monitor`
    /// criterion bench).
    ///
    /// Record-count windows only (the default, and
    /// [`MonitorBuilder::window`]); a wall-clock monitor must be fed
    /// through [`FairnessMonitor::push_at`]. A chunk larger than the
    /// window itself is rejected: it could never fit, and silently
    /// truncating it would break the window's "last W records" contract.
    pub fn push<C: Tally + ?Sized>(&mut self, chunk: &C) -> Result<MonitorStep> {
        let rows = self.seal_chunk(chunk)?;
        let WindowState::Count(ring) = &mut self.window else {
            return Err(DfError::Invalid(
                "this monitor windows by wall-clock time; push chunks with \
                 push_at(chunk, timestamp)"
                    .into(),
            ));
        };
        if rows > ring.capacity() {
            return Err(DfError::Invalid(format!(
                "chunk of {rows} records exceeds the {}-record window",
                ring.capacity()
            )));
        }
        ring.ingest(self.scratch.table(), rows)?;
        self.absorb_into_horizon()?;
        self.finish(rows)
    }

    /// Wall-clock twin of [`FairnessMonitor::push`]: ingests one chunk at
    /// the caller-supplied timestamp (seconds; see
    /// [`MonitorBuilder::window_seconds`]), merging it into the bucket the
    /// timestamp lands in — out-of-order arrivals are folded into any
    /// bucket still inside the window; a timestamp older than the whole
    /// window is refused. Advancing timestamps evict expired buckets
    /// through the exact subtract path before ε is recomputed.
    pub fn push_at<C: Tally + ?Sized>(&mut self, chunk: &C, timestamp: f64) -> Result<MonitorStep> {
        let rows = self.seal_chunk(chunk)?;
        let WindowState::Time(ring) = &mut self.window else {
            return Err(DfError::Invalid(
                "this monitor windows by record count; push chunks with push(chunk), \
                 or configure window_seconds for wall-clock windowing"
                    .into(),
            ));
        };
        ring.ingest_at(self.scratch.table(), rows, timestamp)?;
        self.absorb_into_horizon()?;
        self.finish(rows)
    }

    /// Advances a wall-clock monitor's clock with **zero arrivals**:
    /// evicts every bucket older than `timestamp − T`, recomputes ε over
    /// what remains (down to the vacuous ε = 0 of the empty window), and
    /// evaluates alert rules and change-point detectors on the new state.
    /// Timestamps behind the current clock are a no-op evaluation (the
    /// clock is the max over everything seen). Serving fleets call this
    /// on a timer so a silent upstream cannot freeze the window contents.
    pub fn advance_to(&mut self, timestamp: f64) -> Result<MonitorStep> {
        let WindowState::Time(ring) = &mut self.window else {
            return Err(DfError::Invalid(
                "advance_to is only meaningful for wall-clock windows \
                 (configure window_seconds)"
                    .into(),
            ));
        };
        ring.advance_to(timestamp)?;
        self.finish(0)
    }

    /// Clears and re-fills the scratch tally from `chunk`, validating
    /// every cell: `Tally` impls are user code with access to weighted
    /// `add`, and a negative, fractional, or non-finite cell would
    /// silently break the integer-tally premise the exact merge/subtract
    /// window rests on (a negative count turns ε into NaN, which no alert
    /// rule ever fires on). Returns the chunk's record count.
    fn seal_chunk<C: Tally + ?Sized>(&mut self, chunk: &C) -> Result<usize> {
        self.scratch.clear();
        chunk.tally_into(&mut self.scratch)?;
        let cells = self.scratch.table().data();
        if let Some(cell) = cells
            .iter()
            .position(|v| !v.is_finite() || *v < 0.0 || !exactly_zero(v.fract()))
        {
            return Err(DfError::Invalid(format!(
                "monitor buckets need finite, non-negative, integer cell tallies; \
                 cell {cell} holds {}",
                cells[cell]
            )));
        }
        Ok(self.scratch.total() as usize)
    }

    /// Scales the decayed horizon and absorbs the freshly sealed bucket.
    fn absorb_into_horizon(&mut self) -> Result<()> {
        if let (Some(lambda), Some(decayed)) = (self.decay, self.decayed.as_mut()) {
            decayed.scale(lambda)?;
            decayed.merge_from(self.scratch.table())?;
        }
        Ok(())
    }

    /// Shared post-ingest tail: account the rows, recompute ε, evaluate
    /// alert rules and change-point detectors, assemble the step.
    fn finish(&mut self, rows: usize) -> Result<MonitorStep> {
        self.records_seen += rows as u64;
        let raw = self.engine.raw_outcomes(self.window.table())?;
        let epsilon = if self.metric.requires_counts() {
            // Label-conditioned metrics (differential equalized odds) need
            // the full joint table, not the flattened group×outcome view.
            let jc = JointCounts::from_table(self.window.table().clone(), &self.outcome_axis)?;
            self.metric.evaluate_counts(&jc, &*self.estimator)?
        } else {
            self.metric.evaluate(&raw, &*self.estimator)?
        };
        let decayed_epsilon = self.horizon_epsilon()?;
        let now_seconds = self.window.now();
        let fired = self.evaluate_rules(&epsilon, now_seconds);
        // The raw worst-pair log-ratio is only computed when a detector
        // actually watches it (one extra ε kernel pass).
        let raw_epsilon = self
            .detectors
            .iter()
            .any(|d| d.spec().signal() == ChangeSignal::RawLogRatio)
            .then(|| raw.epsilon().epsilon);
        let mut alarms = Vec::new();
        for detector in &mut self.detectors {
            let sample = match detector.spec().signal() {
                ChangeSignal::Epsilon => epsilon.epsilon,
                ChangeSignal::RawLogRatio => raw_epsilon.expect("computed when watched"),
            };
            if let Some(alarm) = detector.observe(sample, self.records_seen, now_seconds) {
                alarms.push(alarm);
            }
        }
        self.telemetry.alerts_fired.add(fired.len() as u64);
        self.telemetry.alarms_fired.add(alarms.len() as u64);
        let evicted_total = self.window.evicted_buckets();
        self.telemetry
            .evicted_buckets
            .add(evicted_total - self.evictions_reported);
        self.evictions_reported = evicted_total;
        Ok(MonitorStep {
            records_seen: self.records_seen,
            window_rows: self.window.rows() as u64,
            now_seconds,
            epsilon,
            decayed_epsilon,
            fired,
            alarms,
        })
    }

    /// The configured metric's statistic of the current window — the same
    /// value a batch [`crate::builder::Audit`] of the window's records
    /// would headline, byte for byte (computed through the cached
    /// `WindowEngine`, which is value-identical to the audit path).
    pub fn window_epsilon(&self) -> Result<EpsilonResult> {
        self.evaluate_table(self.window.table())
    }

    /// Evaluates the configured metric over one counts table.
    fn evaluate_table(&self, table: &ContingencyTable) -> Result<EpsilonResult> {
        if self.metric.requires_counts() {
            let jc = JointCounts::from_table(table.clone(), &self.outcome_axis)?;
            self.metric.evaluate_counts(&jc, &*self.estimator)
        } else {
            self.metric
                .evaluate(&self.engine.raw_outcomes(table)?, &*self.estimator)
        }
    }

    fn horizon_epsilon(&self) -> Result<Option<EpsilonResult>> {
        match &self.decayed {
            Some(d) => Ok(Some(self.evaluate_table(d)?)),
            None => Ok(None),
        }
    }

    fn evaluate_rules(&mut self, epsilon: &EpsilonResult, now_seconds: Option<f64>) -> Vec<Alert> {
        let mut fired = Vec::new();
        for (rule, state) in self.rules.iter().zip(&mut self.states) {
            if epsilon.epsilon > rule.threshold {
                state.streak += 1;
                if !state.active && state.streak >= rule.consecutive {
                    state.active = true;
                    let alert = Alert {
                        rule: *rule,
                        at_record: self.records_seen,
                        at_seconds: now_seconds,
                        epsilon: epsilon.epsilon,
                        witness: epsilon.witness.clone(),
                    };
                    fired.push(alert.clone());
                    self.alerts.push(alert);
                }
            } else {
                state.streak = 0;
                state.active = false;
            }
        }
        fired
    }

    /// Records currently inside the window.
    pub fn window_rows(&self) -> usize {
        self.window.rows()
    }

    /// Total records ingested over the monitor's lifetime.
    pub fn records_seen(&self) -> u64 {
        self.records_seen
    }

    /// Largest timestamp seen so far (wall-clock monitors only; `None`
    /// for record-count windows and before the first push).
    pub fn now_seconds(&self) -> Option<f64> {
        self.window.now()
    }

    /// The window's joint counts (outcome axis wherever the schema put it).
    pub fn window_counts(&self) -> &ContingencyTable {
        self.window.table()
    }

    /// Every alert fired so far, in firing order.
    pub fn alerts(&self) -> &[Alert] {
        &self.alerts
    }

    /// The monitor's telemetry handles (the injected shared bundle, or
    /// this monitor's private one). Durations in
    /// [`MonitorTelemetry::push_seconds`] are observed by the caller —
    /// core never reads a clock.
    pub fn telemetry(&self) -> &MonitorTelemetry {
        &self.telemetry
    }

    /// Every change-point alarm raised so far, across all detectors, in
    /// stream order.
    pub fn changepoint_alarms(&self) -> Vec<ChangepointAlarm> {
        let mut all: Vec<ChangepointAlarm> = self
            .detectors
            .iter()
            .flat_map(|d| d.alarms().iter().cloned())
            .collect();
        all.sort_by_key(|a| a.at_record);
        all
    }

    /// The full serializable, mergeable monitor state: window and horizon
    /// counts, ε, the per-subset lattice dictated by the configured
    /// [`SubsetPolicy`], change-point detector states, and the alert log.
    pub fn snapshot(&self) -> Result<MonitorSnapshot> {
        let window_counts =
            JointCounts::from_table(self.window.table().clone(), &self.outcome_axis)?;
        let epsilon = self.window_epsilon()?;
        let subsets = subset_epsilons(
            &window_counts,
            &self.subset_attrs,
            &epsilon,
            &*self.metric,
            &*self.estimator,
        )?;
        Ok(MonitorSnapshot {
            outcome_axis: self.outcome_axis.clone(),
            estimator: self.estimator.name(),
            metric: self.metric.tag(),
            records_seen: self.records_seen,
            window_rows: self.window.rows() as u64,
            window_seconds: self.window_seconds,
            bucket_seconds: self.bucket_seconds,
            now_seconds: self.window.now(),
            window: CountsSnapshot::from_table(self.window.table()),
            decayed: self.decayed.as_ref().map(CountsSnapshot::from_table),
            decay: self.decay,
            epsilon,
            decayed_epsilon: self.horizon_epsilon()?,
            subsets,
            alerts: self.alerts.clone(),
            changepoints: self.detectors.iter().map(|d| d.status()).collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{Audit, Empirical};

    /// A chunk of (outcome, group) index pairs.
    struct Pairs(Vec<[usize; 2]>);

    impl Tally for Pairs {
        fn tally_into(&self, shard: &mut PartialCounts) -> df_prob::Result<()> {
            for idx in &self.0 {
                shard.record(idx);
            }
            Ok(())
        }
    }

    fn axes() -> Vec<Axis> {
        vec![
            Axis::from_strs("y", &["no", "yes"]).unwrap(),
            Axis::from_strs("g", &["a", "b"]).unwrap(),
        ]
    }

    /// A balanced chunk (ε = 0) and a skewed chunk (ε > 0), both 4 records.
    fn balanced() -> Pairs {
        Pairs(vec![[0, 0], [1, 0], [0, 1], [1, 1]])
    }

    fn skewed() -> Pairs {
        Pairs(vec![[1, 0], [1, 0], [0, 1], [0, 1]])
    }

    #[test]
    fn telemetry_counts_alerts_and_evictions() {
        let tel = MonitorTelemetry::new();
        let mut monitor = Audit::monitor("y", axes())
            .window(4)
            .alert(AlertRule::epsilon_above(0.1))
            .telemetry(tel.clone())
            .build()
            .unwrap();
        monitor.push(&balanced()).unwrap();
        assert_eq!(tel.alerts_fired.get(), 0);
        assert_eq!(tel.evicted_buckets.get(), 0);
        // The skewed chunk fills the 4-record window — evicting the
        // balanced bucket — and trips the rule.
        let step = monitor.push(&skewed()).unwrap();
        assert_eq!(step.fired.len(), 1);
        assert_eq!(tel.alerts_fired.get(), 1);
        assert_eq!(tel.evicted_buckets.get(), 1);
        // Push durations are caller-observed (core owns no clock) onto
        // the same shared bundle the monitor exposes.
        tel.push_seconds.observe(0.002);
        assert_eq!(monitor.telemetry().push_seconds.count(), 1);
    }

    #[test]
    fn builder_validates_configuration() {
        assert!(Audit::monitor("y", axes()).window(0).build().is_err());
        assert!(Audit::monitor("y", axes()).decay(0.0).build().is_err());
        assert!(Audit::monitor("y", axes()).decay(1.0).build().is_err());
        assert!(Audit::monitor("nope", axes()).build().is_err());
        assert!(Audit::monitor("y", axes())
            .alert(AlertRule::epsilon_above(f64::NAN))
            .build()
            .is_err());
        // A single outcome label is not a legal schema.
        let bad = vec![
            Axis::from_strs("y", &["only"]).unwrap(),
            Axis::from_strs("g", &["a", "b"]).unwrap(),
        ];
        assert!(Audit::monitor("y", bad).build().is_err());
        // Wall-clock configuration: both window kinds at once, bucket
        // without a span, degenerate spans/buckets, bad detector params.
        assert!(Audit::monitor("y", axes())
            .window(8)
            .window_seconds(60.0)
            .build()
            .is_err());
        assert!(Audit::monitor("y", axes())
            .bucket_seconds(5.0)
            .build()
            .is_err());
        assert!(Audit::monitor("y", axes())
            .window_seconds(0.0)
            .build()
            .is_err());
        assert!(Audit::monitor("y", axes())
            .window_seconds(f64::INFINITY)
            .build()
            .is_err());
        assert!(Audit::monitor("y", axes())
            .window_seconds(60.0)
            .bucket_seconds(0.0)
            .build()
            .is_err());
        assert!(Audit::monitor("y", axes())
            .window_seconds(60.0)
            .bucket_seconds(120.0)
            .build()
            .is_err());
        assert!(Audit::monitor("y", axes())
            .window_seconds(1e12)
            .bucket_seconds(1e-3)
            .build()
            .is_err());
        // Sub-millisecond buckets would let `⌊t / b⌋` saturate i64 at
        // legal timestamps (a silently never-evicted bucket): refused.
        assert!(Audit::monitor("y", axes())
            .window_seconds(1.0)
            .bucket_seconds(1e-5)
            .build()
            .is_err());
        assert!(Audit::monitor("y", axes())
            .changepoint(Cusum::new(0.1, 0.05, 0.0))
            .build()
            .is_err());
    }

    #[test]
    fn window_evicts_oldest_buckets_exactly() {
        let mut m = Audit::monitor("y", axes())
            .estimator(Empirical)
            .window(8)
            .build()
            .unwrap();
        // Fill the window with skew, then flush it out with balance.
        m.push(&skewed()).unwrap();
        let full_skew = m.push(&skewed()).unwrap();
        assert_eq!(full_skew.window_rows, 8);
        assert!(full_skew.epsilon.epsilon.is_infinite());
        m.push(&balanced()).unwrap();
        let step = m.push(&balanced()).unwrap();
        // Both skewed buckets have been evicted: the window is exactly the
        // two balanced chunks, so ε = 0 and the counts prove it.
        assert_eq!(step.window_rows, 8);
        assert_eq!(step.epsilon.epsilon, 0.0);
        assert_eq!(m.window_counts().data(), &[2.0, 2.0, 2.0, 2.0]);
        assert_eq!(m.records_seen(), 16);
    }

    #[test]
    fn oversized_chunk_is_rejected() {
        let mut m = Audit::monitor("y", axes()).window(3).build().unwrap();
        assert!(m.push(&balanced()).is_err());
    }

    #[test]
    fn corrupt_buckets_are_rejected_per_cell() {
        struct Weighted(Vec<([usize; 2], f64)>);
        impl Tally for Weighted {
            fn tally_into(&self, shard: &mut PartialCounts) -> df_prob::Result<()> {
                for (idx, w) in &self.0 {
                    shard.add(idx, *w);
                }
                Ok(())
            }
        }
        let mut m = Audit::monitor("y", axes()).window(8).build().unwrap();
        // Negative cell masked by a clean total: must be refused.
        assert!(m
            .push(&Weighted(vec![([0, 0], -1.0), ([1, 0], 3.0)]))
            .is_err());
        // Fractional cells summing to an integer total: refused too.
        assert!(m
            .push(&Weighted(vec![([0, 0], 2.5), ([1, 1], 1.5)]))
            .is_err());
        // NaN never sneaks in as a count.
        assert!(m.push(&Weighted(vec![([0, 0], f64::NAN)])).is_err());
        // The window is untouched by rejected chunks…
        assert_eq!(m.window_rows(), 0);
        assert_eq!(m.records_seen(), 0);
        // …and healthy integer-weighted chunks still flow.
        let step = m
            .push(&Weighted(vec![([0, 0], 2.0), ([1, 1], 2.0)]))
            .unwrap();
        assert_eq!(step.window_rows, 4);
    }

    #[test]
    fn alerts_fire_with_hysteresis_and_witness() {
        let mut m = Audit::monitor("y", axes())
            .estimator(Smoothed { alpha: 1.0 })
            .window(4)
            .alert(AlertRule::epsilon_above(0.5).for_consecutive(2))
            .build()
            .unwrap();
        // First breach: streak 1, no alert yet.
        assert!(m.push(&skewed()).unwrap().fired.is_empty());
        // Second consecutive breach: fires, with the worst pair attached.
        let step = m.push(&skewed()).unwrap();
        assert_eq!(step.fired.len(), 1);
        let alert = &step.fired[0];
        assert_eq!(alert.at_record, 8);
        assert_eq!(alert.at_seconds, None);
        assert!(alert.epsilon > 0.5);
        assert!(alert.witness.is_some());
        // Still breaching: hysteresis suppresses a repeat.
        assert!(m.push(&skewed()).unwrap().fired.is_empty());
        // Recover below the threshold: the rule re-arms…
        assert!(m.push(&balanced()).unwrap().fired.is_empty());
        assert!(m.push(&balanced()).unwrap().fired.is_empty());
        // …and a fresh sustained breach fires again.
        assert!(m.push(&skewed()).unwrap().fired.is_empty());
        assert_eq!(m.push(&skewed()).unwrap().fired.len(), 1);
        assert_eq!(m.alerts().len(), 2);
    }

    #[test]
    fn decayed_horizon_tracks_trend() {
        let mut m = Audit::monitor("y", axes())
            .estimator(Smoothed { alpha: 1.0 })
            .window(4)
            .decay(0.5)
            .build()
            .unwrap();
        for _ in 0..20 {
            m.push(&balanced()).unwrap();
        }
        let calm = m.snapshot().unwrap();
        assert_eq!(calm.epsilon.epsilon, 0.0);
        assert!(calm.trend().unwrap().abs() < 1e-9);
        // A sudden skew: the window reacts fully, the horizon only partly.
        let step = m.push(&skewed()).unwrap();
        let horizon = step.decayed_epsilon.unwrap();
        assert!(step.epsilon.epsilon > horizon.epsilon);
        let snap = m.snapshot().unwrap();
        assert!(snap.trend().unwrap() > 0.0);
    }

    #[test]
    fn snapshot_serializes_and_merges_across_shards() {
        let build = || {
            Audit::monitor("y", axes())
                .estimator(Smoothed { alpha: 1.0 })
                .subsets(SubsetPolicy::All)
                .window(8)
                .build()
                .unwrap()
        };
        let mut shard_a = build();
        let mut shard_b = build();
        shard_a.push(&skewed()).unwrap();
        shard_b.push(&balanced()).unwrap();
        let snap_a = shard_a.snapshot().unwrap();
        let snap_b = shard_b.snapshot().unwrap();

        // JSON round-trip.
        let json = serde_json::to_string(&snap_a).unwrap();
        let back: MonitorSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap_a);

        // Merging shard snapshots equals one monitor that saw all traffic.
        let merged = snap_a.merge(&snap_b, &Smoothed { alpha: 1.0 }).unwrap();
        let mut whole = build();
        whole.push(&skewed()).unwrap();
        whole.push(&balanced()).unwrap();
        let direct = whole.snapshot().unwrap();
        assert_eq!(merged.window, direct.window);
        assert_eq!(merged.epsilon, direct.epsilon);
        assert_eq!(merged.subsets, direct.subsets);
        assert_eq!(merged.window_rows, 8);
        assert_eq!(merged.records_seen, 8);
        // Merge is commutative on the counts.
        let flipped = snap_b.merge(&snap_a, &Smoothed { alpha: 1.0 }).unwrap();
        assert_eq!(flipped.window, merged.window);
        assert_eq!(flipped.epsilon, merged.epsilon);
    }

    /// Regression for the metric layer: merging used to recompute the
    /// statistic with bare ε semantics regardless of what the shards
    /// tracked. A two-shard min/max-ratio fleet must recompute the
    /// *ratio* over the summed cells — hand-checked below — and a
    /// min/max-ratio shard must refuse to merge with an ε-DF shard.
    #[test]
    fn merged_snapshots_recompute_under_the_shard_metric_not_epsilon() {
        use crate::metric::WorstCaseRatio;
        let build = || {
            Audit::monitor("y", axes())
                .estimator(Smoothed { alpha: 1.0 })
                .metric(WorstCaseRatio)
                .window(8)
                .build()
                .unwrap()
        };
        let mut shard_a = build();
        let mut shard_b = build();
        shard_a.push(&skewed()).unwrap();
        shard_b.push(&balanced()).unwrap();
        let merged = shard_a
            .snapshot()
            .unwrap()
            .merge(&shard_b.snapshot().unwrap(), &Smoothed { alpha: 1.0 })
            .unwrap();
        assert_eq!(merged.metric, "wc-ratio");
        // Union window: yes = (a: 3, b: 1), no = (a: 1, b: 3). Smoothed
        // with α = 1: P(yes|a) = 4/6, P(yes|b) = 2/6, so the worst-case
        // min/max ratio shortfall is 1 − (1/3)/(2/3) = 0.5 — not ln 2,
        // which is what the old ε-semantics recompute would report.
        assert!((merged.epsilon.epsilon - 0.5).abs() < 1e-12);
        assert!((merged.epsilon.epsilon - 2.0f64.ln()).abs() > 0.1);
        // Byte-identical to one monitor that saw all the traffic.
        let mut whole = build();
        whole.push(&skewed()).unwrap();
        whole.push(&balanced()).unwrap();
        let direct = whole.snapshot().unwrap();
        assert_eq!(merged.epsilon, direct.epsilon);
        assert_eq!(merged.window, direct.window);
        // Cross-metric merges fail typed at the compatibility gate.
        let mut eps_shard = Audit::monitor("y", axes())
            .estimator(Smoothed { alpha: 1.0 })
            .window(8)
            .build()
            .unwrap();
        eps_shard.push(&balanced()).unwrap();
        let err = shard_a
            .snapshot()
            .unwrap()
            .merge(&eps_shard.snapshot().unwrap(), &Smoothed { alpha: 1.0 })
            .unwrap_err();
        assert!(err.to_string().contains("metric"), "got: {err}");
    }

    #[test]
    fn merge_rejects_mismatched_shards() {
        let snap = |outcome: &str, axes: Vec<Axis>| {
            let mut m = Audit::monitor(outcome, axes).window(8).build().unwrap();
            m.push(&balanced()).unwrap();
            m.snapshot().unwrap()
        };
        let a = snap("y", axes());
        let other_axes = vec![
            Axis::from_strs("y", &["no", "yes"]).unwrap(),
            Axis::from_strs("g", &["a", "b", "c"]).unwrap(),
        ];
        let mut m = Audit::monitor("y", other_axes).window(8).build().unwrap();
        m.push(&balanced()).unwrap();
        let b = m.snapshot().unwrap();
        assert!(a.merge(&b, &Smoothed { alpha: 1.0 }).is_err());
        // Decay configuration must match too.
        let mut m = Audit::monitor("y", axes())
            .window(8)
            .decay(0.9)
            .build()
            .unwrap();
        m.push(&balanced()).unwrap();
        let c = m.snapshot().unwrap();
        assert!(a.merge(&c, &Smoothed { alpha: 1.0 }).is_err());
        // Wall-clock configuration must match: a record-count shard never
        // merges with a time-windowed one, nor two different spans.
        let time_snap = |span: f64| {
            let mut m = Audit::monitor("y", axes())
                .window_seconds(span)
                .build()
                .unwrap();
            m.push_at(&balanced(), 1.0).unwrap();
            m.snapshot().unwrap()
        };
        let t60 = time_snap(60.0);
        assert!(a.merge(&t60, &Smoothed { alpha: 1.0 }).is_err());
        assert!(t60
            .merge(&time_snap(30.0), &Smoothed { alpha: 1.0 })
            .is_err());
        // Change-point detector lists must match.
        let mut m = Audit::monitor("y", axes())
            .window(8)
            .changepoint(Cusum::new(0.1, 0.05, 0.5))
            .build()
            .unwrap();
        m.push(&balanced()).unwrap();
        let d = m.snapshot().unwrap();
        assert!(a.merge(&d, &Smoothed { alpha: 1.0 }).is_err());
    }

    #[test]
    fn snapshot_subsets_follow_the_policy() {
        let three_axes = vec![
            Axis::from_strs("y", &["no", "yes"]).unwrap(),
            Axis::from_strs("g", &["a", "b"]).unwrap(),
            Axis::from_strs("r", &["x", "z"]).unwrap(),
        ];
        struct Triples(Vec<[usize; 3]>);
        impl Tally for Triples {
            fn tally_into(&self, shard: &mut PartialCounts) -> df_prob::Result<()> {
                for idx in &self.0 {
                    shard.record(idx);
                }
                Ok(())
            }
        }
        let rows = Triples(vec![
            [0, 0, 0],
            [1, 0, 1],
            [0, 1, 0],
            [1, 1, 1],
            [1, 0, 0],
            [0, 1, 1],
        ]);
        let mut m = Audit::monitor("y", three_axes)
            .estimator(Smoothed { alpha: 1.0 })
            .subsets(SubsetPolicy::All)
            .window(16)
            .build()
            .unwrap();
        m.push(&rows).unwrap();
        let snap = m.snapshot().unwrap();
        let sizes: Vec<usize> = snap.subsets.iter().map(|s| s.attributes.len()).collect();
        assert_eq!(sizes, vec![1, 1, 2]);
        assert_eq!(snap.subsets.last().unwrap().attributes, vec!["g", "r"]);
        // The full-intersection subset entry is the headline ε itself.
        assert_eq!(snap.subsets.last().unwrap().result, snap.epsilon);
    }

    #[test]
    fn cached_engine_matches_the_audit_path_exactly() {
        // Outcome axis deliberately NOT first, sparse cells, an empty
        // group: the engine's flat-index map and cached labels must
        // reproduce `JointCounts::group_outcomes(0.0)` value for value.
        let axes = vec![
            Axis::from_strs("g", &["a", "b", "c"]).unwrap(),
            Axis::from_strs("y", &["no", "yes"]).unwrap(),
            Axis::from_strs("r", &["x", "z"]).unwrap(),
        ];
        let data = vec![3.0, 1.0, 0.0, 2.0, 0.0, 0.0, 0.0, 0.0, 5.0, 7.0, 2.0, 1.0];
        let table = ContingencyTable::from_data(axes.clone(), data).unwrap();
        let engine = WindowEngine::new(&axes, "y").unwrap();
        let fast = engine.raw_outcomes(&table).unwrap();
        let slow = JointCounts::from_table(table, "y")
            .unwrap()
            .group_outcomes(0.0)
            .unwrap();
        assert_eq!(fast, slow);
        assert_eq!(
            serde_json::to_string(&fast.epsilon()).unwrap(),
            serde_json::to_string(&slow.epsilon()).unwrap()
        );
    }

    #[test]
    fn empty_window_has_vacuous_epsilon() {
        let m = Audit::monitor("y", axes()).window(4).build().unwrap();
        let snap = m.snapshot().unwrap();
        assert_eq!(snap.epsilon.epsilon, 0.0);
        assert!(snap.epsilon.witness.is_none());
        assert_eq!(snap.window_rows, 0);
        assert_eq!(snap.window_seconds, None);
        assert_eq!(snap.now_seconds, None);
    }

    #[test]
    fn window_modes_reject_the_wrong_feed() {
        let mut by_count = Audit::monitor("y", axes()).window(8).build().unwrap();
        assert!(by_count.push_at(&balanced(), 1.0).is_err());
        assert!(by_count.advance_to(1.0).is_err());
        let mut by_time = Audit::monitor("y", axes())
            .window_seconds(60.0)
            .build()
            .unwrap();
        assert!(by_time.push(&balanced()).is_err());
        // Rejections leave both monitors untouched.
        assert_eq!(by_count.records_seen(), 0);
        assert_eq!(by_time.records_seen(), 0);
    }

    #[test]
    fn wall_clock_window_slides_and_drains() {
        let mut m = Audit::monitor("y", axes())
            .estimator(Empirical)
            .window_seconds(10.0)
            .bucket_seconds(1.0)
            .build()
            .unwrap();
        m.push_at(&skewed(), 0.5).unwrap();
        let step = m.push_at(&balanced(), 5.0).unwrap();
        assert_eq!(step.window_rows, 8);
        assert_eq!(step.now_seconds, Some(5.0));
        // Window = skew + balance: P(yes|a) = 3/4 vs P(yes|b) = 1/4 → ln 3.
        assert!((step.epsilon.epsilon - 3.0f64.ln()).abs() < 1e-12);
        // t = 12: bucket 0 (the skew) leaves the 10-bucket window; only
        // the balanced chunk remains, so ε collapses to 0.
        let step = m.advance_to(12.0).unwrap();
        assert_eq!(step.window_rows, 4);
        assert_eq!(step.epsilon.epsilon, 0.0);
        assert_eq!(m.window_counts().data(), &[1.0, 1.0, 1.0, 1.0]);
        // Idle long enough and the window drains to vacuous ε.
        let step = m.advance_to(100.0).unwrap();
        assert_eq!(step.window_rows, 0);
        assert_eq!(step.epsilon.epsilon, 0.0);
        assert_eq!(m.records_seen(), 8);
        let snap = m.snapshot().unwrap();
        assert_eq!(snap.window_seconds, Some(10.0));
        assert_eq!(snap.bucket_seconds, Some(1.0));
        assert_eq!(snap.now_seconds, Some(100.0));
    }

    #[test]
    fn changepoint_detectors_alarm_and_merge() {
        let build = || {
            Audit::monitor("y", axes())
                .estimator(Smoothed { alpha: 1.0 })
                .window_seconds(4.0)
                .bucket_seconds(1.0)
                .changepoint(Cusum::new(0.0, 0.1, 1.0))
                .changepoint(PageHinkley::new(0.0, 0.1, 1.0))
                .build()
                .unwrap()
        };
        let mut m = build();
        // A calm stream accumulates nothing.
        for t in 0..6 {
            let step = m.push_at(&balanced(), t as f64).unwrap();
            assert!(step.alarms.is_empty());
        }
        // Sustained skew: windowed ε jumps to ~1.1, both detectors cross
        // their thresholds within two steps.
        let mut raised = Vec::new();
        for t in 6..10 {
            raised.extend(m.push_at(&skewed(), t as f64).unwrap().alarms);
        }
        assert!(!raised.is_empty());
        assert!(raised.iter().any(|a| a.detector.name() == "cusum"));
        assert!(raised.iter().any(|a| a.detector.name() == "page-hinkley"));
        assert_eq!(m.changepoint_alarms().len(), raised.len());

        // Snapshots carry detector state; the JSON round-trips; merging
        // keeps the worst shard's statistic and the union of alarms.
        let snap = m.snapshot().unwrap();
        assert_eq!(snap.changepoints.len(), 2);
        let json = serde_json::to_string(&snap).unwrap();
        let back: MonitorSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
        let calm = build().snapshot().unwrap();
        let merged = snap.merge(&calm, &Smoothed { alpha: 1.0 }).unwrap();
        assert_eq!(merged.changepoints.len(), 2);
        for (m_st, s_st) in merged.changepoints.iter().zip(&snap.changepoints) {
            assert_eq!(m_st.statistic, s_st.statistic);
            assert_eq!(m_st.alarms, s_st.alarms);
        }
    }
}
