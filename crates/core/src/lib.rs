//! # df-core — differential fairness
//!
//! A faithful, production-quality implementation of
//! *An Intersectional Definition of Fairness* (Foulds & Pan, ICDE 2020).
//!
//! The paper defines a mechanism `M(x)` to be **ε-differentially fair (DF)**
//! in a framework `(A, Θ)` when, for every plausible data distribution
//! θ ∈ Θ, every outcome `y`, and every pair of *intersectional* protected
//! groups `sᵢ, sⱼ ∈ A` with positive probability,
//!
//! ```text
//! e^-ε ≤ P(M(x) = y | sᵢ, θ) / P(M(x) = y | sⱼ, θ) ≤ e^ε.
//! ```
//!
//! This crate provides:
//!
//! - [`attributes`]: protected-attribute spaces and intersection indexing.
//! - [`epsilon`]: the ε kernel over group×outcome probability tables.
//! - [`edf`]: empirical DF from joint counts (Eq. 6) and Dirichlet-smoothed
//!   DF (Eq. 7), with per-subset marginalization.
//! - [`subsets`]: the intersectionality property (Theorem 3.1 / 3.2) — ε on
//!   every nonempty subset of the protected attributes, plus bound checks.
//! - [`theta`]: distribution classes Θ (point estimates, posterior samples)
//!   and the supremum ε over Θ.
//! - [`mechanism`]: the mechanism abstraction and estimation of
//!   group-conditional outcome probabilities from data.
//! - [`privacy`]: the Bayesian privacy interpretation (Eq. 4), expected
//!   utility disparity (Eq. 5), and the randomized-response calibration.
//! - [`amplification`]: bias amplification ε₂ − ε₁ (§4.1).
//! - [`data_fairness`]: DF of labeled datasets (Definitions 4.1 / 4.2).
//! - [`equalized`]: differential equalized odds — the error-rate analogue
//!   the paper names as future work (§7.1).
//! - [`bootstrap`]: frequentist confidence intervals for ε̂.
//! - [`metric`]: the generic fairness-metric layer — ε-DF, worst-case
//!   ratio/difference (Ghosh et al. 2021), α-intersectional fairness with
//!   leveling-down diagnostics (Maheshwari et al. 2023), and differential
//!   equalized odds, all interchangeable across audits, monitors, and
//!   fleet snapshots.
//! - [`monitor`]: online sliding-window ε over a prediction stream, with
//!   an exponentially-decayed trend horizon, hysteresis alerting, and
//!   shard-mergeable snapshots.
//! - [`baselines`]: the fairness definitions §7 compares against
//!   (demographic parity, disparate impact, equalized odds, subgroup
//!   fairness).
//! - [`builder`]: the fluent [`builder::Audit`] API — composable
//!   ε-estimation strategies behind one entry point, producing a unified
//!   serializable [`builder::AuditReport`].
//! - [`audit`]: the deprecated one-call audit interface (a shim over the
//!   builder).
//! - [`report`]: plain-text / markdown table rendering.
//!
//! ## Quick start
//!
//! ```
//! use df_core::builder::{Audit, Baselines, Empirical, Smoothed};
//! use df_core::JointCounts;
//! use df_prob::contingency::Axis;
//!
//! let counts = JointCounts::from_records(
//!     Axis::from_strs("outcome", &["deny", "approve"]).unwrap(),
//!     vec![Axis::from_strs("gender", &["F", "M"]).unwrap()],
//!     vec![
//!         ("approve", vec!["F"]),
//!         ("deny", vec!["F"]),
//!         ("approve", vec!["M"]),
//!         ("approve", vec!["M"]),
//!     ],
//! )
//! .unwrap();
//!
//! // Eq. 6 and Eq. 7 side by side, every subset, bootstrap CI, baselines.
//! let report = Audit::of(&counts)
//!     .estimator(Empirical)
//!     .estimator(Smoothed { alpha: 1.0 })
//!     .bootstrap(50, 7)
//!     .baselines(Baselines::all().positive("approve"))
//!     .run()
//!     .unwrap();
//! assert_eq!(report.n_records, Some(4));
//! assert!(report.epsilon.is_finite());
//! println!("{}", report.render_subset_table());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod amplification;
pub mod attributes;
pub mod audit;
pub mod baselines;
pub mod bootstrap;
pub mod builder;
pub mod data_fairness;
pub mod edf;
pub mod epsilon;
pub mod equalized;
pub mod error;
pub mod fleet;
pub mod mechanism;
pub mod metric;
pub mod monitor;
pub mod privacy;
pub mod report;
pub mod stream;
pub mod subsets;
pub mod theta;

pub use attributes::{ProtectedAttribute, ProtectedSpace};
pub use builder::{Audit, AuditReport, EpsilonEstimator};
pub use edf::JointCounts;
pub use epsilon::{EpsilonResult, EpsilonWitness, GroupOutcomes};
pub use error::{DfError, Result};
pub use metric::{metric_from_tag, EpsilonDf, Metric};
