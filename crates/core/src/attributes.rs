//! Protected-attribute spaces and intersection indexing.
//!
//! The paper's framework `(A, Θ)` takes `A = S₁ × S₂ × … × S_p`, the
//! Cartesian product of discrete protected attributes. [`ProtectedSpace`]
//! represents that product with mixed-radix indexing so the flattened
//! intersections can be enumerated, named, and mapped back to per-attribute
//! values without hashing.

use crate::error::{DfError, Result};
use serde::Serialize;

/// One protected attribute, e.g. `gender ∈ {Female, Male}`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct ProtectedAttribute {
    name: String,
    values: Vec<String>,
}

impl ProtectedAttribute {
    /// Creates an attribute with at least one value and unique value names.
    pub fn new(name: impl Into<String>, values: Vec<String>) -> Result<Self> {
        let name = name.into();
        if values.is_empty() {
            return Err(DfError::NotEnoughCategories {
                what: "attribute values",
                needed: 1,
                present: 0,
            });
        }
        for (i, v) in values.iter().enumerate() {
            if values[..i].contains(v) {
                return Err(DfError::Invalid(format!(
                    "attribute `{name}` has duplicate value `{v}`"
                )));
            }
        }
        Ok(Self { name, values })
    }

    /// Convenience constructor from string slices.
    pub fn from_strs(name: &str, values: &[&str]) -> Result<Self> {
        Self::new(name, values.iter().map(|s| s.to_string()).collect())
    }

    /// Attribute name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Ordered values.
    pub fn values(&self) -> &[String] {
        &self.values
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Always false: an attribute has ≥ 1 value by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Index of a value, if present.
    pub fn index_of(&self, value: &str) -> Option<usize> {
        self.values.iter().position(|v| v == value)
    }
}

/// The product space `A = S₁ × … × S_p` of protected attributes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct ProtectedSpace {
    attributes: Vec<ProtectedAttribute>,
}

impl ProtectedSpace {
    /// Creates a space from at least one attribute with unique names.
    pub fn new(attributes: Vec<ProtectedAttribute>) -> Result<Self> {
        if attributes.is_empty() {
            return Err(DfError::NotEnoughCategories {
                what: "protected attributes",
                needed: 1,
                present: 0,
            });
        }
        for (i, a) in attributes.iter().enumerate() {
            if attributes[..i].iter().any(|b| b.name == a.name) {
                return Err(DfError::Invalid(format!(
                    "duplicate protected attribute `{}`",
                    a.name
                )));
            }
        }
        Ok(Self { attributes })
    }

    /// The attributes, in declaration order.
    pub fn attributes(&self) -> &[ProtectedAttribute] {
        &self.attributes
    }

    /// Number of attributes `p`.
    pub fn arity(&self) -> usize {
        self.attributes.len()
    }

    /// Attribute names in order.
    pub fn names(&self) -> Vec<&str> {
        self.attributes.iter().map(|a| a.name.as_str()).collect()
    }

    /// Looks up an attribute by name.
    pub fn attribute(&self, name: &str) -> Result<&ProtectedAttribute> {
        self.attributes
            .iter()
            .find(|a| a.name == name)
            .ok_or_else(|| DfError::UnknownAttribute(name.to_string()))
    }

    /// Number of intersections `|A| = Π |Sᵢ|`.
    pub fn intersection_count(&self) -> usize {
        self.attributes
            .iter()
            .map(ProtectedAttribute::len)
            .product()
    }

    /// Flattens a per-attribute value-index vector into an intersection
    /// index (row-major / mixed radix, first attribute most significant).
    pub fn flatten(&self, value_indices: &[usize]) -> Result<usize> {
        if value_indices.len() != self.attributes.len() {
            return Err(DfError::Invalid(format!(
                "expected {} indices, got {}",
                self.attributes.len(),
                value_indices.len()
            )));
        }
        let mut flat = 0usize;
        for (attr, &ix) in self.attributes.iter().zip(value_indices) {
            if ix >= attr.len() {
                return Err(DfError::Invalid(format!(
                    "value index {ix} out of range for attribute `{}`",
                    attr.name
                )));
            }
            flat = flat * attr.len() + ix;
        }
        Ok(flat)
    }

    /// Inverse of [`Self::flatten`].
    pub fn unflatten(&self, mut flat: usize) -> Result<Vec<usize>> {
        if flat >= self.intersection_count() {
            return Err(DfError::Invalid(format!(
                "intersection index {flat} out of range ({} intersections)",
                self.intersection_count()
            )));
        }
        let mut out = vec![0usize; self.attributes.len()];
        for (i, attr) in self.attributes.iter().enumerate().rev() {
            out[i] = flat % attr.len();
            flat /= attr.len();
        }
        Ok(out)
    }

    /// Resolves value labels (one per attribute, in order) to an
    /// intersection index.
    pub fn index_of_labels(&self, labels: &[&str]) -> Result<usize> {
        if labels.len() != self.attributes.len() {
            return Err(DfError::Invalid(format!(
                "expected {} labels, got {}",
                self.attributes.len(),
                labels.len()
            )));
        }
        let mut indices = Vec::with_capacity(labels.len());
        for (attr, &label) in self.attributes.iter().zip(labels) {
            let ix = attr.index_of(label).ok_or_else(|| {
                DfError::Invalid(format!(
                    "unknown value `{label}` for attribute `{}`",
                    attr.name
                ))
            })?;
            indices.push(ix);
        }
        self.flatten(&indices)
    }

    /// Human-readable name of an intersection, e.g.
    /// `"gender=Female, race=Black"`.
    pub fn describe(&self, flat: usize) -> Result<String> {
        let indices = self.unflatten(flat)?;
        Ok(self
            .attributes
            .iter()
            .zip(&indices)
            .map(|(a, &ix)| format!("{}={}", a.name, a.values[ix]))
            .collect::<Vec<_>>()
            .join(", "))
    }

    /// Iterates all intersections as `(flat_index, value_indices)`.
    pub fn iter_intersections(&self) -> impl Iterator<Item = (usize, Vec<usize>)> + '_ {
        (0..self.intersection_count()).map(move |flat| {
            let idx = self
                .unflatten(flat)
                .expect("flat index within intersection_count");
            (flat, idx)
        })
    }

    /// Enumerates every nonempty subset of the attributes, by name, in
    /// ascending subset-size order (singletons first, the full set last).
    ///
    /// This is the subset lattice over which Theorem 3.2 quantifies.
    pub fn subsets(&self) -> Vec<Vec<&str>> {
        let p = self.attributes.len();
        let mut masks: Vec<u32> = (1..(1u32 << p)).collect();
        masks.sort_by_key(|m| (m.count_ones(), *m));
        masks
            .into_iter()
            .map(|mask| {
                (0..p)
                    .filter(|i| mask & (1 << i) != 0)
                    .map(|i| self.attributes[i].name.as_str())
                    .collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space_gr() -> ProtectedSpace {
        ProtectedSpace::new(vec![
            ProtectedAttribute::from_strs("gender", &["F", "M"]).unwrap(),
            ProtectedAttribute::from_strs("race", &["r1", "r2", "r3"]).unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn attribute_validation() {
        assert!(ProtectedAttribute::from_strs("g", &[]).is_err());
        assert!(ProtectedAttribute::from_strs("g", &["a", "a"]).is_err());
    }

    #[test]
    fn space_validation() {
        assert!(ProtectedSpace::new(vec![]).is_err());
        let a = ProtectedAttribute::from_strs("g", &["x"]).unwrap();
        assert!(ProtectedSpace::new(vec![a.clone(), a]).is_err());
    }

    #[test]
    fn intersection_count_is_product() {
        assert_eq!(space_gr().intersection_count(), 6);
    }

    #[test]
    fn flatten_unflatten_roundtrip() {
        let s = space_gr();
        for flat in 0..s.intersection_count() {
            let idx = s.unflatten(flat).unwrap();
            assert_eq!(s.flatten(&idx).unwrap(), flat);
        }
    }

    #[test]
    fn flatten_is_row_major() {
        let s = space_gr();
        assert_eq!(s.flatten(&[0, 0]).unwrap(), 0);
        assert_eq!(s.flatten(&[0, 2]).unwrap(), 2);
        assert_eq!(s.flatten(&[1, 0]).unwrap(), 3);
    }

    #[test]
    fn flatten_bounds_checked() {
        let s = space_gr();
        assert!(s.flatten(&[0]).is_err());
        assert!(s.flatten(&[2, 0]).is_err());
        assert!(s.unflatten(6).is_err());
    }

    #[test]
    fn labels_resolve() {
        let s = space_gr();
        let flat = s.index_of_labels(&["M", "r2"]).unwrap();
        assert_eq!(flat, 4);
        assert_eq!(s.describe(flat).unwrap(), "gender=M, race=r2");
        assert!(s.index_of_labels(&["M", "zzz"]).is_err());
        assert!(s.index_of_labels(&["M"]).is_err());
    }

    #[test]
    fn subsets_enumerate_lattice_in_size_order() {
        let s = ProtectedSpace::new(vec![
            ProtectedAttribute::from_strs("a", &["x"]).unwrap(),
            ProtectedAttribute::from_strs("b", &["x"]).unwrap(),
            ProtectedAttribute::from_strs("c", &["x"]).unwrap(),
        ])
        .unwrap();
        let subs = s.subsets();
        assert_eq!(subs.len(), 7);
        assert_eq!(subs[0], vec!["a"]);
        assert_eq!(subs[1], vec!["b"]);
        assert_eq!(subs[2], vec!["c"]);
        assert_eq!(subs[3], vec!["a", "b"]);
        assert_eq!(subs[6], vec!["a", "b", "c"]);
    }

    #[test]
    fn iter_intersections_covers_all() {
        let s = space_gr();
        let all: Vec<_> = s.iter_intersections().collect();
        assert_eq!(all.len(), 6);
        assert_eq!(all[5].1, vec![1, 2]);
    }
}
