//! Online sliding-window fairness monitoring.
//!
//! A one-shot audit certifies ε for a dataset frozen in time; a *deployed*
//! classifier drifts — the joint distribution of `(outcome, s₁, …, s_p)`
//! shifts under it, and yesterday's certificate goes stale. Because the
//! ε-DF kernel only ever consumes joint counts, and counts form a
//! *cancellative* commutative monoid ([`PartialCounts::merge`] /
//! [`PartialCounts::subtract`]), a continuously-updated windowed ε is one
//! subtraction away from the streaming engine of [`crate::stream`]:
//!
//! - **Sliding window.** Incoming record chunks become buckets in a ring;
//!   a running [`PartialCounts`] holds the window sum. Appending a bucket
//!   is `merge`, expiring one is `subtract` — both exact on integer
//!   tallies — so the windowed ε is *byte-identical* to a batch
//!   [`crate::builder::Audit`] of the very same records, at every step
//!   (asserted by the `monitor_equivalence` property suite).
//! - **Decayed horizon.** An optional exponentially-decayed table tracks
//!   the long-run distribution; comparing windowed ε against the decayed ε
//!   separates a transient spike from a secular trend.
//! - **Alerts with hysteresis.** [`AlertRule::epsilon_above`] fires after
//!   K *consecutive* breaching windows (no flapping on noise) and attaches
//!   the worst-pair witness; it re-arms only after ε falls back under the
//!   threshold.
//! - **Distribution.** [`MonitorSnapshot`] carries the raw window and
//!   horizon counts, so snapshots from sharded monitors (one per serving
//!   replica) merge cell-wise into the fleet-wide monitor state, exactly
//!   like the partial counts of the sharded audit engine.
//!
//! Entry point: [`crate::builder::Audit::monitor`], which shares the
//! builder's estimator and subset-policy stages.
//!
//! ```
//! use df_core::builder::{Audit, Smoothed};
//! use df_core::monitor::AlertRule;
//! use df_prob::contingency::Axis;
//! use df_prob::partial::{PartialCounts, Tally};
//!
//! struct Rows(Vec<[usize; 2]>);
//! impl Tally for Rows {
//!     fn tally_into(&self, shard: &mut PartialCounts) -> df_prob::Result<()> {
//!         for idx in &self.0 {
//!             shard.record(idx);
//!         }
//!         Ok(())
//!     }
//! }
//!
//! let axes = vec![
//!     Axis::from_strs("y", &["no", "yes"]).unwrap(),
//!     Axis::from_strs("g", &["a", "b"]).unwrap(),
//! ];
//! let mut monitor = Audit::monitor("y", axes)
//!     .estimator(Smoothed { alpha: 1.0 })
//!     .window(4)
//!     .alert(AlertRule::epsilon_above(0.2).for_consecutive(2))
//!     .build()
//!     .unwrap();
//! let step = monitor
//!     .push(&Rows(vec![[0, 0], [1, 0], [0, 1], [1, 1]]))
//!     .unwrap();
//! assert_eq!(step.window_rows, 4);
//! assert!(step.epsilon.epsilon.is_finite());
//! ```

use crate::builder::{EpsilonEstimator, Smoothed, SubsetPolicy};
use crate::edf::JointCounts;
use crate::epsilon::{EpsilonResult, EpsilonWitness, GroupOutcomes};
use crate::error::{DfError, Result};
use crate::subsets::SubsetEpsilon;
use df_prob::contingency::{Axis, ContingencyTable};
use df_prob::numerics::stable_sum;
use df_prob::partial::{PartialCounts, Tally};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

// ---------------------------------------------------------------------------
// The cached ε engine.
// ---------------------------------------------------------------------------

/// Precomputed schema state for the per-push hot path: evaluating ε on
/// every window update must not re-canonicalize the table or re-format
/// group labels (both allocate strings), so the flat cell index of every
/// `(group, outcome)` pair and all display labels are resolved once at
/// build time. [`WindowEngine::raw_outcomes`] then reads counts straight
/// out of the schema-order table — producing a [`GroupOutcomes`] that is
/// **value-identical** to
/// `JointCounts::from_table(table, outcome).group_outcomes(0.0)` (same
/// arithmetic, same label strings; asserted by a unit test), at a
/// fraction of the cost.
struct WindowEngine {
    outcome_labels: Vec<String>,
    group_labels: Vec<String>,
    /// `flat[g · |Y| + y]` = flat index of `(group g, outcome y)` in the
    /// schema-order table.
    flat: Vec<usize>,
    n_outcomes: usize,
}

impl WindowEngine {
    fn new(axes: &[Axis], outcome_axis: &str) -> Result<Self> {
        let template = ContingencyTable::zeros(axes.to_vec())?;
        let pos = template.axis_position(outcome_axis)?;
        let n_outcomes = axes[pos].len();
        // Attribute axes in canonical order: schema order, outcome removed
        // — exactly the order `JointCounts::from_table` preserves.
        let attr_positions: Vec<usize> = (0..axes.len()).filter(|&i| i != pos).collect();
        let n_groups: usize = attr_positions.iter().map(|&i| axes[i].len()).product();
        let mut flat = Vec::with_capacity(n_groups * n_outcomes);
        let mut group_labels = Vec::with_capacity(n_groups);
        let mut idx = vec![0usize; axes.len()];
        for g in 0..n_groups {
            // Mixed-radix decode, last attribute fastest (the kernel's
            // intersection indexing).
            let mut rem = g;
            let mut parts = vec![String::new(); attr_positions.len()];
            for (k, &p) in attr_positions.iter().enumerate().rev() {
                let v = rem % axes[p].len();
                rem /= axes[p].len();
                idx[p] = v;
                parts[k] = format!("{}={}", axes[p].name(), axes[p].labels()[v]);
            }
            group_labels.push(parts.join(", "));
            for y in 0..n_outcomes {
                idx[pos] = y;
                flat.push(template.flat_index(&idx));
            }
        }
        Ok(Self {
            outcome_labels: axes[pos].labels().to_vec(),
            group_labels,
            flat,
            n_outcomes,
        })
    }

    /// The raw (MLE, α = 0) group-outcome table of a schema-order counts
    /// table — the input every [`EpsilonEstimator`] consumes. The MLE is
    /// inlined (same arithmetic as `df_prob::estimate::categorical_mle`:
    /// compensated-sum total, per-cell division) to avoid one Vec
    /// allocation per group on the per-push hot path.
    fn raw_outcomes(&self, table: &ContingencyTable) -> Result<GroupOutcomes> {
        let data = table.data();
        let n_groups = self.group_labels.len();
        let mut probs = vec![0.0; n_groups * self.n_outcomes];
        let mut weights = vec![0.0; n_groups];
        let mut counts = vec![0.0; self.n_outcomes];
        for (g, weight) in weights.iter_mut().enumerate() {
            let base = g * self.n_outcomes;
            for (y, c) in counts.iter_mut().enumerate() {
                *c = data[self.flat[base + y]];
            }
            *weight = counts.iter().sum();
            let total = stable_sum(&counts);
            if total > 0.0 {
                for (y, &c) in counts.iter().enumerate() {
                    probs[base + y] = c / total;
                }
            }
        }
        GroupOutcomes::new(
            self.outcome_labels.clone(),
            self.group_labels.clone(),
            probs,
            weights,
        )
    }
}

// ---------------------------------------------------------------------------
// Alert rules.
// ---------------------------------------------------------------------------

/// A threshold rule over the windowed ε, with hysteresis: the rule fires
/// once ε has exceeded `threshold` for `consecutive` windows in a row, and
/// does not fire again until ε first falls back below the threshold
/// (re-arming the rule).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AlertRule {
    /// ε level above which the rule starts counting.
    pub threshold: f64,
    /// Number of consecutive breaching windows required to fire (≥ 1).
    pub consecutive: usize,
}

impl AlertRule {
    /// A rule firing as soon as ε exceeds `threshold` (K = 1); chain
    /// [`AlertRule::for_consecutive`] to require a sustained breach.
    pub fn epsilon_above(threshold: f64) -> Self {
        Self {
            threshold,
            consecutive: 1,
        }
    }

    /// Requires `k` consecutive breaching windows before firing (values
    /// below 1 are treated as 1).
    pub fn for_consecutive(mut self, k: usize) -> Self {
        self.consecutive = k.max(1);
        self
    }
}

/// One fired alert: which rule, where in the stream, and the worst-pair
/// witness of the breaching window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Alert {
    /// The rule that fired.
    pub rule: AlertRule,
    /// Total records ingested when the rule fired.
    pub at_record: u64,
    /// The windowed ε that completed the consecutive run.
    pub epsilon: f64,
    /// The worst group pair/outcome of the breaching window.
    pub witness: Option<EpsilonWitness>,
}

/// Per-rule hysteresis state.
#[derive(Debug, Clone, Default)]
struct RuleState {
    /// Current run length of breaching windows.
    streak: usize,
    /// True between firing and the next sub-threshold window.
    active: bool,
}

// ---------------------------------------------------------------------------
// Snapshots.
// ---------------------------------------------------------------------------

/// A serializable contingency table: named axes plus row-major cell data.
/// The wire form of the monitor's window and horizon counts (df-prob's
/// [`ContingencyTable`] itself stays serde-free).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CountsSnapshot {
    /// `(axis name, ordered labels)` per axis, in storage order.
    pub axes: Vec<(String, Vec<String>)>,
    /// Row-major cell values.
    pub data: Vec<f64>,
}

impl CountsSnapshot {
    /// Captures a table.
    pub fn from_table(table: &ContingencyTable) -> Self {
        Self {
            axes: table
                .axes()
                .iter()
                .map(|a| (a.name().to_string(), a.labels().to_vec()))
                .collect(),
            data: table.data().to_vec(),
        }
    }

    /// Reconstructs the table (validating axes and cell values).
    pub fn to_table(&self) -> Result<ContingencyTable> {
        let axes = self
            .axes
            .iter()
            .map(|(name, labels)| Axis::new(name.clone(), labels.clone()))
            .collect::<df_prob::Result<Vec<_>>>()?;
        Ok(ContingencyTable::from_data(axes, self.data.clone())?)
    }

    /// Cell-wise adds another snapshot over identical axes.
    fn merge(&self, other: &CountsSnapshot) -> Result<CountsSnapshot> {
        if self.axes != other.axes {
            return Err(DfError::Invalid(
                "cannot merge monitor snapshots over different schemas".into(),
            ));
        }
        Ok(CountsSnapshot {
            axes: self.axes.clone(),
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| a + b)
                .collect(),
        })
    }
}

/// The monitor's full serializable state at one point in the stream:
/// window and horizon counts, the ε values derived from them, the
/// per-subset lattice (per the configured [`SubsetPolicy`]), and the alert
/// log so far.
///
/// Snapshots are **mergeable across shards**: a fleet of monitors (one per
/// serving replica) each ingests its own slice of traffic, and
/// [`MonitorSnapshot::merge`] combines their states cell-wise into the ε
/// of the union of the windows — the same additivity that powers
/// [`crate::stream::sharded_joint_counts`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MonitorSnapshot {
    /// Name of the outcome axis.
    pub outcome_axis: String,
    /// Display name of the ε estimator in force.
    pub estimator: String,
    /// Total records ingested over the monitor's lifetime.
    pub records_seen: u64,
    /// Records currently inside the window.
    pub window_rows: u64,
    /// Joint counts of the window.
    pub window: CountsSnapshot,
    /// Exponentially-decayed joint counts (present iff decay configured).
    pub decayed: Option<CountsSnapshot>,
    /// The per-bucket retention factor λ, when decay is configured.
    pub decay: Option<f64>,
    /// ε of the window under the configured estimator.
    pub epsilon: EpsilonResult,
    /// ε of the decayed horizon (present iff decay configured).
    pub decayed_epsilon: Option<EpsilonResult>,
    /// Per-subset ε of the window, ordered by subset size with the full
    /// intersection last (empty under [`SubsetPolicy::None`]).
    pub subsets: Vec<SubsetEpsilon>,
    /// Every alert fired so far, in firing order.
    pub alerts: Vec<Alert>,
}

impl MonitorSnapshot {
    /// The drift signal: windowed ε minus horizon ε (positive = fairness
    /// degrading relative to the long-run distribution). `None` without a
    /// configured decay, or when either ε is infinite (`∞ − ∞` has no
    /// meaningful sign).
    pub fn trend(&self) -> Option<f64> {
        let horizon = self.decayed_epsilon.as_ref()?;
        (self.epsilon.epsilon.is_finite() && horizon.epsilon.is_finite())
            .then_some(self.epsilon.epsilon - horizon.epsilon)
    }

    /// Merges two shard snapshots into the combined monitor state,
    /// recomputing every ε with `estimator` over the cell-wise summed
    /// counts. The shards must share the schema, outcome axis, decay
    /// configuration, and subset lattice; alert logs concatenate in
    /// `records_seen` order (each shard's alerts witness its own traffic).
    pub fn merge(
        &self,
        other: &MonitorSnapshot,
        estimator: &dyn EpsilonEstimator,
    ) -> Result<MonitorSnapshot> {
        if self.outcome_axis != other.outcome_axis {
            return Err(DfError::Invalid(format!(
                "snapshot outcome axes differ: `{}` vs `{}`",
                self.outcome_axis, other.outcome_axis
            )));
        }
        if self.decay != other.decay {
            return Err(DfError::Invalid(
                "cannot merge snapshots with different decay configurations".into(),
            ));
        }
        let window = self.window.merge(&other.window)?;
        let decayed = match (&self.decayed, &other.decayed) {
            (Some(a), Some(b)) => Some(a.merge(b)?),
            (None, None) => None,
            _ => unreachable!("decay equality checked above"),
        };
        let window_counts = JointCounts::from_table(window.to_table()?, &self.outcome_axis)?;
        let epsilon = estimator.estimate(&window_counts.group_outcomes(0.0)?)?;
        let decayed_epsilon = match &decayed {
            Some(d) => {
                let jc = JointCounts::from_table(d.to_table()?, &self.outcome_axis)?;
                Some(estimator.estimate(&jc.group_outcomes(0.0)?)?)
            }
            None => None,
        };
        let subset_attrs: Vec<Vec<String>> =
            self.subsets.iter().map(|s| s.attributes.clone()).collect();
        let other_attrs: Vec<Vec<String>> =
            other.subsets.iter().map(|s| s.attributes.clone()).collect();
        if subset_attrs != other_attrs {
            return Err(DfError::Invalid(
                "cannot merge snapshots with different subset lattices".into(),
            ));
        }
        let subsets = subset_epsilons(&window_counts, &subset_attrs, &epsilon, estimator)?;
        let mut alerts: Vec<Alert> = self.alerts.iter().chain(&other.alerts).cloned().collect();
        alerts.sort_by_key(|a| a.at_record);
        Ok(MonitorSnapshot {
            outcome_axis: self.outcome_axis.clone(),
            estimator: estimator.name(),
            records_seen: self.records_seen + other.records_seen,
            window_rows: self.window_rows + other.window_rows,
            window,
            decayed,
            decay: self.decay,
            epsilon,
            decayed_epsilon,
            subsets,
            alerts,
        })
    }
}

/// Per-subset ε under `estimator`, reusing the precomputed full-
/// intersection result for the last (full) entry — the exact layout of the
/// builder's `EstimatorReport::subsets`.
fn subset_epsilons(
    counts: &JointCounts,
    subset_attrs: &[Vec<String>],
    full: &EpsilonResult,
    estimator: &dyn EpsilonEstimator,
) -> Result<Vec<SubsetEpsilon>> {
    let n_attrs = counts.attribute_names().len();
    let mut out = Vec::with_capacity(subset_attrs.len());
    for attrs in subset_attrs {
        let result = if attrs.len() == n_attrs {
            full.clone()
        } else {
            let names: Vec<&str> = attrs.iter().map(String::as_str).collect();
            estimator.estimate(&counts.marginal_to(&names)?.group_outcomes(0.0)?)?
        };
        out.push(SubsetEpsilon {
            attributes: attrs.clone(),
            result,
        });
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// The step result.
// ---------------------------------------------------------------------------

/// The lightweight per-push result: the stream position, the freshly
/// updated windowed (and horizon) ε, and any alerts fired by this window.
/// The full mergeable state — counts, subsets, alert log — comes from
/// [`FairnessMonitor::snapshot`], which is heavier (it clones the tables)
/// and intended for checkpointing and cross-shard merging rather than the
/// per-chunk hot path.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct MonitorStep {
    /// Total records ingested so far.
    pub records_seen: u64,
    /// Records currently inside the window.
    pub window_rows: u64,
    /// ε of the window under the configured estimator.
    pub epsilon: EpsilonResult,
    /// ε of the decayed horizon (present iff decay configured).
    pub decayed_epsilon: Option<EpsilonResult>,
    /// Alerts fired at this step (usually empty).
    pub fired: Vec<Alert>,
}

// ---------------------------------------------------------------------------
// The builder.
// ---------------------------------------------------------------------------

/// Fluent configuration for a [`FairnessMonitor`]; created by
/// [`crate::builder::Audit::monitor`] and sharing the audit builder's
/// estimator/subset-policy stages.
pub struct MonitorBuilder {
    outcome_axis: String,
    axes: Vec<Axis>,
    estimator: Option<Box<dyn EpsilonEstimator>>,
    subsets: SubsetPolicy,
    window_records: usize,
    decay: Option<f64>,
    rules: Vec<AlertRule>,
}

impl MonitorBuilder {
    /// See [`crate::builder::Audit::monitor`].
    pub(crate) fn new(outcome_axis: &str, axes: Vec<Axis>) -> Self {
        Self {
            outcome_axis: outcome_axis.to_string(),
            axes,
            estimator: None,
            subsets: SubsetPolicy::None,
            window_records: 10_000,
            decay: None,
            rules: Vec::new(),
        }
    }

    /// Sets the ε-estimation strategy (default: [`Smoothed`]` { alpha: 1.0 }`,
    /// the audit builder's headline default).
    pub fn estimator(mut self, estimator: impl EpsilonEstimator + 'static) -> Self {
        self.estimator = Some(Box::new(estimator));
        self
    }

    /// Sets an already-boxed estimator.
    pub fn boxed_estimator(mut self, estimator: Box<dyn EpsilonEstimator>) -> Self {
        self.estimator = Some(estimator);
        self
    }

    /// Which attribute subsets [`FairnessMonitor::snapshot`] audits
    /// (default [`SubsetPolicy::None`]: the full intersection only — the
    /// per-push hot path never pays for the lattice).
    pub fn subsets(mut self, policy: SubsetPolicy) -> Self {
        self.subsets = policy;
        self
    }

    /// Window size W in records (default 10 000). The ring keeps the most
    /// recent chunks whose cumulative size is at most W, so feed uniform
    /// chunks of a size dividing W for an exact W-record window.
    pub fn window(mut self, records: usize) -> Self {
        self.window_records = records;
        self
    }

    /// Enables the exponentially-decayed horizon: before each new bucket
    /// is absorbed, every horizon cell is scaled by `lambda ∈ (0, 1)`.
    /// The horizon half-life is `ln 2 / ln(1/λ)` buckets — e.g. λ = 0.99
    /// halves the influence of a bucket after ≈ 69 subsequent buckets.
    pub fn decay(mut self, lambda: f64) -> Self {
        self.decay = Some(lambda);
        self
    }

    /// Attaches an alert rule; chain multiple calls for multiple rules.
    pub fn alert(mut self, rule: AlertRule) -> Self {
        self.rules.push(rule);
        self
    }

    /// Validates the configuration and builds the monitor.
    pub fn build(self) -> Result<FairnessMonitor> {
        if self.window_records == 0 {
            return Err(DfError::Invalid(
                "window must hold at least 1 record".into(),
            ));
        }
        if let Some(lambda) = self.decay {
            if !(lambda > 0.0 && lambda < 1.0) {
                return Err(DfError::Invalid(format!(
                    "decay lambda must lie in (0, 1), got {lambda}"
                )));
            }
        }
        for rule in &self.rules {
            if !rule.threshold.is_finite() || rule.threshold < 0.0 {
                return Err(DfError::Invalid(format!(
                    "alert threshold must be finite and non-negative, got {}",
                    rule.threshold
                )));
            }
        }
        // Validate the schema once: the zero window must already be a legal
        // JointCounts (outcome axis present, ≥ 2 outcomes, ≥ 1 attribute).
        let window = ContingencyTable::zeros(self.axes.clone())?;
        let zero = JointCounts::from_table(window.clone(), &self.outcome_axis)?;
        let attribute_names: Vec<String> = zero
            .attribute_names()
            .iter()
            .map(|s| s.to_string())
            .collect();
        let p = attribute_names.len();
        let limit = match self.subsets {
            SubsetPolicy::All => p,
            SubsetPolicy::UpTo { size } => size.min(p),
            SubsetPolicy::None => 0,
        };
        let mut masks: Vec<u32> = (1..(1u32 << p))
            .filter(|m| {
                let ones = m.count_ones() as usize;
                ones <= limit || ones == p
            })
            .collect();
        masks.sort_by_key(|m| (m.count_ones(), *m));
        let subset_attrs: Vec<Vec<String>> = masks
            .into_iter()
            .map(|mask| {
                (0..p)
                    .filter(|i| mask & (1 << i) != 0)
                    .map(|i| attribute_names[i].clone())
                    .collect()
            })
            .collect();
        let decayed = self
            .decay
            .map(|_| ContingencyTable::zeros(self.axes.clone()))
            .transpose()?;
        let states = vec![RuleState::default(); self.rules.len()];
        let engine = WindowEngine::new(&self.axes, &self.outcome_axis)?;
        let scratch = PartialCounts::zeros(self.axes.clone())?;
        Ok(FairnessMonitor {
            engine,
            outcome_axis: self.outcome_axis,
            estimator: self
                .estimator
                .unwrap_or_else(|| Box::new(Smoothed { alpha: 1.0 })),
            subset_attrs,
            window_records: self.window_records,
            decay: self.decay,
            rules: self.rules,
            states,
            ring: VecDeque::new(),
            window,
            scratch,
            window_rows: 0,
            decayed,
            records_seen: 0,
            alerts: Vec::new(),
        })
    }
}

// ---------------------------------------------------------------------------
// The monitor.
// ---------------------------------------------------------------------------

/// The streaming fairness monitor; see the [module docs](self).
pub struct FairnessMonitor {
    engine: WindowEngine,
    outcome_axis: String,
    estimator: Box<dyn EpsilonEstimator>,
    subset_attrs: Vec<Vec<String>>,
    window_records: usize,
    decay: Option<f64>,
    rules: Vec<AlertRule>,
    states: Vec<RuleState>,
    /// Sealed buckets currently inside the window, oldest first: the raw
    /// cell data of each bucket (axes live once on `window`) plus its
    /// record count.
    ring: VecDeque<(Vec<f64>, usize)>,
    /// Running sum of the ring — the window's joint counts.
    window: ContingencyTable,
    /// Reused per-push tally shard (cleared between chunks), so ingesting
    /// a bucket never re-allocates the schema.
    scratch: PartialCounts,
    window_rows: usize,
    /// Exponentially-decayed horizon counts (present iff decay set).
    decayed: Option<ContingencyTable>,
    records_seen: u64,
    alerts: Vec<Alert>,
}

impl FairnessMonitor {
    /// Ingests one chunk as a new window bucket, evicts expired buckets,
    /// recomputes the windowed (and horizon) ε, and evaluates the alert
    /// rules. Incremental cost is one chunk tally plus O(cells) — never a
    /// window re-scan (see the `monitor` criterion bench).
    ///
    /// A chunk larger than the window itself is rejected: it could never
    /// fit, and silently truncating it would break the window's
    /// "last W records" contract.
    pub fn push<C: Tally + ?Sized>(&mut self, chunk: &C) -> Result<MonitorStep> {
        self.scratch.clear();
        chunk.tally_into(&mut self.scratch)?;
        // Validate per cell, not just the total: `Tally` impls are user
        // code with access to weighted `add`, and a negative, fractional,
        // or non-finite cell would silently break the integer-tally
        // premise the exact merge/subtract window rests on (a negative
        // count turns ε into NaN, which no alert rule ever fires on).
        let cells = self.scratch.table().data();
        if let Some(cell) = cells
            .iter()
            .position(|v| !v.is_finite() || *v < 0.0 || v.fract() != 0.0)
        {
            return Err(DfError::Invalid(format!(
                "monitor buckets need finite, non-negative, integer cell tallies; \
                 cell {cell} holds {}",
                cells[cell]
            )));
        }
        let rows = self.scratch.total() as usize;
        if rows > self.window_records {
            return Err(DfError::Invalid(format!(
                "chunk of {rows} records exceeds the {}-record window",
                self.window_records
            )));
        }
        self.window.merge_from(self.scratch.table())?;
        self.window_rows += rows;
        if let (Some(lambda), Some(decayed)) = (self.decay, self.decayed.as_mut()) {
            decayed.scale(lambda)?;
            decayed.merge_from(self.scratch.table())?;
        }
        self.ring
            .push_back((self.scratch.table().data().to_vec(), rows));
        while self.window_rows > self.window_records {
            let (expired, expired_rows) =
                self.ring.pop_front().expect("over-full ring is nonempty");
            self.window.subtract_data(&expired)?;
            self.window_rows -= expired_rows;
        }
        self.records_seen += rows as u64;

        let epsilon = self.window_epsilon()?;
        let decayed_epsilon = self.horizon_epsilon()?;
        let fired = self.evaluate_rules(&epsilon);
        Ok(MonitorStep {
            records_seen: self.records_seen,
            window_rows: self.window_rows as u64,
            epsilon,
            decayed_epsilon,
            fired,
        })
    }

    /// ε of the current window under the configured estimator — the same
    /// estimate a batch [`crate::builder::Audit`] of the window's records
    /// would headline, byte for byte (computed through the cached
    /// [`WindowEngine`], which is value-identical to the audit path).
    pub fn window_epsilon(&self) -> Result<EpsilonResult> {
        self.estimator
            .estimate(&self.engine.raw_outcomes(&self.window)?)
    }

    fn horizon_epsilon(&self) -> Result<Option<EpsilonResult>> {
        match &self.decayed {
            Some(d) => Ok(Some(
                self.estimator.estimate(&self.engine.raw_outcomes(d)?)?,
            )),
            None => Ok(None),
        }
    }

    fn evaluate_rules(&mut self, epsilon: &EpsilonResult) -> Vec<Alert> {
        let mut fired = Vec::new();
        for (rule, state) in self.rules.iter().zip(&mut self.states) {
            if epsilon.epsilon > rule.threshold {
                state.streak += 1;
                if !state.active && state.streak >= rule.consecutive {
                    state.active = true;
                    let alert = Alert {
                        rule: *rule,
                        at_record: self.records_seen,
                        epsilon: epsilon.epsilon,
                        witness: epsilon.witness.clone(),
                    };
                    fired.push(alert.clone());
                    self.alerts.push(alert);
                }
            } else {
                state.streak = 0;
                state.active = false;
            }
        }
        fired
    }

    /// Records currently inside the window.
    pub fn window_rows(&self) -> usize {
        self.window_rows
    }

    /// Total records ingested over the monitor's lifetime.
    pub fn records_seen(&self) -> u64 {
        self.records_seen
    }

    /// The window's joint counts (outcome axis wherever the schema put it).
    pub fn window_counts(&self) -> &ContingencyTable {
        &self.window
    }

    /// Every alert fired so far, in firing order.
    pub fn alerts(&self) -> &[Alert] {
        &self.alerts
    }

    /// The full serializable, mergeable monitor state: window and horizon
    /// counts, ε, the per-subset lattice dictated by the configured
    /// [`SubsetPolicy`], and the alert log.
    pub fn snapshot(&self) -> Result<MonitorSnapshot> {
        let window_counts = JointCounts::from_table(self.window.clone(), &self.outcome_axis)?;
        let epsilon = self.window_epsilon()?;
        let subsets = subset_epsilons(
            &window_counts,
            &self.subset_attrs,
            &epsilon,
            &*self.estimator,
        )?;
        Ok(MonitorSnapshot {
            outcome_axis: self.outcome_axis.clone(),
            estimator: self.estimator.name(),
            records_seen: self.records_seen,
            window_rows: self.window_rows as u64,
            window: CountsSnapshot::from_table(&self.window),
            decayed: self.decayed.as_ref().map(CountsSnapshot::from_table),
            decay: self.decay,
            epsilon,
            decayed_epsilon: self.horizon_epsilon()?,
            subsets,
            alerts: self.alerts.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{Audit, Empirical};

    /// A chunk of (outcome, group) index pairs.
    struct Pairs(Vec<[usize; 2]>);

    impl Tally for Pairs {
        fn tally_into(&self, shard: &mut PartialCounts) -> df_prob::Result<()> {
            for idx in &self.0 {
                shard.record(idx);
            }
            Ok(())
        }
    }

    fn axes() -> Vec<Axis> {
        vec![
            Axis::from_strs("y", &["no", "yes"]).unwrap(),
            Axis::from_strs("g", &["a", "b"]).unwrap(),
        ]
    }

    /// A balanced chunk (ε = 0) and a skewed chunk (ε > 0), both 4 records.
    fn balanced() -> Pairs {
        Pairs(vec![[0, 0], [1, 0], [0, 1], [1, 1]])
    }

    fn skewed() -> Pairs {
        Pairs(vec![[1, 0], [1, 0], [0, 1], [0, 1]])
    }

    #[test]
    fn builder_validates_configuration() {
        assert!(Audit::monitor("y", axes()).window(0).build().is_err());
        assert!(Audit::monitor("y", axes()).decay(0.0).build().is_err());
        assert!(Audit::monitor("y", axes()).decay(1.0).build().is_err());
        assert!(Audit::monitor("nope", axes()).build().is_err());
        assert!(Audit::monitor("y", axes())
            .alert(AlertRule::epsilon_above(f64::NAN))
            .build()
            .is_err());
        // A single outcome label is not a legal schema.
        let bad = vec![
            Axis::from_strs("y", &["only"]).unwrap(),
            Axis::from_strs("g", &["a", "b"]).unwrap(),
        ];
        assert!(Audit::monitor("y", bad).build().is_err());
    }

    #[test]
    fn window_evicts_oldest_buckets_exactly() {
        let mut m = Audit::monitor("y", axes())
            .estimator(Empirical)
            .window(8)
            .build()
            .unwrap();
        // Fill the window with skew, then flush it out with balance.
        m.push(&skewed()).unwrap();
        let full_skew = m.push(&skewed()).unwrap();
        assert_eq!(full_skew.window_rows, 8);
        assert!(full_skew.epsilon.epsilon.is_infinite());
        m.push(&balanced()).unwrap();
        let step = m.push(&balanced()).unwrap();
        // Both skewed buckets have been evicted: the window is exactly the
        // two balanced chunks, so ε = 0 and the counts prove it.
        assert_eq!(step.window_rows, 8);
        assert_eq!(step.epsilon.epsilon, 0.0);
        assert_eq!(m.window_counts().data(), &[2.0, 2.0, 2.0, 2.0]);
        assert_eq!(m.records_seen(), 16);
    }

    #[test]
    fn oversized_chunk_is_rejected() {
        let mut m = Audit::monitor("y", axes()).window(3).build().unwrap();
        assert!(m.push(&balanced()).is_err());
    }

    #[test]
    fn corrupt_buckets_are_rejected_per_cell() {
        struct Weighted(Vec<([usize; 2], f64)>);
        impl Tally for Weighted {
            fn tally_into(&self, shard: &mut PartialCounts) -> df_prob::Result<()> {
                for (idx, w) in &self.0 {
                    shard.add(idx, *w);
                }
                Ok(())
            }
        }
        let mut m = Audit::monitor("y", axes()).window(8).build().unwrap();
        // Negative cell masked by a clean total: must be refused.
        assert!(m
            .push(&Weighted(vec![([0, 0], -1.0), ([1, 0], 3.0)]))
            .is_err());
        // Fractional cells summing to an integer total: refused too.
        assert!(m
            .push(&Weighted(vec![([0, 0], 2.5), ([1, 1], 1.5)]))
            .is_err());
        // NaN never sneaks in as a count.
        assert!(m.push(&Weighted(vec![([0, 0], f64::NAN)])).is_err());
        // The window is untouched by rejected chunks…
        assert_eq!(m.window_rows(), 0);
        assert_eq!(m.records_seen(), 0);
        // …and healthy integer-weighted chunks still flow.
        let step = m
            .push(&Weighted(vec![([0, 0], 2.0), ([1, 1], 2.0)]))
            .unwrap();
        assert_eq!(step.window_rows, 4);
    }

    #[test]
    fn alerts_fire_with_hysteresis_and_witness() {
        let mut m = Audit::monitor("y", axes())
            .estimator(Smoothed { alpha: 1.0 })
            .window(4)
            .alert(AlertRule::epsilon_above(0.5).for_consecutive(2))
            .build()
            .unwrap();
        // First breach: streak 1, no alert yet.
        assert!(m.push(&skewed()).unwrap().fired.is_empty());
        // Second consecutive breach: fires, with the worst pair attached.
        let step = m.push(&skewed()).unwrap();
        assert_eq!(step.fired.len(), 1);
        let alert = &step.fired[0];
        assert_eq!(alert.at_record, 8);
        assert!(alert.epsilon > 0.5);
        assert!(alert.witness.is_some());
        // Still breaching: hysteresis suppresses a repeat.
        assert!(m.push(&skewed()).unwrap().fired.is_empty());
        // Recover below the threshold: the rule re-arms…
        assert!(m.push(&balanced()).unwrap().fired.is_empty());
        assert!(m.push(&balanced()).unwrap().fired.is_empty());
        // …and a fresh sustained breach fires again.
        assert!(m.push(&skewed()).unwrap().fired.is_empty());
        assert_eq!(m.push(&skewed()).unwrap().fired.len(), 1);
        assert_eq!(m.alerts().len(), 2);
    }

    #[test]
    fn decayed_horizon_tracks_trend() {
        let mut m = Audit::monitor("y", axes())
            .estimator(Smoothed { alpha: 1.0 })
            .window(4)
            .decay(0.5)
            .build()
            .unwrap();
        for _ in 0..20 {
            m.push(&balanced()).unwrap();
        }
        let calm = m.snapshot().unwrap();
        assert_eq!(calm.epsilon.epsilon, 0.0);
        assert!(calm.trend().unwrap().abs() < 1e-9);
        // A sudden skew: the window reacts fully, the horizon only partly.
        let step = m.push(&skewed()).unwrap();
        let horizon = step.decayed_epsilon.unwrap();
        assert!(step.epsilon.epsilon > horizon.epsilon);
        let snap = m.snapshot().unwrap();
        assert!(snap.trend().unwrap() > 0.0);
    }

    #[test]
    fn snapshot_serializes_and_merges_across_shards() {
        let build = || {
            Audit::monitor("y", axes())
                .estimator(Smoothed { alpha: 1.0 })
                .subsets(SubsetPolicy::All)
                .window(8)
                .build()
                .unwrap()
        };
        let mut shard_a = build();
        let mut shard_b = build();
        shard_a.push(&skewed()).unwrap();
        shard_b.push(&balanced()).unwrap();
        let snap_a = shard_a.snapshot().unwrap();
        let snap_b = shard_b.snapshot().unwrap();

        // JSON round-trip.
        let json = serde_json::to_string(&snap_a).unwrap();
        let back: MonitorSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap_a);

        // Merging shard snapshots equals one monitor that saw all traffic.
        let merged = snap_a.merge(&snap_b, &Smoothed { alpha: 1.0 }).unwrap();
        let mut whole = build();
        whole.push(&skewed()).unwrap();
        whole.push(&balanced()).unwrap();
        let direct = whole.snapshot().unwrap();
        assert_eq!(merged.window, direct.window);
        assert_eq!(merged.epsilon, direct.epsilon);
        assert_eq!(merged.subsets, direct.subsets);
        assert_eq!(merged.window_rows, 8);
        assert_eq!(merged.records_seen, 8);
        // Merge is commutative on the counts.
        let flipped = snap_b.merge(&snap_a, &Smoothed { alpha: 1.0 }).unwrap();
        assert_eq!(flipped.window, merged.window);
        assert_eq!(flipped.epsilon, merged.epsilon);
    }

    #[test]
    fn merge_rejects_mismatched_shards() {
        let snap = |outcome: &str, axes: Vec<Axis>| {
            let mut m = Audit::monitor(outcome, axes).window(8).build().unwrap();
            m.push(&balanced()).unwrap();
            m.snapshot().unwrap()
        };
        let a = snap("y", axes());
        let other_axes = vec![
            Axis::from_strs("y", &["no", "yes"]).unwrap(),
            Axis::from_strs("g", &["a", "b", "c"]).unwrap(),
        ];
        let mut m = Audit::monitor("y", other_axes).window(8).build().unwrap();
        m.push(&balanced()).unwrap();
        let b = m.snapshot().unwrap();
        assert!(a.merge(&b, &Smoothed { alpha: 1.0 }).is_err());
        // Decay configuration must match too.
        let mut m = Audit::monitor("y", axes())
            .window(8)
            .decay(0.9)
            .build()
            .unwrap();
        m.push(&balanced()).unwrap();
        let c = m.snapshot().unwrap();
        assert!(a.merge(&c, &Smoothed { alpha: 1.0 }).is_err());
    }

    #[test]
    fn snapshot_subsets_follow_the_policy() {
        let three_axes = vec![
            Axis::from_strs("y", &["no", "yes"]).unwrap(),
            Axis::from_strs("g", &["a", "b"]).unwrap(),
            Axis::from_strs("r", &["x", "z"]).unwrap(),
        ];
        struct Triples(Vec<[usize; 3]>);
        impl Tally for Triples {
            fn tally_into(&self, shard: &mut PartialCounts) -> df_prob::Result<()> {
                for idx in &self.0 {
                    shard.record(idx);
                }
                Ok(())
            }
        }
        let rows = Triples(vec![
            [0, 0, 0],
            [1, 0, 1],
            [0, 1, 0],
            [1, 1, 1],
            [1, 0, 0],
            [0, 1, 1],
        ]);
        let mut m = Audit::monitor("y", three_axes)
            .estimator(Smoothed { alpha: 1.0 })
            .subsets(SubsetPolicy::All)
            .window(16)
            .build()
            .unwrap();
        m.push(&rows).unwrap();
        let snap = m.snapshot().unwrap();
        let sizes: Vec<usize> = snap.subsets.iter().map(|s| s.attributes.len()).collect();
        assert_eq!(sizes, vec![1, 1, 2]);
        assert_eq!(snap.subsets.last().unwrap().attributes, vec!["g", "r"]);
        // The full-intersection subset entry is the headline ε itself.
        assert_eq!(snap.subsets.last().unwrap().result, snap.epsilon);
    }

    #[test]
    fn cached_engine_matches_the_audit_path_exactly() {
        // Outcome axis deliberately NOT first, sparse cells, an empty
        // group: the engine's flat-index map and cached labels must
        // reproduce `JointCounts::group_outcomes(0.0)` value for value.
        let axes = vec![
            Axis::from_strs("g", &["a", "b", "c"]).unwrap(),
            Axis::from_strs("y", &["no", "yes"]).unwrap(),
            Axis::from_strs("r", &["x", "z"]).unwrap(),
        ];
        let data = vec![3.0, 1.0, 0.0, 2.0, 0.0, 0.0, 0.0, 0.0, 5.0, 7.0, 2.0, 1.0];
        let table = ContingencyTable::from_data(axes.clone(), data).unwrap();
        let engine = WindowEngine::new(&axes, "y").unwrap();
        let fast = engine.raw_outcomes(&table).unwrap();
        let slow = JointCounts::from_table(table, "y")
            .unwrap()
            .group_outcomes(0.0)
            .unwrap();
        assert_eq!(fast, slow);
        assert_eq!(
            serde_json::to_string(&fast.epsilon()).unwrap(),
            serde_json::to_string(&slow.epsilon()).unwrap()
        );
    }

    #[test]
    fn empty_window_has_vacuous_epsilon() {
        let m = Audit::monitor("y", axes()).window(4).build().unwrap();
        let snap = m.snapshot().unwrap();
        assert_eq!(snap.epsilon.epsilon, 0.0);
        assert!(snap.epsilon.witness.is_none());
        assert_eq!(snap.window_rows, 0);
    }
}
