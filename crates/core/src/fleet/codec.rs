//! Compact, versioned binary transport for [`MonitorSnapshot`]s.
//!
//! JSON snapshots are fine for a dashboard; they are not fine for a fleet.
//! At 1 000 replicas × 1 Hz the aggregator ingests a thousand snapshots a
//! second, and the JSON form re-ships the full schema — axis names, label
//! vocabularies, subset attribute lists, detector configurations — on
//! every tick, plus every count as decimal text. The binary codec splits a
//! snapshot into its two natural halves:
//!
//! - **Schema** (static per replica lifetime): outcome axis, estimator
//!   name, window/decay configuration, axes with label vocabularies,
//!   subset lattice, change-point detector specs. Shipped once, in a
//!   **full frame**, and fingerprinted with a 64-bit FNV-1a hash.
//! - **State** (changes every tick): record totals, the clock, cell
//!   counts, ε results, alert and alarm logs, detector statistics.
//!   Shipped in **delta frames** that reference the schema by hash.
//!
//! Wire layout (all integers little-endian; `varint` is unsigned LEB128):
//!
//! ```text
//! frame   := magic "DFLT" | version u8 | kind u8 | schema_hash u64 | body
//! kind    := 1 (full: body = schema ++ state) | 2 (delta: body = state)
//! schema  := outcome_axis str | estimator str | metric str
//!          | window_s opt_f64 | bucket_s opt_f64 | decay opt_f64
//!          | axes | subsets | specs
//! state   := records_seen varint | window_rows varint | now opt_f64
//!          | window cells | [decayed cells] | eps | [decayed eps]
//!          | subset eps × n_subsets | alerts | detector states
//! cells   := tag u8 (0: f64 × n_cells | 1: varint × n_cells)
//! ```
//!
//! Window cells are integer tallies, so the varint cell form usually wins
//! by a wide margin (a three-digit count costs 2 bytes instead of 8 — or
//! ~7 as JSON text); the `f64` form is the lossless fallback for decayed
//! horizons. Encoding is **byte-stable**: the same snapshot always
//! serializes to the same bytes, on any encoder, in any process — the
//! property the fleet-equivalence suite pins.
//!
//! Decoding treats input as untrusted: truncated buffers, bad magic or
//! version, unknown schema hashes, trailing garbage, invalid UTF-8,
//! malformed axes, and non-finite or negative cell values all produce
//! typed [`DfError`]s ([`DfError::CorruptCounts`] for cells) — nothing
//! panics and no corrupt count ever reaches the ε kernel.

use crate::epsilon::{EpsilonResult, EpsilonWitness};
use crate::error::{DfError, Result};
use crate::monitor::{
    Alert, AlertRule, ChangeSignal, ChangepointAlarm, ChangepointSpec, ChangepointStatus,
    CountsSnapshot, MonitorSnapshot,
};
use crate::subsets::SubsetEpsilon;
use df_prob::contingency::Axis;
use df_prob::numerics::exactly_zero;
use std::collections::HashMap;

/// The frame magic: `DFLT` ("differential-fairness fleet transport").
pub const MAGIC: [u8; 4] = *b"DFLT";
/// Current wire-format version. Version 2 added the metric tag to the
/// schema (inside the fingerprint, so snapshots of different metrics can
/// never be confused for delta frames of one another).
pub const VERSION: u8 = 2;

const KIND_FULL: u8 = 1;
const KIND_DELTA: u8 = 2;
const CELLS_F64: u8 = 0;
const CELLS_VARINT: u8 = 1;

/// Largest integer exactly representable in `f64` — the varint cell form
/// refuses anything bigger so decode is always exact.
const MAX_EXACT: u64 = 1 << 53;

/// Sanity cap on a decoded alert rule's consecutive-breach requirement.
/// No real deployment waits for a million breaching windows; anything
/// larger is frame corruption (and would silently truncate through an
/// `as usize` on 32-bit targets, which is exactly what `no-lossy-cast`
/// exists to prevent).
const MAX_ALERT_CONSECUTIVE: u64 = 1 << 20;

// ---------------------------------------------------------------------------
// Primitive writers.
// ---------------------------------------------------------------------------

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        // df-lint: allow(no-lossy-cast) -- masked to 7 bits the line before; the cast cannot lose information
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_opt_f64(out: &mut Vec<u8>, v: Option<f64>) {
    match v {
        None => out.push(0),
        Some(x) => {
            out.push(1);
            put_f64(out, x);
        }
    }
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_varint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

// ---------------------------------------------------------------------------
// Primitive reader (bounds-checked; every failure is a typed error).
// ---------------------------------------------------------------------------

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(DfError::Invalid(format!(
                "truncated snapshot frame: needed {n} more bytes at offset {}, \
                 have {}",
                self.pos,
                self.remaining()
            )));
        }
        let end = self
            .pos
            .checked_add(n)
            .ok_or_else(|| DfError::Invalid("snapshot frame offset overflows usize".into()))?;
        let slice = self.buf.get(self.pos..end).ok_or_else(|| {
            DfError::Invalid(format!(
                "truncated snapshot frame: range {}..{end} out of bounds",
                self.pos
            ))
        })?;
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8> {
        self.take(1)?
            .first()
            .copied()
            .ok_or_else(|| DfError::Invalid("empty read where one byte was promised".into()))
    }

    fn u64_le(&mut self) -> Result<u64> {
        let bytes = self.take(8)?;
        let bytes: [u8; 8] = bytes
            .try_into()
            .map_err(|_| DfError::Invalid("truncated u64 in snapshot frame".into()))?;
        Ok(u64::from_le_bytes(bytes))
    }

    fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.u64_le()?))
    }

    fn opt_f64(&mut self) -> Result<Option<f64>> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.f64()?)),
            flag => Err(DfError::Invalid(format!(
                "invalid optional-value flag {flag} in snapshot frame"
            ))),
        }
    }

    fn varint(&mut self) -> Result<u64> {
        let mut value = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.u8()?;
            if shift == 63 && byte > 1 {
                return Err(DfError::Invalid(
                    "varint overflows u64 in snapshot frame".into(),
                ));
            }
            value |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
            if shift > 63 {
                return Err(DfError::Invalid(
                    "varint longer than 10 bytes in snapshot frame".into(),
                ));
            }
        }
    }

    /// A varint that must fit `usize` *and* is used as an element count:
    /// bounded by the bytes still in the buffer (each element costs ≥ 1
    /// byte), so a hostile length can never trigger a giant allocation.
    fn count(&mut self) -> Result<usize> {
        let n = self.varint()?;
        if n > self.remaining() as u64 {
            return Err(DfError::Invalid(format!(
                "snapshot frame claims {n} elements but only {} bytes remain",
                self.remaining()
            )));
        }
        usize::try_from(n).map_err(|_| {
            DfError::Invalid(format!(
                "snapshot frame element count {n} does not fit this target's usize"
            ))
        })
    }

    fn str(&mut self) -> Result<String> {
        let len = self.count()?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| DfError::Invalid("invalid UTF-8 string in snapshot frame".into()))
    }

    fn done(&self) -> Result<()> {
        if self.remaining() != 0 {
            return Err(DfError::Invalid(format!(
                "{} trailing bytes after snapshot frame",
                self.remaining()
            )));
        }
        Ok(())
    }
}

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

// ---------------------------------------------------------------------------
// Schema: the static half of a snapshot.
// ---------------------------------------------------------------------------

/// Everything about a snapshot that is fixed for a replica's lifetime.
#[derive(Debug, Clone, PartialEq)]
struct SnapshotSchema {
    outcome_axis: String,
    estimator: String,
    metric: String,
    window_seconds: Option<f64>,
    bucket_seconds: Option<f64>,
    decay: Option<f64>,
    axes: Vec<(String, Vec<String>)>,
    subset_attrs: Vec<Vec<String>>,
    specs: Vec<ChangepointSpec>,
}

/// Validates the state-level invariants the wire format relies on (the
/// encoder refuses to serialize a snapshot it could not faithfully
/// reconstruct): the decay triple is all-present or all-absent with
/// matching axes, and every alarm cites its own detector's spec.
/// Allocation-free — runs on every encode, including the delta hot path.
fn validate_snapshot_invariants(snap: &MonitorSnapshot) -> Result<()> {
    match (&snap.decay, &snap.decayed, &snap.decayed_epsilon) {
        (Some(_), Some(d), Some(_)) => {
            if d.axes != snap.window.axes {
                return Err(DfError::Invalid(
                    "snapshot decayed-horizon axes differ from window axes".into(),
                ));
            }
        }
        (None, None, None) => {}
        _ => {
            return Err(DfError::Invalid(
                "snapshot decay configuration is inconsistent: decay factor, \
                 decayed counts, and decayed epsilon must all be present or all absent"
                    .into(),
            ));
        }
    }
    for status in &snap.changepoints {
        if status.alarms.iter().any(|a| a.detector != status.spec) {
            return Err(DfError::Invalid(
                "snapshot alarm references a detector spec other than its own".into(),
            ));
        }
    }
    Ok(())
}

impl SnapshotSchema {
    /// Extracts the schema ([`validate_snapshot_invariants`] must have
    /// passed first).
    fn of(snap: &MonitorSnapshot) -> SnapshotSchema {
        SnapshotSchema {
            outcome_axis: snap.outcome_axis.clone(),
            estimator: snap.estimator.clone(),
            metric: snap.metric.clone(),
            window_seconds: snap.window_seconds,
            bucket_seconds: snap.bucket_seconds,
            decay: snap.decay,
            axes: snap.window.axes.clone(),
            subset_attrs: snap.subsets.iter().map(|s| s.attributes.clone()).collect(),
            specs: snap.changepoints.iter().map(|s| s.spec).collect(),
        }
    }

    /// Whether this (already shipped) schema describes `snap` — compared
    /// field by field against the snapshot, so the steady-state delta
    /// path never materializes a schema just to throw it away.
    fn matches(&self, snap: &MonitorSnapshot) -> bool {
        self.outcome_axis == snap.outcome_axis
            && self.estimator == snap.estimator
            && self.metric == snap.metric
            && self.window_seconds == snap.window_seconds
            && self.bucket_seconds == snap.bucket_seconds
            && self.decay == snap.decay
            && self.axes == snap.window.axes
            && self.subset_attrs.len() == snap.subsets.len()
            && self
                .subset_attrs
                .iter()
                .zip(&snap.subsets)
                .all(|(attrs, subset)| *attrs == subset.attributes)
            && self.specs.len() == snap.changepoints.len()
            && self
                .specs
                .iter()
                .zip(&snap.changepoints)
                .all(|(spec, status)| *spec == status.spec)
    }

    /// Number of cells the axes imply, refusing overflow: the product of
    /// per-axis label counts comes from the wire on decode paths, and a
    /// hostile schema can push it past `usize` with a few KB of labels.
    fn n_cells(&self) -> Result<usize> {
        self.axes
            .iter()
            .try_fold(1usize, |acc, (_, labels)| acc.checked_mul(labels.len()))
            .ok_or_else(|| DfError::Invalid("snapshot schema cell count overflows usize".into()))
    }

    fn encode(&self, out: &mut Vec<u8>) {
        put_str(out, &self.outcome_axis);
        put_str(out, &self.estimator);
        put_str(out, &self.metric);
        put_opt_f64(out, self.window_seconds);
        put_opt_f64(out, self.bucket_seconds);
        put_opt_f64(out, self.decay);
        put_varint(out, self.axes.len() as u64);
        for (name, labels) in &self.axes {
            put_str(out, name);
            put_varint(out, labels.len() as u64);
            for label in labels {
                put_str(out, label);
            }
        }
        put_varint(out, self.subset_attrs.len() as u64);
        for attrs in &self.subset_attrs {
            put_varint(out, attrs.len() as u64);
            for attr in attrs {
                put_str(out, attr);
            }
        }
        put_varint(out, self.specs.len() as u64);
        for spec in &self.specs {
            put_spec(out, spec);
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<SnapshotSchema> {
        let outcome_axis = r.str()?;
        let estimator = r.str()?;
        let metric = r.str()?;
        let window_seconds = r.opt_f64()?;
        let bucket_seconds = r.opt_f64()?;
        let decay = r.opt_f64()?;
        let n_axes = r.count()?;
        let mut axes = Vec::with_capacity(n_axes);
        for _ in 0..n_axes {
            let name = r.str()?;
            let n_labels = r.count()?;
            let mut labels = Vec::with_capacity(n_labels);
            for _ in 0..n_labels {
                labels.push(r.str()?);
            }
            axes.push((name, labels));
        }
        // Re-running the Axis/table constructors validates the schema the
        // way every other entry point does (non-empty axes, unique names
        // and labels) without trusting the wire.
        let schema = SnapshotSchema {
            outcome_axis,
            estimator,
            metric,
            window_seconds,
            bucket_seconds,
            decay,
            axes,
            subset_attrs: {
                let n_subsets = r.count()?;
                let mut subset_attrs = Vec::with_capacity(n_subsets);
                for _ in 0..n_subsets {
                    let n_attrs = r.count()?;
                    let mut attrs = Vec::with_capacity(n_attrs);
                    for _ in 0..n_attrs {
                        attrs.push(r.str()?);
                    }
                    subset_attrs.push(attrs);
                }
                subset_attrs
            },
            specs: {
                let n_specs = r.count()?;
                let mut specs = Vec::with_capacity(n_specs);
                for _ in 0..n_specs {
                    specs.push(get_spec(r)?);
                }
                specs
            },
        };
        schema.validate()?;
        Ok(schema)
    }

    /// Semantic validation of a decoded (untrusted) schema. Deliberately
    /// allocates nothing proportional to the cell count: a hostile schema
    /// can imply terabytes of cells in a few KB of labels, so the cell
    /// product is only checked for overflow here and bounded against the
    /// remaining frame bytes before [`get_cells`] ever allocates.
    fn validate(&self) -> Result<()> {
        let axes = self
            .axes
            .iter()
            .map(|(name, labels)| Axis::new(name.clone(), labels.clone()))
            .collect::<df_prob::Result<Vec<_>>>()?;
        if axes.is_empty() {
            return Err(DfError::Invalid(
                "snapshot schema needs at least one axis".into(),
            ));
        }
        for (i, axis) in axes.iter().enumerate() {
            if axes.iter().take(i).any(|other| other.name() == axis.name()) {
                return Err(DfError::Invalid(format!(
                    "snapshot schema repeats axis name `{}`",
                    axis.name()
                )));
            }
        }
        self.n_cells()?;
        if !self.axes.iter().any(|(name, _)| *name == self.outcome_axis) {
            return Err(DfError::Invalid(format!(
                "snapshot schema names outcome axis `{}` but has no such axis",
                self.outcome_axis
            )));
        }
        for attrs in &self.subset_attrs {
            for attr in attrs {
                if *attr == self.outcome_axis || !self.axes.iter().any(|(name, _)| name == attr) {
                    return Err(DfError::Invalid(format!(
                        "snapshot subset names `{attr}`, which is not a protected axis"
                    )));
                }
            }
        }
        // An unknown metric tag is a typed decode error: the snapshot's
        // statistic is meaningless without the metric that computed it,
        // and a silent ε-DF fallback would let merges mix definitions.
        crate::metric::metric_from_tag(&self.metric)?;
        for spec in &self.specs {
            spec.validate()?;
        }
        if let Some(lambda) = self.decay {
            if !(lambda > 0.0 && lambda < 1.0) {
                return Err(DfError::Invalid(format!(
                    "snapshot decay lambda must lie in (0, 1), got {lambda}"
                )));
            }
        }
        Ok(())
    }
}

fn put_spec(out: &mut Vec<u8>, spec: &ChangepointSpec) {
    match *spec {
        ChangepointSpec::Cusum {
            target,
            drift,
            threshold,
            signal,
        } => {
            out.push(0);
            out.push(signal_code(signal));
            put_f64(out, target);
            put_f64(out, drift);
            put_f64(out, threshold);
        }
        ChangepointSpec::PageHinkley {
            target,
            delta,
            lambda,
            signal,
        } => {
            out.push(1);
            out.push(signal_code(signal));
            put_f64(out, target);
            put_f64(out, delta);
            put_f64(out, lambda);
        }
    }
}

fn get_spec(r: &mut Reader<'_>) -> Result<ChangepointSpec> {
    let family = r.u8()?;
    let signal = match r.u8()? {
        0 => ChangeSignal::Epsilon,
        1 => ChangeSignal::RawLogRatio,
        code => {
            return Err(DfError::Invalid(format!(
                "unknown change-point signal code {code} in snapshot frame"
            )));
        }
    };
    let (a, b, c) = (r.f64()?, r.f64()?, r.f64()?);
    match family {
        0 => Ok(ChangepointSpec::Cusum {
            target: a,
            drift: b,
            threshold: c,
            signal,
        }),
        1 => Ok(ChangepointSpec::PageHinkley {
            target: a,
            delta: b,
            lambda: c,
            signal,
        }),
        code => Err(DfError::Invalid(format!(
            "unknown change-point family code {code} in snapshot frame"
        ))),
    }
}

fn signal_code(signal: ChangeSignal) -> u8 {
    match signal {
        ChangeSignal::Epsilon => 0,
        ChangeSignal::RawLogRatio => 1,
    }
}

// ---------------------------------------------------------------------------
// State: the per-tick half.
// ---------------------------------------------------------------------------

fn put_cells(out: &mut Vec<u8>, cells: &[f64]) -> Result<()> {
    if let Some((cell, &value)) = cells
        .iter()
        .enumerate()
        .find(|(_, v)| !v.is_finite() || **v < 0.0)
    {
        return Err(DfError::CorruptCounts { cell, value });
    }
    let integral = cells
        .iter()
        .all(|&v| exactly_zero(v.fract()) && v <= MAX_EXACT as f64);
    if integral {
        out.push(CELLS_VARINT);
        for &v in cells {
            put_varint(out, v as u64);
        }
    } else {
        out.push(CELLS_F64);
        for &v in cells {
            put_f64(out, v);
        }
    }
    Ok(())
}

fn get_cells(r: &mut Reader<'_>, n_cells: usize) -> Result<Vec<f64>> {
    let tag = r.u8()?;
    // Every cell costs at least one wire byte in either encoding, so a
    // schema whose cell product exceeds the bytes actually present is
    // corrupt — checked *before* the allocation, which a hostile schema
    // could otherwise inflate to terabytes from a few KB of labels.
    if n_cells > r.remaining() {
        return Err(DfError::Invalid(format!(
            "snapshot frame claims {n_cells} cells but only {} bytes remain",
            r.remaining()
        )));
    }
    // df-lint: allow(bounded-alloc-decode) -- n_cells is rejected against r.remaining() just above; each cell costs >= 1 wire byte
    let mut cells = Vec::with_capacity(n_cells);
    match tag {
        CELLS_F64 => {
            for cell in 0..n_cells {
                let v = r.f64()?;
                if !v.is_finite() || v < 0.0 {
                    return Err(DfError::CorruptCounts { cell, value: v });
                }
                cells.push(v);
            }
        }
        CELLS_VARINT => {
            for cell in 0..n_cells {
                let raw = r.varint()?;
                if raw > MAX_EXACT {
                    return Err(DfError::CorruptCounts {
                        cell,
                        value: raw as f64,
                    });
                }
                cells.push(raw as f64);
            }
        }
        tag => {
            return Err(DfError::Invalid(format!(
                "unknown cell encoding tag {tag} in snapshot frame"
            )));
        }
    }
    Ok(cells)
}

fn put_eps(out: &mut Vec<u8>, eps: &EpsilonResult) {
    put_f64(out, eps.epsilon);
    match &eps.witness {
        None => out.push(0),
        Some(w) => {
            out.push(1);
            put_str(out, &w.outcome);
            put_str(out, &w.group_hi);
            put_str(out, &w.group_lo);
            put_f64(out, w.prob_hi);
            put_f64(out, w.prob_lo);
        }
    }
}

fn get_eps(r: &mut Reader<'_>) -> Result<EpsilonResult> {
    let epsilon = r.f64()?;
    let witness = match r.u8()? {
        0 => None,
        1 => Some(EpsilonWitness {
            outcome: r.str()?,
            group_hi: r.str()?,
            group_lo: r.str()?,
            prob_hi: r.f64()?,
            prob_lo: r.f64()?,
        }),
        flag => {
            return Err(DfError::Invalid(format!(
                "invalid witness flag {flag} in snapshot frame"
            )));
        }
    };
    Ok(EpsilonResult { epsilon, witness })
}

fn put_state(out: &mut Vec<u8>, schema: &SnapshotSchema, snap: &MonitorSnapshot) -> Result<()> {
    put_varint(out, snap.records_seen);
    put_varint(out, snap.window_rows);
    put_opt_f64(out, snap.now_seconds);
    let n_cells = schema.n_cells()?;
    if snap.window.data.len() != n_cells {
        return Err(DfError::Invalid(format!(
            "snapshot window holds {} cells but its axes imply {n_cells}",
            snap.window.data.len(),
        )));
    }
    put_cells(out, &snap.window.data)?;
    if let Some(decayed) = &snap.decayed {
        if decayed.data.len() != n_cells {
            return Err(DfError::Invalid(format!(
                "snapshot decayed horizon holds {} cells but its axes imply {n_cells}",
                decayed.data.len(),
            )));
        }
        put_cells(out, &decayed.data)?;
    }
    put_eps(out, &snap.epsilon);
    if let Some(eps) = &snap.decayed_epsilon {
        put_eps(out, eps);
    }
    for subset in &snap.subsets {
        put_eps(out, &subset.result);
    }
    put_varint(out, snap.alerts.len() as u64);
    for alert in &snap.alerts {
        put_f64(out, alert.rule.threshold);
        put_varint(out, alert.rule.consecutive as u64);
        put_varint(out, alert.at_record);
        put_opt_f64(out, alert.at_seconds);
        put_eps(
            out,
            &EpsilonResult {
                epsilon: alert.epsilon,
                witness: alert.witness.clone(),
            },
        );
    }
    for status in &snap.changepoints {
        put_f64(out, status.statistic);
        put_varint(out, status.alarms.len() as u64);
        for alarm in &status.alarms {
            put_varint(out, alarm.at_record);
            put_opt_f64(out, alarm.at_seconds);
            put_f64(out, alarm.statistic);
            put_f64(out, alarm.signal);
        }
    }
    Ok(())
}

fn get_state(r: &mut Reader<'_>, schema: &SnapshotSchema) -> Result<MonitorSnapshot> {
    let records_seen = r.varint()?;
    let window_rows = r.varint()?;
    let now_seconds = r.opt_f64()?;
    let n_cells = schema.n_cells()?;
    let window = CountsSnapshot {
        axes: schema.axes.clone(),
        data: get_cells(r, n_cells)?,
    };
    let decayed = match schema.decay {
        Some(_) => Some(CountsSnapshot {
            axes: schema.axes.clone(),
            data: get_cells(r, n_cells)?,
        }),
        None => None,
    };
    let epsilon = get_eps(r)?;
    let decayed_epsilon = match schema.decay {
        Some(_) => Some(get_eps(r)?),
        None => None,
    };
    let subsets = schema
        .subset_attrs
        .iter()
        .map(|attrs| {
            Ok(SubsetEpsilon {
                attributes: attrs.clone(),
                result: get_eps(r)?,
            })
        })
        .collect::<Result<Vec<_>>>()?;
    let n_alerts = r.count()?;
    let mut alerts = Vec::with_capacity(n_alerts);
    for alert_idx in 0..n_alerts {
        let threshold = r.f64()?;
        let raw_consecutive = r.varint()?;
        if raw_consecutive > MAX_ALERT_CONSECUTIVE {
            return Err(DfError::CorruptCounts {
                cell: alert_idx,
                value: raw_consecutive as f64,
            });
        }
        let consecutive = usize::try_from(raw_consecutive).map_err(|_| DfError::CorruptCounts {
            cell: alert_idx,
            value: raw_consecutive as f64,
        })?;
        let at_record = r.varint()?;
        let at_seconds = r.opt_f64()?;
        let eps = get_eps(r)?;
        alerts.push(Alert {
            rule: AlertRule {
                threshold,
                consecutive,
            },
            at_record,
            at_seconds,
            epsilon: eps.epsilon,
            witness: eps.witness,
        });
    }
    let changepoints = schema
        .specs
        .iter()
        .map(|&spec| {
            let statistic = r.f64()?;
            let n_alarms = r.count()?;
            let mut alarms = Vec::with_capacity(n_alarms);
            for _ in 0..n_alarms {
                alarms.push(ChangepointAlarm {
                    detector: spec,
                    at_record: r.varint()?,
                    at_seconds: r.opt_f64()?,
                    statistic: r.f64()?,
                    signal: r.f64()?,
                });
            }
            Ok(ChangepointStatus {
                spec,
                statistic,
                alarms,
            })
        })
        .collect::<Result<Vec<_>>>()?;
    Ok(MonitorSnapshot {
        outcome_axis: schema.outcome_axis.clone(),
        estimator: schema.estimator.clone(),
        metric: schema.metric.clone(),
        records_seen,
        window_rows,
        window_seconds: schema.window_seconds,
        bucket_seconds: schema.bucket_seconds,
        now_seconds,
        window,
        decayed,
        decay: schema.decay,
        epsilon,
        decayed_epsilon,
        subsets,
        alerts,
        changepoints,
    })
}

// ---------------------------------------------------------------------------
// Encoder / decoder.
// ---------------------------------------------------------------------------

/// Replica-side encoder with schema interning: the first `encode` ships a
/// full frame carrying the schema; every following tick whose schema is
/// unchanged ships a delta frame — cell data, ε results, and detector
/// state only, typically 5–20× smaller than the JSON form. A schema
/// change (reconfigured monitor) automatically re-ships a full frame.
#[derive(Debug, Default)]
pub struct SnapshotEncoder {
    /// The schema already on the wire, with its hash.
    shipped: Option<(u64, SnapshotSchema)>,
}

impl SnapshotEncoder {
    /// A fresh encoder (first frame will be full).
    pub fn new() -> Self {
        Self::default()
    }

    /// Encodes one snapshot, interning its schema. The steady-state path
    /// (schema unchanged since the last tick) compares the shipped schema
    /// against the snapshot field-by-field and allocates nothing beyond
    /// the output frame.
    pub fn encode(&mut self, snap: &MonitorSnapshot) -> Result<Vec<u8>> {
        validate_snapshot_invariants(snap)?;
        if let Some((hash, shipped)) = &self.shipped {
            if shipped.matches(snap) {
                return frame(KIND_DELTA, *hash, None, shipped, snap);
            }
        }
        let schema = SnapshotSchema::of(snap);
        let mut schema_bytes = Vec::with_capacity(256);
        schema.encode(&mut schema_bytes);
        let hash = fnv1a64(&schema_bytes);
        let bytes = frame(KIND_FULL, hash, Some(&schema_bytes), &schema, snap)?;
        self.shipped = Some((hash, schema));
        Ok(bytes)
    }

    /// Forces the next [`SnapshotEncoder::encode`] to ship a full frame —
    /// e.g. after the aggregator reports an unknown schema hash.
    pub fn reset(&mut self) {
        self.shipped = None;
    }
}

fn frame(
    kind: u8,
    hash: u64,
    schema_bytes: Option<&[u8]>,
    schema: &SnapshotSchema,
    snap: &MonitorSnapshot,
) -> Result<Vec<u8>> {
    let mut out = Vec::with_capacity(64 + schema_bytes.map_or(0, <[u8]>::len));
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    out.push(kind);
    out.extend_from_slice(&hash.to_le_bytes());
    if let Some(bytes) = schema_bytes {
        out.extend_from_slice(bytes);
    }
    put_state(&mut out, schema, snap)?;
    Ok(out)
}

/// Upper bound on the decoder's schema intern table. A fleet shares a
/// handful of schemas (replicas with the same monitor configuration
/// share one), but full frames are *untrusted*: without a cap, a hostile
/// replica shipping a fresh multi-KB vocabulary per tick would grow the
/// aggregator's memory without limit. At the cap the oldest-interned
/// schema is evicted (FIFO); a replica whose schema was evicted gets the
/// usual "unknown schema" error on its next delta frame and re-ships a
/// full frame ([`SnapshotEncoder::reset`]).
pub const MAX_INTERNED_SCHEMAS: usize = 1024;

/// Aggregator-side decoder with a schema intern table: full frames
/// register their schema under its hash; delta frames look it up. One
/// decoder serves any number of replicas (replicas sharing a monitor
/// configuration share one interned schema); the table is bounded by
/// [`MAX_INTERNED_SCHEMAS`].
#[derive(Debug, Default)]
pub struct SnapshotDecoder {
    schemas: HashMap<u64, SnapshotSchema>,
    /// Interning order, oldest first — drives FIFO eviction at the cap.
    order: std::collections::VecDeque<u64>,
}

impl SnapshotDecoder {
    /// A fresh decoder with an empty intern table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct schemas interned so far.
    pub fn interned_schemas(&self) -> usize {
        self.schemas.len()
    }

    /// Decodes one frame. Full frames validate the schema (and its hash)
    /// before interning it; delta frames require a previously interned
    /// schema — an unknown hash is a typed error telling the caller to
    /// request a full frame from that replica.
    pub fn decode(&mut self, bytes: &[u8]) -> Result<MonitorSnapshot> {
        let mut r = Reader::new(bytes);
        let magic = r.take(4)?;
        if magic != MAGIC {
            return Err(DfError::Invalid(
                "not a snapshot frame: bad magic bytes".into(),
            ));
        }
        let version = r.u8()?;
        if version != VERSION {
            return Err(DfError::Invalid(format!(
                "unsupported snapshot frame version {version} (this decoder \
                 speaks version {VERSION})"
            )));
        }
        let kind = r.u8()?;
        let hash = r.u64_le()?;
        // Borrow the interned schema rather than cloning it: delta frames
        // are the 1 kHz hot path, and a per-frame deep clone of the axis
        // vocabularies would be pure allocation churn.
        let schema: &SnapshotSchema = match kind {
            KIND_FULL => {
                let start = r.pos;
                let schema = SnapshotSchema::decode(&mut r)?;
                let schema_span = bytes
                    .get(start..r.pos)
                    .ok_or_else(|| DfError::Invalid("schema span out of frame bounds".into()))?;
                let actual = fnv1a64(schema_span);
                if actual != hash {
                    return Err(DfError::Invalid(format!(
                        "snapshot schema hash mismatch: frame claims \
                         {hash:#018x}, content hashes to {actual:#018x}"
                    )));
                }
                match self.schemas.get(&hash) {
                    // First-writer-wins under one hash: FNV-1a is not
                    // collision-resistant, so a *different* schema
                    // arriving under an interned hash must fail loud —
                    // silently replacing it would let a forged frame
                    // redirect an honest replica's later delta frames
                    // onto the wrong vocabulary.
                    Some(existing) if *existing != schema => {
                        return Err(DfError::Invalid(format!(
                            "schema hash collision on {hash:#018x}: a different \
                             schema is already interned under this fingerprint"
                        )));
                    }
                    Some(_) => {}
                    None => {
                        if self.schemas.len() >= MAX_INTERNED_SCHEMAS {
                            if let Some(oldest) = self.order.pop_front() {
                                self.schemas.remove(&oldest);
                            }
                        }
                        self.order.push_back(hash);
                        self.schemas.insert(hash, schema);
                    }
                }
                self.schemas.get(&hash).ok_or_else(|| {
                    DfError::Invalid(format!(
                        "schema {hash:#018x} missing from intern table \
                         immediately after insertion"
                    ))
                })?
            }
            KIND_DELTA => self.schemas.get(&hash).ok_or_else(|| {
                DfError::Invalid(format!(
                    "delta frame references unknown schema {hash:#018x}; \
                     request a full frame from the replica first"
                ))
            })?,
            kind => {
                return Err(DfError::Invalid(format!(
                    "unknown snapshot frame kind {kind}"
                )));
            }
        };
        let snap = get_state(&mut r, schema)?;
        r.done()?;
        Ok(snap)
    }
}

/// One-shot encode: always a full (self-describing) frame.
pub fn encode_snapshot(snap: &MonitorSnapshot) -> Result<Vec<u8>> {
    SnapshotEncoder::new().encode(snap)
}

/// One-shot decode of a self-describing (full) frame.
pub fn decode_snapshot(bytes: &[u8]) -> Result<MonitorSnapshot> {
    SnapshotDecoder::new().decode(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{Audit, Smoothed, SubsetPolicy};
    use crate::monitor::Cusum;
    use df_prob::contingency::Axis;
    use df_prob::partial::{PartialCounts, Tally};

    struct Pairs(Vec<[usize; 2]>);

    impl Tally for Pairs {
        fn tally_into(&self, shard: &mut PartialCounts) -> df_prob::Result<()> {
            for idx in &self.0 {
                shard.record(idx);
            }
            Ok(())
        }
    }

    fn axes() -> Vec<Axis> {
        vec![
            Axis::from_strs("y", &["no", "yes"]).unwrap(),
            Axis::from_strs("g", &["a", "b"]).unwrap(),
        ]
    }

    fn live_snapshot() -> MonitorSnapshot {
        let mut monitor = Audit::monitor("y", axes())
            .estimator(Smoothed { alpha: 1.0 })
            .subsets(SubsetPolicy::All)
            .window_seconds(10.0)
            .bucket_seconds(1.0)
            .decay(0.5)
            .alert(crate::monitor::AlertRule::epsilon_above(0.1))
            .changepoint(Cusum::new(0.0, 0.05, 0.2))
            .build()
            .unwrap();
        for t in 0..8 {
            monitor
                .push_at(&Pairs(vec![[1, 0], [1, 0], [0, 1], [1, 1]]), t as f64)
                .unwrap();
        }
        monitor.snapshot().unwrap()
    }

    #[test]
    fn full_and_delta_frames_round_trip() {
        let snap = live_snapshot();
        let mut enc = SnapshotEncoder::new();
        let mut dec = SnapshotDecoder::new();
        let full = enc.encode(&snap).unwrap();
        assert_eq!(&full[..4], b"DFLT");
        assert_eq!(full[5], KIND_FULL);
        assert_eq!(dec.decode(&full).unwrap(), snap);
        // Second tick of the same monitor: a delta frame, much smaller,
        // same round trip.
        let delta = enc.encode(&snap).unwrap();
        assert_eq!(delta[5], KIND_DELTA);
        assert!(delta.len() < full.len());
        assert_eq!(dec.decode(&delta).unwrap(), snap);
        assert_eq!(dec.interned_schemas(), 1);
    }

    #[test]
    fn encoding_is_byte_stable_across_encoders() {
        let snap = live_snapshot();
        let a = SnapshotEncoder::new().encode(&snap).unwrap();
        let b = SnapshotEncoder::new().encode(&snap).unwrap();
        assert_eq!(a, b);
        assert_eq!(a, encode_snapshot(&snap).unwrap());
        // Decode → re-encode reproduces the identical frame.
        let back = decode_snapshot(&a).unwrap();
        assert_eq!(encode_snapshot(&back).unwrap(), a);
    }

    #[test]
    fn delta_without_full_frame_is_refused() {
        let snap = live_snapshot();
        let mut enc = SnapshotEncoder::new();
        let _full = enc.encode(&snap).unwrap();
        let delta = enc.encode(&snap).unwrap();
        let err = SnapshotDecoder::new().decode(&delta).unwrap_err();
        assert!(err.to_string().contains("unknown schema"));
        // reset() re-ships the schema.
        enc.reset();
        let full_again = enc.encode(&snap).unwrap();
        assert_eq!(full_again[5], KIND_FULL);
        assert_eq!(SnapshotDecoder::new().decode(&full_again).unwrap(), snap);
    }

    #[test]
    fn decode_rejects_malformed_frames() {
        let snap = live_snapshot();
        let full = encode_snapshot(&snap).unwrap();
        let mut dec = SnapshotDecoder::new();
        // Truncations at every prefix length fail typed, never panic.
        for len in 0..full.len() {
            assert!(dec.decode(&full[..len]).is_err(), "prefix {len} accepted");
        }
        // Bad magic.
        let mut bad = full.clone();
        bad[0] = b'X';
        assert!(dec.decode(&bad).unwrap_err().to_string().contains("magic"));
        // Bad version.
        let mut bad = full.clone();
        bad[4] = 99;
        assert!(dec
            .decode(&bad)
            .unwrap_err()
            .to_string()
            .contains("version"));
        // Corrupted schema byte → hash mismatch.
        let mut bad = full.clone();
        bad[20] ^= 0xff;
        assert!(dec.decode(&bad).is_err());
        // Trailing garbage.
        let mut bad = full.clone();
        bad.push(0);
        assert!(dec
            .decode(&bad)
            .unwrap_err()
            .to_string()
            .contains("trailing"));
    }

    #[test]
    fn decode_rejects_corrupt_cells() {
        let mut snap = live_snapshot();
        let clean = encode_snapshot(&snap).unwrap();
        // A hostile replica ships a negative cell: the *encoder* refuses…
        snap.window.data[1] = -4.0;
        assert!(matches!(
            encode_snapshot(&snap),
            Err(DfError::CorruptCounts { cell: 1, .. })
        ));
        // …and so does the decoder when the bytes themselves are doctored.
        // Locate the varint cell block: flip a cell to the f64 form with a
        // negative value by rebuilding the frame around a corrupt state.
        snap.window.data[1] = f64::NAN;
        assert!(matches!(
            encode_snapshot(&snap),
            Err(DfError::CorruptCounts { cell: 1, .. })
        ));
        // The clean frame still decodes (sanity).
        assert!(decode_snapshot(&clean).is_ok());
    }

    #[test]
    fn decode_rejects_oversized_alert_consecutive() {
        // Byte surgery on the alert block: the encoded `consecutive`
        // varint sits immediately after the rule's threshold f64, so a
        // threshold with a distinctive bit pattern lets us find and
        // replace it in the raw frame. A doctored value of 2^33 used to
        // decode through `as usize` — silently truncating to 0 on
        // 32-bit targets; now any value past MAX_ALERT_CONSECUTIVE is a
        // typed CorruptCounts on every target.
        let mut snap = live_snapshot();
        let threshold = 0.123_456_789_f64;
        snap.alerts.push(Alert {
            rule: AlertRule {
                threshold,
                consecutive: 3,
            },
            at_record: 32,
            at_seconds: Some(7.0),
            epsilon: 0.5,
            witness: None,
        });
        let frame = encode_snapshot(&snap).unwrap();

        let needle = threshold.to_bits().to_le_bytes();
        let at = frame
            .windows(needle.len())
            .position(|w| w == needle)
            .expect("distinctive threshold bytes present exactly once");
        let consecutive_at = at + needle.len();
        assert_eq!(frame[consecutive_at], 3, "varint(3) is one byte");

        // Splice in varint(2^33) = 80 80 80 80 20 in place of the 03.
        let splice = |value_bytes: &[u8]| {
            let mut doctored = frame[..consecutive_at].to_vec();
            doctored.extend_from_slice(value_bytes);
            doctored.extend_from_slice(&frame[consecutive_at + 1..]);
            doctored
        };
        let doctored = splice(&[0x80, 0x80, 0x80, 0x80, 0x20]);
        assert!(matches!(
            decode_snapshot(&doctored),
            Err(DfError::CorruptCounts { .. })
        ));

        // Boundary: exactly MAX_ALERT_CONSECUTIVE (2^20) still decodes.
        let boundary = splice(&[0x80, 0x80, 0x40]);
        let decoded = decode_snapshot(&boundary).unwrap();
        let doctored_alert = decoded.alerts.last().unwrap();
        assert_eq!(doctored_alert.rule.consecutive, 1 << 20);

        // And the undoctored frame round-trips the real value (sanity).
        assert_eq!(
            decode_snapshot(&frame)
                .unwrap()
                .alerts
                .last()
                .unwrap()
                .rule
                .consecutive,
            3
        );
    }

    #[test]
    fn varint_cells_compress_integer_windows() {
        let snap = live_snapshot();
        let mut enc = SnapshotEncoder::new();
        let _ = enc.encode(&snap).unwrap();
        let delta = enc.encode(&snap).unwrap();
        let json = serde_json::to_string(&snap).unwrap();
        assert!(
            delta.len() * 5 <= json.len(),
            "steady-state delta {} B should be ≥ 5x smaller than JSON {} B",
            delta.len(),
            json.len()
        );
    }

    #[test]
    fn inconsistent_decay_state_is_refused_by_the_encoder() {
        let mut snap = live_snapshot();
        snap.decayed = None;
        assert!(encode_snapshot(&snap).is_err());
    }

    /// The intern table is bounded: a replica (or attacker) shipping an
    /// endless stream of distinct valid schemas evicts FIFO at the cap
    /// instead of growing aggregator memory without limit.
    #[test]
    fn intern_table_is_bounded_with_fifo_eviction() {
        let base = {
            let mut monitor = Audit::monitor("y", axes())
                .window_seconds(4.0)
                .build()
                .unwrap();
            monitor.push_at(&Pairs(vec![[0, 0], [1, 1]]), 1.0).unwrap();
            monitor.snapshot().unwrap()
        };
        let snap_for = |i: usize| {
            let mut snap = base.clone();
            snap.window.axes[1].0 = format!("g{i}");
            for subset in &mut snap.subsets {
                for attr in &mut subset.attributes {
                    if attr == "g" {
                        *attr = format!("g{i}");
                    }
                }
            }
            snap
        };
        let mut dec = SnapshotDecoder::new();
        for i in 0..=MAX_INTERNED_SCHEMAS {
            dec.decode(&encode_snapshot(&snap_for(i)).unwrap()).unwrap();
        }
        assert_eq!(dec.interned_schemas(), MAX_INTERNED_SCHEMAS);
        // The oldest schema was evicted: its delta frames are unknown…
        let mut enc = SnapshotEncoder::new();
        enc.encode(&snap_for(0)).unwrap();
        let delta = enc.encode(&snap_for(0)).unwrap();
        let err = dec.decode(&delta).unwrap_err();
        assert!(err.to_string().contains("unknown schema"), "got: {err}");
        // …while the newest still decodes from deltas.
        let mut enc = SnapshotEncoder::new();
        enc.encode(&snap_for(MAX_INTERNED_SCHEMAS)).unwrap();
        let delta = enc.encode(&snap_for(MAX_INTERNED_SCHEMAS)).unwrap();
        assert!(dec.decode(&delta).is_ok());
    }

    /// A frame whose schema names a metric this build does not know must
    /// be refused with a typed error — never silently decoded as ε-DF,
    /// which would let a later merge mix two different definitions.
    #[test]
    fn unknown_metric_tag_is_a_typed_decode_error() {
        let mut snap = live_snapshot();
        snap.metric = "martian".to_string();
        let frame = encode_snapshot(&snap).unwrap();
        let err = SnapshotDecoder::new().decode(&frame).unwrap_err();
        assert!(matches!(err, DfError::Invalid(_)));
        assert!(err.to_string().contains("unknown metric"), "got: {err}");
        // Every known tag round-trips through the same path.
        for tag in ["eps-df", "wc-ratio", "wc-diff", "alpha-if(alpha=0.5)"] {
            let mut snap = live_snapshot();
            snap.metric = tag.to_string();
            let back = decode_snapshot(&encode_snapshot(&snap).unwrap()).unwrap();
            assert_eq!(back, snap);
        }
    }

    /// A hostile full frame whose few-KB schema implies terabytes of
    /// cells (6 axes × 200 labels → 200⁶ = 6.4e13) must be refused
    /// *without* allocating anything proportional to that product — the
    /// cell count is bounded by the bytes actually on the wire.
    #[test]
    fn hostile_schema_cell_products_cannot_inflate_allocations() {
        let forge = |n_axes: usize, n_labels: usize| {
            let schema = SnapshotSchema {
                outcome_axis: "a0".to_string(),
                estimator: "evil".to_string(),
                metric: "eps-df".to_string(),
                window_seconds: None,
                bucket_seconds: None,
                decay: None,
                axes: (0..n_axes)
                    .map(|a| {
                        (
                            format!("a{a}"),
                            (0..n_labels).map(|l| format!("l{l}")).collect(),
                        )
                    })
                    .collect(),
                subset_attrs: Vec::new(),
                specs: Vec::new(),
            };
            let mut schema_bytes = Vec::new();
            schema.encode(&mut schema_bytes);
            let mut frame = Vec::new();
            frame.extend_from_slice(&MAGIC);
            frame.push(VERSION);
            frame.push(KIND_FULL);
            frame.extend_from_slice(&fnv1a64(&schema_bytes).to_le_bytes());
            frame.extend_from_slice(&schema_bytes);
            // A plausible little state block: totals, no clock, a cell
            // tag — then nothing like enough bytes for the cells.
            put_varint(&mut frame, 1);
            put_varint(&mut frame, 1);
            frame.push(0);
            frame.push(CELLS_VARINT);
            frame
        };
        // 6.4e13 implied cells in a ~6 KB frame: refused fast and typed.
        let bomb = forge(6, 200);
        assert!(bomb.len() < 10_000);
        let err = SnapshotDecoder::new().decode(&bomb).unwrap_err();
        assert!(err.to_string().contains("cells"), "got: {err}");
        // 12 axes × 200 labels overflows the usize cell product outright.
        let overflow = forge(12, 200);
        let err = SnapshotDecoder::new().decode(&overflow).unwrap_err();
        assert!(err.to_string().contains("overflows"), "got: {err}");
    }
}
